"""Setup shim.

The environment has setuptools but not the ``wheel`` package, so PEP 660
editable installs (``pip install -e .`` with a ``[build-system]`` table)
fail with ``invalid command 'bdist_wheel'``.  Keeping a classic ``setup.py``
lets pip fall back to the legacy ``setup.py develop`` editable path, which
works offline.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
