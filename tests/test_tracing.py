"""Tests for the execution tracing & provenance layer.

Invariants pinned here:

*slot ledger*: every slot of every traced batch appears in the trace as
exactly one ``request`` event — served, executed, degraded, isolated or
failed-in-prepare, under any fault schedule (the chaos tests below drive
poison / transient-fail / kill / degrade schedules through both the
serial loop and the pool).

*attribution*: cache tiers (batch-dedup / memory / persistent), resolved
backend methods, retry and degradation counts, and pool worker pids all
land on trace events and agree with the engine's own counters.

*round-trip*: persisted JSONL traces reload bit-identically (dataclass
equality against the in-memory events), and worker trace fragments never
leak into cached results.

The CLI (``python -m repro.tracing``) is exercised in-process through
``repro.tracing.cli.main``.
"""

import json
import os

import pytest

from repro.circuits import QuantumCircuit
from repro.mitigation import build_subset_circuit
from repro.noise import NoiseModel
from repro.simulators import (
    ExecutionEngine,
    FailedResult,
    FaultInjector,
    PersistentResultCache,
    RetryPolicy,
)
from repro.tracing import (
    TRACE_FORMAT,
    TRACE_FORMAT_VERSION,
    TraceRecorder,
    TraceStore,
    load_trace,
    maybe_span,
    result_digest,
)
from repro.tracing.cli import main as cli_main
from test_parallel import requires_pool

NOISE = NoiseModel.depolarizing(p1=0.005, p2=0.02, readout=0.02)
FAST_RETRY = RetryPolicy(base_delay=0.0, jitter=0.0)


def _subset_workload(num_qubits: int = 6, repeats: int = 3) -> list[QuantumCircuit]:
    base = QuantumCircuit(num_qubits, num_qubits)
    for q in range(num_qubits):
        base.h(q)
    for q in range(num_qubits - 1):
        base.cx(q, q + 1)
    for q in range(num_qubits):
        base.rz(0.1 * (q + 1), q)
    base.measure_all()
    subsets = [[0, 1], [2, 3], [4, 5]]
    unique = [build_subset_circuit(base, subset) for subset in subsets]
    return [circuit for circuit in unique for _ in range(repeats)]


def _traced_batch(
    trace_dir, circuits, *, injector=None, workers=None, on_error="isolate", **engine_kwargs
):
    """One batch through a fresh traced engine; returns (results, events, path)."""
    engine_kwargs.setdefault("retry_policy", FAST_RETRY)
    with ExecutionEngine(trace_dir=str(trace_dir), workers=workers, **engine_kwargs) as engine:
        if injector is not None:
            engine.install_fault_injector(injector)
        results = engine.execute_many(circuits, NOISE, shots=64, seed=11, on_error=on_error)
        return results, engine.tracer.trace_events(), engine.tracer.last_trace_path


def _requests(events):
    requests = [e for e in events if e.kind == "event" and e.name == "request"]
    requests.sort(key=lambda event: event.attrs["slot"])
    return requests


def _assert_slot_ledger(events, results):
    """Every slot exactly once, with ok/fault attribution matching results."""
    requests = _requests(events)
    assert [r.attrs["slot"] for r in requests] == list(range(len(results)))
    for request, result in zip(requests, results):
        if isinstance(result, FailedResult):
            assert request.attrs["ok"] is False
            assert request.attrs["error"]  # fault annotation present
            assert request.attrs["attempts"] >= 1
        else:
            assert request.attrs["ok"] is True
            assert request.attrs["method"] == result.method


class TestRecorder:
    def test_span_nesting_and_root_flush(self):
        recorder = TraceRecorder()
        with recorder.span("root", batch=1):
            assert recorder.active
            assert recorder.current_trace_id is not None
            with recorder.span("child"):
                recorder.event("leaf", duration=0.25, detail="x")
        assert not recorder.active
        assert recorder.current_trace_id is None
        events = recorder.trace_events()
        by_name = {event.name: event for event in events}
        root, child, leaf = by_name["root"], by_name["child"], by_name["leaf"]
        assert root.parent_id is None and root.kind == "span"
        assert child.parent_id == root.span_id
        assert leaf.parent_id == child.span_id and leaf.kind == "event"
        assert leaf.duration == 0.25
        assert {event.trace_id for event in events} == {recorder.last_trace_id}

    def test_event_outside_any_trace_is_noop(self):
        recorder = TraceRecorder()
        recorder.event("orphan", value=1)
        assert recorder.traces == []
        assert recorder.last_trace_id is None

    def test_exception_closes_trace_with_status(self):
        recorder = TraceRecorder()
        with pytest.raises(ValueError):
            with recorder.span("root"):
                raise ValueError("boom")
        assert not recorder.active  # trace finished despite the abort
        [root] = recorder.trace_events()
        assert root.attrs["status"] == "raised"
        assert root.attrs["error"] == "ValueError"

    def test_end_span_pops_abandoned_children(self):
        recorder = TraceRecorder()
        root = recorder.start_span("root")
        recorder.start_span("abandoned")
        recorder.end_span(root)
        assert not recorder.active
        assert {e.name for e in recorder.trace_events()} == {"root"}

    def test_ring_is_bounded(self):
        recorder = TraceRecorder(keep=2)
        for index in range(4):
            with recorder.span(f"t{index}"):
                pass
        assert len(recorder.traces) == 2
        assert recorder.trace_events()[0].name == "t3"

    def test_maybe_span_without_tracer_is_noop(self):
        with maybe_span(None, "anything") as span:
            assert span is None


class TestStorage:
    def test_round_trip_is_bit_identical(self, tmp_path):
        recorder = TraceRecorder(store=TraceStore(str(tmp_path)))
        with recorder.span("root", shots=64):
            recorder.event("request", duration=0.0012345678901234, slot=0, tier="memory")
            recorder.event("execute", duration=None, status="ok")
        header, loaded = load_trace(recorder.last_trace_path)
        assert header["format"] == TRACE_FORMAT
        assert header["version"] == TRACE_FORMAT_VERSION
        assert header["trace_id"] == recorder.last_trace_id
        assert loaded == recorder.trace_events()  # dataclass equality: bit-identical

    def test_load_rejects_alien_and_versioned_files(self, tmp_path):
        empty = tmp_path / "trace-empty.jsonl"
        empty.write_text("\n")
        with pytest.raises(ValueError, match="empty"):
            load_trace(str(empty))
        alien = tmp_path / "trace-alien.jsonl"
        alien.write_text(json.dumps({"format": "other"}) + "\n")
        with pytest.raises(ValueError, match="not a"):
            load_trace(str(alien))
        future = tmp_path / "trace-future.jsonl"
        future.write_text(
            json.dumps({"format": TRACE_FORMAT, "version": TRACE_FORMAT_VERSION + 1}) + "\n"
        )
        with pytest.raises(ValueError, match="unsupported"):
            load_trace(str(future))

    def test_write_failure_is_counted_not_raised(self, tmp_path):
        store = TraceStore(str(tmp_path))
        store.root = str(tmp_path / "vanished" / "deeper")  # mkstemp will fail
        recorder = TraceRecorder(store=store)
        with recorder.span("root"):
            pass  # the traced work itself must not raise
        # The flush is deferred; path access forces it and must not raise.
        assert recorder.last_trace_path is None
        assert store.write_errors == 1
        assert recorder.trace_events()  # in-memory copy survives

    def test_list_orders_oldest_first(self, tmp_path):
        store = TraceStore(str(tmp_path))
        first = store.write("aaa", [])
        second = store.write("bbb", [])
        os.utime(second, (2_000_000_000, 2_000_000_000))
        assert store.list() == [first, second]


class TestEngineTraces:
    def test_serial_slot_ledger_and_tiers(self, tmp_path):
        circuits = _subset_workload()
        results, events, path = _traced_batch(tmp_path / "traces", circuits)
        assert all(result.ok for result in results)
        _assert_slot_ledger(events, results)
        tiers = [request.attrs["tier"] for request in _requests(events)]
        assert tiers.count("executed") == 3  # one per unique circuit
        assert tiers.count("batch-dedup") == 6  # duplicates share the execution
        # Stage timings land on the slots that passed through each stage.
        for request in _requests(events):
            assert request.attrs["t_prepare"] >= 0.0
            assert request.attrs["t_deliver"] >= 0.0
        # The artifact on disk equals the in-memory trace bit-for-bit.
        _, loaded = load_trace(path)
        assert loaded == events

    def test_memory_and_persistent_tier_attribution(self, tmp_path):
        circuits = _subset_workload(repeats=1)
        cache_dir = str(tmp_path / "cache")
        trace_dir = str(tmp_path / "traces")
        with ExecutionEngine(cache_dir=cache_dir, trace_dir=trace_dir) as engine:
            engine.execute_many(circuits, NOISE, shots=64, seed=11)
            engine.execute_many(circuits, NOISE, shots=64, seed=11)
            second = engine.tracer.trace_events()
        assert {r.attrs["tier"] for r in _requests(second)} == {"memory"}
        # A fresh engine sharing only the on-disk cache attributes the
        # persistent tier.
        with ExecutionEngine(cache_dir=cache_dir, trace_dir=trace_dir) as engine:
            engine.execute_many(circuits, NOISE, shots=64, seed=11)
            third = engine.tracer.trace_events()
        assert {r.attrs["tier"] for r in _requests(third)} == {"persistent"}

    def test_execute_events_attribute_method_and_location(self, tmp_path):
        circuits = _subset_workload(repeats=1)
        _, events, _ = _traced_batch(tmp_path / "traces", circuits)
        executes = [e for e in events if e.name == "execute"]
        assert len(executes) == len(circuits)
        for event in executes:
            assert event.attrs["status"] == "ok"
            assert event.attrs["location"] == "in-process"
            assert event.attrs["retries"] == 0
            assert event.duration is not None and event.duration >= 0.0

    def test_cache_put_provenance_digests_stored_payloads(self, tmp_path):
        circuits = _subset_workload(repeats=1)
        cache_dir = str(tmp_path / "cache")
        with ExecutionEngine(cache_dir=cache_dir, trace_dir=str(tmp_path / "traces")) as engine:
            engine.execute_many(circuits, NOISE, shots=64, seed=11)
            events = engine.tracer.trace_events()
        puts = [e for e in events if e.name == "cache-put"]
        assert puts
        cache = PersistentResultCache(cache_dir)
        for event in puts:
            import ast

            payload = cache.get(ast.literal_eval(event.attrs["key"]))
            assert payload is not None
            assert result_digest(payload) == event.attrs["digest"]

    def test_tracing_disabled_emits_nothing(self):
        with ExecutionEngine() as engine:
            results = engine.execute_many(_subset_workload(repeats=1), NOISE, shots=64, seed=11)
            assert all(result.ok for result in results)
            assert engine.tracer is None

    @requires_pool
    def test_pool_trace_stitches_worker_fragments(self, tmp_path):
        circuits = _subset_workload()
        results, events, _ = _traced_batch(tmp_path / "traces", circuits, workers=2)
        assert all(result.ok for result in results)
        _assert_slot_ledger(events, results)
        [dispatch] = [e for e in events if e.name == "dispatch"]
        assert dispatch.attrs["tasks"] == 3
        executes = [e for e in events if e.name == "execute"]
        pool_executes = [e for e in executes if e.attrs["location"] == "pool"]
        if dispatch.attrs["fallback"] is None:  # pool actually ran
            assert pool_executes
            for event in pool_executes:
                assert event.attrs["worker_pid"] != os.getpid()
                assert event.duration is not None

    @requires_pool
    def test_worker_fragments_never_reach_the_cache(self, tmp_path):
        import ast

        circuits = _subset_workload()
        cache_dir = str(tmp_path / "cache")
        with ExecutionEngine(
            cache_dir=cache_dir, trace_dir=str(tmp_path / "traces"), workers=2
        ) as engine:
            results = engine.execute_many(circuits, NOISE, shots=64, seed=11)
            assert all(result.ok for result in results)
            events = engine.tracer.trace_events()
        for result in results:
            assert "trace_fragment" not in result.metadata
        cache = PersistentResultCache(cache_dir)
        puts = [e for e in events if e.name == "cache-put"]
        assert puts
        for event in puts:
            payload = cache.get(ast.literal_eval(event.attrs["key"]))
            assert payload is not None
            metadata = getattr(payload, "metadata", None)
            assert not metadata or "trace_fragment" not in metadata


class TestChaosTraceIntegrity:
    """Satellite: trace integrity under active fault schedules."""

    def test_poison_slots_traced_once_with_fault_annotation(self, tmp_path):
        circuits = _subset_workload()
        results, events, path = _traced_batch(
            tmp_path / "traces", circuits, injector=FaultInjector(poison_tasks={0})
        )
        _assert_slot_ledger(events, results)
        failed = [r for r in _requests(events) if r.attrs["ok"] is False]
        assert len(failed) == 3  # the poisoned circuit and its dedup twins
        for request in failed:
            assert request.attrs["error"] == "SimulationError"
        # Chaos traces round-trip bit-identically too.
        _, loaded = load_trace(path)
        assert loaded == events

    def test_transient_fault_attributes_retries(self, tmp_path):
        circuits = _subset_workload()
        results, events, _ = _traced_batch(
            tmp_path / "traces", circuits, injector=FaultInjector(fail_tasks={0})
        )
        assert all(result.ok for result in results)
        _assert_slot_ledger(events, results)
        retried = [e for e in events if e.name == "execute" and e.attrs["retries"] > 0]
        assert len(retried) == 1
        assert retried[0].attrs["retries"] == 1

    def test_degradation_attributes_ladder_rung(self, tmp_path):
        circuit = QuantumCircuit(4, 4)
        for q in range(4):
            circuit.h(q)
        circuit.cx(0, 1).cx(2, 3)
        circuit.measure_all()
        noise = NoiseModel.depolarizing(p1=0.001, p2=0.008, readout=0.02)
        with ExecutionEngine(
            trace_dir=str(tmp_path / "traces"), retry_policy=FAST_RETRY
        ) as engine:
            engine.install_fault_injector(FaultInjector(degrade_tasks={0}))
            [result] = engine.execute_many(
                [circuit], noise, shots=256, seed=7, method="stabilizer"
            )
            events = engine.tracer.trace_events()
        assert result.metadata["degraded_from"] == "stabilizer"
        [request] = _requests(events)
        assert request.attrs["degraded_from"] == "stabilizer"
        assert request.attrs["method"] == "trajectory"
        [execute] = [e for e in events if e.name == "execute"]
        assert execute.attrs["degraded"] == 1
        assert execute.attrs["degraded_from"] == "stabilizer"

    def test_terminal_fault_still_persists_the_trace(self, tmp_path):
        from repro.simulators import ExecutionFault

        circuits = _subset_workload(repeats=1)
        with ExecutionEngine(
            trace_dir=str(tmp_path / "traces"), retry_policy=FAST_RETRY
        ) as engine:
            engine.install_fault_injector(FaultInjector(poison_tasks={0}))
            with pytest.raises(ExecutionFault):
                engine.execute_many(circuits, NOISE, shots=64, seed=11, on_error="raise")
            events = engine.tracer.trace_events()
            path = engine.tracer.last_trace_path
        [root] = [e for e in events if e.parent_id is None]
        assert root.attrs["status"] == "raised"
        _, loaded = load_trace(path)
        assert loaded == events

    @requires_pool
    def test_pool_kill_trace_integrity(self, tmp_path):
        circuits = _subset_workload()
        results, events, path = _traced_batch(
            tmp_path / "traces", circuits, workers=2, injector=FaultInjector(kill_tasks={0})
        )
        assert all(result.ok for result in results)  # recovered transparently
        _assert_slot_ledger(events, results)
        [dispatch] = [e for e in events if e.name == "dispatch"]
        if dispatch.attrs["fallback"] is None:
            # The sharder heals a killed worker internally (respawn +
            # re-dispatch), so the fault surfaces on the dispatch event's
            # respawn counter rather than as a faulted execute event.
            assert dispatch.attrs["respawns"] >= 1
            assert all(
                e.attrs["status"] == "ok" for e in events if e.name == "execute"
            )
        _, loaded = load_trace(path)
        assert loaded == events


class TestCLI:
    def _two_traces(self, tmp_path):
        circuits = _subset_workload()
        _, _, path_a = _traced_batch(tmp_path / "a", circuits)
        _, _, path_b = _traced_batch(tmp_path / "b", circuits)
        return path_a, path_b

    def test_summarize_prints_stage_lines(self, tmp_path, capsys):
        path, _ = self._two_traces(tmp_path)
        assert cli_main(["summarize", path]) == 0
        out = capsys.readouterr().out
        for stage in ("prepare", "execute", "deliver", "total"):
            assert f"stage {stage}" in out
        assert "tier batch-dedup" in out and "tier executed" in out
        assert "faults retries=0 degraded=0 failed_slots=0" in out

    def test_diff_same_seeded_batches_report_zero_drift(self, tmp_path, capsys):
        path_a, path_b = self._two_traces(tmp_path)
        assert cli_main(["diff", path_a, path_b]) == 0
        out = capsys.readouterr().out
        assert "no method or hit-attribution drift" in out
        assert "stage execute" in out  # timing deltas still reported

    def test_diff_detects_method_drift(self, tmp_path, capsys):
        path_a, path_b = self._two_traces(tmp_path)
        lines = open(path_b).read().splitlines()
        doctored = []
        for line in lines:
            record = json.loads(line)
            if record.get("name") == "request" and record["attrs"].get("slot") == 0:
                record["attrs"]["method"] = "statevector"
            doctored.append(json.dumps(record, sort_keys=True))
        forged = tmp_path / "b" / "trace-forged.jsonl"
        forged.write_text("\n".join(doctored) + "\n")
        assert cli_main(["diff", path_a, str(forged)]) == 1
        out = capsys.readouterr().out
        assert "drift slot=0 field=method" in out

    def test_replay_verifies_digests(self, tmp_path, capsys):
        circuits = _subset_workload()
        cache_dir = str(tmp_path / "cache")
        _, _, path = _traced_batch(tmp_path / "traces", circuits, cache_dir=cache_dir)
        assert cli_main(["replay", path, "--cache-dir", cache_dir, "--strict"]) == 0
        out = capsys.readouterr().out
        assert "mismatched=0" in out and "missing=0" in out

    def test_replay_flags_digest_mismatch(self, tmp_path, capsys):
        circuits = _subset_workload(repeats=1)
        cache_dir = str(tmp_path / "cache")
        _, _, path = _traced_batch(tmp_path / "traces", circuits, cache_dir=cache_dir)
        lines = open(path).read().splitlines()
        doctored = []
        for line in lines:
            record = json.loads(line)
            if record.get("name") == "cache-put":
                record["attrs"]["digest"] = "0" * 16
            doctored.append(json.dumps(record, sort_keys=True))
        forged = tmp_path / "traces" / "trace-forged.jsonl"
        forged.write_text("\n".join(doctored) + "\n")
        assert cli_main(["replay", str(forged), "--cache-dir", cache_dir]) == 1
        assert "mismatch" in capsys.readouterr().out

    def test_replay_strict_flags_missing_entries(self, tmp_path, capsys):
        circuits = _subset_workload(repeats=1)
        cache_dir = str(tmp_path / "cache")
        _, _, path = _traced_batch(tmp_path / "traces", circuits, cache_dir=cache_dir)
        empty = str(tmp_path / "empty-cache")
        assert cli_main(["replay", path, "--cache-dir", empty]) == 0  # lenient default
        capsys.readouterr()
        assert cli_main(["replay", path, "--cache-dir", empty, "--strict"]) == 1
        assert "missing" in capsys.readouterr().out

    def test_list_prints_traces_oldest_first(self, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        circuits = _subset_workload(repeats=1)
        _, _, first = _traced_batch(trace_dir, circuits)
        _, _, second = _traced_batch(trace_dir, circuits)
        os.utime(second, (2_000_000_000, 2_000_000_000))
        assert cli_main(["list", str(trace_dir)]) == 0
        assert capsys.readouterr().out.splitlines() == [first, second]


class TestQuTracerSpans:
    def test_mitigation_run_nests_engine_batches(self, tmp_path):
        from repro.core import QuTracer

        circuit = QuantumCircuit(3, 3)
        circuit.h(0).cx(0, 1).cx(1, 2)
        for q in range(3):
            circuit.rz(0.1 * (q + 1), q)
        circuit.measure_all()
        engine = ExecutionEngine(trace_dir=str(tmp_path / "traces"))
        tracer = QuTracer(
            noise_model=NOISE, shots=2000, shots_per_circuit=200, seed=1, engine=engine
        )
        with tracer:
            tracer.run(circuit, subset_size=1)
        events = engine.tracer.trace_events()
        names = {event.name for event in events}
        assert {"qutracer.run", "qutracer.global", "qutracer.subset", "qutracer.update"} <= names
        # The whole mitigation run is ONE trace: engine batches nest
        # inside the qutracer.run root rather than starting new traces.
        roots = [e for e in events if e.parent_id is None]
        assert len(roots) == 1 and roots[0].name == "qutracer.run"
        assert [e.name for e in events if e.name == "engine.execute_many"]
        subset_spans = [e for e in events if e.name == "qutracer.subset"]
        assert len(subset_spans) == 3  # one per traced subset
