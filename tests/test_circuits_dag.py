"""Tests for dependency-cone and commutation analysis."""

import numpy as np
import pytest

from repro.circuits import (
    Instruction,
    QuantumCircuit,
    dependency_cone,
    final_single_qubit_layer,
    gate_commutes_with_pauli,
    instructions_commute,
    restrict_to_cone,
    split_at_barriers,
    standard_gate,
)


def ladder_circuit():
    """q0 -H- . --------      (q2 depends on everything through the CX chain)
       q1 ----X--.------
       q2 -------X--Rz--"""
    qc = QuantumCircuit(3)
    qc.h(0)
    qc.cx(0, 1)
    qc.cx(1, 2)
    qc.rz(0.3, 2)
    return qc


class TestDependencyCone:
    def test_full_chain_is_in_cone_of_last_qubit(self):
        qc = ladder_circuit()
        assert dependency_cone(qc, [2]) == [0, 1, 2, 3]

    def test_first_qubit_cone_excludes_downstream_gates(self):
        qc = ladder_circuit()
        cone = dependency_cone(qc, [0])
        assert cone == [0, 1]  # h(0), cx(0,1) — the cx touches q0

    def test_disconnected_qubit_has_empty_cone(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1)
        assert dependency_cone(qc, [2]) == []

    def test_measurements_and_barriers_ignored(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0).barrier().measure(0, 0).cx(0, 1)
        cone = dependency_cone(qc, [1])
        names = [qc.data[i].name for i in cone]
        assert names == ["h", "cx"]

    def test_restrict_to_cone_keeps_subset_measurements(self):
        qc = ladder_circuit()
        qc.measure_all()
        restricted = restrict_to_cone(qc, [0])
        assert restricted.count_ops()["measure"] == 1
        assert restricted.count_ops()["cx"] == 1
        assert "rz" not in restricted.count_ops()


class TestCommutation:
    def test_cz_commutes_with_z_on_either_qubit(self):
        inst = Instruction(standard_gate("cz"), (0, 1))
        assert gate_commutes_with_pauli(inst, {0: "Z"})
        assert gate_commutes_with_pauli(inst, {1: "Z"})
        assert gate_commutes_with_pauli(inst, {0: "Z", 1: "Z"})

    def test_cx_commutes_with_z_on_control_only(self):
        inst = Instruction(standard_gate("cx"), (0, 1))
        assert gate_commutes_with_pauli(inst, {0: "Z"})
        assert not gate_commutes_with_pauli(inst, {1: "Z"})
        # X on the target commutes, X on the control does not.
        assert gate_commutes_with_pauli(inst, {1: "X"})
        assert not gate_commutes_with_pauli(inst, {0: "X"})

    def test_crz_and_cp_commute_with_z_on_both(self):
        for name in ("crz", "cp"):
            inst = Instruction(standard_gate(name, 0.4), (0, 1))
            assert gate_commutes_with_pauli(inst, {0: "Z"})
            assert gate_commutes_with_pauli(inst, {1: "Z"})

    def test_hadamard_does_not_commute_with_z(self):
        inst = Instruction(standard_gate("h"), (0,))
        assert not gate_commutes_with_pauli(inst, {0: "Z"})

    def test_identity_pauli_always_commutes(self):
        inst = Instruction(standard_gate("h"), (0,))
        assert gate_commutes_with_pauli(inst, {3: "Z"})

    def test_rejects_non_gate(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        with pytest.raises(ValueError):
            gate_commutes_with_pauli(qc.data[0], {0: "Z"})

    def test_instructions_commute_disjoint(self):
        a = Instruction(standard_gate("h"), (0,))
        b = Instruction(standard_gate("x"), (1,))
        assert instructions_commute(a, b)

    def test_instructions_commute_shared_wire(self):
        a = Instruction(standard_gate("cz"), (0, 1))
        b = Instruction(standard_gate("rz", 0.2), (0,))
        assert instructions_commute(a, b)
        c = Instruction(standard_gate("h"), (0,))
        assert not instructions_commute(a, c)

    def test_cx_chain_commutes_on_shared_control(self):
        a = Instruction(standard_gate("cx"), (0, 1))
        b = Instruction(standard_gate("cx"), (0, 2))
        assert instructions_commute(a, b)
        c = Instruction(standard_gate("cx"), (1, 2))
        assert not instructions_commute(a, c)


class TestSplitting:
    def test_split_at_plain_barriers(self):
        qc = QuantumCircuit(2)
        qc.h(0).barrier().cx(0, 1).barrier().h(1)
        parts = split_at_barriers(qc)
        assert len(parts) == 3
        assert [len(p) for p in parts] == [1, 1, 1]

    def test_split_at_labelled_barriers_only(self):
        qc = QuantumCircuit(2)
        qc.h(0).barrier(label="cut:0").cx(0, 1).barrier().h(1)
        parts = split_at_barriers(qc, label_prefix="cut")
        assert len(parts) == 2
        assert parts[1].count_ops()["barrier"] == 1  # the unlabelled barrier stays

    def test_final_single_qubit_layer(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).h(1).rz(0.1, 1)
        assert [qc.data[i].name for i in final_single_qubit_layer(qc, 1)] == ["h", "rz"]
        assert final_single_qubit_layer(qc, 0) == []
