"""Tests for the statevector, density-matrix and trajectory simulators."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.distributions import hellinger_fidelity
from repro.noise import NoiseModel, depolarizing_channel
from repro.simulators import (
    DensityMatrix,
    Statevector,
    execute,
    ideal_distribution,
    noisy_distribution_density_matrix,
    simulate_density_matrix,
    simulate_statevector,
    simulate_trajectories,
)


def bell_circuit():
    qc = QuantumCircuit(2)
    qc.h(0).cx(0, 1)
    return qc


def ghz_circuit(n=3):
    qc = QuantumCircuit(n)
    qc.h(0)
    for i in range(n - 1):
        qc.cx(i, i + 1)
    return qc


class TestStatevector:
    def test_zero_state(self):
        state = Statevector.zero_state(2)
        assert np.allclose(state.data, [1, 0, 0, 0])

    def test_from_label_msb_first(self):
        state = Statevector.from_label("10")  # q1=1, q0=0
        assert np.allclose(state.data, np.eye(4)[0b10])

    def test_normalisation(self):
        state = Statevector([2.0, 0.0])
        assert np.linalg.norm(state.data) == pytest.approx(1.0)

    def test_zero_norm_raises(self):
        with pytest.raises(ValueError):
            Statevector([0.0, 0.0])

    def test_bell_probabilities(self):
        state = simulate_statevector(bell_circuit())
        assert np.allclose(state.probabilities(), [0.5, 0, 0, 0.5])

    def test_single_qubit_marginal(self):
        state = simulate_statevector(bell_circuit())
        assert np.allclose(state.probabilities([0]), [0.5, 0.5])

    def test_marginal_ordering(self):
        qc = QuantumCircuit(2)
        qc.x(0)
        state = simulate_statevector(qc)
        assert np.allclose(state.probabilities([0]), [0, 1])
        assert np.allclose(state.probabilities([1]), [1, 0])
        assert np.allclose(state.probabilities([1, 0]), [0, 0, 1, 0])

    def test_expectation_pauli(self):
        state = simulate_statevector(bell_circuit())
        assert state.expectation_pauli({0: "Z", 1: "Z"}) == pytest.approx(1.0)
        assert state.expectation_pauli({0: "Z"}) == pytest.approx(0.0)
        assert state.expectation_pauli({0: "X", 1: "X"}) == pytest.approx(1.0)
        assert state.expectation_pauli("ZZ") == pytest.approx(1.0)

    def test_reduced_density_matrix_of_bell_is_mixed(self):
        state = simulate_statevector(bell_circuit())
        rho = state.reduced_density_matrix([0])
        assert np.allclose(rho, np.eye(2) / 2)

    def test_reduced_density_matrix_ordering(self):
        qc = QuantumCircuit(2)
        qc.x(1)
        rho = simulate_statevector(qc).reduced_density_matrix([1, 0])
        # q1=1 is bit 0 of the reduced index, q0=0 is bit 1 -> outcome 0b01
        assert rho[0b01, 0b01] == pytest.approx(1.0)

    def test_fidelity(self):
        a = simulate_statevector(bell_circuit())
        b = Statevector.from_label("00")
        assert a.fidelity(a) == pytest.approx(1.0)
        assert a.fidelity(b) == pytest.approx(0.5)

    def test_evolve_circuit_rejects_width_mismatch(self):
        with pytest.raises(ValueError):
            simulate_statevector(bell_circuit(), initial_state=Statevector.zero_state(3))

    def test_ideal_distribution_measured_subset(self):
        qc = ghz_circuit(3)
        qc.measure_subset([0, 2])
        dist = ideal_distribution(qc)
        assert dist.num_bits == 2
        assert dist[0b00] == pytest.approx(0.5)
        assert dist[0b11] == pytest.approx(0.5)

    def test_ideal_distribution_no_measurements(self):
        dist = ideal_distribution(bell_circuit())
        assert dist.num_bits == 2
        assert dist[0b11] == pytest.approx(0.5)

    def test_iqft_phase_readout(self):
        # Encode the phase 5/8 and read it back through the inverse QFT.
        n = 3
        value = 5
        qc = QuantumCircuit(n)
        for q in range(n):
            qc.h(q)
            qc.p(2 * math.pi * value / 2 ** (n - q), q)
        # textbook inverse QFT
        for q in reversed(range(n)):
            for other in range(q + 1, n):
                qc.cp(-math.pi / 2 ** (other - q), other, q)
            qc.h(q)
        dist = ideal_distribution(qc)
        assert dist[value] == pytest.approx(1.0, abs=1e-9)


class TestDensityMatrix:
    def test_from_statevector_purity(self):
        rho = DensityMatrix.from_statevector(simulate_statevector(bell_circuit()))
        assert rho.purity == pytest.approx(1.0)
        assert rho.trace == pytest.approx(1.0)

    def test_ideal_simulation_matches_statevector(self):
        qc = ghz_circuit(4)
        rho = simulate_density_matrix(qc)
        sv = simulate_statevector(qc)
        assert np.allclose(rho.probabilities(), sv.probabilities())

    def test_depolarizing_reduces_purity(self):
        noise = NoiseModel.depolarizing(p1=0.05, p2=0.1)
        rho = simulate_density_matrix(ghz_circuit(3), noise)
        assert rho.purity < 0.99
        assert rho.trace == pytest.approx(1.0)

    def test_full_depolarizing_gives_uniform(self):
        noise = NoiseModel()
        noise.set_default_2q_error(depolarizing_channel(1.0, 2))
        rho = simulate_density_matrix(bell_circuit(), noise)
        assert np.allclose(rho.probabilities(), np.full(4, 0.25))

    def test_expectation_pauli(self):
        rho = simulate_density_matrix(bell_circuit())
        assert rho.expectation_pauli({0: "Z", 1: "Z"}) == pytest.approx(1.0)
        assert rho.expectation_pauli("IZ") == pytest.approx(0.0)

    def test_reduced(self):
        rho = simulate_density_matrix(bell_circuit())
        reduced = rho.reduced([1])
        assert np.allclose(reduced.data, np.eye(2) / 2)

    def test_readout_error_applied_to_distribution(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        noise = NoiseModel.depolarizing(readout=0.2)
        dist, qubits = noisy_distribution_density_matrix(qc, noise)
        assert qubits == [0]
        assert dist[1] == pytest.approx(0.2)

    def test_asymmetric_readout(self):
        qc = QuantumCircuit(1, 1)
        qc.x(0).measure(0, 0)
        noise = NoiseModel()
        from repro.noise import ReadoutError

        noise.set_readout_error(ReadoutError(0.0, 0.3), 0)
        dist, _ = noisy_distribution_density_matrix(qc, noise)
        assert dist[0] == pytest.approx(0.3)
        assert dist[1] == pytest.approx(0.7)

    def test_measured_subset_ordering(self):
        qc = ghz_circuit(3)
        qc.measure_subset([2])
        dist, qubits = noisy_distribution_density_matrix(qc, NoiseModel.ideal())
        assert qubits == [2]
        assert dist[0] == pytest.approx(0.5)


class TestTrajectory:
    def test_ideal_single_trajectory(self):
        counts, qubits = simulate_trajectories(ghz_circuit(3), NoiseModel.ideal(), shots=2000, seed=1)
        dist = counts.to_distribution()
        assert qubits == [0, 1, 2]
        assert dist[0b000] == pytest.approx(0.5, abs=0.05)
        assert dist[0b111] == pytest.approx(0.5, abs=0.05)

    def test_matches_density_matrix_under_noise(self):
        qc = ghz_circuit(3)
        qc.measure_all()
        noise = NoiseModel.depolarizing(p1=0.01, p2=0.05, readout=0.05)
        exact, _ = noisy_distribution_density_matrix(qc, noise)
        counts, _ = simulate_trajectories(qc, noise, shots=20000, seed=7, max_trajectories=400)
        assert hellinger_fidelity(exact, counts.to_distribution()) > 0.995

    def test_readout_errors_sampled(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        noise = NoiseModel.depolarizing(readout=0.25)
        counts, _ = simulate_trajectories(qc, noise, shots=20000, seed=3)
        assert counts[1] / counts.shots == pytest.approx(0.25, abs=0.02)

    def test_invalid_shots(self):
        with pytest.raises(ValueError):
            simulate_trajectories(bell_circuit(), shots=0)

    def test_reproducible_with_seed(self):
        noise = NoiseModel.depolarizing(p1=0.02, p2=0.05)
        a, _ = simulate_trajectories(bell_circuit(), noise, shots=500, seed=11)
        b, _ = simulate_trajectories(bell_circuit(), noise, shots=500, seed=11)
        assert a.to_dict() == b.to_dict()


class TestExecute:
    def test_auto_statevector_for_ideal(self):
        result = execute(bell_circuit())
        assert result.method == "statevector"
        assert result.distribution[0b00] == pytest.approx(0.5)

    def test_auto_density_matrix_for_small_noisy(self):
        result = execute(bell_circuit(), NoiseModel.depolarizing(p1=0.01))
        assert result.method == "density_matrix"

    def test_auto_trajectory_for_wide_noisy(self):
        qc = ghz_circuit(12)
        qc.t(0)  # non-Clifford: wide Clifford programs go to the stabilizer backend
        qc.measure_all()
        result = execute(
            qc, NoiseModel.depolarizing(p2=0.01), shots=200, seed=0, max_trajectories=20
        )
        assert result.method == "trajectory"
        assert result.shots == 200

    def test_auto_stabilizer_for_wide_noisy_clifford(self):
        qc = ghz_circuit(12)
        qc.measure_all()
        result = execute(qc, NoiseModel.depolarizing(p2=0.01), shots=200, seed=0)
        assert result.method == "stabilizer"
        assert result.shots == 200

    def test_shots_sampling_on_exact_method(self):
        result = execute(bell_circuit(), shots=1000, seed=5)
        assert result.counts is not None
        assert result.counts.shots == 1000

    def test_statevector_method_rejects_noise(self):
        with pytest.raises(ValueError):
            execute(bell_circuit(), NoiseModel.depolarizing(p1=0.1), method="statevector")

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            execute(bell_circuit(), method="qpu")

    def test_result_helpers(self):
        qc = ghz_circuit(3)
        qc.measure_subset([0, 2])
        result = execute(qc)
        assert result.measured_qubits == [0, 2]
        assert result.bit_for_qubit(2) == 1
        with pytest.raises(KeyError):
            result.bit_for_qubit(1)
        marginal = result.marginal_for_qubits([2])
        assert marginal[0] == pytest.approx(0.5)

    @given(st.integers(min_value=0, max_value=7))
    @settings(max_examples=8, deadline=None)
    def test_basis_state_circuits_are_deterministic(self, value):
        qc = QuantumCircuit(3)
        for bit in range(3):
            if (value >> bit) & 1:
                qc.x(bit)
        qc.measure_all()
        result = execute(qc)
        assert result.distribution[value] == pytest.approx(1.0)
