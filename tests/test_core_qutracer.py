"""Tests for the QuTracer core: analysis, optimizations, QSPC and the driver."""

import numpy as np
import pytest

from repro.algorithms import iqft_benchmark_circuit, qpe_circuit, vqe_circuit
from repro.circuits import QuantumCircuit
from repro.core import (
    QSPCOptions,
    QuTracer,
    QuTracerOptions,
    all_pauli_strings,
    analyse_subset,
    apply_local_unitary,
    conjugate_observables_through,
    default_subsets,
    extract_leading_local_gates,
    extract_trailing_local_gates,
    false_dependency_removal,
    virtual_pauli_check,
)
from repro.distributions import hellinger_fidelity
from repro.noise import NoiseModel, fake_hanoi
from repro.simulators import execute, ideal_distribution, simulate_statevector


class TestAnalysis:
    def test_vqe_segmentation(self):
        circuit = vqe_circuit(4, 2, seed=1, measure=False)
        analysis = analyse_subset(circuit, [0])
        kinds = [s.kind for s in analysis.segments]
        # local Ry, entangling layer (+context), local Ry, entangling, local Ry(+ trailing context)
        assert kinds.count("local") >= 3
        assert sum(1 for s in analysis.segments if s.kind == "checked" and s.touches_subset([0])) == 2
        assert analysis.num_checked_layers >= 2

    def test_cz_layers_are_checkable(self):
        qc = QuantumCircuit(3)
        qc.cz(0, 1).cz(1, 2)
        analysis = analyse_subset(qc, [0])
        assert all(s.kind == "checked" for s in analysis.segments)

    def test_cx_target_on_subset_is_unchecked(self):
        qc = QuantumCircuit(2)
        qc.cx(1, 0)  # target on subset qubit 0: X-type action, not Z-checkable
        analysis = analyse_subset(qc, [0])
        assert analysis.segments[0].kind == "unchecked"

    def test_validation(self):
        qc = QuantumCircuit(2)
        with pytest.raises(ValueError):
            analyse_subset(qc, [0, 0])
        with pytest.raises(ValueError):
            analyse_subset(qc, [5])

    def test_default_subsets(self):
        assert default_subsets([0, 1, 2], 1) == [[0], [1], [2]]
        assert default_subsets([0, 1, 2, 3], 2) == [[0, 1], [2, 3]]
        with pytest.raises(ValueError):
            default_subsets([0], 0)


class TestOptimizations:
    def test_false_dependency_removal_qpe_pattern(self):
        # Controlled-phase gates that commute to the end and act outside the
        # subset must be removed (the paper's Fig. 5(c) -> (d) step).
        qc = QuantumCircuit(4)
        qc.cp(0.3, 0, 3)
        qc.cp(0.5, 1, 3)
        qc.cp(0.7, 2, 3)
        pruned = false_dependency_removal(qc, [2])
        assert pruned.count_ops().get("cp", 0) == 1
        assert pruned.data[0].qubits == (2, 3)

    def test_false_dependency_removal_keeps_needed_gates(self):
        qc = QuantumCircuit(3)
        qc.h(1)
        qc.cx(1, 0)  # affects the subset directly
        qc.cx(1, 2)
        pruned = false_dependency_removal(qc, [0])
        names = [(inst.name, inst.qubits) for inst in pruned.data]
        assert ("cx", (1, 0)) in names
        assert ("h", (1,)) in names
        assert ("cx", (1, 2)) not in names

    def test_false_dependency_removal_plain_cone(self):
        qc = QuantumCircuit(3)
        qc.h(2).cx(2, 1)
        pruned = false_dependency_removal(qc, [0])
        assert len(pruned.data) == 0

    def test_extract_leading_local_gates(self):
        qc = QuantumCircuit(2)
        qc.ry(0.3, 0).h(1).cz(0, 1).ry(0.4, 0)
        local, remainder = extract_leading_local_gates(qc, [0])
        assert [g.name for g in local] == ["ry"]
        assert remainder.count_ops()["cz"] == 1
        assert remainder.count_ops()["ry"] == 1

    def test_extract_trailing_local_gates(self):
        qc = QuantumCircuit(2)
        qc.cz(0, 1).h(0).rz(0.2, 0)
        remainder, trailing = extract_trailing_local_gates(qc, [0])
        assert [g.name for g in trailing] == ["h", "rz"]
        assert remainder.count_ops() == {"cz": 1}

    def test_apply_local_unitary(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        rho = np.array([[1, 0], [0, 0]], dtype=complex)
        flipped = apply_local_unitary(rho, qc.data, [0])
        assert flipped[1, 1] == pytest.approx(1.0)

    def test_conjugate_observables_through_hadamard(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        mapping = conjugate_observables_through(["Z"], qc.data, [0])
        assert set(mapping["Z"]) == {"X"}
        assert mapping["Z"]["X"] == pytest.approx(1.0)

    def test_conjugate_observables_no_gates(self):
        assert conjugate_observables_through(["Z"], [], [0]) == {"Z": {"Z": 1.0}}


class TestVirtualPauliCheck:
    def test_mitigates_readout_error_on_z(self):
        segment = QuantumCircuit(1)
        segment.id(0)
        noise = NoiseModel.depolarizing(readout=0.25)
        rho_one = np.array([[0, 0], [0, 1]], dtype=complex)
        checked = virtual_pauli_check(segment, [0], rho_one, ["Z"], noise, observables=["Z"])
        unchecked = virtual_pauli_check(segment, [0], rho_one, [], noise, observables=["Z"])
        assert checked.expectations["Z"] == pytest.approx(-1.0, abs=0.02)
        assert unchecked.expectations["Z"] == pytest.approx(-0.5, abs=0.02)

    def test_mitigates_bit_flip_gate_errors(self):
        from repro.noise import bit_flip_channel

        segment = QuantumCircuit(2)
        segment.cz(0, 1)
        noise = NoiseModel()
        noise.set_default_2q_error(bit_flip_channel(0.2).tensor(bit_flip_channel(0.0)))
        rho_zero = np.array([[1, 0], [0, 0]], dtype=complex)
        checked = virtual_pauli_check(segment, [0], rho_zero, ["Z"], noise, observables=["Z"])
        unchecked = virtual_pauli_check(segment, [0], rho_zero, [], noise, observables=["Z"])
        assert checked.expectations["Z"] == pytest.approx(1.0, abs=0.02)
        assert unchecked.expectations["Z"] < 0.7

    def test_noiseless_check_is_exact(self):
        segment = QuantumCircuit(2)
        segment.h(1).cz(0, 1)
        rho_plus = np.array([[0.5, 0.5], [0.5, 0.5]], dtype=complex)
        result = virtual_pauli_check(segment, [0], rho_plus, ["Z"], NoiseModel.ideal())
        # Ideal output: qubit 0 becomes maximally mixed after entangling.
        assert np.allclose(result.density_matrix, np.eye(2) / 2, atol=1e-6)

    def test_circuit_count_bounded_by_paper_limit(self):
        segment = QuantumCircuit(2)
        segment.cz(0, 1)
        noise = NoiseModel.depolarizing(p2=0.01)
        result = virtual_pauli_check(
            segment, [0], np.eye(2) / 2, ["Z"], noise, observables=all_pauli_strings(1)
        )
        # Paper Sec. IV-B: at most 30 circuits for all three bases; the
        # reduced preparation basis needs 4 preps x 3 bases = 12 here.
        assert result.num_circuits <= 30

    def test_full_basis_option_costs_more(self):
        segment = QuantumCircuit(2)
        segment.cz(0, 1)
        noise = NoiseModel.depolarizing(p2=0.01)
        reduced = virtual_pauli_check(segment, [0], np.eye(2) / 2, ["Z"], noise, observables=["Z"])
        full = virtual_pauli_check(
            segment,
            [0],
            np.eye(2) / 2,
            ["Z"],
            noise,
            observables=["Z"],
            options=QSPCOptions(state_preparation_reduction=False, restrict_measurement_bases=False),
        )
        assert full.num_circuits > reduced.num_circuits

    def test_subset_size_two_checks(self):
        segment = QuantumCircuit(3)
        segment.cz(0, 1).cz(1, 2)
        noise = NoiseModel.depolarizing(p2=0.02, readout=0.1)
        rho = np.zeros((4, 4), dtype=complex)
        rho[0, 0] = 1.0
        result = virtual_pauli_check(
            segment, [0, 1], rho, ["ZI", "IZ"], noise, observables=["ZI", "IZ", "ZZ"]
        )
        assert result.expectations["ZI"] == pytest.approx(1.0, abs=0.05)
        assert result.expectations["IZ"] == pytest.approx(1.0, abs=0.05)
        assert result.z_distribution[0] == pytest.approx(1.0, abs=0.05)

    def test_input_validation(self):
        segment = QuantumCircuit(1)
        with pytest.raises(ValueError):
            virtual_pauli_check(segment, [0], np.eye(4) / 4, ["Z"], NoiseModel.ideal())
        with pytest.raises(ValueError):
            virtual_pauli_check(segment, [0], np.eye(2) / 2, ["ZZ"], NoiseModel.ideal())
        with pytest.raises(ValueError):
            virtual_pauli_check(segment, [0], np.eye(2) / 2, ["Z"], NoiseModel.ideal(), observables=["ZZ"])


class TestQuTracerDriver:
    def setup_method(self):
        self.noise = NoiseModel.depolarizing(p1=0.002, p2=0.02, readout=0.08)

    def test_improves_iqft_fidelity(self):
        circuit = iqft_benchmark_circuit(3, value=5)
        tracer = QuTracer(noise_model=self.noise, shots=8000, shots_per_circuit=None, seed=1)
        result = tracer.run(circuit, subset_size=1)
        assert result.mitigated_fidelity > result.unmitigated_fidelity
        assert result.mitigated_fidelity > 0.7

    def test_improves_vqe_fidelity(self):
        circuit = vqe_circuit(5, 1, seed=2)
        tracer = QuTracer(noise_model=self.noise, shots=8000, shots_per_circuit=None, seed=1)
        result = tracer.run(circuit, subset_size=1)
        assert result.mitigated_fidelity >= result.unmitigated_fidelity

    def test_local_distributions_are_accurate(self):
        circuit = vqe_circuit(5, 1, seed=2)
        stripped = circuit.remove_final_measurements()
        state = simulate_statevector(stripped)
        tracer = QuTracer(noise_model=self.noise, shots=4000, shots_per_circuit=None, seed=1)
        for qubit in range(3):
            result = tracer.trace_subset(stripped, [qubit])
            ideal_local = state.probability_distribution([qubit])
            assert hellinger_fidelity(result.local_distribution, ideal_local) > 0.98

    def test_overhead_accounting(self):
        circuit = vqe_circuit(4, 1, seed=0)
        tracer = QuTracer(noise_model=self.noise, shots=4000, shots_per_circuit=400, seed=1)
        result = tracer.run(circuit, subset_size=1)
        assert result.num_circuits > 1
        assert result.normalized_shots > 1.0
        assert result.average_copy_two_qubit_gates < circuit.num_two_qubit_gates()

    def test_checked_layers_parameter(self):
        circuit = vqe_circuit(4, 2, seed=0)
        tracer = QuTracer(noise_model=self.noise, shots=4000, shots_per_circuit=None, seed=1)
        all_layers = tracer.run(circuit, subset_size=1)
        none_checked = tracer.run(circuit, subset_size=1, checked_layers=0)
        assert all_layers.subset_results[0].num_checked_layers == 2
        assert none_checked.subset_results[0].num_checked_layers == 0
        assert all_layers.mitigated_fidelity >= none_checked.mitigated_fidelity - 0.05

    def test_subset_size_two(self):
        circuit = vqe_circuit(4, 1, seed=0)
        tracer = QuTracer(noise_model=self.noise, shots=4000, shots_per_circuit=None, seed=1)
        result = tracer.run(circuit, subset_size=2)
        assert len(result.subset_results) == 2
        assert result.mitigated_fidelity >= result.unmitigated_fidelity - 0.05

    def test_device_mode_remaps_to_good_qubits(self):
        device = fake_hanoi()
        circuit = vqe_circuit(4, 1, seed=0)
        tracer = QuTracer(device=device, shots=4000, shots_per_circuit=None, seed=1)
        result = tracer.run(circuit, subset_size=1)
        assert result.mitigated_fidelity >= result.unmitigated_fidelity - 0.02

    def test_requires_noise_or_device(self):
        with pytest.raises(ValueError):
            QuTracer()

    def test_subset_must_be_measured(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).measure_subset([0])
        tracer = QuTracer(noise_model=self.noise, shots=1000)
        with pytest.raises(ValueError):
            tracer.run(circuit, subsets=[[2]])

    def test_options_dataclass_defaults(self):
        options = QuTracerOptions()
        assert options.enable_checks and options.false_dependency_removal
