"""Tests for noise channels, readout errors, noise models and devices."""

import numpy as np
import pytest

from repro.circuits import Instruction, QuantumCircuit, standard_gate
from repro.noise import (
    KrausChannel,
    NoiseModel,
    ReadoutError,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    depolarizing_from_average_infidelity,
    fake_cusco,
    fake_device,
    fake_hanoi,
    fake_kyoto,
    fake_mumbai,
    falcon_27_coupling,
    heavy_hex_coupling,
    identity_channel,
    joint_confusion_matrix,
    linear_coupling,
    pauli_channel,
    phase_damping_channel,
    phase_flip_channel,
    thermal_relaxation_channel,
)


def _maximally_mixed(n=1):
    return np.eye(2**n) / 2**n


class TestKrausChannel:
    def test_rejects_non_trace_preserving(self):
        with pytest.raises(ValueError):
            KrausChannel([np.array([[0.5, 0], [0, 0.5]])])

    def test_identity_channel(self):
        channel = identity_channel(1)
        assert channel.is_identity()
        rho = np.array([[0.7, 0.2], [0.2, 0.3]], dtype=complex)
        assert np.allclose(channel.apply_to_density_matrix(rho), rho)

    def test_depolarizing_moves_towards_mixed(self):
        channel = depolarizing_channel(1.0, 1)
        rho = np.array([[1, 0], [0, 0]], dtype=complex)
        assert np.allclose(channel.apply_to_density_matrix(rho), _maximally_mixed())

    def test_depolarizing_partial(self):
        p = 0.2
        channel = depolarizing_channel(p, 1)
        rho = np.array([[1, 0], [0, 0]], dtype=complex)
        expected = (1 - p) * rho + p * _maximally_mixed()
        assert np.allclose(channel.apply_to_density_matrix(rho), expected)

    def test_depolarizing_two_qubit_dimensions(self):
        channel = depolarizing_channel(0.1, 2)
        assert channel.num_qubits == 2
        assert len(channel.operators) == 16

    def test_bit_flip_channel(self):
        channel = bit_flip_channel(0.25)
        rho = np.array([[1, 0], [0, 0]], dtype=complex)
        out = channel.apply_to_density_matrix(rho)
        assert out[1, 1] == pytest.approx(0.25)

    def test_phase_flip_kills_coherence(self):
        channel = phase_flip_channel(0.5)
        rho = np.array([[0.5, 0.5], [0.5, 0.5]], dtype=complex)
        out = channel.apply_to_density_matrix(rho)
        assert abs(out[0, 1]) == pytest.approx(0.0)

    def test_pauli_channel_probability_validation(self):
        with pytest.raises(ValueError):
            pauli_channel({"X": 0.7, "Z": 0.5})
        with pytest.raises(ValueError):
            pauli_channel({"XY": 0.1}, num_qubits=1)
        with pytest.raises(ValueError):
            pauli_channel({"X": -0.1})

    def test_amplitude_damping_decays_excited_state(self):
        channel = amplitude_damping_channel(0.3)
        rho = np.array([[0, 0], [0, 1]], dtype=complex)
        out = channel.apply_to_density_matrix(rho)
        assert out[0, 0] == pytest.approx(0.3)
        assert out[1, 1] == pytest.approx(0.7)

    def test_phase_damping_preserves_populations(self):
        channel = phase_damping_channel(0.4)
        rho = np.array([[0.6, 0.3], [0.3, 0.4]], dtype=complex)
        out = channel.apply_to_density_matrix(rho)
        assert out[0, 0] == pytest.approx(0.6)
        assert abs(out[0, 1]) < 0.3

    def test_thermal_relaxation_limits(self):
        channel = thermal_relaxation_channel(t1=100.0, t2=150.0, gate_time=50.0)
        rho = np.array([[0, 0], [0, 1]], dtype=complex)
        out = channel.apply_to_density_matrix(rho)
        assert out[0, 0] == pytest.approx(1 - np.exp(-0.5), rel=1e-6)

    def test_thermal_relaxation_zero_time_is_identity(self):
        assert thermal_relaxation_channel(100.0, 100.0, 0.0).is_identity()

    def test_thermal_relaxation_validation(self):
        with pytest.raises(ValueError):
            thermal_relaxation_channel(-1, 10, 1)
        with pytest.raises(ValueError):
            thermal_relaxation_channel(10, 30, 1)  # t2 > 2 t1

    def test_compose_and_reduce(self):
        a = depolarizing_channel(0.1, 1)
        b = amplitude_damping_channel(0.2)
        composed = a.compose(b)
        reduced = composed.reduced()
        assert len(reduced.operators) <= 4
        rho = np.array([[0.8, 0.1], [0.1, 0.2]], dtype=complex)
        assert np.allclose(
            composed.apply_to_density_matrix(rho), reduced.apply_to_density_matrix(rho)
        )

    def test_tensor_acts_on_correct_qubits(self):
        # bit flip on low qubit, identity on high qubit
        channel = bit_flip_channel(1.0).tensor(identity_channel(1))
        rho = np.zeros((4, 4), dtype=complex)
        rho[0, 0] = 1.0
        out = channel.apply_to_density_matrix(rho)
        assert out[0b01, 0b01] == pytest.approx(1.0)

    def test_average_gate_fidelity(self):
        assert identity_channel().average_gate_fidelity() == pytest.approx(1.0)
        assert depolarizing_channel(1.0, 1).average_gate_fidelity() == pytest.approx(0.5)

    def test_channel_width_checks(self):
        with pytest.raises(ValueError):
            KrausChannel([np.eye(3)])
        with pytest.raises(ValueError):
            depolarizing_channel(1.5, 1)


class TestReadoutError:
    def test_confusion_matrix(self):
        error = ReadoutError(0.1, 0.2)
        matrix = error.confusion_matrix
        assert matrix[1, 0] == pytest.approx(0.1)
        assert matrix[0, 1] == pytest.approx(0.2)
        assert np.allclose(matrix.sum(axis=0), [1, 1])

    def test_symmetric_default(self):
        error = ReadoutError(0.05)
        assert error.prob_0_given_1 == pytest.approx(0.05)
        assert error.average_error == pytest.approx(0.05)

    def test_flip_probability(self):
        error = ReadoutError(0.1, 0.3)
        assert error.flip_probability(0) == pytest.approx(0.1)
        assert error.flip_probability(1) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReadoutError(1.2)

    def test_sampling_statistics(self, make_rng):
        error = ReadoutError(0.3, 0.0)
        rng = make_rng(0)
        flips = sum(error.sample(0, rng) for _ in range(10000))
        # Hoeffding: P(|mean - 0.3| >= 0.02) <= 2 exp(-2 * 10000 * 0.02^2)
        # ~= 6.7e-4 under re-seeding; the pinned seed makes it deterministic.
        assert flips / 10000 == pytest.approx(0.3, abs=0.02)


class TestNoiseModel:
    def test_ideal_model(self):
        model = NoiseModel.ideal()
        assert model.is_ideal
        inst = Instruction(standard_gate("cx"), (0, 1))
        assert model.channels_for(inst) == []
        assert model.readout_error(0) is None

    def test_depolarizing_constructor(self):
        model = NoiseModel.depolarizing(p1=0.001, p2=0.01, readout=0.05)
        one_q = model.channels_for(Instruction(standard_gate("h"), (0,)))
        two_q = model.channels_for(Instruction(standard_gate("cz"), (0, 1)))
        assert len(one_q) == 1 and one_q[0][1] == (0,)
        assert len(two_q) == 1 and two_q[0][1] == (0, 1)
        assert model.readout_error(3).average_error == pytest.approx(0.05)

    def test_per_qubit_readout_mapping(self):
        model = NoiseModel.depolarizing(readout={0: 0.1, 2: 0.3})
        assert model.readout_error(0).average_error == pytest.approx(0.1)
        assert model.readout_error(1) is None
        assert model.readout_error(2).average_error == pytest.approx(0.3)

    def test_per_qubit_and_per_pair_overrides(self):
        model = NoiseModel()
        model.set_default_1q_error(depolarizing_channel(0.001, 1))
        model.set_qubit_error(2, depolarizing_channel(0.05, 1))
        model.set_pair_error((0, 1), depolarizing_channel(0.1, 2))
        default = model.channels_for(Instruction(standard_gate("h"), (0,)))
        override = model.channels_for(Instruction(standard_gate("h"), (2,)))
        assert default[0][0].name != override[0][0].name or default[0][0] is not override[0][0]
        pair = model.channels_for(Instruction(standard_gate("cx"), (1, 0)))
        assert pair[0][1] == (1, 0)

    def test_gate_name_override(self):
        model = NoiseModel.depolarizing(p1=0.01)
        model.set_gate_error("x", depolarizing_channel(0.2, 1))
        x_channels = model.channels_for(Instruction(standard_gate("x"), (0,)))
        assert "0.2" in x_channels[0][0].name

    def test_noise_free_gate_names(self):
        model = NoiseModel.depolarizing(p1=0.01)
        model.add_noise_free_gate("h")
        assert model.channels_for(Instruction(standard_gate("h"), (0,))) == []
        assert model.channels_for(Instruction(standard_gate("x"), (0,))) != []

    def test_with_perfect_qubits(self):
        model = NoiseModel.depolarizing(p1=0.01, p2=0.05, readout=0.1)
        perfect = model.with_perfect_qubits([3])
        assert perfect.channels_for(Instruction(standard_gate("cx"), (3, 1))) == []
        assert perfect.channels_for(Instruction(standard_gate("cx"), (0, 1))) != []
        assert perfect.readout_error(3) is None
        assert perfect.readout_error(0) is not None
        # original untouched
        assert model.channels_for(Instruction(standard_gate("cx"), (3, 1))) != []

    def test_add_noise_free_qubits_bumps_version(self):
        model = NoiseModel.depolarizing(p1=0.01, readout=0.1)
        version = model.version
        model.add_noise_free_qubits(2)
        assert model.version > version
        assert model.readout_error(2) is None
        version = model.version
        model.add_noise_free_qubits([0, 1])
        assert model.version > version
        assert model.noise_free_qubits == frozenset({0, 1, 2})

    def test_noise_free_sets_are_read_only_views(self):
        model = NoiseModel.depolarizing(p1=0.01)
        with pytest.raises(AttributeError):
            model.noise_free_qubits.add(0)
        with pytest.raises(AttributeError):
            model.noise_free_gate_names.add("h")

    def test_without_gate_and_readout_errors(self):
        model = NoiseModel.depolarizing(p1=0.01, p2=0.05, readout=0.1)
        assert model.without_gate_errors().has_gate_errors is False
        assert model.without_readout_errors().readout_error(0) is None

    def test_with_readout_scaled(self):
        model = NoiseModel.depolarizing(readout=0.1)
        scaled = model.with_readout_scaled(2.0)
        assert scaled.readout_error(0).average_error == pytest.approx(0.2)

    def test_three_qubit_gate_noise_decomposition(self):
        model = NoiseModel.depolarizing(p1=0.001, p2=0.01)
        channels = model.channels_for(Instruction(standard_gate("ccx"), (0, 1, 2)))
        widths = sorted(len(q) for _, q in channels)
        assert widths == [1, 1, 1, 2, 2]

    def test_1q_channel_width_validation(self):
        model = NoiseModel()
        with pytest.raises(ValueError):
            model.set_default_1q_error(depolarizing_channel(0.1, 2))
        with pytest.raises(ValueError):
            model.set_pair_error((0,), depolarizing_channel(0.1, 1))


class TestDeviceModels:
    def test_coupling_maps(self):
        assert len(linear_coupling(5)) == 4
        falcon = falcon_27_coupling()
        assert max(max(e) for e in falcon) == 26
        eagle = heavy_hex_coupling()
        assert max(max(e) for e in eagle) + 1 == 127

    def test_fake_mumbai_matches_paper_medians(self):
        device = fake_mumbai()
        assert device.num_qubits == 27
        assert device.median_cx_error() == pytest.approx(7.611e-3, rel=0.5)
        assert device.median_readout_error() == pytest.approx(1.81e-2, rel=0.6)
        assert device.median_t1() == pytest.approx(125.94e3, rel=0.5)

    def test_devices_are_deterministic(self):
        a = fake_hanoi()
        b = fake_hanoi()
        assert a.qubit_calibrations[5] == b.qubit_calibrations[5]

    def test_eagle_devices_have_127_qubits(self):
        assert fake_kyoto().num_qubits == 127
        assert fake_cusco().num_qubits == 127

    def test_unknown_device_raises(self):
        with pytest.raises(ValueError):
            fake_device("osaka")

    def test_noise_model_has_pair_and_qubit_channels(self):
        device = fake_hanoi()
        model = device.noise_model()
        edge = device.coupling_edges[0]
        channels = model.channels_for(Instruction(standard_gate("cx"), edge))
        assert channels and channels[0][0].num_qubits == 2
        readout = model.readout_error(0)
        assert readout is not None and readout.average_error > 0

    def test_best_qubits_ranking(self):
        device = fake_hanoi()
        best = device.best_qubits(5)
        assert len(best) == 5
        qualities = [device.qubit_calibrations[q].quality() for q in best]
        assert qualities == sorted(qualities)

    def test_neighbors(self):
        device = fake_hanoi()
        assert 1 in device.neighbors(0)

    def test_depolarizing_from_average_infidelity(self):
        assert depolarizing_from_average_infidelity(0.01, 1) == pytest.approx(0.02)
        assert depolarizing_from_average_infidelity(0.03, 2) == pytest.approx(0.04)
        with pytest.raises(ValueError):
            depolarizing_from_average_infidelity(-0.1, 1)


class TestJointConfusion:
    def test_single_error_equals_confusion_matrix(self):
        error = ReadoutError(0.1, 0.3)
        assert np.allclose(joint_confusion_matrix([error]), error.confusion_matrix)

    def test_pair_bit_convention(self):
        # Bit 0 of the joint index corresponds to errors[0] (little-endian,
        # matching ProbabilityDistribution outcomes).
        a = ReadoutError(0.1, 0.0)  # only flips 0 -> 1
        b = ReadoutError(0.0, 0.0)  # perfect
        joint = joint_confusion_matrix([a, b])
        # Prepared |00> (column 0): P(measure 01) = flip of bit 0 = 0.1.
        assert joint[0b01, 0b00] == pytest.approx(0.1)
        assert joint[0b10, 0b00] == pytest.approx(0.0)
        # Prepared |10> (qubit 1 in |1>, column 2): bit 1 never flips back.
        assert joint[0b10, 0b10] == pytest.approx(0.9)
        assert joint[0b11, 0b10] == pytest.approx(0.1)

    def test_columns_are_distributions(self):
        joint = joint_confusion_matrix([ReadoutError(0.05, 0.2), ReadoutError(0.12, 0.07)])
        assert joint.shape == (4, 4)
        assert np.allclose(joint.sum(axis=0), 1.0)

    def test_tensor_method_delegates(self):
        a, b = ReadoutError(0.1, 0.2), ReadoutError(0.03, 0.04)
        assert np.allclose(a.tensor(b), joint_confusion_matrix([a, b]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            joint_confusion_matrix([])


class TestDeviceSummaryCompare:
    def test_summary_medians_match_scalar_helpers(self):
        device = fake_mumbai()
        summary = device.summary()
        assert summary["median_cx_error"] == pytest.approx(device.median_cx_error())
        assert summary["median_readout_error"] == pytest.approx(device.median_readout_error())
        assert summary["median_t1"] == pytest.approx(device.median_t1())
        # Channel infidelities include the relaxation contribution, so they
        # exceed the raw calibration scalars.
        assert summary["median_2q_channel_infidelity"] > summary["median_cx_error"]
        assert summary["median_1q_channel_infidelity"] > summary["median_sq_error"]

    def test_summary_subset_restriction(self):
        device = fake_mumbai()
        qubits = [0, 1, 2]
        pairs = [(0, 1), (1, 2)]
        summary = device.summary(qubits=qubits, pairs=pairs)
        expected = np.median([device.qubit_calibrations[q].readout_error for q in qubits])
        assert summary["median_readout_error"] == pytest.approx(expected)
        expected_cx = np.median([device.edge_calibrations[p].cx_error for p in pairs])
        assert summary["median_cx_error"] == pytest.approx(expected_cx)
        with pytest.raises(ValueError):
            device.summary(qubits=[999])
        with pytest.raises(ValueError):
            device.summary(pairs=[(0, 26)])

    def test_compare_reports_relative_errors(self):
        device = fake_mumbai()
        report = device.compare(device)
        for entry in report.values():
            assert entry["relative_error"] == pytest.approx(0.0, abs=1e-12)
            assert entry["self"] == entry["other"]
        other = fake_hanoi()
        report = device.compare(other)
        for name, entry in report.items():
            expected = abs(entry["self"] - entry["other"]) / abs(entry["other"])
            assert entry["relative_error"] == pytest.approx(expected)
        with pytest.raises(ValueError):
            device.compare(other, parameters=["not_a_parameter"])


class TestCouplingInvariants:
    @staticmethod
    def _degree_and_connectivity(edges):
        import networkx as nx

        graph = nx.Graph(edges)
        return max(dict(graph.degree).values()), nx.is_connected(graph)

    def test_falcon_27_graph_invariants(self):
        edges = falcon_27_coupling()
        assert len(edges) == 28
        assert len({tuple(sorted(e)) for e in edges}) == 28  # no duplicates
        assert {q for e in edges for q in e} == set(range(27))
        degree, connected = self._degree_and_connectivity(edges)
        assert degree <= 3 and connected

    def test_heavy_hex_edge_count_formula(self):
        # rows * (row_length - 1) chain edges + 2 per bridge qubit.
        for rows, length, connectors in ((7, 13, 6), (3, 5, 2), (2, 4, 3)):
            edges = heavy_hex_coupling(rows, length, connectors)
            expected_edges = rows * (length - 1) + 2 * connectors * (rows - 1)
            assert len(edges) == expected_edges
            num_qubits = rows * length + connectors * (rows - 1)
            assert {q for e in edges for q in e} == set(range(num_qubits))
            degree, connected = self._degree_and_connectivity(edges)
            assert degree <= 3 and connected

    def test_fake_device_name_to_layout_table(self):
        # Falcon-era names map to the 27-qubit layout, Eagle-era to 127;
        # ibm_/ibmq_/fake_ prefixes and case are all accepted.
        expectations = {
            "mumbai": 27, "hanoi": 27, "kyoto": 127, "cusco": 127,
        }
        for name, num_qubits in expectations.items():
            for prefix in ("", "ibm_", "ibmq_", "fake_"):
                device = fake_device(f"{prefix}{name}")
                assert device.num_qubits == num_qubits
                assert device.name == f"fake_{name}"
        falcon_edges = {tuple(sorted(e)) for e in falcon_27_coupling()}
        assert {tuple(sorted(e)) for e in fake_device("Mumbai").coupling_edges} == falcon_edges
