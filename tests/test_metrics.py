"""Unit and integration tests for the unified metrics subsystem.

Four layers, matching the package:

* the registry primitives (counter/gauge/histogram families, labels,
  P² streaming quantiles, collectors);
* exposition (Prometheus text v0.0.4 and the JSON document);
* JSONL snapshot persistence and the ``repro.metrics`` CLI round-trip
  (summarize / diff exit codes, the regression sentinel, watch);
* engine integration — the load-bearing invariant is that ``EngineStats``
  and the registry are **one source of truth** (the dataclass is a view
  over registry series), pinned by a mixed hit/miss/fault batch; plus
  scrape-while-executing thread safety and the dark ``metrics=False`` arm.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import threading

import pytest

from repro.circuits import QuantumCircuit
from repro.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    METRICS_FORMAT,
    METRICS_FORMAT_VERSION,
    MetricsRegistry,
    MetricsStore,
    get_global_registry,
    load_snapshot,
    to_json,
    to_prometheus,
)
from repro.metrics.cli import main as metrics_cli
from repro.metrics.registry import _P2Quantile
from repro.mitigation import build_subset_circuit
from repro.noise import NoiseModel
from repro.simulators import (
    ExecutionEngine,
    FailedResult,
    FaultInjector,
    RetryPolicy,
    get_default_engine,
)
from repro.simulators.engine import _STAT_METRICS
from repro.simulators.parallel import CompactTask, ParallelSharder
from repro.tracing import TraceRecorder

NOISE = NoiseModel.depolarizing(p1=0.005, p2=0.02, readout=0.02)
FAST_RETRY = RetryPolicy(base_delay=0.0, jitter=0.0)


def _workload(repeats: int = 3) -> list[QuantumCircuit]:
    base = QuantumCircuit(6, 6)
    for q in range(6):
        base.h(q)
    for q in range(5):
        base.cx(q, q + 1)
    base.measure_all()
    unique = [build_subset_circuit(base, subset) for subset in ([0, 1], [2, 3], [4, 5])]
    return [circuit for circuit in unique for _ in range(repeats)]


# ----------------------------------------------------------------------
# Registry primitives
# ----------------------------------------------------------------------


class TestP2Quantile:
    def test_small_sample_is_exact(self):
        estimator = _P2Quantile(0.5)
        assert estimator.value is None
        for x in (5.0, 1.0, 3.0):
            estimator.observe(x)
        assert estimator.value == 3.0  # exact median below 5 observations

    def test_streaming_accuracy_on_lognormal(self):
        import numpy as np

        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-6.0, sigma=1.0, size=5000)
        for p in (0.5, 0.95, 0.99):
            estimator = _P2Quantile(p)
            for x in samples:
                estimator.observe(float(x))
            exact = float(np.quantile(samples, p))
            assert abs(estimator.value - exact) / exact < 0.05, (p, estimator.value, exact)


class TestRegistry:
    def test_counter_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "help text")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_counter_set_is_the_bridge_write(self):
        registry = MetricsRegistry()
        counter = registry.counter("bridged_total")
        counter.set(41)
        counter.inc()
        assert counter.value == 42
        assert isinstance(counter.value, int)  # ints stay ints for stats reprs

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_registration_is_idempotent_and_kind_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total")
        assert registry.counter("x_total") is first
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("x_total")

    def test_labels_must_match_labelnames(self):
        registry = MetricsRegistry()
        family = registry.counter("by_kind_total", labelnames=("kind",))
        family.labels(kind="a").inc()
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(wrong="a")
        with pytest.raises(ValueError, match="takes labels"):
            family.labels()

    def test_label_values_are_stringified_and_series_cached(self):
        registry = MetricsRegistry()
        family = registry.counter("by_code_total", labelnames=("code",))
        series = family.labels(code=404)
        assert family.labels(code="404") is series
        assert series.labels == {"code": "404"}

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        ((_, snap),) = hist.series_snapshots()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)
        assert snap["min"] == 0.05 and snap["max"] == 50.0
        assert snap["buckets"] == [[0.1, 1], [1.0, 3], [10.0, 4]]  # +Inf implied by count
        assert snap["quantiles"]["0.5"] == 0.5

    def test_default_latency_buckets_shape(self):
        assert len(DEFAULT_LATENCY_BUCKETS) == 24
        assert DEFAULT_LATENCY_BUCKETS[0] == 1e-6
        assert DEFAULT_LATENCY_BUCKETS[-1] == 50.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)

    def test_base_labels_stamped_on_every_series(self):
        registry = MetricsRegistry(base_labels={"tenant": "acme"})
        family = registry.counter("t_total", labelnames=("kind",))
        family.labels(kind="a").inc()
        ((labels, _),) = family.series_snapshots()
        assert labels == {"tenant": "acme", "kind": "a"}
        text = to_prometheus(registry)
        assert 'tenant="acme"' in text

    def test_collectors_refresh_and_broken_collector_is_counted(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("bridged")
        source = {"value": 0}
        registry.add_collector(lambda: gauge.set(source["value"]))

        def broken():
            raise RuntimeError("scrape must survive this")

        registry.add_collector(broken)
        source["value"] = 7
        registry.collect()
        assert gauge.value == 7
        assert registry.collector_errors == 1
        registry.remove_collector(broken)
        registry.collect()
        assert registry.collector_errors == 1

    def test_info_gauge_clear_idiom(self):
        registry = MetricsRegistry()
        info = registry.gauge("state_info", labelnames=("reason",))
        info.labels(reason="pool down").set(1)
        info.clear()
        info.labels(reason="fork blocked").set(1)
        ((labels, payload),) = info.series_snapshots()
        assert labels == {"reason": "fork blocked"} and payload["value"] == 1

    def test_global_registry_is_a_singleton(self):
        assert get_global_registry() is get_global_registry()


# ----------------------------------------------------------------------
# Exposition
# ----------------------------------------------------------------------


class TestExport:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "Requests.").inc(3)
        registry.gauge("temp", "Temperature.").set(1.5)
        hist = registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        return registry

    def test_prometheus_text_format(self):
        text = to_prometheus(self._registry())
        lines = text.splitlines()
        assert "# HELP req_total Requests." in lines
        assert "# TYPE req_total counter" in lines
        assert "req_total 3" in lines
        assert "# TYPE lat_seconds histogram" in lines
        assert 'lat_seconds_bucket{le="0.1"} 1' in lines
        assert 'lat_seconds_bucket{le="1"} 1' in lines
        assert 'lat_seconds_bucket{le="+Inf"} 2' in lines
        assert "lat_seconds_sum 5.05" in lines
        assert "lat_seconds_count 2" in lines
        assert text.endswith("\n")

    def test_prometheus_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("esc_total", labelnames=("msg",)).labels(
            msg='say "hi"\nback\\slash'
        ).inc()
        text = to_prometheus(registry)
        assert r'msg="say \"hi\"\nback\\slash"' in text

    def test_json_document(self):
        document = to_json(self._registry(), snapshot_id="s1")
        assert document["format"] == METRICS_FORMAT
        assert document["version"] == METRICS_FORMAT_VERSION
        assert document["snapshot_id"] == "s1"
        by_name = {family["name"]: family for family in document["metrics"]}
        hist = by_name["lat_seconds"]["series"][0]
        assert hist["count"] == 2
        assert set(hist["quantiles"]) == {"0.5", "0.95", "0.99"}
        json.dumps(document)  # fully serializable


# ----------------------------------------------------------------------
# Snapshot store
# ----------------------------------------------------------------------


class TestSnapshotStore:
    def test_write_list_load_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("n_total").inc(5)
        store = MetricsStore(str(tmp_path))
        path = store.write(registry, snapshot_id="alpha")
        assert path == store.last_path and os.path.exists(path)
        assert store.list() == [path]
        header, families = load_snapshot(path)
        assert header["snapshot_id"] == "alpha"
        assert header["metrics"] == len(families) == 1
        assert families[0]["series"][0]["value"] == 5
        assert not [name for name in os.listdir(tmp_path) if name.endswith(".tmp")]

    def test_write_never_raises(self, tmp_path):
        store = MetricsStore(str(tmp_path))
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("")
        store.root = str(blocker / "sub")  # mkstemp hits NotADirectoryError
        assert store.write(MetricsRegistry()) is None
        assert store.write_errors == 1

    def test_load_is_strict_on_header(self, tmp_path):
        alien = tmp_path / "metrics-alien.jsonl"
        alien.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="not a repro-metrics file"):
            load_snapshot(str(alien))
        versioned = tmp_path / "metrics-v9.jsonl"
        versioned.write_text('{"format": "repro-metrics", "version": 99}\n')
        with pytest.raises(ValueError, match="unsupported metrics version"):
            load_snapshot(str(versioned))
        empty = tmp_path / "metrics-empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_snapshot(str(empty))


# ----------------------------------------------------------------------
# EngineStats <-> registry agreement (the single-source-of-truth invariant)
# ----------------------------------------------------------------------


def _stats_vs_registry(engine) -> list[tuple[str, float, float]]:
    """(field, stats value, registry value) for every bridged stat."""
    rows = []
    for field, (metric_name, _) in _STAT_METRICS.items():
        family = engine.metrics.get(metric_name)
        registry_value = family.value if family is not None else None
        rows.append((field, getattr(engine.stats, field), registry_value))
    return rows


class TestEngineStatsView:
    def test_agreement_after_mixed_hit_miss_fault_batch(self):
        """EngineStats and the registry can never drift — same storage.

        One batch with cache hits, dedup hits, misses, a retried transient
        fault and an isolated persistent failure; every numeric stat field
        must read identically from the dataclass and from its counter
        series, then again after a second (warm) batch.
        """
        circuits = _workload(repeats=3)  # 3 unique x 3
        with ExecutionEngine(retry_policy=FAST_RETRY) as engine:
            engine.install_fault_injector(FaultInjector(fail_tasks={0}, poison_tasks={1}))
            results = engine.execute_many(circuits, NOISE, shots=64, seed=11, on_error="isolate")
            assert any(isinstance(r, FailedResult) for r in results)
            assert engine.stats.requests == len(circuits)
            assert engine.stats.retries >= 1
            assert engine.stats.isolated_failures >= 1
            for field, stat, registry_value in _stats_vs_registry(engine):
                assert stat == registry_value, (field, stat, registry_value)

            engine.execute_many(circuits, NOISE, shots=64, seed=11, on_error="isolate")
            assert engine.stats.requests == 2 * len(circuits)
            for field, stat, registry_value in _stats_vs_registry(engine):
                assert stat == registry_value, (field, stat, registry_value)

    def test_reset_zeroes_both_views(self):
        with ExecutionEngine() as engine:
            engine.execute_many(_workload(), NOISE, shots=64, seed=3)
            assert engine.stats.requests > 0
            engine.stats.reset()
            for field, stat, registry_value in _stats_vs_registry(engine):
                assert stat == 0 == registry_value, field
            assert engine.stats.fallback_reason is None

    def test_stats_dataclass_api_is_preserved(self):
        with ExecutionEngine() as engine:
            engine.execute_many(_workload(repeats=2), NOISE, shots=64, seed=5)
            stats = engine.stats
            snapshot = stats.to_dict()
            assert snapshot["requests"] == stats.requests
            assert isinstance(stats.requests, int)
            assert 0.0 <= stats.hit_rate <= 1.0
            assert f"requests={stats.requests}" in repr(stats)
            assert {f.name for f in dataclasses.fields(stats)} >= set(_STAT_METRICS)

    def test_every_stat_field_has_a_metric(self):
        field_names = {
            f.name for f in dataclasses.fields(ExecutionEngine(metrics=False).stats)
        }
        assert field_names - {"fallback_reason"} == set(_STAT_METRICS)

    def test_dark_engine_has_plain_stats_and_no_registry(self):
        with ExecutionEngine(metrics=False) as engine:
            assert engine.metrics is None
            assert engine.metrics_enabled is False
            results = engine.execute_many(_workload(), NOISE, shots=64, seed=2)
            assert len(results) == 9
            assert engine.stats.requests == 9
            assert engine.stats.cache_misses == 3
            assert engine.stats.batch_dedup_hits == 6
            assert "_series" not in engine.stats.__dict__
        with pytest.raises(ValueError, match="metrics_dir requires metrics"):
            ExecutionEngine(metrics=False, metrics_dir="/tmp/never")

    def test_default_engine_publishes_to_global_registry(self):
        engine = get_default_engine()
        assert engine.metrics is get_global_registry()


# ----------------------------------------------------------------------
# Per-stage instrumentation
# ----------------------------------------------------------------------


class TestInstrumentation:
    def test_stage_and_execute_histograms_populate(self):
        circuits = _workload(repeats=3)
        with ExecutionEngine() as engine:
            engine.execute_many(circuits, NOISE, shots=64, seed=11)
            stage = engine.metrics.get("repro_engine_stage_seconds")
            by_stage = {labels["stage"]: snap for labels, snap in stage.series_snapshots()}
            assert set(by_stage) == {"prepare", "cache", "deliver"}
            assert by_stage["prepare"]["count"] == len(circuits)
            assert by_stage["deliver"]["count"] == len(circuits)
            assert by_stage["cache"]["count"] > 0
            for snap in by_stage.values():
                assert snap["sum"] >= 0
                assert all(v is not None and v >= 0 for v in snap["quantiles"].values())

            execute = engine.metrics.get("repro_engine_execute_seconds")
            by_method = {labels["method"]: snap for labels, snap in execute.series_snapshots()}
            assert by_method  # at least one backend method observed
            assert sum(snap["count"] for snap in by_method.values()) == engine.stats.executed

            tiers = engine.metrics.get("repro_engine_requests_by_tier_total")
            by_tier = {labels["tier"]: snap["value"] for labels, snap in tiers.series_snapshots()}
            assert by_tier.get("executed") == engine.stats.executed
            assert by_tier.get("batch-dedup") == engine.stats.batch_dedup_hits
            assert sum(by_tier.values()) == engine.stats.requests

    def test_fault_counters_labeled_by_error_class(self):
        with ExecutionEngine(retry_policy=FAST_RETRY) as engine:
            engine.install_fault_injector(FaultInjector(fail_tasks={0}, poison_tasks={1}))
            engine.execute_many(_workload(), NOISE, shots=64, seed=11, on_error="isolate")
            faults = engine.metrics.get("repro_engine_faults_total")
            samples = {
                (labels["kind"], labels["error"]): snap["value"]
                for labels, snap in faults.series_snapshots()
            }
            assert sum(v for (kind, _), v in samples.items() if kind == "retried") == (
                engine.stats.retries
            )
            assert sum(v for (kind, _), v in samples.items() if kind == "isolated") == (
                engine.stats.isolated_failures
            )
            assert all(error for (_, error) in samples)  # every sample names a class

    def test_cache_and_compilation_gauges_bridge_on_scrape(self, tmp_path):
        with ExecutionEngine(cache_dir=str(tmp_path / "cache")) as engine:
            engine.execute_many(_workload(), NOISE, shots=64, seed=11)
            engine.metrics.collect()  # runs the health collector
            events = engine.metrics.get("repro_result_cache_events_total")
            by_event = {
                labels["event"]: snap["value"] for labels, snap in events.series_snapshots()
            }
            cache_stats = engine.persistent_cache.stats()
            for event, value in by_event.items():
                assert cache_stats[event] == value, event
            approx = engine.metrics.get("repro_result_cache_approx_bytes")
            assert approx.value == cache_stats["approx_bytes"]

    def test_sharder_counters_and_fallback_info(self):
        registry = MetricsRegistry()
        circuit = _workload(repeats=1)[0].compact_qubits()[0]
        tasks = [
            CompactTask(
                circuit=circuit, noise=NOISE, method="density_matrix",
                shots=None, seed=index, max_trajectories=10, fusion=True,
            )
            for index in range(2)
        ]
        sharder = ParallelSharder(workers=1, metrics=registry)
        sharder.run(tasks)
        assert registry.get("repro_parallel_inprocess_total").value == 2
        assert registry.get("repro_parallel_dispatched_total").value == 0
        assert registry.get("repro_parallel_fallback_info").series_snapshots() == []
        sharder.fallback_reason = "pool creation failed: OSError: no /dev/shm"
        sharder.run(tasks[:1])
        ((labels, payload),) = registry.get(
            "repro_parallel_fallback_info"
        ).series_snapshots()
        assert labels["reason"].startswith("pool creation failed")
        assert payload["value"] == 1
        sharder.shutdown()

    def test_recorder_drop_counts_surface_in_stats_and_registry(self, tmp_path):
        recorder = TraceRecorder(keep=2)
        for index in range(5):
            with recorder.span(f"t{index}"):
                recorder.event("e")
        stats = recorder.stats()
        assert stats["traces"] == 5 and stats["retained"] == 2
        assert stats["dropped_traces"] == 3
        assert stats["dropped_events"] == 6  # 3 evicted traces x (event + span)
        assert stats["write_errors"] == 0

        with ExecutionEngine(trace_dir=str(tmp_path / "traces")) as engine:
            engine.tracer.keep = 1
            engine.execute_many(_workload(repeats=1), NOISE, shots=64, seed=1)
            engine.execute_many(_workload(repeats=1), NOISE, shots=64, seed=2)
            engine.metrics.collect()
            dropped = engine.metrics.get("repro_trace_dropped_traces_total")
            assert dropped.value == engine.tracer.stats()["dropped_traces"] >= 1
            write_errors = engine.metrics.get("repro_trace_write_errors_total")
            assert write_errors.value == 0

    def test_calibration_histograms(self):
        from repro.calibration import CalibrationRunner
        from repro.noise import fake_mumbai

        device = fake_mumbai()
        with ExecutionEngine() as engine:
            runner = CalibrationRunner(
                device, qubits=[0], rb_qubits=[], pairs=[], shots=256, seed=3,
                engine=engine,
            )
            runner.run()
            batch = engine.metrics.get("repro_calibration_batch_seconds")
            ((labels, snap),) = batch.series_snapshots()
            assert labels["device"] == device.name
            assert snap["count"] >= 1
            fits = engine.metrics.get("repro_calibration_fit_seconds")
            experiments = {labels["experiment"] for labels, _ in fits.series_snapshots()}
            assert experiments == {"readout", "pair_readout", "rb", "pauli_learning"}


# ----------------------------------------------------------------------
# Concurrency: scrape while executing
# ----------------------------------------------------------------------


class TestConcurrentScrape:
    def test_scrapes_are_safe_during_execution(self):
        """A scraper thread hammering every read API during execute_many."""
        with ExecutionEngine() as engine:
            errors: list[BaseException] = []
            stop = threading.Event()

            def scrape():
                while not stop.is_set():
                    try:
                        text = to_prometheus(engine.metrics)
                        assert text.endswith("\n")
                        to_json(engine.metrics)
                        engine.stats.to_dict()
                    except BaseException as exc:  # pragma: no cover - failure path
                        errors.append(exc)
                        return

            threads = [threading.Thread(target=scrape) for _ in range(3)]
            for thread in threads:
                thread.start()
            try:
                for seed in range(6):
                    engine.execute_many(_workload(repeats=2), NOISE, shots=64, seed=seed)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10)
            assert not errors
            for field, stat, registry_value in _stats_vs_registry(engine):
                assert stat == registry_value, field


# ----------------------------------------------------------------------
# Snapshot-on-close and the CLI round trip
# ----------------------------------------------------------------------


class TestSnapshotAndCLI:
    def _snapshot_pair(self, tmp_path):
        """Two snapshots of one engine: cold batch, then warm batch."""
        metrics_dir = str(tmp_path / "metrics")
        engine = ExecutionEngine(metrics_dir=metrics_dir)
        engine.execute_many(_workload(), NOISE, shots=64, seed=11)
        first = engine._metrics_store.write(engine.metrics)
        engine.execute_many(_workload(), NOISE, shots=64, seed=11)
        engine.close()
        store = MetricsStore(metrics_dir)
        paths = store.list()
        assert paths[0] == first and len(paths) == 2
        return paths

    def test_close_flushes_a_snapshot(self, tmp_path):
        metrics_dir = str(tmp_path / "m")
        with ExecutionEngine(metrics_dir=metrics_dir) as engine:
            engine.execute_many(_workload(repeats=1), NOISE, shots=64, seed=1)
        paths = MetricsStore(metrics_dir).list()
        assert len(paths) == 1
        header, families = load_snapshot(paths[0])
        assert header["format"] == METRICS_FORMAT
        names = {family["name"] for family in families}
        assert "repro_engine_requests_total" in names
        assert "repro_engine_stage_seconds" in names

    def test_summarize_reports_stages_and_hit_rate(self, tmp_path, capsys):
        first, second = self._snapshot_pair(tmp_path)
        assert metrics_cli(["summarize", second]) == 0
        out = capsys.readouterr().out
        assert out.startswith("snapshot ")
        for stage in ("prepare", "cache", "deliver"):
            assert f"stage {stage}" in out
        assert "hit-rate requests=18" in out
        assert "rate=" in out
        assert "counter repro_engine_requests_total 18" in out

    def test_summarize_agrees_with_engine_stats(self, tmp_path):
        metrics_dir = str(tmp_path / "m")
        with ExecutionEngine(metrics_dir=metrics_dir) as engine:
            engine.execute_many(_workload(), NOISE, shots=64, seed=11)
            expected = engine.stats.to_dict()
        (path,) = MetricsStore(metrics_dir).list()
        _, families = load_snapshot(path)
        by_name = {family["name"]: family for family in families}
        for field, (metric_name, _) in _STAT_METRICS.items():
            value = by_name[metric_name]["series"][0]["value"]
            assert value == expected[field], field

    def test_diff_forward_clean_and_reverse_regression(self, tmp_path, capsys):
        first, second = self._snapshot_pair(tmp_path)
        assert metrics_cli(["diff", first, second]) == 0
        out = capsys.readouterr().out
        assert "no counter regressions" in out
        assert "regression" not in out.replace("no counter regressions", "")
        assert "repro_engine_requests_total" in out  # the warm batch moved it

        assert metrics_cli(["diff", second, first]) == 1
        out = capsys.readouterr().out
        assert "regression repro_engine_requests_total" in out
        assert "counter(s) went backwards" in out

    def test_watch_and_list(self, tmp_path, capsys):
        first, second = self._snapshot_pair(tmp_path)
        snapshot_dir = os.path.dirname(first)
        assert metrics_cli(["list", snapshot_dir]) == 0
        assert capsys.readouterr().out.splitlines() == [first, second]
        assert metrics_cli(["watch", snapshot_dir, "--iterations", "2", "--interval", "0"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 1  # newest printed once, second poll sees nothing new
        assert lines[0].startswith(f"watch {os.path.basename(second)}")
        assert "requests=18" in lines[0]
        assert "hit-rate=" in lines[0]

    def test_watch_empty_dir(self, tmp_path, capsys):
        empty = str(tmp_path / "empty")
        assert metrics_cli(["watch", empty, "--iterations", "1"]) == 0
        assert "watch no snapshots in" in capsys.readouterr().out

    def test_module_entry_point(self, tmp_path):
        import subprocess
        import sys

        metrics_dir = str(tmp_path / "m")
        with ExecutionEngine(metrics_dir=metrics_dir) as engine:
            engine.execute_many(_workload(repeats=1), NOISE, shots=64, seed=1)
        (path,) = MetricsStore(metrics_dir).list()
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.metrics", "summarize", path],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "hit-rate" in proc.stdout
