"""Chaos suite for the fault-tolerant execution layer.

The acceptance contract of ``on_error="isolate"`` is *containment with
bit-identity*: under any injected fault schedule, every slot whose circuit
did not fail must return exactly the result a fault-free run produces, and
every failed slot must carry a structured :class:`ExecutionFault` naming the
circuit, method and stage.  These tests drive the
:class:`~repro.simulators.faults.FaultInjector` through every directive kind
— transient faults, sticky poison, backend degradation, worker kills,
injected latency, cache corruption and cache write failures — and pin the
engine's recovery semantics (retry accounting, degradation ladders,
failure dedup, pool respawn) plus the determinism of the retry schedule.

Ordinal semantics matter throughout: fault directives name the Nth
*executed* task in dispatch order — cache hits and batch-dedup duplicates do
not consume ordinals — so a schedule replays bit-identically regardless of
how much of the batch was served from cache.

This module is intentionally run *serially* in CI (outside xdist): the
worker-kill and timeout tests own a process pool whose crash/respawn timing
must not compete with sibling test processes for cores.
"""

from __future__ import annotations

import pickle
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.mitigation import build_subset_circuit
from repro.noise import NoiseModel
from repro.simulators import (
    BackendUnavailableError,
    CacheCorruptionError,
    EngineInvariantError,
    ExecutionEngine,
    ExecutionFault,
    FailedResult,
    FaultInjector,
    PersistentResultCache,
    RetryPolicy,
    SimulationError,
    TaskTimeoutError,
    TranspilationError,
    TransientSimulationError,
    WorkerCrashError,
    execute_many,
)
from repro.simulators.faults import (
    TaskFailureMarker,
    apply_injected_directive,
    fault_from_marker,
    marker_from_exception,
)
from test_parallel import requires_pool

NOISE = NoiseModel.depolarizing(p1=0.005, p2=0.02, readout=0.02)

# A retry policy that never sleeps: chaos tests exercise the *logic* of the
# recovery loop, not its pacing (the backoff arithmetic is pinned separately
# in TestRetryPolicy).
FAST_RETRY = RetryPolicy(base_delay=0.0, jitter=0.0)


def _subset_workload(num_qubits: int = 6, repeats: int = 3) -> list[QuantumCircuit]:
    base = QuantumCircuit(num_qubits, num_qubits)
    for q in range(num_qubits):
        base.h(q)
    for q in range(num_qubits - 1):
        base.cx(q, q + 1)
    for q in range(num_qubits):
        base.rz(0.1 * (q + 1), q)
    base.measure_all()
    subsets = [[0, 1], [2, 3], [4, 5]]
    unique = [build_subset_circuit(base, subset) for subset in subsets]
    return [circuit for circuit in unique for _ in range(repeats)]


def _results_identical(a, b) -> bool:
    return (
        a.distribution.items() == b.distribution.items()
        and a.measured_qubits == b.measured_qubits
        and a.method == b.method
        and a.shots == b.shots
        and (a.counts is None) == (b.counts is None)
        and (a.counts is None or a.counts.items() == b.counts.items())
    )


def _run_batch(circuits, *, injector=None, workers=None, on_error="isolate", **engine_kwargs):
    """One batch through a fresh engine with an optional fault schedule."""
    engine_kwargs.setdefault("retry_policy", FAST_RETRY)
    with ExecutionEngine(workers=workers, **engine_kwargs) as engine:
        if injector is not None:
            engine.install_fault_injector(injector)
        results = engine.execute_many(circuits, NOISE, shots=64, seed=11, on_error=on_error)
        return results, engine.stats


# Fault-free reference results for the shared workload, computed once.
_REFERENCE_CACHE: dict = {}


def _reference():
    if "results" not in _REFERENCE_CACHE:
        _REFERENCE_CACHE["results"], _ = _run_batch(_subset_workload())
    return _REFERENCE_CACHE["results"]


class TestTaxonomy:
    def test_context_fields_and_str(self):
        fault = SimulationError(
            "backend blew up", fingerprint="abcdef0123456789", method="trajectory",
            stage="simulate",
        )
        assert fault.fingerprint == "abcdef0123456789"
        assert fault.method == "trajectory"
        assert fault.stage == "simulate"
        text = str(fault)
        assert "backend blew up" in text
        assert "stage=simulate" in text
        assert "method=trajectory" in text
        assert "abcdef012345" in text  # truncated fingerprint

    def test_legacy_base_classes(self):
        # Pre-taxonomy call sites catch RuntimeError / TimeoutError; the
        # structured classes must keep matching those handlers.
        assert issubclass(SimulationError, RuntimeError)
        assert issubclass(TranspilationError, RuntimeError)
        assert issubclass(WorkerCrashError, RuntimeError)
        assert issubclass(EngineInvariantError, RuntimeError)
        assert issubclass(TaskTimeoutError, TimeoutError)
        # Classification subtree used by RetryPolicy / the ladder.
        assert issubclass(TransientSimulationError, SimulationError)
        assert issubclass(BackendUnavailableError, SimulationError)

    @pytest.mark.parametrize(
        "cls", [SimulationError, TransientSimulationError, BackendUnavailableError,
                TranspilationError, WorkerCrashError, TaskTimeoutError, CacheCorruptionError],
    )
    def test_pickling_preserves_context(self, cls):
        # Exceptions pickle through (cls, args) by default, which would drop
        # the keyword-only context crossing a process boundary.
        fault = cls("boom", fingerprint="fp", method="stabilizer", stage="dispatch")
        clone = pickle.loads(pickle.dumps(fault))
        assert type(clone) is cls
        assert clone.args == fault.args
        assert clone.fingerprint == "fp"
        assert clone.method == "stabilizer"
        assert clone.stage == "dispatch"

    def test_engine_invariant_error_names_lost_work(self):
        fault = EngineInvariantError(
            "a request was dispatched without a result",
            undelivered=[("key", 1), "fingerprint"],
            stage="deliver",
        )
        assert fault.undelivered == [("key", 1), "fingerprint"]
        clone = pickle.loads(pickle.dumps(fault))
        assert clone.undelivered == fault.undelivered

    def test_marker_roundtrip(self):
        fault = TransientSimulationError(
            "flaky", fingerprint="fp", method="trajectory", stage="simulate"
        )
        marker = marker_from_exception(fault, fingerprint="outer", method="outer")
        rebuilt = fault_from_marker(marker)
        assert type(rebuilt) is TransientSimulationError
        assert rebuilt.fingerprint == "fp"  # the fault's own context wins
        assert rebuilt.method == "trajectory"

    def test_marker_flattens_foreign_exceptions(self):
        marker = marker_from_exception(
            ValueError("bad amplitude"), fingerprint="fp", method="statevector"
        )
        rebuilt = fault_from_marker(marker)
        assert type(rebuilt) is SimulationError
        assert "ValueError: bad amplitude" in str(rebuilt)
        assert rebuilt.fingerprint == "fp"

    def test_marker_unknown_kind_degrades_to_simulation_error(self):
        marker = TaskFailureMarker(kind="FutureFaultClass", message="??")
        assert type(fault_from_marker(marker)) is SimulationError


class TestRetryPolicy:
    def test_schedule_is_deterministic_per_seed(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.01, backoff=2.0, jitter=0.5)
        schedule_a = [policy.delay(k, seed=42) for k in range(1, 5)]
        schedule_b = [policy.delay(k, seed=42) for k in range(1, 5)]
        assert schedule_a == schedule_b  # exact replay under a fixed seed

    def test_distinct_seeds_decorrelate(self):
        policy = RetryPolicy(base_delay=0.01, jitter=0.5)
        assert [policy.delay(k, seed=1) for k in (1, 2)] != [
            policy.delay(k, seed=2) for k in (1, 2)
        ]

    def test_backoff_arithmetic_without_jitter(self):
        policy = RetryPolicy(base_delay=0.02, backoff=2.0, max_delay=0.05, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.02)
        assert policy.delay(2) == pytest.approx(0.04)
        assert policy.delay(3) == pytest.approx(0.05)  # capped

    def test_jitter_is_bounded(self):
        policy = RetryPolicy(base_delay=0.02, backoff=2.0, max_delay=1.0, jitter=0.25)
        for attempt in range(1, 6):
            base = min(0.02 * 2.0 ** (attempt - 1), 1.0)
            delay = policy.delay(attempt, seed=7)
            assert base <= delay <= base * 1.25

    def test_retryable_filter(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientSimulationError("x"))
        assert policy.is_retryable(WorkerCrashError("x"))
        assert not policy.is_retryable(SimulationError("x"))  # poison fails once
        assert not policy.is_retryable(BackendUnavailableError("x"))  # ladders instead
        assert not policy.is_retryable(TaskTimeoutError("x"))

    def test_none_policy_and_validation(self):
        assert RetryPolicy.none().max_attempts == 1
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="non-negative"):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay(0)


class TestFaultInjector:
    def test_directives_are_consumed_by_ordinal(self):
        injector = FaultInjector(
            fail_tasks={1}, degrade_tasks={2}, latency={3: 0.5}, kill_tasks={4}
        )
        assert injector.take_directive("a") is None
        assert injector.take_directive("b") == ("fail", None)
        assert injector.take_directive("c") == ("degrade", None)
        assert injector.take_directive("d") == ("latency", 0.5)
        assert injector.take_directive("e") == ("kill", None)
        assert injector.tasks_dispatched == 5
        assert injector.faults_injected == 4

    def test_poison_is_sticky_by_fingerprint(self):
        injector = FaultInjector(poison_tasks={0})
        assert injector.take_directive("fp") == ("poison", None)
        # A retry on the poisoned circuit re-fires without a fresh ordinal...
        assert injector.retry_directive("fp") == ("poison", None)
        # ...and so does any later dispatch of the same fingerprint.
        assert injector.take_directive("fp") == ("poison", None)
        # Other circuits are unaffected; transient faults never re-fire.
        assert injector.retry_directive("other") is None

    def test_cache_hooks_count_ordinals(self):
        injector = FaultInjector(corrupt_reads={1}, fail_writes={0})
        assert injector.on_cache_read() is False
        assert injector.on_cache_read() is True
        assert injector.on_cache_write() is True
        assert injector.on_cache_write() is False
        assert injector.cache_reads == 2 and injector.cache_writes == 2

    def test_corrupt_file_flips_one_byte(self, tmp_path):
        path = tmp_path / "entry.pkl"
        path.write_bytes(b"0123456789")
        FaultInjector.corrupt_file(str(path))
        data = path.read_bytes()
        assert len(data) == 10
        assert sum(a != b for a, b in zip(data, b"0123456789")) == 1

    def test_apply_directive_raises_the_right_taxonomy(self):
        with pytest.raises(TransientSimulationError):
            apply_injected_directive(("fail", None), fingerprint="fp")
        with pytest.raises(SimulationError):
            apply_injected_directive(("poison", None))
        with pytest.raises(BackendUnavailableError):
            apply_injected_directive(("degrade", None))
        with pytest.raises(WorkerCrashError):
            # In-process, a kill raises instead of taking the parent down.
            apply_injected_directive(("kill", None), in_worker=False)
        with pytest.raises(ValueError, match="unknown fault directive"):
            apply_injected_directive(("warp", None))
        start = time.perf_counter()
        apply_injected_directive(("latency", 0.01))  # sleeps, then no-op
        assert time.perf_counter() - start >= 0.01
        apply_injected_directive(None)  # healthy tasks carry no directive


class TestSerialChaos:
    def test_transient_fault_is_retried_to_bit_identity(self):
        results, stats = _run_batch(_subset_workload(), injector=FaultInjector(fail_tasks={0}))
        assert stats.retries == 1
        assert stats.isolated_failures == 0
        assert all(r.ok for r in results)
        assert all(_results_identical(a, b) for a, b in zip(results, _reference()))

    def test_worker_crash_inprocess_is_retried(self):
        # The in-process path converts a kill directive to WorkerCrashError,
        # which the default retryable set re-attempts.
        results, stats = _run_batch(_subset_workload(), injector=FaultInjector(kill_tasks={0}))
        assert stats.retries == 1
        assert all(_results_identical(a, b) for a, b in zip(results, _reference()))

    def test_retry_exhaustion_reports_attempts(self):
        # Ordinal 0 fires fresh; the sticky-poison-only retry path never
        # re-fires a transient, so exhaustion needs max_attempts=1.
        injector = FaultInjector(fail_tasks={0})
        results, stats = _run_batch(
            _subset_workload(), injector=injector, retry_policy=RetryPolicy.none()
        )
        failed = [r for r in results if not r.ok]
        assert len(failed) == 3  # every duplicate of the poisoned circuit
        assert all(isinstance(f.error, TransientSimulationError) for f in failed)
        assert all(f.attempts == 1 for f in failed)
        assert stats.retries == 0

    def test_poison_isolation_dedups_the_failure(self):
        circuits = _subset_workload()  # 3 unique x 3 repeats
        results, stats = _run_batch(circuits, injector=FaultInjector(poison_tasks={0}))
        failed = [(i, r) for i, r in enumerate(results) if not r.ok]
        # Slots 0-2 are the three occurrences of the first unique circuit
        # (the workload repeats contiguously).
        assert [i for i, _ in failed] == [0, 1, 2]
        assert stats.isolated_failures == 3
        # ...but the poison executed once: the duplicates were failed from
        # the batch-level failure table, not re-run.
        assert all(isinstance(r.error, SimulationError) for _, r in failed)
        assert all(r.stage == "simulate" for _, r in failed)
        assert all(r.fingerprint for _, r in failed)
        # Healthy slots are bit-identical to the fault-free run.
        for i, result in enumerate(results):
            if result.ok:
                assert _results_identical(result, _reference()[i])

    def test_ordinals_name_executions_not_slots(self):
        unique = _subset_workload(repeats=1)
        circuits = [unique[0], unique[0], unique[1]]  # slot 2 is execution 1
        results, _ = _run_batch(circuits, injector=FaultInjector(poison_tasks={1}))
        assert results[0].ok and results[1].ok
        assert not results[2].ok

    def test_raise_mode_aborts_with_the_structured_fault(self):
        with pytest.raises(SimulationError) as excinfo:
            _run_batch(
                _subset_workload(), injector=FaultInjector(poison_tasks={0}), on_error="raise"
            )
        assert excinfo.value.fingerprint
        assert excinfo.value.stage == "simulate"

    def test_isolate_wraps_foreign_exceptions(self):
        # statevector + noise raises a bare ValueError deep in the backend;
        # isolate mode converts it into a structured slot failure with the
        # original exception chained as the cause.
        circuit = _subset_workload(repeats=1)[0]
        with ExecutionEngine() as engine:
            [result] = engine.execute_many(
                [circuit], NOISE, shots=64, seed=11, method="statevector", on_error="isolate"
            )
        assert not result.ok
        assert isinstance(result.error, SimulationError)
        assert isinstance(result.error.__cause__, ValueError)
        # The historical contract is untouched in raise mode.
        with ExecutionEngine() as engine, pytest.raises(ValueError):
            engine.execute_many([circuit], NOISE, shots=64, seed=11, method="statevector")

    def test_on_error_validation_always_raises(self):
        with pytest.raises(ValueError, match="on_error"):
            ExecutionEngine(on_error="retry")
        with ExecutionEngine() as engine:
            with pytest.raises(ValueError, match="on_error"):
                engine.execute_many(_subset_workload(repeats=1), NOISE, on_error="ignore")
            # Batch-wide argument errors doom the call even when isolating.
            with pytest.raises(ValueError, match="unknown method"):
                engine.execute_many(
                    _subset_workload(repeats=1), NOISE, method="warp", on_error="isolate"
                )
            with pytest.raises(ValueError, match="shots"):
                engine.execute_many(
                    _subset_workload(repeats=1), NOISE, shots=0, on_error="isolate"
                )

    def test_failed_result_surface(self):
        results, _ = _run_batch(
            _subset_workload(repeats=1), injector=FaultInjector(poison_tasks={0})
        )
        failed = results[0]
        assert isinstance(failed, FailedResult)
        assert failed.ok is False
        with pytest.raises(SimulationError):
            failed.raise_error()

    def test_check_delivered_raises_engine_invariant_error(self):
        with ExecutionEngine() as engine:
            [result] = engine.execute_many(_subset_workload(repeats=1)[:1], NOISE, seed=1)
            assert result.ok
            prepared = engine._prepare(
                _subset_workload(repeats=1)[0], NOISE, None, 1, "auto",
                engine.max_trajectories, True, None,
            )
            with pytest.raises(EngineInvariantError) as excinfo:
                engine._check_delivered([None], [prepared])
            assert excinfo.value.undelivered == [prepared.key]
            assert excinfo.value.stage == "deliver"


class TestDegradationLadder:
    def _clifford_workload(self):
        circuit = QuantumCircuit(4, 4)
        for q in range(4):
            circuit.h(q)
        for q in range(3):
            circuit.cx(q, q + 1)
        circuit.measure_all()
        return circuit

    def test_stabilizer_degrades_to_trajectory(self):
        circuit = self._clifford_workload()
        noise = NoiseModel.depolarizing(p1=0.001, p2=0.008, readout=0.02)
        with ExecutionEngine(retry_policy=FAST_RETRY) as engine:
            engine.install_fault_injector(FaultInjector(degrade_tasks={0}))
            [result] = engine.execute_many(
                [circuit], noise, shots=256, seed=7, method="stabilizer"
            )
            assert result.ok
            assert result.method == "trajectory"  # one rung down
            assert result.metadata["degraded_from"] == "stabilizer"
            assert engine.stats.degraded_backend == 1
            assert engine.stats.stabilizer_executed == 0  # the rung never ran

    def test_trajectory_degrades_to_reference_loop(self):
        circuit = _subset_workload(repeats=1)[0].compact_qubits()[0]
        with ExecutionEngine(retry_policy=FAST_RETRY) as engine:
            engine.install_fault_injector(FaultInjector(degrade_tasks={0}))
            [result] = engine.execute_many(
                [circuit], NOISE, shots=128, seed=5, method="trajectory", max_trajectories=50
            )
            assert result.ok
            assert result.metadata["degraded_from"] == "trajectory"
            assert result.counts is not None and result.counts.shots == 128
            assert engine.stats.degraded_backend == 1

    def test_degraded_results_are_never_cached(self):
        circuit = self._clifford_workload()
        noise = NoiseModel.depolarizing(p1=0.001, p2=0.008, readout=0.02)
        with ExecutionEngine(retry_policy=FAST_RETRY) as engine:
            engine.install_fault_injector(FaultInjector(degrade_tasks={0}))
            engine.execute_many([circuit], noise, shots=256, seed=7, method="stabilizer")
            assert engine.stats.executed == 1
            # The healthy key must not serve the degraded payload: the same
            # request re-executes (now fault-free) and only then caches.
            [healthy] = engine.execute_many(
                [circuit], noise, shots=256, seed=7, method="stabilizer"
            )
            assert engine.stats.executed == 2
            assert healthy.method == "stabilizer"
            assert "degraded_from" not in healthy.metadata
            [cached] = engine.execute_many(
                [circuit], noise, shots=256, seed=7, method="stabilizer"
            )
            assert engine.stats.executed == 2  # served from cache this time
            assert _results_identical(cached, healthy)

    def test_degraded_duplicates_share_the_batch_execution(self):
        circuit = self._clifford_workload()
        noise = NoiseModel.depolarizing(p1=0.001, p2=0.008, readout=0.02)
        with ExecutionEngine(retry_policy=FAST_RETRY) as engine:
            engine.install_fault_injector(FaultInjector(degrade_tasks={0}))
            results = engine.execute_many(
                [circuit, circuit], noise, shots=256, seed=7, method="stabilizer"
            )
            assert engine.stats.executed == 1  # batch dedup still applies
            assert all(r.metadata.get("degraded_from") == "stabilizer" for r in results)
            assert _results_identical(results[0], results[1])

    def test_density_matrix_has_no_ladder(self):
        # A BackendUnavailableError on a method with no lower rung is
        # terminal (and not retryable): the slot fails with the fault.
        circuit = _subset_workload(repeats=1)[0]
        results, stats = _run_batch([circuit], injector=FaultInjector(degrade_tasks={0}))
        assert not results[0].ok
        assert isinstance(results[0].error, BackendUnavailableError)
        assert stats.degraded_backend == 0


class TestChaosProperty:
    """Any injected fault schedule isolates cleanly — hypothesis-driven."""

    @settings(max_examples=20, deadline=None)
    @given(
        fail=st.sets(st.integers(min_value=0, max_value=3), max_size=2),
        poison=st.sets(st.integers(min_value=0, max_value=3), max_size=2),
        degrade=st.sets(st.integers(min_value=0, max_value=3), max_size=2),
    )
    def test_healthy_slots_are_bit_identical_under_any_schedule(
        self, fail, poison, degrade
    ):
        circuits = _subset_workload()  # 3 unique x 3 repeats
        reference = _reference()
        results, stats = _run_batch(
            circuits,
            injector=FaultInjector(fail_tasks=fail, poison_tasks=poison, degrade_tasks=degrade),
        )
        assert len(results) == len(circuits)
        for result, expected in zip(results, reference):
            if result.ok:
                assert _results_identical(result, expected)
            else:
                assert isinstance(result.error, ExecutionFault)
                assert result.fingerprint
        assert stats.isolated_failures == sum(1 for r in results if not r.ok)
        # Replay: the same schedule fails the same slots with the same faults.
        replay, _ = _run_batch(
            circuits,
            injector=FaultInjector(fail_tasks=fail, poison_tasks=poison, degrade_tasks=degrade),
        )
        assert [r.ok for r in replay] == [r.ok for r in results]
        for a, b in zip(replay, results):
            if not a.ok:
                assert type(a.error) is type(b.error)


class TestParallelChaos:
    def test_parallel_poison_isolation_matches_serial(self):
        circuits = _subset_workload()
        parallel, stats = _run_batch(
            circuits, injector=FaultInjector(poison_tasks={0}), workers=2
        )
        assert [i for i, r in enumerate(parallel) if not r.ok] == [0, 1, 2]
        assert stats.isolated_failures == 3
        for i, result in enumerate(parallel):
            if result.ok:
                assert _results_identical(result, _reference()[i])

    @requires_pool
    def test_worker_kill_is_respawned_and_retried(self):
        circuits = _subset_workload()
        with ExecutionEngine(workers=2, retry_policy=FAST_RETRY) as engine:
            engine.install_fault_injector(FaultInjector(kill_tasks={0}))
            results = engine.execute_many(
                circuits, NOISE, shots=64, seed=11, on_error="isolate"
            )
            # The kill directive dies with the worker; the requeued task runs
            # clean, so every slot completes and the crash shows up only in
            # the respawn/fallback telemetry.
            assert all(r.ok for r in results)
            assert engine.stats.pool_respawns >= 1
        assert all(_results_identical(a, b) for a, b in zip(results, _reference()))

    @requires_pool
    def test_task_timeout_fails_only_the_slow_slot(self):
        circuits = _subset_workload(repeats=1)
        with ExecutionEngine(workers=2, retry_policy=FAST_RETRY, task_timeout=1.0) as engine:
            engine.install_fault_injector(FaultInjector(latency={0: 30.0}))
            results = engine.execute_many(
                circuits, NOISE, shots=64, seed=11, on_error="isolate"
            )
        failed = [r for r in results if not r.ok]
        assert len(failed) == 1
        assert isinstance(failed[0].error, TaskTimeoutError)
        healthy = [r for r in results if r.ok]
        assert len(healthy) == len(circuits) - 1

    @requires_pool
    def test_timeout_raise_mode(self):
        circuits = _subset_workload(repeats=1)
        with ExecutionEngine(workers=2, retry_policy=FAST_RETRY, task_timeout=1.0) as engine:
            engine.install_fault_injector(FaultInjector(latency={0: 30.0}))
            with pytest.raises(TaskTimeoutError):
                engine.execute_many(circuits, NOISE, shots=64, seed=11, on_error="raise")


class TestCacheChaos:
    def test_corrupt_read_is_quarantined(self, tmp_path):
        cache = PersistentResultCache(tmp_path)
        cache.put(("k",), "value")
        cache.fault_injector = FaultInjector(corrupt_reads={0})
        assert cache.get(("k",)) is None  # corrupt -> miss
        assert cache.corrupt_entries == 1
        import os

        assert len(os.listdir(cache.quarantine_dir)) == 1  # kept for post-mortem
        stats = cache.stats()
        assert stats["corrupt_entries"] == 1 and stats["disabled"] is False
        cache.fault_injector = None
        cache.put(("k",), "value2")  # the slot heals
        assert cache.get(("k",)) == "value2"

    def test_mid_payload_bit_rot_is_detected(self, tmp_path):
        # Regression: a flipped byte deep inside a large pickled payload can
        # still unpickle cleanly — into silently wrong data.  The entry
        # checksum must catch it; before v4 this was served as a valid hit.
        cache = PersistentResultCache(tmp_path)
        cache.put(("k",), b"\x00" * 4096)
        [(path, _, _)] = list(cache._entries())
        FaultInjector.corrupt_file(path)  # flips the byte at len(data)//2
        assert cache.get(("k",)) is None
        assert cache.corrupt_entries == 1

    def test_repeated_write_failures_degrade_to_memory_only(self, tmp_path):
        from repro.simulators.cache import MAX_CONSECUTIVE_WRITE_FAILURES

        cache = PersistentResultCache(tmp_path)
        cache.fault_injector = FaultInjector(
            fail_writes=range(MAX_CONSECUTIVE_WRITE_FAILURES)
        )
        for index in range(MAX_CONSECUTIVE_WRITE_FAILURES):
            cache.put((index,), index)  # swallowed, counted
        assert cache.write_errors == MAX_CONSECUTIVE_WRITE_FAILURES
        assert cache.disabled is True
        # Memory-only rung: the disk layer is out of the loop entirely.
        cache.fault_injector = None
        cache.put(("after",), 1)
        assert cache.get(("after",)) is None
        assert cache.stats()["disabled"] is True

    def test_one_write_failure_does_not_disable(self, tmp_path):
        cache = PersistentResultCache(tmp_path)
        cache.fault_injector = FaultInjector(fail_writes={0})
        cache.put(("a",), 1)
        cache.put(("b",), 2)  # success resets the consecutive counter
        assert cache.disabled is False
        assert cache.get(("b",)) == 2

    def test_engine_wires_injector_into_persistent_cache(self, tmp_path):
        injector = FaultInjector(corrupt_reads={0})
        with ExecutionEngine(cache_dir=str(tmp_path)) as engine:
            engine.install_fault_injector(injector)
            assert engine._persistent.fault_injector is injector
            circuit = _subset_workload(repeats=1)[0]
            engine.execute_many([circuit], NOISE, shots=64, seed=11)
        # The warm engine's first disk read hits the corrupted entry,
        # quarantines it, recomputes and re-publishes.  Fresh injector:
        # read ordinals are per-injector, and the cold run's own misses
        # already consumed ordinal 0 above.
        with ExecutionEngine(cache_dir=str(tmp_path)) as warm:
            warm.install_fault_injector(FaultInjector(corrupt_reads={0}))
            [result] = warm.execute_many([circuit], NOISE, shots=64, seed=11)
            assert result.ok
            assert warm.stats.executed >= 1  # recomputed, not served corrupt
            assert warm._persistent.corrupt_entries >= 1


class TestModuleLevelSurface:
    def test_execute_many_passes_through_isolation(self):
        circuits = _subset_workload(repeats=1)
        results = execute_many(
            circuits, NOISE, shots=64, seed=11, method="statevector", on_error="isolate"
        )
        assert all(not r.ok for r in results)  # statevector cannot apply noise
        assert all(isinstance(r.error, SimulationError) for r in results)

    def test_calibration_runner_validates_on_error(self):
        from repro.calibration import CalibrationRunner
        from repro.noise import DeviceModel, EdgeCalibration, QubitCalibration

        device = DeviceModel(
            "d2", 2, [(0, 1)],
            {q: QubitCalibration(
                t1=120e3, t2=150e3, readout_error=0.02, sq_error=3e-4, sq_gate_time=35.56,
            ) for q in range(2)},
            {(0, 1): EdgeCalibration(cx_error=8e-3, gate_time=400.0)},
        )
        with pytest.raises(ValueError, match="on_error"):
            CalibrationRunner(device, on_error="ignore")
        runner = CalibrationRunner(
            device, shots=256, seed=7, rb_lengths=(2, 4), rb_samples=1,
            pauli_depths=(1, 2), pauli_samples=1, pauli_strings=("ZZ",),
            on_error="isolate",
        )
        record = runner.run()
        assert record.metadata["failed_circuits"] == 0
