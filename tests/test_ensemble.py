"""Tests for the ensemble trajectory simulator
(:mod:`repro.simulators.ensemble`): statistical agreement with the exact
density-matrix distribution, seeded reproducibility, the grouped-insertion
and general-channel paths, chunking, and the engine rewiring.
"""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.noise import NoiseModel
from repro.noise.channels import amplitude_damping_channel
from repro.simulators import (
    ExecutionEngine,
    execute,
    noisy_distribution_density_matrix,
    simulate_trajectories_ensemble,
)
from repro.simulators.ensemble import _sample_outcomes_inverse_cdf


def total_variation(distribution, exact, num_bits: int) -> float:
    return 0.5 * sum(
        abs(distribution.get(outcome) - exact.get(outcome))
        for outcome in range(2**num_bits)
    )


def noisy_circuit(num_qubits: int = 4) -> QuantumCircuit:
    qc = QuantumCircuit(num_qubits, num_qubits)
    for q in range(num_qubits):
        qc.h(q)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    for q in range(num_qubits):
        qc.rz(0.1 * (q + 1), q)
    qc.measure_all()
    return qc


class TestStatisticalAgreement:
    @pytest.mark.parametrize("fusion", [True, False])
    def test_matches_density_matrix_within_tv_bound(self, fusion):
        # Acceptance criterion: a seeded ensemble run matches the exact
        # distribution of a <= 6-qubit noisy circuit within TV 0.05.
        qc = noisy_circuit(5)
        model = NoiseModel.depolarizing(p1=0.01, p2=0.03, readout=0.02)
        exact, _ = noisy_distribution_density_matrix(qc, model)
        counts, qubits = simulate_trajectories_ensemble(
            qc, model, shots=40000, seed=11, max_trajectories=500, fusion=fusion
        )
        assert qubits == list(range(5))
        # TV tolerance 0.05 over K=32 outcomes, N=40000 shots (plus ~500
        # trajectories of gate-noise sampling): E[TV] <= sqrt((K-1)/(4N))
        # ~= 0.014; McDiarmid tail P(TV >= 0.014 + 0.036) <= exp(-2N*0.036^2)
        # ~= 1e-45, so the slack is dominated by the finite trajectory
        # budget (measured ~0.02).  Failure probability under re-seeding
        # << 1e-3; the pinned seed makes the test deterministic.
        assert total_variation(counts.to_distribution(), exact, 5) <= 0.05

    def test_ideal_model_single_trajectory(self):
        qc = QuantumCircuit(3, 3)
        qc.h(0).cx(0, 1).cx(1, 2)
        qc.measure_all()
        counts, _ = simulate_trajectories_ensemble(qc, None, shots=4000, seed=1)
        dist = counts.to_distribution()
        assert dist[0b000] == pytest.approx(0.5, abs=0.05)
        assert dist[0b111] == pytest.approx(0.5, abs=0.05)

    def test_general_channel_fallback(self):
        # Amplitude damping is not a unitary mixture; the affected sites pay
        # the per-trajectory Born-sampling cost but must still agree.
        model = NoiseModel()
        model.set_default_1q_error(amplitude_damping_channel(0.3))
        qc = QuantumCircuit(1, 1)
        qc.x(0)
        qc.measure(0, 0)
        exact, _ = noisy_distribution_density_matrix(qc, model)
        counts, _ = simulate_trajectories_ensemble(
            qc, model, shots=20000, seed=9, max_trajectories=500
        )
        sampled = counts.to_distribution()
        assert sampled[0] == pytest.approx(exact[0], abs=0.03)
        assert sampled[1] == pytest.approx(exact[1], abs=0.03)

    def test_readout_confusion_applied(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        model = NoiseModel.depolarizing(readout=0.25)
        counts, _ = simulate_trajectories_ensemble(qc, model, shots=20000, seed=3)
        assert counts[1] / counts.shots == pytest.approx(0.25, abs=0.02)

    def test_measured_subset_ordering(self):
        qc = noisy_circuit(4).remove_final_measurements()
        qc.measure_subset([2])
        model = NoiseModel.depolarizing(p1=0.01, p2=0.02)
        counts, qubits = simulate_trajectories_ensemble(qc, model, shots=2000, seed=5)
        assert qubits == [2]
        assert counts.num_bits == 1


class TestReproducibilityAndPlumbing:
    def test_seed_reproducible(self):
        qc = noisy_circuit(4)
        model = NoiseModel.depolarizing(p1=0.01, p2=0.03, readout=0.02)
        a, _ = simulate_trajectories_ensemble(qc, model, shots=3000, seed=21)
        b, _ = simulate_trajectories_ensemble(qc, model, shots=3000, seed=21)
        assert a.to_dict() == b.to_dict()

    def test_shot_budget_exact(self):
        qc = noisy_circuit(3)
        model = NoiseModel.depolarizing(p1=0.01, p2=0.02)
        counts, _ = simulate_trajectories_ensemble(
            qc, model, shots=1234, seed=2, max_trajectories=100
        )
        assert counts.shots == 1234

    def test_invalid_shots(self):
        with pytest.raises(ValueError, match="shots"):
            simulate_trajectories_ensemble(noisy_circuit(2), None, shots=0)

    def test_chunked_execution_statistics(self):
        # A tiny per-chunk amplitude budget forces many chunks; statistics
        # and reproducibility must be unaffected.
        qc = noisy_circuit(4)
        model = NoiseModel.depolarizing(p1=0.01, p2=0.03)
        exact, _ = noisy_distribution_density_matrix(qc, model)
        kwargs = dict(shots=30000, seed=7, max_trajectories=300, max_batch_elements=256)
        counts, _ = simulate_trajectories_ensemble(qc, model, **kwargs)
        again, _ = simulate_trajectories_ensemble(qc, model, **kwargs)
        assert counts.to_dict() == again.to_dict()
        # Same TV-0.05 budget as above with K=16, N=30000: E[TV] ~= 0.011,
        # tail negligible; failure probability under re-seeding << 1e-3.
        assert total_variation(counts.to_distribution(), exact, 4) <= 0.05

    def test_inverse_cdf_sampler_deterministic_rows(self, make_rng):
        probs = np.array(
            [
                [1.0, 0.0, 0.0, 0.0],
                [0.0, 0.0, 1.0, 0.0],
                [0.0, 1.0, 0.0, 0.0],
            ]
        )
        shots = np.array([5, 4, 3])
        rng = make_rng(0)
        outcomes = _sample_outcomes_inverse_cdf(probs, shots, rng)
        assert outcomes.tolist() == [0] * 5 + [2] * 4 + [1] * 3

    def test_inverse_cdf_sampler_distribution(self, make_rng):
        probs = np.array([[0.25, 0.75], [0.5, 0.5]])
        shots = np.array([40000, 40000])
        rng = make_rng(12)
        outcomes = _sample_outcomes_inverse_cdf(probs, shots, rng)
        first = outcomes[:40000]
        second = outcomes[40000:]
        # Hoeffding per row: P(|mean - p| >= 0.01) <= 2 exp(-2 * 40000 * 1e-4)
        # ~= 6.7e-4 under re-seeding; the pinned seed makes it deterministic.
        assert first.mean() == pytest.approx(0.75, abs=0.01)
        assert second.mean() == pytest.approx(0.5, abs=0.01)

    def test_inverse_cdf_sampler_zero_shot_rows(self, make_rng):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        shots = np.array([0, 3])
        rng = make_rng(1)
        assert _sample_outcomes_inverse_cdf(probs, shots, rng).tolist() == [1, 1, 1]


class TestEngineRewiring:
    def wide_noisy_circuit(self) -> QuantumCircuit:
        qc = QuantumCircuit(12, 12)
        for q in range(12):
            qc.h(q)
        for q in range(11):
            qc.cx(q, q + 1)
        qc.t(0)  # non-Clifford: pins the trajectory path (Clifford would go stabilizer)
        qc.measure_all()
        return qc

    def test_execute_trajectory_method_uses_ensemble(self):
        qc = noisy_circuit(3)
        model = NoiseModel.depolarizing(p1=0.01, p2=0.02)
        direct, qubits = simulate_trajectories_ensemble(
            qc, model, shots=500, seed=13, max_trajectories=600
        )
        via_execute = execute(qc, model, shots=500, seed=13, method="trajectory")
        assert via_execute.method == "trajectory"
        assert via_execute.measured_qubits == qubits
        assert via_execute.counts.to_dict() == direct.to_dict()

    def test_fusion_toggle_is_part_of_the_trajectory_cache_key(self):
        engine = ExecutionEngine()
        qc = self.wide_noisy_circuit()
        model = NoiseModel.depolarizing(p1=0.005, p2=0.02)
        engine.execute(qc, model, shots=300, seed=5)
        engine.execute(qc, model, shots=300, seed=5, fusion=False)
        # Different RNG streams -> different results -> must not share a line.
        assert engine.stats.executed == 2
        assert engine.stats.cache_hits == 0
        engine.execute(qc, model, shots=300, seed=5)
        assert engine.stats.cache_hits == 1

    def test_exact_methods_share_cache_lines_across_fusion_settings(self):
        engine = ExecutionEngine()
        qc = noisy_circuit(3)
        model = NoiseModel.depolarizing(p1=0.01, p2=0.02)
        a = engine.execute(qc, model)  # density matrix, fusion on
        b = engine.execute(qc, model, fusion=False)  # fusion-invariant
        assert a.method == b.method == "density_matrix"
        assert engine.stats.cache_hits == 1

    def test_engine_trajectory_reproducible(self):
        qc = self.wide_noisy_circuit()
        model = NoiseModel.depolarizing(p1=0.005, p2=0.02, readout=0.02)
        a = ExecutionEngine().execute(qc, model, shots=300, seed=5)
        b = ExecutionEngine().execute(qc, model, shots=300, seed=5)
        assert a.method == "trajectory"
        assert a.counts.to_dict() == b.counts.to_dict()
