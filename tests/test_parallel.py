"""Process-parallel sharding and the persistent on-disk result cache.

The acceptance contract for both subsystems is *bit-identity*: an
``execute_many`` batch sharded across worker processes, or served from the
persistent cache by a fresh engine, must return exactly the results the
serial in-memory path produces — same probabilities, same counts, same
measured-qubit labels.  These tests pin that contract, plus the cache's
durability properties (versioned format, corruption tolerance, atomic
publish, LRU size cap).
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.circuits import QuantumCircuit
from repro.mitigation import build_subset_circuit
from repro.noise import NoiseModel
from repro.simulators import (
    CompactTask,
    ExecutionEngine,
    ParallelSharder,
    PersistentResultCache,
    execute_many,
    run_compact_task,
)
from repro.simulators.cache import CACHE_FORMAT_VERSION, canonical_key_bytes


def _pool_available() -> bool:
    """Can this platform actually run a process pool?

    ``ParallelSharder`` is documented to fall back to in-process execution
    (bit-identical, just serial) on platforms that cannot spawn workers —
    sandboxes without /dev/shm, restricted containers.  Assertions about
    *dispatch counts* only make sense when a pool exists, so they skip on
    such platforms; the bit-identity assertions run everywhere.
    """
    from concurrent.futures import ProcessPoolExecutor

    try:
        with ProcessPoolExecutor(max_workers=1) as executor:
            return executor.submit(int, 1).result(timeout=120) == 1
    except Exception:
        return False


requires_pool = pytest.mark.skipif(
    not _pool_available(), reason="process pools unavailable; sharder falls back in-process"
)


def _results_identical(a, b) -> bool:
    return (
        a.distribution.items() == b.distribution.items()
        and a.measured_qubits == b.measured_qubits
        and a.method == b.method
        and a.shots == b.shots
        and (a.counts is None) == (b.counts is None)
        and (a.counts is None or a.counts.items() == b.counts.items())
    )


def _subset_workload(num_qubits: int = 6, repeats: int = 3) -> list[QuantumCircuit]:
    base = QuantumCircuit(num_qubits, num_qubits)
    for q in range(num_qubits):
        base.h(q)
    for q in range(num_qubits - 1):
        base.cx(q, q + 1)
    for q in range(num_qubits):
        base.rz(0.1 * (q + 1), q)
    base.measure_all()
    subsets = [[0, 1], [2, 3], [4, 5]]
    unique = [build_subset_circuit(base, subset) for subset in subsets]
    return [circuit for circuit in unique for _ in range(repeats)]


NOISE = NoiseModel.depolarizing(p1=0.005, p2=0.02, readout=0.02)


class TestParallelBitIdentity:
    """Acceptance: parallel results equal serial in-memory results exactly."""

    @requires_pool
    def test_density_matrix_batch(self):
        circuits = _subset_workload()
        serial = ExecutionEngine().execute_many(circuits, NOISE, shots=512, seed=17)
        with ExecutionEngine(workers=4) as engine:
            parallel = engine.execute_many(circuits, NOISE, shots=512, seed=17)
            assert engine.stats.parallel_executed == 3  # unique circuits only
            assert engine.stats.batch_dedup_hits == len(circuits) - 3
        assert all(_results_identical(a, b) for a, b in zip(serial, parallel))

    def test_trajectory_batch(self):
        circuits = [c.compact_qubits()[0] for c in _subset_workload()]
        serial = ExecutionEngine().execute_many(
            circuits, NOISE, shots=256, seed=5, method="trajectory", max_trajectories=50
        )
        with ExecutionEngine(workers=2) as engine:
            parallel = engine.execute_many(
                circuits, NOISE, shots=256, seed=5, method="trajectory", max_trajectories=50
            )
        assert all(_results_identical(a, b) for a, b in zip(serial, parallel))

    def test_statevector_batch(self):
        circuits = _subset_workload()
        serial = ExecutionEngine().execute_many(circuits, None, shots=128, seed=3)
        with ExecutionEngine(workers=2) as engine:
            parallel = engine.execute_many(circuits, None, shots=128, seed=3)
        assert all(_results_identical(a, b) for a, b in zip(serial, parallel))

    def test_exact_unsampled_batch(self):
        circuits = _subset_workload()
        serial = ExecutionEngine().execute_many(circuits, NOISE)
        with ExecutionEngine(workers=2) as engine:
            parallel = engine.execute_many(circuits, NOISE)
        assert all(_results_identical(a, b) for a, b in zip(serial, parallel))

    @requires_pool
    def test_per_call_workers_override(self):
        circuits = _subset_workload()
        engine = ExecutionEngine()  # serial by default
        parallel = engine.execute_many(circuits, NOISE, shots=512, seed=17, workers=2)
        assert engine.stats.parallel_executed == 3
        engine.close()
        serial = ExecutionEngine().execute_many(circuits, NOISE, shots=512, seed=17)
        assert all(_results_identical(a, b) for a, b in zip(serial, parallel))

    def test_module_level_execute_many(self):
        circuits = _subset_workload()
        serial = execute_many(circuits, NOISE, shots=512, seed=17)
        parallel = execute_many(circuits, NOISE, shots=512, seed=17, workers=2)
        assert all(_results_identical(a, b) for a, b in zip(serial, parallel))

    @requires_pool
    def test_unseeded_requests_are_dispatched_not_cached(self):
        circuits = _subset_workload(repeats=2)  # 3 unique x 2 occurrences
        with ExecutionEngine(workers=2) as engine:
            results = engine.execute_many(circuits, NOISE, shots=64)  # no seed
            assert engine.stats.uncacheable == len(circuits)
            # Density-matrix requests shard their *gate-noise evolution*
            # once per unique circuit; each occurrence is finished in the
            # parent with its own independent readout sampling (matching
            # serial, where occurrences after the first hit the state cache).
            assert engine.stats.parallel_executed == 3
            assert engine.stats.executed == len(circuits)
            # No *result* keys are cached for unseeded sampling — only the
            # deterministic pre-readout dm-state entries (as serially).
            assert engine.cache_len == 3
            assert len(results) == len(circuits)
            # Independent draws: occurrences of the same circuit should not
            # be byte-equal in general (3 x 64 shots over 4 outcomes makes a
            # collision astronomically unlikely but not impossible; allow
            # equality only if all three pairs collide — i.e. never).
            pairs = [(results[i], results[i + 1]) for i in (0, 2, 4)]
            assert any(
                a.counts.items() != b.counts.items() for a, b in pairs
            )

    def test_workers_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ExecutionEngine(workers=0)


class TestParallelSharder:
    def test_single_task_runs_in_process(self):
        sharder = ParallelSharder(workers=4)
        circuit = _subset_workload()[0].compact_qubits()[0]
        task = CompactTask(
            circuit=circuit, noise=NOISE, method="density_matrix",
            shots=None, seed=1, max_trajectories=10, fusion=True,
        )
        result = sharder.run([task])
        assert sharder._executor is None  # no pool for a single task
        assert _results_identical(result[0], run_compact_task(task))
        sharder.shutdown()

    def test_chunked_map_matches_task_order(self):
        circuits = [c.compact_qubits()[0] for c in _subset_workload(repeats=1)]
        tasks = [
            CompactTask(
                circuit=circuit, noise=NOISE, method="density_matrix",
                shots=None, seed=index, max_trajectories=10, fusion=True,
            )
            for index, circuit in enumerate(circuits * 2)
        ]
        with ParallelSharder(workers=2, chunk_size=1) as sharder:
            outputs = sharder.run(tasks)
        expected = [run_compact_task(task) for task in tasks]
        assert all(_results_identical(a, b) for a, b in zip(outputs, expected))

    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelSharder(workers=0)
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelSharder(workers=2, chunk_size=0)


class TestPersistentCache:
    """Durability contract of the on-disk layer."""

    def test_warm_start_across_engines(self, tmp_path):
        circuits = _subset_workload()
        cold = ExecutionEngine(cache_dir=str(tmp_path))
        cold_results = cold.execute_many(circuits, NOISE, shots=512, seed=17)
        assert cold.stats.executed == 3

        warm = ExecutionEngine(cache_dir=str(tmp_path))  # fresh memory cache
        warm_results = warm.execute_many(circuits, NOISE, shots=512, seed=17)
        assert warm.stats.executed == 0  # nothing recomputed
        assert warm.stats.persistent_hits == 3
        # Acceptance: persistent-cache results are bit-identical to computed.
        assert all(_results_identical(a, b) for a, b in zip(cold_results, warm_results))

    def test_warm_start_under_parallel_engine(self, tmp_path):
        circuits = _subset_workload()
        with ExecutionEngine(cache_dir=str(tmp_path), workers=2) as cold:
            cold_results = cold.execute_many(circuits, NOISE, shots=512, seed=17)
        with ExecutionEngine(cache_dir=str(tmp_path), workers=2) as warm:
            warm_results = warm.execute_many(circuits, NOISE, shots=512, seed=17)
            assert warm.stats.executed == 0
        assert all(_results_identical(a, b) for a, b in zip(cold_results, warm_results))

    def test_parallel_readout_sweep_uses_state_cache(self):
        # Regression: the parallel path must keep the readout-factored
        # state cache — a measurement-error sweep with workers>1 evolves
        # each circuit's gate noise once, not once per readout setting.
        circuits = _subset_workload(repeats=1)
        with ExecutionEngine(workers=2) as engine:
            engine.execute_many(circuits, NOISE, shots=256, seed=9)
            evolutions_after_first = engine.stats.parallel_executed
            for factor in (1.5, 2.0):
                engine.execute_many(
                    circuits, NOISE.with_readout_scaled(factor), shots=256, seed=9
                )
            # Later sweep points re-apply confusion in the parent only.
            assert engine.stats.parallel_executed == evolutions_after_first
            assert engine.stats.state_cache_hits > 0

        # And the parallel sweep matches the serial sweep bit for bit.
        serial = ExecutionEngine()
        with ExecutionEngine(workers=2) as parallel:
            for factor in (1.0, 2.0):
                model = NOISE.with_readout_scaled(factor)
                a = serial.execute_many(circuits, model, shots=256, seed=9)
                b = parallel.execute_many(circuits, model, shots=256, seed=9)
                assert all(_results_identical(x, y) for x, y in zip(a, b))

    def test_dm_state_entries_warm_readout_sweeps(self, tmp_path):
        # The readout-factored density-matrix state entries persist too: a
        # sweep over measurement-error rates in a *new* engine re-simulates
        # no gate noise.
        circuit = _subset_workload()[0]
        ExecutionEngine(cache_dir=str(tmp_path)).execute(circuit, NOISE)
        warm = ExecutionEngine(cache_dir=str(tmp_path))
        warm.execute(circuit, NOISE.with_readout_scaled(2.0))
        assert warm.stats.state_cache_hits == 1

    def test_roundtrip_and_miss(self, tmp_path):
        cache = PersistentResultCache(tmp_path)
        key = ("fp", "noise-fp", "density_matrix", None, 7, None, None)
        assert cache.get(key) is None
        cache.put(key, {"payload": [1.0, 2.0]})
        assert cache.get(key) == {"payload": [1.0, 2.0]}
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_canonical_keys_are_content_addressed(self, tmp_path):
        # Equal tuples produce equal addresses regardless of process/py-hash
        # salt; different tuples must not collide on repr.
        key_a = ("fp", ("a", 1), None, True)
        key_b = ("fp", ("a", 1), None, True)
        assert canonical_key_bytes(key_a) == canonical_key_bytes(key_b)
        assert canonical_key_bytes(key_a) != canonical_key_bytes(("fp", ("a", 1), None, False))

    def test_corrupt_entry_is_a_miss_and_heals(self, tmp_path):
        cache = PersistentResultCache(tmp_path)
        key = ("k",)
        cache.put(key, "value")
        [(path, _, _)] = list(cache._entries())
        with open(path, "wb") as handle:
            handle.write(b"garbage that is not a cache entry")
        assert cache.get(key) is None  # corrupt -> miss
        assert not os.path.exists(path)  # and the bad file is removed
        cache.put(key, "value2")  # the slot heals
        assert cache.get(key) == "value2"

    def test_truncated_pickle_is_a_miss(self, tmp_path):
        cache = PersistentResultCache(tmp_path)
        key = ("k",)
        cache.put(key, {"big": list(range(100))})
        [(path, _, _)] = list(cache._entries())
        payload = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])
        assert cache.get(key) is None

    def test_format_version_is_part_of_the_path(self, tmp_path):
        cache = PersistentResultCache(tmp_path)
        assert f"v{CACHE_FORMAT_VERSION}" in cache.root
        # A foreign/old tree next to the versioned one is never read.
        alien = os.path.join(str(tmp_path), "v0")
        os.makedirs(alien)
        with open(os.path.join(alien, "x.pkl"), "wb") as handle:
            pickle.dump("old-format", handle)
        assert cache.get(("k",)) is None

    def test_atomic_publish_leaves_no_temp_files(self, tmp_path):
        cache = PersistentResultCache(tmp_path)
        for index in range(10):
            cache.put((index,), index)
        leftovers = [
            name
            for _, _, names in os.walk(str(tmp_path))
            for name in names
            if name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_lru_size_cap_evicts_oldest(self, tmp_path):
        cache = PersistentResultCache(tmp_path, max_bytes=4096)
        # Write far more than the cap allows in aggregate.
        for index in range(70):
            cache.put((index,), "x" * 256)
        assert cache.total_bytes() <= 4096
        assert cache.evictions > 0

    def test_overwrite_does_not_inflate_size_accounting(self, tmp_path):
        # Regression: put() added the new payload's size without
        # subtracting the replaced entry's, so rewriting one hot key
        # inflated _approx_bytes until spurious evictions kicked in.
        cache = PersistentResultCache(tmp_path, max_bytes=64 * 1024)
        for _ in range(50):
            cache.put(("hot",), "x" * 1024)
        assert len(cache) == 1
        assert cache._approx_bytes == cache.total_bytes()
        assert cache.evictions == 0

    def test_overwrite_accounting_tracks_shrinking_payloads(self, tmp_path):
        cache = PersistentResultCache(tmp_path, max_bytes=64 * 1024)
        cache.put(("k",), "x" * 4096)
        cache.put(("k",), "x")  # replacement smaller than the original
        assert cache._approx_bytes == cache.total_bytes()
        assert cache._approx_bytes < 4096

    def test_write_failure_is_swallowed(self, tmp_path, monkeypatch):
        # An unusable cache directory must cost recomputation, never an
        # exception out of a successful simulation.
        import tempfile as tempfile_module

        cache = PersistentResultCache(tmp_path)

        def refuse(*args, **kwargs):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(tempfile_module, "mkstemp", refuse)
        cache.put(("k",), "value")  # must not raise
        assert cache.write_errors == 1
        monkeypatch.undo()
        assert cache.get(("k",)) is None  # nothing was stored
        cache.put(("k",), "value")  # healthy again
        assert cache.get(("k",)) == "value"

    def test_orphaned_temp_files_are_reaped(self, tmp_path):
        # A writer killed between mkstemp and os.replace leaves a .tmp the
        # ordinary read/evict paths never touch; clear() and eviction reap
        # them so crashes cannot accumulate untracked disk usage.
        cache = PersistentResultCache(tmp_path)
        cache.put(("a",), 1)
        shard = os.path.dirname(cache._path(("a",)))
        orphan = os.path.join(shard, "deadbeef.tmp")
        with open(orphan, "wb") as handle:
            handle.write(b"half-written entry")
        old = 1_000_000_000  # well past any reaping age floor
        os.utime(orphan, (old, old))
        cache._reap_temp_files()
        assert not os.path.exists(orphan)

    def test_clear(self, tmp_path):
        cache = PersistentResultCache(tmp_path)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        shard = os.path.dirname(cache._path(("a",)))
        with open(os.path.join(shard, "fresh.tmp"), "wb") as handle:
            handle.write(b"x")
        cache.clear()
        assert len(cache) == 0
        assert cache.get(("a",)) is None
        # clear() reaps temp files regardless of age.
        assert not any(
            name.endswith(".tmp")
            for _, _, names in os.walk(str(tmp_path))
            for name in names
        )
