"""Correctness tests for the gate-fusion pre-pass (:mod:`repro.simulators.fusion`).

Fusion must be observationally invisible: the fused program yields the same
state (ideal) and the same exact noisy distribution (density matrix) as the
gate-by-gate reference, with noise sites slotted between fused blocks exactly
where they sat in the original circuit.
"""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.noise import NoiseModel
from repro.noise.channels import depolarizing_channel
from repro.simulators import (
    fuse_circuit,
    noisy_distribution_density_matrix,
    simulate_statevector,
)


def random_circuit(
    rng: np.random.Generator,
    num_qubits: int,
    num_gates: int = 25,
    barriers: bool = False,
) -> QuantumCircuit:
    qc = QuantumCircuit(num_qubits, num_qubits)
    one_q = ["h", "x", "s", "t", "sx"]
    for _ in range(num_gates):
        kind = rng.integers(0, 4)
        if kind == 0:
            getattr(qc, one_q[rng.integers(0, len(one_q))])(int(rng.integers(0, num_qubits)))
        elif kind == 1:
            qc.rz(float(rng.uniform(0, 2 * np.pi)), int(rng.integers(0, num_qubits)))
        elif kind == 2 and num_qubits >= 2:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            qc.cx(int(a), int(b))
        else:
            if num_qubits >= 2:
                a, b = rng.choice(num_qubits, size=2, replace=False)
                qc.cz(int(a), int(b))
        if barriers and rng.random() < 0.15:
            qc.barrier()
    qc.measure_all()
    return qc


class TestFusedProgramStructure:
    def test_ideal_circuit_fuses_to_fewer_ops(self):
        qc = QuantumCircuit(3, 3)
        qc.h(0).cx(0, 1).rz(0.3, 1).cx(1, 2).h(2)
        program = fuse_circuit(qc)
        assert program.num_gates == 5
        assert len(program.operations) < 5

    def test_max_qubits_zero_disables_fusion(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0).h(0).cx(0, 1)
        program = fuse_circuit(qc, max_qubits=0)
        assert len(program.operations) == 3
        assert all(not op.sites for op in program.operations)

    def test_support_bound_respected(self, make_rng):
        rng = make_rng(7)
        qc = random_circuit(rng, 5, num_gates=40)
        for max_qubits in (1, 2, 3):
            program = fuse_circuit(qc, max_qubits=max_qubits)
            assert all(len(op.qubits) <= max(max_qubits, 2) for op in program.operations)

    def test_wide_gate_forms_its_own_block(self):
        qc = QuantumCircuit(3, 3)
        qc.h(0).ccx(0, 1, 2).h(2)
        program = fuse_circuit(qc, max_qubits=2)
        assert any(len(op.qubits) == 3 for op in program.operations)

    def test_barrier_is_a_fusion_boundary(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.barrier()
        qc.h(0)
        program = fuse_circuit(qc)
        assert len(program.operations) == 2

    def test_measurement_is_a_fusion_boundary(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.measure(0, 0)
        qc.h(1)
        qc.measure(1, 1)
        program = fuse_circuit(qc)
        assert len(program.operations) == 2

    def test_noisy_gate_terminates_its_block(self):
        model = NoiseModel()
        model.set_gate_error("cx", depolarizing_channel(0.05, 2))
        qc = QuantumCircuit(2, 2)
        qc.rz(0.1, 0)
        qc.cx(0, 1)
        qc.rz(0.2, 1)
        program = fuse_circuit(qc, model)
        # rz+cx fuse into one block that must end at the noisy cx; the
        # trailing rz starts a fresh block after the noise site.
        assert len(program.operations) == 2
        assert len(program.operations[0].sites) == 1
        channel, wires = program.operations[0].sites[0]
        assert wires == (0, 1)
        assert not program.operations[1].sites

    def test_identity_channels_are_dropped(self):
        from repro.noise.channels import identity_channel

        model = NoiseModel()
        model.set_gate_error("h", identity_channel(1))
        qc = QuantumCircuit(1, 1)
        qc.h(0).h(0)
        program = fuse_circuit(qc, model)
        assert all(not op.sites for op in program.operations)
        # With no real noise the two h gates still fuse.
        assert len(program.operations) == 1

    def test_non_gate_instruction_rejected(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.reset(0)
        with pytest.raises(ValueError, match="cannot simulate"):
            fuse_circuit(qc)


class TestFusionCorrectness:
    @pytest.mark.parametrize("num_qubits", [2, 3, 4, 5])
    def test_ideal_state_matches_reference(self, num_qubits, make_rng):
        rng = make_rng(100 + num_qubits)
        for trial in range(5):
            qc = random_circuit(rng, num_qubits, barriers=(trial % 2 == 0))
            stripped = qc.remove_final_measurements()
            fused = simulate_statevector(stripped, fusion=True)
            reference = simulate_statevector(stripped, fusion=False)
            assert fused.fidelity(reference) == pytest.approx(1.0, abs=1e-10)

    @pytest.mark.parametrize("num_qubits", [2, 3, 4])
    def test_noisy_distribution_matches_reference(self, num_qubits, make_rng):
        # The exact density-matrix path makes noise-site placement visible:
        # moving a channel across a gate changes the distribution.
        rng = make_rng(200 + num_qubits)
        model = NoiseModel.depolarizing(p1=0.01, p2=0.04, readout=0.03)
        for _ in range(4):
            qc = random_circuit(rng, num_qubits)
            fused, qubits_fused = noisy_distribution_density_matrix(qc, model, fusion=True)
            reference, qubits_ref = noisy_distribution_density_matrix(qc, model, fusion=False)
            assert qubits_fused == qubits_ref
            for outcome in range(2**num_qubits):
                assert fused.get(outcome) == pytest.approx(reference.get(outcome), abs=1e-10)

    def test_partial_noise_site_placement(self, make_rng):
        # Noise only on cx: 1q runs around each cx fuse freely, yet the
        # distribution must equal the unfused reference exactly — a noise
        # site slid across a neighbouring gate would show up here.
        model = NoiseModel()
        model.set_gate_error("cx", depolarizing_channel(0.1, 2))
        rng = make_rng(42)
        for _ in range(5):
            qc = random_circuit(rng, 3)
            fused, _ = noisy_distribution_density_matrix(qc, model, fusion=True)
            reference, _ = noisy_distribution_density_matrix(qc, model, fusion=False)
            for outcome in range(8):
                assert fused.get(outcome) == pytest.approx(reference.get(outcome), abs=1e-10)

    def test_unsorted_wire_order_embedding(self):
        # cx(1, 0) has wires in descending order; the embedded matrix must
        # respect the wire tuple, not the sorted support.
        qc = QuantumCircuit(2, 2)
        qc.x(1)
        qc.cx(1, 0)
        state = simulate_statevector(qc, fusion=True)
        assert abs(state.data[0b11]) == pytest.approx(1.0)
