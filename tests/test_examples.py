"""Smoke tests for the ``examples/`` scripts.

Each script is executed in-process (same interpreter, no subprocess
overhead) with stdout captured; the test asserts it completes and that
every fidelity it reports is a finite probability-like number.  This keeps
the examples honest: an API change that breaks a script, or a regression
that sends a fidelity to NaN/0, fails the suite instead of rotting in the
docs.
"""

from __future__ import annotations

import contextlib
import io
import math
import os
import re
import runpy

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "examples")

# A fidelity value is whatever number follows the word "fidelity" on an
# output line ("QuTracer fidelity    : 0.93", "unmitigated: fidelity 0.903").
_FIDELITY = re.compile(r"fidelity\s*[:=]?\s*([0-9]+(?:\.[0-9]+)?(?:[eE][-+]?[0-9]+)?)")

_EXAMPLES = [
    pytest.param("quickstart.py", 3, id="quickstart"),
    pytest.param("qpe_phase_readout.py", 2, id="qpe"),
    pytest.param("vqe_error_mitigation.py", 4, id="vqe"),
    # ~30s: a full subset-size-2 QuTracer run on a 6-qubit QAOA circuit.
    pytest.param("qaoa_maxcut.py", 2, id="qaoa", marks=pytest.mark.slow),
]


def _all_example_scripts() -> set[str]:
    return {name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")}


def test_every_example_is_covered():
    """A new example script must be added to the smoke-test table."""
    covered = {param.values[0] for param in _EXAMPLES}
    assert covered == _all_example_scripts()


@pytest.mark.parametrize("script,min_fidelity_lines", _EXAMPLES)
def test_example_completes_with_finite_fidelities(script, min_fidelity_lines):
    path = os.path.join(EXAMPLES_DIR, script)
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        runpy.run_path(path, run_name="__main__")
    output = buffer.getvalue()
    fidelities = [float(match) for match in _FIDELITY.findall(output)]
    assert len(fidelities) >= min_fidelity_lines, (
        f"{script} printed {len(fidelities)} fidelity value(s), "
        f"expected >= {min_fidelity_lines}:\n{output}"
    )
    for value in fidelities:
        assert math.isfinite(value), f"{script} reported a non-finite fidelity:\n{output}"
        assert -1e-9 <= value <= 1.0 + 1e-9, (
            f"{script} reported fidelity {value} outside [0, 1]:\n{output}"
        )
