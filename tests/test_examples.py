"""Smoke tests for the ``examples/`` scripts.

Each script is executed in-process (same interpreter, no subprocess
overhead) with stdout captured; the test asserts it completes and that
every fidelity it reports is a finite probability-like number.  This keeps
the examples honest: an API change that breaks a script, or a regression
that sends a fidelity to NaN/0, fails the suite instead of rotting in the
docs.
"""

from __future__ import annotations

import contextlib
import io
import math
import os
import re
import runpy

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "examples")

# A fidelity value is whatever number follows the word "fidelity" on an
# output line ("QuTracer fidelity    : 0.93", "unmitigated: fidelity 0.903").
_FIDELITY = re.compile(r"fidelity\s*[:=]?\s*([0-9]+(?:\.[0-9]+)?(?:[eE][-+]?[0-9]+)?)")

_EXAMPLES = [
    pytest.param("quickstart.py", 3, id="quickstart"),
    pytest.param("qpe_phase_readout.py", 2, id="qpe"),
    pytest.param("vqe_error_mitigation.py", 4, id="vqe"),
    # ~30s: a full subset-size-2 QuTracer run on a 6-qubit QAOA circuit.
    pytest.param("qaoa_maxcut.py", 2, id="qaoa", marks=pytest.mark.slow),
]

# Scripts whose dedicated test below already runs them once and applies the
# same finite-fidelity checks — a full calibration is the most expensive
# non-slow script, so it is not executed a second time by the generic smoke
# test.  Maps script -> minimum fidelity lines its output must contain.
_COVERED_BY_DEDICATED_TEST = {"calibrate_and_mitigate.py": 16}


def _all_example_scripts() -> set[str]:
    return {name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")}


def test_every_example_is_covered():
    """A new example script must be added to the smoke-test table."""
    covered = {param.values[0] for param in _EXAMPLES} | set(_COVERED_BY_DEDICATED_TEST)
    assert covered == _all_example_scripts()


def test_calibrate_and_mitigate_learned_model():
    """The calibrate -> learn -> mitigate example meets its documented tolerances.

    Every tolerance is derived in the example's module docstring (binomial /
    fit-uncertainty bookkeeping at 8192 shots; see also tests/conftest.py);
    all runs are seeded, so the assertions are deterministic on a given
    numpy version.  This test doubles as the script's smoke test (it is in
    ``_COVERED_BY_DEDICATED_TEST``), so the output is captured and held to
    the same finite-fidelity bar as the generic runner.
    """
    module = runpy.run_path(os.path.join(EXAMPLES_DIR, "calibrate_and_mitigate.py"))
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        results = module["run_demo"]()
    output = buffer.getvalue()
    _assert_finite_fidelities(
        "calibrate_and_mitigate.py",
        output,
        _COVERED_BY_DEDICATED_TEST["calibrate_and_mitigate.py"],
    )

    # The example ends with the engine's own metrics summary: a hit-rate
    # line and per-stage latency quantiles, all finite.
    hit_rate = re.search(r"hit-rate .*rate=([0-9.]+)%", output)
    assert hit_rate is not None, f"no metrics hit-rate line in output:\n{output}"
    assert 0.0 <= float(hit_rate.group(1)) <= 100.0
    stage_lines = re.findall(
        r"stage (\w+)\s+n=(\d+)\s+p50=([0-9.]+)ms p95=([0-9.]+)ms p99=([0-9.]+)ms",
        output,
    )
    stages = {name for name, *_ in stage_lines}
    assert {"prepare", "cache", "deliver"} <= stages, stages
    for name, count, p50, p95, p99 in stage_lines:
        assert int(count) > 0, name
        for value in (p50, p95, p99):
            assert math.isfinite(float(value)), (name, value)

    # Learned parameters reproduce the reference device (calibrated subset).
    assert results["rel_err_median_2q_channel_infidelity"] <= 0.35
    assert results["rel_err_median_readout_error"] <= 0.25
    assert results["rel_err_median_1q_channel_infidelity"] <= 0.60
    assert results["max_confusion_abs_err"] <= 0.03

    # Mitigation driven by the *learned* model improves over unmitigated.
    # QuTracer and PCS margins are structural (PCS compares exact
    # distributions); Jigsaw's is the small sampled denoising gain at the
    # pinned seed (zero crosstalk => zero infinite-shot gain, Fig. 7).
    assert results["qutracer_learned_mitigated"] > results["qutracer_learned_unmitigated"] + 0.02
    assert results["pcs_learned_mitigated"] > results["pcs_learned_unmitigated"]
    assert results["jigsaw_learned_mitigated"] > results["jigsaw_learned_unmitigated"]

    # The learned model is a faithful stand-in: per-method fidelities track
    # the ground-truth model closely.
    for method in ("qutracer", "qutracer_compiled", "jigsaw", "pcs"):
        for kind in ("unmitigated", "mitigated"):
            gap = abs(results[f"{method}_learned_{kind}"] - results[f"{method}_true_{kind}"])
            assert gap <= 0.05, (method, kind, gap)

    # Hardware-aware compilation driven by the *learned* model: the compiled
    # QuTracer run (layout + SABRE routing + basis translation against the
    # learned coupling/calibration, executed under the learned noise model)
    # still clears its unmitigated baseline by a structural margin, its copy
    # gate counts are genuine post-transpile counts, and every compiled
    # circuit went through the engine's CompilationCache (the warm recompile
    # of the benchmark circuit is a cache hit, not a second routing).
    assert (
        results["qutracer_compiled_learned_mitigated"]
        > results["qutracer_compiled_learned_unmitigated"] + 0.02
    )
    assert results["compiled_copy_2q_gates_learned"] > 0
    assert results["compiled_iqft_2q_gates"] > 0
    assert results["compile_misses"] > 0
    assert results["compile_hits"] >= 1


def _assert_finite_fidelities(script: str, output: str, min_fidelity_lines: int) -> None:
    fidelities = [float(match) for match in _FIDELITY.findall(output)]
    assert len(fidelities) >= min_fidelity_lines, (
        f"{script} printed {len(fidelities)} fidelity value(s), "
        f"expected >= {min_fidelity_lines}:\n{output}"
    )
    for value in fidelities:
        assert math.isfinite(value), f"{script} reported a non-finite fidelity:\n{output}"
        assert -1e-9 <= value <= 1.0 + 1e-9, (
            f"{script} reported fidelity {value} outside [0, 1]:\n{output}"
        )


@pytest.mark.parametrize("script,min_fidelity_lines", _EXAMPLES)
def test_example_completes_with_finite_fidelities(script, min_fidelity_lines):
    path = os.path.join(EXAMPLES_DIR, script)
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        runpy.run_path(path, run_name="__main__")
    _assert_finite_fidelities(script, buffer.getvalue(), min_fidelity_lines)
