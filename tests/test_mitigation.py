"""Tests for the Jigsaw, PCS and SQEM baselines."""

import numpy as np
import pytest

from repro.algorithms import vqe_circuit
from repro.circuits import QuantumCircuit
from repro.distributions import ProbabilityDistribution, hellinger_fidelity
from repro.mitigation import (
    PauliCheck,
    build_pcs_circuit,
    build_subset_circuit,
    default_subsets,
    post_select,
    run_jigsaw,
    run_pcs,
    run_sqem,
)
from repro.noise import NoiseModel
from repro.simulators import execute, ideal_distribution


def ghz(n=3):
    qc = QuantumCircuit(n)
    qc.h(0)
    for i in range(n - 1):
        qc.cx(i, i + 1)
    qc.measure_all()
    return qc


class TestJigsaw:
    def test_default_subsets(self):
        assert default_subsets([0, 1, 2, 3], 2) == [[0, 1], [2, 3]]
        assert default_subsets([0, 1, 2], 2) == [[0, 1], [2]]
        assert default_subsets([5, 7], 1) == [[5], [7]]
        with pytest.raises(ValueError):
            default_subsets([0], 0)

    def test_build_subset_circuit(self):
        circuit = ghz(3)
        subset_circuit = build_subset_circuit(circuit, [0, 2])
        assert subset_circuit.measured_qubits == [0, 2]
        assert subset_circuit.count_ops()["cx"] == 2

    def test_build_subset_requires_measured_qubit(self):
        qc = QuantumCircuit(3)
        qc.h(0).measure_subset([0])
        with pytest.raises(ValueError):
            build_subset_circuit(qc, [2])

    def test_jigsaw_mitigates_readout_on_subset_qubits(self):
        # A product-state circuit where readout errors dominate: Jigsaw's local
        # distributions see the same errors in our crosstalk-free model, so the
        # result should not be *worse* than the original (paper Fig. 7).
        circuit = ghz(4)
        noise = NoiseModel.depolarizing(p1=0.001, p2=0.01, readout=0.08)
        ideal = ideal_distribution(circuit)
        result = run_jigsaw(circuit, noise, shots=6000, subset_size=2, seed=1)
        raw_fidelity = hellinger_fidelity(result.global_distribution, ideal)
        mitigated_fidelity = hellinger_fidelity(result.mitigated_distribution, ideal)
        assert mitigated_fidelity >= raw_fidelity - 0.05

    def test_jigsaw_result_accounting(self):
        circuit = ghz(4)
        noise = NoiseModel.depolarizing(p2=0.01)
        result = run_jigsaw(circuit, noise, shots=4000, subset_size=2, seed=0)
        assert result.shots_global == 2000
        assert len(result.subsets) == 2
        assert result.total_shots <= 4000 + len(result.subsets)

    def test_jigsaw_adds_measurements_if_missing(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        noise = NoiseModel.depolarizing(p2=0.02)
        result = run_jigsaw(qc, noise, shots=2000, subset_size=1, seed=3)
        assert result.mitigated_distribution.num_bits == 2

    def test_jigsaw_requires_subsets(self):
        with pytest.raises(ValueError):
            run_jigsaw(ghz(2), NoiseModel.ideal(), shots=100, subsets=[])


class TestPostSelect:
    def test_basic_post_selection(self):
        dist = ProbabilityDistribution({0b00: 0.4, 0b01: 0.4, 0b10: 0.1, 0b11: 0.1}, 2)
        kept, rate = post_select(dist, required_zero_bits=[1], keep_bits=[0])
        assert rate == pytest.approx(0.8)
        assert kept[0] == pytest.approx(0.5)
        assert kept[1] == pytest.approx(0.5)

    def test_everything_post_selected_away(self):
        dist = ProbabilityDistribution({0b10: 1.0}, 2)
        kept, rate = post_select(dist, [1], [0])
        assert rate == 0.0
        assert kept[0] == pytest.approx(0.5)


class TestPCS:
    def test_check_validation(self):
        with pytest.raises(ValueError):
            PauliCheck(pauli={0: "Q"}, region=(0, 1))
        with pytest.raises(ValueError):
            PauliCheck(pauli={0: "Z"}, region=(2, 1))

    def test_build_adds_ancilla_and_checks(self):
        circuit = ghz(2)
        check = PauliCheck(pauli={0: "Z"}, region=(0, 2))
        instrumented, ancillas = build_pcs_circuit(circuit, [check])
        assert ancillas == [2]
        ops = instrumented.count_ops()
        assert ops["h"] >= 3  # original H + two ancilla Hadamards
        assert ops["cz"] == 2  # left + right check
        assert ops["measure"] == 3

    def test_region_out_of_range(self):
        circuit = ghz(2)
        with pytest.raises(ValueError):
            build_pcs_circuit(circuit, [PauliCheck(pauli={0: "Z"}, region=(0, 99))])

    def test_noiseless_pcs_preserves_distribution(self):
        # Z check on the control of the CX chain commutes with the payload.
        circuit = ghz(3)
        check = PauliCheck(pauli={0: "Z"}, region=(1, 3))
        result = run_pcs(circuit, [check], NoiseModel.ideal())
        assert result.post_selection_rate == pytest.approx(1.0)
        assert hellinger_fidelity(result.mitigated_distribution, ideal_distribution(circuit)) == pytest.approx(1.0)

    def test_ideal_pcs_mitigates_gate_errors(self):
        circuit = vqe_circuit(4, 1, seed=2)
        noise = NoiseModel.depolarizing(p1=0.002, p2=0.03)
        ideal = ideal_distribution(circuit)
        raw = execute(circuit, noise)
        checks = [
            PauliCheck(pauli={q: "Z"}, region=_cz_region(circuit)) for q in range(4)
        ]
        mitigated = run_pcs(circuit, checks, noise, ideal_checks=True, seed=1)
        assert hellinger_fidelity(mitigated.mitigated_distribution, ideal) > hellinger_fidelity(
            raw.distribution, ideal
        )
        assert 0.0 < mitigated.post_selection_rate <= 1.0

    def test_noisy_checks_cost_fidelity_vs_ideal_checks(self):
        circuit = vqe_circuit(4, 1, seed=2)
        noise = NoiseModel.depolarizing(p1=0.002, p2=0.03, readout=0.02)
        ideal = ideal_distribution(circuit)
        checks = [PauliCheck(pauli={1: "Z"}, region=_cz_region(circuit))]
        noisy = run_pcs(circuit, checks, noise, ideal_checks=False, seed=1)
        perfect = run_pcs(circuit, checks, noise, ideal_checks=True, seed=1)
        assert hellinger_fidelity(perfect.mitigated_distribution, ideal) >= hellinger_fidelity(
            noisy.mitigated_distribution, ideal
        ) - 0.02


def _cz_region(circuit):
    """Instruction index range covering the CZ entangling block."""
    gate_indices = [i for i, inst in enumerate(circuit.data) if not inst.is_measurement]
    cz_positions = [i for i, inst in enumerate(circuit.data) if inst.name == "cz"]
    start = min(cz_positions)
    end = max(cz_positions) + 1
    return (start, end)


class TestSQEM:
    def test_sqem_improves_over_raw_and_costs_more_than_qutracer(self):
        from repro.core import QuTracer

        circuit = vqe_circuit(5, 1, seed=3)
        noise = NoiseModel.depolarizing(p1=0.001, p2=0.01, readout=0.08)
        ideal = ideal_distribution(circuit)
        raw = execute(circuit, noise)
        sqem = run_sqem(circuit, noise, shots=6000, shots_per_circuit=None, seed=4)
        tracer = QuTracer(noise_model=noise, shots=6000, shots_per_circuit=None, seed=4).run(circuit)
        assert sqem.mitigated_fidelity > hellinger_fidelity(raw.distribution, ideal)
        # SQEM runs more circuit copies and larger copies than QuTracer.
        assert sqem.num_circuits > tracer.num_circuits
        assert sqem.average_copy_two_qubit_gates >= tracer.average_copy_two_qubit_gates

    def test_sqem_requires_noise_source(self):
        with pytest.raises(ValueError):
            run_sqem(ghz(2))
