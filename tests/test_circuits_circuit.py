"""Unit tests for QuantumCircuit construction and transformation."""

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, standard_gate
from repro.circuits.circuit import _expand_gate


class TestBuilder:
    def test_chaining_and_len(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).cz(1, 2).rz(0.3, 2)
        assert len(qc) == 4
        assert qc.count_ops() == {"h": 1, "cx": 1, "cz": 1, "rz": 1}

    def test_out_of_range_qubit_raises(self):
        qc = QuantumCircuit(2)
        with pytest.raises(ValueError):
            qc.h(2)

    def test_out_of_range_clbit_raises(self):
        qc = QuantumCircuit(2, 1)
        with pytest.raises(ValueError):
            qc.measure(0, 1)

    def test_measure_all_extends_clbits(self):
        qc = QuantumCircuit(4)
        qc.h(0).measure_all()
        assert qc.num_clbits == 4
        assert len(qc.measurements) == 4
        assert qc.measured_qubits == [0, 1, 2, 3]

    def test_measure_subset(self):
        qc = QuantumCircuit(5)
        qc.measure_subset([1, 3])
        assert qc.measured_qubits == [1, 3]
        assert qc.num_clbits == 4

    def test_two_qubit_gate_count(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).cz(1, 2).swap(0, 2).ccx(0, 1, 2)
        assert qc.num_two_qubit_gates() == 3

    def test_depth_simple(self):
        qc = QuantumCircuit(2)
        qc.h(0).h(1)
        assert qc.depth() == 1
        qc.cx(0, 1)
        assert qc.depth() == 2
        qc.h(0)
        assert qc.depth() == 3

    def test_depth_ignores_barriers_by_default(self):
        qc = QuantumCircuit(2)
        qc.h(0).barrier().h(0)
        assert qc.depth() == 2

    def test_prepare_states(self):
        qc = QuantumCircuit(1)
        qc.prepare("+", 0)
        assert qc.data[0].operation.name == "prep_+"


class TestTransformations:
    def test_copy_is_independent(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        other = qc.copy()
        other.x(1)
        assert len(qc) == 1 and len(other) == 2

    def test_compose_with_mapping(self):
        inner = QuantumCircuit(2)
        inner.cx(0, 1)
        outer = QuantumCircuit(4)
        outer.h(3)
        combined = outer.compose(inner, qubits=[3, 1])
        assert combined.data[-1].qubits == (3, 1)
        assert combined.num_qubits == 4

    def test_compose_wrong_mapping_length(self):
        with pytest.raises(ValueError):
            QuantumCircuit(3).compose(QuantumCircuit(2), qubits=[0])

    def test_inverse_undoes_circuit(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).rz(0.3, 1).t(0)
        identity = qc.compose(qc.inverse()).to_matrix()
        assert np.allclose(identity, np.eye(4))

    def test_inverse_rejects_measurements(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0).measure(0, 0)
        with pytest.raises(ValueError):
            qc.inverse()

    def test_remove_final_measurements(self):
        qc = QuantumCircuit(2)
        qc.h(0).measure_all()
        stripped = qc.remove_final_measurements()
        assert not stripped.has_measurements
        assert stripped.count_ops()["h"] == 1

    def test_remap_qubits(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        remapped = qc.remap_qubits({0: 4, 1: 2}, num_qubits=6)
        assert remapped.num_qubits == 6
        assert remapped.data[0].qubits == (4, 2)

    def test_without_instructions(self):
        qc = QuantumCircuit(1)
        qc.h(0).x(0).z(0)
        pruned = qc.without_instructions([1])
        assert [inst.name for inst in pruned.data] == ["h", "z"]


class TestToMatrix:
    def test_bell_circuit_unitary(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        state = qc.to_matrix() @ np.array([1, 0, 0, 0], dtype=complex)
        expected = np.array([1, 0, 0, 1]) / math.sqrt(2)
        assert np.allclose(state, expected)

    def test_matches_kron_for_parallel_gates(self):
        qc = QuantumCircuit(2)
        qc.x(0).z(1)
        # little-endian: qubit 1 is the left factor of the kron product
        expected = np.kron(standard_gate("z").matrix, standard_gate("x").matrix)
        assert np.allclose(qc.to_matrix(), expected)

    def test_gate_on_nonadjacent_wires(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 2)
        matrix = qc.to_matrix()
        # |001> (q0=1) -> |101> (q2 flipped)
        assert np.allclose(matrix @ np.eye(8)[0b001], np.eye(8)[0b101])
        # |011> -> |111>
        assert np.allclose(matrix @ np.eye(8)[0b011], np.eye(8)[0b111])
        # control 0 untouched
        assert np.allclose(matrix @ np.eye(8)[0b010], np.eye(8)[0b010])

    def test_reversed_wire_order_gate(self):
        qc = QuantumCircuit(2)
        qc.cx(1, 0)  # control qubit 1, target qubit 0
        matrix = qc.to_matrix()
        assert np.allclose(matrix @ np.eye(4)[0b10], np.eye(4)[0b11])
        assert np.allclose(matrix @ np.eye(4)[0b01], np.eye(4)[0b01])

    def test_rejects_measurements(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        with pytest.raises(ValueError):
            qc.to_matrix()

    def test_expand_gate_dimensions(self):
        matrix = _expand_gate(standard_gate("h").matrix, (1,), 3)
        assert matrix.shape == (8, 8)
        assert np.allclose(matrix @ matrix.conj().T, np.eye(8))
