"""Tests for probability distributions, Hellinger fidelity and Bayesian updates."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    Counts,
    ProbabilityDistribution,
    bayesian_update,
    hellinger_distance,
    hellinger_fidelity,
    iterative_bayesian_update,
    scatter_outcomes,
    total_variation_distance,
)


class TestScatterOutcomes:
    def test_bits_move_to_positions(self):
        assert scatter_outcomes([(0b01, 0.25), (0b10, 0.75)], [2, 0]) == {
            0b100: 0.25,
            0b001: 0.75,
        }

    def test_integer_weights_stay_integers(self):
        expanded = scatter_outcomes([(1, 3), (0, 7)], [1])
        assert expanded == {2: 3, 0: 7}
        assert all(isinstance(v, int) for v in expanded.values())

    def test_outcome_wider_than_positions_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            scatter_outcomes([(0b101, 0.5)], [4, 6])


class TestProbabilityDistribution:
    def test_from_dict_with_int_and_str_keys(self):
        dist = ProbabilityDistribution({"01": 0.25, 2: 0.75}, num_bits=2)
        assert dist["01"] == pytest.approx(0.25)
        assert dist[2] == pytest.approx(0.75)

    def test_from_dense_array(self):
        dist = ProbabilityDistribution([0.1, 0.2, 0.3, 0.4], num_bits=2)
        assert dist[3] == pytest.approx(0.4)

    def test_wrong_dense_length_raises(self):
        with pytest.raises(ValueError):
            ProbabilityDistribution([0.5, 0.5, 0.0], num_bits=2)

    def test_negative_probability_raises(self):
        with pytest.raises(ValueError):
            ProbabilityDistribution({0: -0.1}, num_bits=1)

    def test_outcome_out_of_range_raises(self):
        with pytest.raises(ValueError):
            ProbabilityDistribution({4: 1.0}, num_bits=2)

    def test_bitstring_is_msb_first(self):
        dist = ProbabilityDistribution({0b10: 1.0}, num_bits=3)
        assert dist.bitstring(0b10) == "010"

    def test_normalized(self):
        dist = ProbabilityDistribution({0: 2.0, 1: 2.0}, num_bits=1).normalized()
        assert dist[0] == pytest.approx(0.5)
        assert dist.total == pytest.approx(1.0)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            ProbabilityDistribution({}, num_bits=1).normalized()

    def test_marginal_order_matters(self):
        # p(q1 q0): only outcome 0b01 (q0=1, q1=0)
        dist = ProbabilityDistribution({0b01: 1.0}, num_bits=2)
        assert dist.marginal([0]).to_dict() == {1: 1.0}
        assert dist.marginal([1]).to_dict() == {0: 1.0}
        assert dist.marginal([1, 0]).to_dict() == {0b10: 1.0}

    def test_marginal_sums_partners(self):
        dist = ProbabilityDistribution({0b00: 0.25, 0b10: 0.25, 0b01: 0.5}, num_bits=2)
        marg = dist.marginal([0])
        assert marg[0] == pytest.approx(0.5)
        assert marg[1] == pytest.approx(0.5)

    def test_marginal_duplicate_bits_raise(self):
        with pytest.raises(ValueError):
            ProbabilityDistribution({0: 1.0}, 2).marginal([0, 0])

    def test_expectation_z(self):
        dist = ProbabilityDistribution({0b0: 0.75, 0b1: 0.25}, num_bits=1)
        assert dist.expectation_z([0]) == pytest.approx(0.5)

    def test_expectation_z_parity(self):
        dist = ProbabilityDistribution({0b11: 1.0}, num_bits=2)
        assert dist.expectation_z([0, 1]) == pytest.approx(1.0)
        assert dist.expectation_z([0]) == pytest.approx(-1.0)

    def test_sampling_matches_distribution(self, make_rng):
        dist = ProbabilityDistribution({0: 0.8, 1: 0.2}, num_bits=1)
        counts = dist.sample(20000, make_rng(0))
        assert counts.shots == 20000
        # Hoeffding: P(|freq - 0.8| >= 0.02) <= 2 exp(-2 * 20000 * 0.02^2)
        # ~= 2.3e-7 under re-seeding; the pinned seed makes it deterministic.
        assert counts[0] / 20000 == pytest.approx(0.8, abs=0.02)

    def test_apply_bitwise_confusion(self):
        dist = ProbabilityDistribution({0b00: 1.0}, num_bits=2)
        noisy = dist.apply_bitwise_confusion({0: 0.1, 1: 0.2})
        assert noisy[0b00] == pytest.approx(0.9 * 0.8)
        assert noisy[0b01] == pytest.approx(0.1 * 0.8)
        assert noisy[0b10] == pytest.approx(0.9 * 0.2)
        assert noisy[0b11] == pytest.approx(0.1 * 0.2)

    def test_uniform_and_point(self):
        assert ProbabilityDistribution.uniform(2)[3] == pytest.approx(0.25)
        assert ProbabilityDistribution.point(2, 2)[2] == pytest.approx(1.0)

    def test_equality(self):
        a = ProbabilityDistribution({0: 0.5, 1: 0.5}, 1)
        b = ProbabilityDistribution([0.5, 0.5], 1)
        assert a == b


class TestCopies:
    def test_distribution_copy_is_independent(self):
        dist = ProbabilityDistribution({0: 0.5, 1: 0.5}, num_bits=1)
        clone = dist.copy()
        clone._probs[0] = 0.9
        assert dist[0] == pytest.approx(0.5)
        assert clone.num_bits == 1

    def test_counts_copy_is_independent(self):
        counts = Counts({0: 10, 1: 20}, num_bits=1)
        clone = counts.copy()
        clone._counts.clear()
        assert counts.shots == 30
        assert clone.num_bits == 1


class TestCounts:
    def test_round_trip(self):
        counts = Counts({"00": 30, "11": 70}, 2)
        dist = counts.to_distribution()
        assert dist[0b11] == pytest.approx(0.7)
        assert counts.shots == 100

    def test_merge(self):
        a = Counts({0: 10}, 1)
        b = Counts({0: 5, 1: 5}, 1)
        merged = a.merge(b)
        assert merged[0] == 15 and merged[1] == 5

    def test_merge_width_mismatch(self):
        with pytest.raises(ValueError):
            Counts({0: 1}, 1).merge(Counts({0: 1}, 2))


class TestHellinger:
    def test_identical_distributions(self):
        dist = ProbabilityDistribution({0: 0.3, 1: 0.7}, 1)
        assert hellinger_fidelity(dist, dist) == pytest.approx(1.0)
        assert hellinger_distance(dist, dist) == pytest.approx(0.0)

    def test_disjoint_distributions(self):
        a = ProbabilityDistribution({0: 1.0}, 1)
        b = ProbabilityDistribution({1: 1.0}, 1)
        assert hellinger_fidelity(a, b) == pytest.approx(0.0)
        assert hellinger_distance(a, b) == pytest.approx(1.0)

    def test_known_value(self):
        a = ProbabilityDistribution({0: 0.5, 1: 0.5}, 1)
        b = ProbabilityDistribution({0: 1.0}, 1)
        # BC = sqrt(0.5); F = BC^2 = 0.5
        assert hellinger_fidelity(a, b) == pytest.approx(0.5)

    def test_accepts_counts_and_dicts(self):
        counts = Counts({"0": 50, "1": 50}, 1)
        assert hellinger_fidelity(counts, {0: 0.5, 1: 0.5}) == pytest.approx(1.0)

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            hellinger_fidelity(
                ProbabilityDistribution({0: 1.0}, 1), ProbabilityDistribution({0: 1.0}, 2)
            )

    def test_total_variation(self):
        a = ProbabilityDistribution({0: 1.0}, 1)
        b = ProbabilityDistribution({0: 0.5, 1: 0.5}, 1)
        assert total_variation_distance(a, b) == pytest.approx(0.5)

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=4, max_size=4),
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=4, max_size=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_fidelity_bounds_and_symmetry(self, p_raw, q_raw):
        p = ProbabilityDistribution(np.array(p_raw) / sum(p_raw), 2)
        q = ProbabilityDistribution(np.array(q_raw) / sum(q_raw), 2)
        fidelity = hellinger_fidelity(p, q)
        assert 0.0 <= fidelity <= 1.0 + 1e-9
        assert fidelity == pytest.approx(hellinger_fidelity(q, p))


class TestBayesianUpdate:
    def test_marginal_matches_local_after_update(self):
        global_dist = ProbabilityDistribution({0b00: 0.4, 0b01: 0.1, 0b10: 0.3, 0b11: 0.2}, 2)
        local = ProbabilityDistribution({0: 0.9, 1: 0.1}, 1)
        updated = bayesian_update(global_dist, local, subset_bits=[0])
        assert updated.marginal([0])[0] == pytest.approx(0.9)
        assert updated.total == pytest.approx(1.0)

    def test_update_preserves_conditional_structure(self):
        global_dist = ProbabilityDistribution({0b00: 0.6, 0b10: 0.2, 0b01: 0.1, 0b11: 0.1}, 2)
        local = ProbabilityDistribution({0: 0.5, 1: 0.5}, 1)
        updated = bayesian_update(global_dist, local, subset_bits=[0])
        # Conditional on bit0=0, the ratio between 00 and 10 must be preserved (3:1).
        assert updated[0b00] / updated[0b10] == pytest.approx(3.0)

    def test_redistribute_mode_handles_zero_marginal(self):
        global_dist = ProbabilityDistribution({0b00: 1.0}, 2)
        local = ProbabilityDistribution({0: 0.5, 1: 0.5}, 1)
        updated = bayesian_update(global_dist, local, subset_bits=[0])
        assert updated.marginal([0])[1] == pytest.approx(0.5)

    def test_drop_mode_keeps_global_support(self):
        global_dist = ProbabilityDistribution({0b00: 1.0}, 2)
        local = ProbabilityDistribution({0: 0.5, 1: 0.5}, 1)
        updated = bayesian_update(global_dist, local, subset_bits=[0], zero_marginal_mode="drop")
        assert updated[0b00] == pytest.approx(1.0)

    def test_two_bit_subset(self):
        global_dist = ProbabilityDistribution(
            {0b000: 0.25, 0b011: 0.25, 0b101: 0.25, 0b110: 0.25}, 3
        )
        local = ProbabilityDistribution({0b00: 0.7, 0b11: 0.3}, 2)
        updated = bayesian_update(global_dist, local, subset_bits=[0, 1])
        marg = updated.marginal([0, 1])
        assert marg[0b00] == pytest.approx(0.7)
        assert marg[0b11] == pytest.approx(0.3)

    def test_invalid_arguments(self):
        dist = ProbabilityDistribution({0: 1.0}, 2)
        local = ProbabilityDistribution({0: 1.0}, 1)
        with pytest.raises(ValueError):
            bayesian_update(dist, local, subset_bits=[0, 0])
        with pytest.raises(ValueError):
            bayesian_update(dist, local, subset_bits=[5])
        with pytest.raises(ValueError):
            bayesian_update(dist, local, subset_bits=[0, 1])
        with pytest.raises(ValueError):
            bayesian_update(dist, local, subset_bits=[0], zero_marginal_mode="bogus")

    def test_iterative_update_multiple_subsets(self):
        global_dist = ProbabilityDistribution.uniform(2)
        local0 = ProbabilityDistribution({0: 0.8, 1: 0.2}, 1)
        local1 = ProbabilityDistribution({0: 0.3, 1: 0.7}, 1)
        updated = iterative_bayesian_update(
            global_dist, [(local0, [0]), (local1, [1])], rounds=3
        )
        assert updated.marginal([0])[0] == pytest.approx(0.8, abs=1e-6)
        assert updated.marginal([1])[0] == pytest.approx(0.3, abs=1e-6)

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=8, max_size=8),
        st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=50, deadline=None)
    def test_update_always_matches_local_marginal(self, raw, p0):
        global_dist = ProbabilityDistribution(np.array(raw) / sum(raw), 3)
        local = ProbabilityDistribution({0: p0, 1: 1 - p0}, 1)
        updated = bayesian_update(global_dist, local, subset_bits=[1])
        assert updated.marginal([1])[0] == pytest.approx(p0, abs=1e-9)
        assert updated.total == pytest.approx(1.0, abs=1e-9)
