"""Tests for basis translation, coupling maps, layout and routing."""

import math

import numpy as np
import pytest

from repro.algorithms import (
    qaoa_maxcut_circuit,
    qft_circuit,
    qpe_circuit,
    ring_graph,
    vqe_circuit,
)
from repro.circuits import QuantumCircuit, standard_gate
from repro.distributions import hellinger_fidelity
from repro.noise import fake_hanoi, linear_coupling
from repro.simulators import ideal_distribution
from repro.transpiler import (
    BASIS_GATES,
    CouplingMap,
    Layout,
    RoutingBudgetExceeded,
    count_two_qubit_basis_gates,
    decompose_to_basis,
    euler_zyz_angles,
    noise_aware_layout,
    route_circuit,
    sabre_route,
    transpile,
    trivial_layout,
)


def assert_equivalent_up_to_phase(circuit_a, circuit_b, atol=1e-7):
    a = circuit_a.to_matrix()
    b = circuit_b.to_matrix()
    index = np.unravel_index(np.argmax(np.abs(a)), a.shape)
    phase = b[index] / a[index]
    assert abs(abs(phase) - 1.0) < 1e-6
    assert np.allclose(a * phase, b, atol=atol)


class TestEulerAngles:
    @pytest.mark.parametrize("name, params", [
        ("h", ()), ("x", ()), ("s", ()), ("t", ()), ("sx", ()),
        ("rx", (0.7,)), ("ry", (2.1,)), ("rz", (-1.3,)), ("p", (0.9,)),
        ("u", (0.4, 1.1, -0.6)),
    ])
    def test_zyz_reconstruction(self, name, params):
        matrix = standard_gate(name, *params).matrix
        alpha, beta, gamma, delta = euler_zyz_angles(matrix)
        rz, ry = (lambda t: standard_gate("rz", t).matrix), (lambda t: standard_gate("ry", t).matrix)
        rebuilt = np.exp(1j * alpha) * rz(beta) @ ry(gamma) @ rz(delta)
        assert np.allclose(rebuilt, matrix, atol=1e-9)

    def test_random_unitaries(self, make_rng):
        rng = make_rng(5)
        for _ in range(20):
            q, _ = np.linalg.qr(rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2)))
            alpha, beta, gamma, delta = euler_zyz_angles(q)
            rz, ry = (lambda t: standard_gate("rz", t).matrix), (lambda t: standard_gate("ry", t).matrix)
            rebuilt = np.exp(1j * alpha) * rz(beta) @ ry(gamma) @ rz(delta)
            assert np.allclose(rebuilt, q, atol=1e-8)


class TestBasisTranslation:
    def test_only_basis_gates_remain(self):
        qc = QuantumCircuit(3)
        qc.h(0).t(1).cz(0, 1).cp(0.3, 1, 2).swap(0, 2).ccx(0, 1, 2)
        out = decompose_to_basis(qc)
        for inst in out.data:
            if inst.is_gate:
                assert inst.name in BASIS_GATES

    @pytest.mark.parametrize("builder", [
        lambda: qft_circuit(3),
        lambda: qpe_circuit(3, phase=0.375, measure=False),
        lambda: vqe_circuit(4, 2, measure=False),
        lambda: qaoa_maxcut_circuit(ring_graph(4), 2, measure=False),
    ])
    def test_equivalence_on_algorithm_circuits(self, builder):
        circuit = builder()
        assert_equivalent_up_to_phase(circuit, decompose_to_basis(circuit))

    def test_equivalence_on_mixed_gate_circuit(self):
        qc = QuantumCircuit(3)
        qc.h(0).s(1).sdg(2).crz(0.7, 2, 0).cry(0.4, 0, 1).crx(1.2, 1, 2)
        qc.rzz(0.5, 0, 1).ch(0, 2).cy(1, 0).cswap(0, 1, 2)
        assert_equivalent_up_to_phase(qc, decompose_to_basis(qc))

    def test_single_qubit_runs_are_merged(self):
        qc = QuantumCircuit(1)
        for _ in range(10):
            qc.h(0).t(0).s(0)
        out = decompose_to_basis(qc)
        # one merged unitary -> at most 5 basis gates
        assert len(out.gates) <= 5

    def test_adjacent_cx_cancellation(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1).cx(0, 1).h(0)
        out = decompose_to_basis(qc)
        assert out.count_ops().get("cx", 0) == 0

    def test_non_adjacent_cx_not_cancelled(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1).z(1).cx(0, 1)
        out = decompose_to_basis(qc)
        assert out.count_ops().get("cx", 0) == 2

    def test_measurements_and_barriers_preserved(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0).barrier().cx(0, 1).measure(0, 0).measure(1, 1)
        out = decompose_to_basis(qc)
        assert out.count_ops()["measure"] == 2
        assert out.count_ops()["barrier"] == 1

    def test_two_qubit_gate_count_metric(self):
        assert count_two_qubit_basis_gates(vqe_circuit(12, 1)) == 11
        assert count_two_qubit_basis_gates(vqe_circuit(15, 1)) == 14

    def test_cz_costs_one_cx(self):
        qc = QuantumCircuit(2)
        qc.cz(0, 1)
        assert count_two_qubit_basis_gates(qc) == 1

    def test_swap_costs_three_cx(self):
        qc = QuantumCircuit(2)
        qc.swap(0, 1)
        assert count_two_qubit_basis_gates(qc) == 3

    def test_cp_costs_two_cx(self):
        qc = QuantumCircuit(2)
        qc.cp(0.3, 0, 1)
        assert count_two_qubit_basis_gates(qc) == 2


class TestCouplingMap:
    def test_basic_queries(self):
        coupling = CouplingMap(linear_coupling(5))
        assert coupling.num_qubits == 5
        assert coupling.are_adjacent(1, 2)
        assert not coupling.are_adjacent(0, 3)
        assert coupling.distance(0, 4) == 4
        assert coupling.shortest_path(0, 3) == [0, 1, 2, 3]
        assert coupling.neighbors(2) == [1, 3]
        assert coupling.is_connected()

    def test_connected_subgraph(self):
        coupling = CouplingMap(linear_coupling(6))
        region = coupling.connected_subgraph_from(2, 4)
        assert len(region) == 4
        assert len(set(region)) == 4

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CouplingMap([], num_qubits=None)
        with pytest.raises(ValueError):
            CouplingMap([(0, 5)], num_qubits=3)

    def test_disconnected_distance_raises(self):
        coupling = CouplingMap([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            coupling.distance(0, 3)


class TestLayoutAndRouting:
    def test_trivial_layout(self):
        qc = QuantumCircuit(3)
        assert trivial_layout(qc).logical_to_physical == {0: 0, 1: 1, 2: 2}

    def test_layout_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Layout({0: 1, 1: 1})

    def test_noise_aware_layout_embeds_chain_without_routing(self):
        device = fake_hanoi()
        circuit = vqe_circuit(12, 1)
        layout = noise_aware_layout(circuit, device)
        physical = layout.logical_to_physical
        edges = {tuple(sorted(e)) for e in device.coupling_edges}
        for q in range(11):
            assert tuple(sorted((physical[q], physical[q + 1]))) in edges

    def test_noise_aware_layout_too_large(self):
        device = fake_hanoi()
        with pytest.raises(ValueError):
            noise_aware_layout(QuantumCircuit(28), device)

    def test_routing_preserves_semantics(self):
        qc = QuantumCircuit(4)
        qc.h(0).cx(0, 3).cx(1, 2).cx(0, 2)
        qc.measure_all()
        routed = route_circuit(qc, CouplingMap(linear_coupling(4)))
        assert hellinger_fidelity(ideal_distribution(qc), ideal_distribution(routed)) == pytest.approx(1.0)
        coupling = CouplingMap(linear_coupling(4))
        for inst in routed.data:
            if inst.is_two_qubit_gate:
                assert coupling.are_adjacent(*inst.qubits)

    def test_routing_rejects_oversized_circuit(self):
        with pytest.raises(ValueError):
            route_circuit(QuantumCircuit(5), CouplingMap(linear_coupling(3)))

    def test_transpile_pipeline_on_device(self):
        device = fake_hanoi()
        result = transpile(vqe_circuit(12, 1), device=device)
        assert result.two_qubit_gate_count == 11
        for inst in result.circuit.data:
            if inst.is_gate:
                assert inst.name in BASIS_GATES

    def test_transpile_without_device(self):
        result = transpile(vqe_circuit(4, 1))
        assert result.layout == trivial_layout(vqe_circuit(4, 1))
        assert result.two_qubit_gate_count == 3

    def test_transpile_preserves_distribution(self):
        device = fake_hanoi()
        qc = vqe_circuit(4, 1, seed=3)
        result = transpile(qc, device=device)
        ideal = ideal_distribution(qc)
        transpiled_dist = ideal_distribution(result.circuit)
        # Compare over the measured logical bits (clbits are preserved).
        assert hellinger_fidelity(ideal, transpiled_dist) == pytest.approx(1.0, abs=1e-6)


class TestRouterTermination:
    """Regression tests for the tier-1 hang: transpiling onto a wide device
    and simulating the result used to build a ``2**27`` statevector, and the
    router had no bound on inserted SWAPs."""

    def test_previously_hanging_case_is_fast(self):
        # Same workload as test_transpile_preserves_distribution; with
        # idle-wire compaction it simulates 4-5 active wires, not 27.
        import time

        start = time.perf_counter()
        result = transpile(vqe_circuit(4, 1, seed=3), device=fake_hanoi())
        ideal_distribution(result.circuit)
        assert time.perf_counter() - start < 30.0

    def test_swap_budget_exceeded_raises(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 3)
        with pytest.raises(RuntimeError, match="budget"):
            route_circuit(qc, CouplingMap(linear_coupling(4)), max_swaps=1)

    def test_default_budget_admits_worst_case_gate(self):
        # A gate across the full length of a line needs num_qubits - 2 SWAPs;
        # the default budget must accept it.
        qc = QuantumCircuit(8)
        qc.cx(0, 7)
        routed = route_circuit(qc, CouplingMap(linear_coupling(8)))
        assert routed.count_ops()["swap"] == 6

    def test_disconnected_coupling_raises_value_error(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 3)
        with pytest.raises(ValueError, match="not connected"):
            route_circuit(qc, CouplingMap([(0, 1), (2, 3)]))


class TestSabreRouter:
    def _dense_circuit(self):
        qc = qft_circuit(5)
        qc.measure_all()
        return qc

    def test_same_seed_is_deterministic(self):
        coupling = CouplingMap(linear_coupling(5))
        a = route_circuit(self._dense_circuit(), coupling, seed=3)
        b = route_circuit(self._dense_circuit(), coupling, seed=3)
        assert [(i.name, i.qubits, i.clbits) for i in a.data] == [
            (i.name, i.qubits, i.clbits) for i in b.data
        ]

    def test_different_seeds_both_route_correctly(self):
        coupling = CouplingMap(linear_coupling(5))
        circuit = self._dense_circuit()
        ideal = ideal_distribution(circuit)
        for seed in (0, 1, 2):
            routed = route_circuit(circuit, coupling, seed=seed)
            for inst in routed.data:
                if inst.is_two_qubit_gate:
                    assert coupling.are_adjacent(*inst.qubits)
            assert hellinger_fidelity(ideal, ideal_distribution(routed)) == pytest.approx(1.0)

    def test_budget_error_carries_partial_swap_count(self):
        qc = QuantumCircuit(5)
        qc.cx(0, 4)
        with pytest.raises(RoutingBudgetExceeded) as excinfo:
            route_circuit(qc, CouplingMap(linear_coupling(5)), max_swaps=2)
        assert excinfo.value.swaps_inserted == 2
        assert excinfo.value.max_swaps == 2
        assert isinstance(excinfo.value, RuntimeError)  # compatibility contract

    def test_routed_positions_are_tracked(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 3).cx(0, 1)
        qc.measure_all()
        routed = sabre_route(qc, CouplingMap(linear_coupling(4)), seed=0)
        assert sorted(routed.final_position.values()) == list(range(4))
        # Each measurement lands on the wire its logical qubit ends on.
        for inst in routed.circuit.data:
            if inst.is_measurement:
                logical = inst.clbits[0]
                assert inst.qubits[0] == routed.final_position[logical]

    def test_lookahead_beats_or_matches_single_gate_routing(self):
        # A chain of far gates: the lookahead router must stay within the
        # budget and keep every gate on-coupler.
        qc = QuantumCircuit(6)
        for a, b in [(0, 5), (1, 4), (0, 3), (2, 5)]:
            qc.cx(a, b)
        qc.measure_all()
        coupling = CouplingMap(linear_coupling(6))
        routed = sabre_route(qc, coupling, seed=0)
        for inst in routed.circuit.data:
            if inst.is_two_qubit_gate:
                assert coupling.are_adjacent(*inst.qubits)
        assert hellinger_fidelity(
            ideal_distribution(qc), ideal_distribution(routed.circuit)
        ) == pytest.approx(1.0)
