"""Unit tests for the gate library and operation primitives."""

import math

import numpy as np
import pytest

from repro.circuits import (
    Barrier,
    Instruction,
    Measurement,
    Reset,
    StatePreparation,
    UnitaryGate,
    is_hermitian,
    is_unitary,
    pauli_matrix,
    standard_gate,
    STANDARD_GATE_NAMES,
)


class TestStandardGateMatrices:
    def test_every_standard_gate_is_unitary(self):
        for name in sorted(STANDARD_GATE_NAMES):
            if name in ("rx", "ry", "rz", "p", "cp", "crx", "cry", "crz", "rzz"):
                gate = standard_gate(name, 0.37)
            elif name == "u":
                gate = standard_gate(name, 0.3, 0.5, 0.7)
            else:
                gate = standard_gate(name)
            assert is_unitary(gate.matrix), name

    def test_pauli_gates_are_hermitian_and_involutive(self):
        for name in ("x", "y", "z", "h", "swap"):
            matrix = standard_gate(name).matrix
            assert is_hermitian(matrix)
            assert np.allclose(matrix @ matrix, np.eye(matrix.shape[0]))

    def test_hadamard_maps_z_to_x(self):
        h = standard_gate("h").matrix
        assert np.allclose(h @ pauli_matrix("Z") @ h, pauli_matrix("X"))

    def test_s_gate_squares_to_z(self):
        s = standard_gate("s").matrix
        assert np.allclose(s @ s, standard_gate("z").matrix)

    def test_t_gate_squares_to_s(self):
        t = standard_gate("t").matrix
        assert np.allclose(t @ t, standard_gate("s").matrix)

    def test_sx_squares_to_x(self):
        sx = standard_gate("sx").matrix
        assert np.allclose(sx @ sx, standard_gate("x").matrix)

    def test_rotation_gates_at_zero_are_identity(self):
        for name in ("rx", "ry", "rz", "p"):
            assert np.allclose(standard_gate(name, 0.0).matrix, np.eye(2))

    def test_rz_pi_is_z_up_to_phase(self):
        rz = standard_gate("rz", math.pi).matrix
        z = standard_gate("z").matrix
        phase = rz[0, 0] / z[0, 0]
        assert np.allclose(rz, phase * z)

    def test_rx_pi_is_x_up_to_phase(self):
        rx = standard_gate("rx", math.pi).matrix
        assert np.allclose(rx, -1j * standard_gate("x").matrix)

    def test_u_gate_reduces_to_known_gates(self):
        h_via_u = standard_gate("u", math.pi / 2, 0.0, math.pi).matrix
        assert np.allclose(h_via_u, standard_gate("h").matrix)

    def test_cx_matrix_little_endian(self):
        # control = qubit 0 (LSB).  |01> (q0=1, q1=0) -> |11>.
        cx = standard_gate("cx").matrix
        state = np.zeros(4)
        state[0b01] = 1.0
        assert np.allclose(cx @ state, np.eye(4)[0b11])

    def test_cx_leaves_control_zero_alone(self):
        cx = standard_gate("cx").matrix
        state = np.zeros(4)
        state[0b10] = 1.0  # q1=1, q0=0 (control 0)
        assert np.allclose(cx @ state, state)

    def test_cz_is_diagonal(self):
        assert standard_gate("cz").is_diagonal()
        assert not standard_gate("cx").is_diagonal()

    def test_cp_equals_cz_at_pi(self):
        assert np.allclose(standard_gate("cp", math.pi).matrix, standard_gate("cz").matrix)

    def test_ccx_flips_target_only_when_both_controls_set(self):
        ccx = standard_gate("ccx").matrix
        for input_state in range(8):
            output = ccx @ np.eye(8)[input_state]
            expected = input_state ^ (0b100 if (input_state & 0b011) == 0b011 else 0)
            assert np.allclose(output, np.eye(8)[expected]), input_state

    def test_swap_exchanges_qubits(self):
        swap = standard_gate("swap").matrix
        assert np.allclose(swap @ np.eye(4)[0b01], np.eye(4)[0b10])

    def test_rzz_diagonal_phases(self):
        theta = 0.7
        rzz = standard_gate("rzz", theta).matrix
        assert np.allclose(np.diag(rzz), [
            np.exp(-1j * theta / 2),
            np.exp(1j * theta / 2),
            np.exp(1j * theta / 2),
            np.exp(-1j * theta / 2),
        ])

    def test_unknown_gate_raises(self):
        with pytest.raises(ValueError):
            standard_gate("quux")

    def test_wrong_parameter_count_raises(self):
        with pytest.raises(ValueError):
            standard_gate("rz")
        with pytest.raises(ValueError):
            standard_gate("h", 0.1)


class TestGateInverse:
    @pytest.mark.parametrize("name", ["h", "x", "y", "z", "s", "t", "sx", "cx", "cz", "swap"])
    def test_fixed_gate_inverse(self, name):
        gate = standard_gate(name)
        product = gate.inverse().matrix @ gate.matrix
        assert np.allclose(product, np.eye(product.shape[0]))

    @pytest.mark.parametrize("name", ["rx", "ry", "rz", "p", "cp", "crz", "rzz"])
    def test_parametric_gate_inverse(self, name):
        gate = standard_gate(name, 0.41)
        product = gate.inverse().matrix @ gate.matrix
        assert np.allclose(product, np.eye(product.shape[0]))

    def test_unitary_gate_inverse(self, make_rng):
        rng = make_rng(3)
        random = np.linalg.qr(rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4)))[0]
        gate = UnitaryGate(random, name="rand")
        assert np.allclose(gate.inverse().matrix @ gate.matrix, np.eye(4))


class TestStatePreparation:
    @pytest.mark.parametrize(
        "label, expected",
        [
            ("0", [1, 0]),
            ("1", [0, 1]),
            ("+", [1 / math.sqrt(2), 1 / math.sqrt(2)]),
            ("-", [1 / math.sqrt(2), -1 / math.sqrt(2)]),
            ("i", [1 / math.sqrt(2), 1j / math.sqrt(2)]),
            ("-i", [1 / math.sqrt(2), -1j / math.sqrt(2)]),
        ],
    )
    def test_prepares_expected_state(self, label, expected):
        prep = StatePreparation(label)
        assert is_unitary(prep.matrix)
        assert np.allclose(prep.matrix @ np.array([1, 0]), expected)

    def test_custom_state_is_normalised(self):
        prep = StatePreparation(np.array([3.0, 4.0]))
        assert np.allclose(np.linalg.norm(prep.target_state), 1.0)

    def test_unknown_label_raises(self):
        with pytest.raises(ValueError):
            StatePreparation("plus")


class TestUnitaryGate:
    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError):
            UnitaryGate(np.array([[1, 1], [0, 1]]))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            UnitaryGate(np.eye(3))


class TestInstruction:
    def test_wire_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            Instruction(standard_gate("cx"), (0,))

    def test_duplicate_wires_raise(self):
        with pytest.raises(ValueError):
            Instruction(standard_gate("cx"), (1, 1))

    def test_measurement_requires_clbit(self):
        with pytest.raises(ValueError):
            Instruction(Measurement(), (0,))
        inst = Instruction(Measurement(), (0,), (2,))
        assert inst.is_measurement and inst.clbits == (2,)

    def test_predicates(self):
        assert Instruction(Barrier(2), (0, 1)).is_barrier
        assert Instruction(Reset(), (3,), ()).is_reset
        assert Instruction(standard_gate("cz"), (0, 1)).is_two_qubit_gate

    def test_remap(self):
        inst = Instruction(standard_gate("cx"), (0, 1))
        remapped = inst.remap({0: 5, 1: 2})
        assert remapped.qubits == (5, 2)
        assert remapped.operation == inst.operation

    def test_equality_and_hash(self):
        a = Instruction(standard_gate("rz", 0.5), (1,))
        b = Instruction(standard_gate("rz", 0.5), (1,))
        assert a == b and hash(a) == hash(b)
        assert a != Instruction(standard_gate("rz", 0.6), (1,))


class TestPauliMatrix:
    def test_single_letters(self):
        assert np.allclose(pauli_matrix("X"), [[0, 1], [1, 0]])
        assert np.allclose(pauli_matrix("Z"), [[1, 0], [0, -1]])

    def test_little_endian_ordering(self):
        # "ZI": Z on qubit 0, I on qubit 1 -> diag(1,-1,1,-1)
        assert np.allclose(np.diag(pauli_matrix("ZI")), [1, -1, 1, -1])
        # "IZ": Z on qubit 1 -> diag(1,1,-1,-1)
        assert np.allclose(np.diag(pauli_matrix("IZ")), [1, 1, -1, -1])

    def test_invalid_label(self):
        with pytest.raises(ValueError):
            pauli_matrix("A")
        with pytest.raises(ValueError):
            pauli_matrix("")
