"""Stabilizer backend: tableau unit tests, Clifford-detector fuzzing, and the
property-based differential suite against the dense tier.

The differential discipline mirrors ``tests/test_backend_equivalence.py``:
the exact density-matrix distribution is the reference; stabilizer-sampled
counts must land within a total-variation budget the sampling statistics
justify (derivations on each assertion, per the conftest tolerance policy).
Deterministic facts — ideal deterministic outcomes, affine-model support,
misclassification impossibility — are asserted exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.noise import NoiseModel
from repro.noise.channels import (
    amplitude_damping_channel,
    depolarizing_channel,
    pauli_channel,
    phase_flip_channel,
)
from repro.simulators import (
    ExecutionEngine,
    StabilizerTableau,
    ideal_distribution,
    is_clifford_program,
    noisy_distribution_density_matrix,
    simulate_stabilizer_trajectories,
)
from repro.simulators.stabilizer import _affine_measurement_model

# The full Clifford menu the recognizer accepts (quarter-turn rotations get
# dedicated cases below — mixing exact multiples of pi/2 into float angles
# here would just re-test the same code path with noisier bookkeeping).
_CLIFFORD_1Q = ["h", "s", "sdg", "x", "y", "z", "sx", "sxdg"]
_CLIFFORD_2Q = ["cx", "cz", "swap"]
_NON_CLIFFORD_1Q = ["t", "tdg"]


def random_clifford_circuit(
    rng: np.random.Generator, num_qubits: int, num_gates: int = 30
) -> QuantumCircuit:
    qc = QuantumCircuit(num_qubits, num_qubits)
    for _ in range(num_gates):
        if num_qubits >= 2 and rng.random() < 0.35:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            getattr(qc, str(rng.choice(_CLIFFORD_2Q)))(int(a), int(b))
        else:
            getattr(qc, str(rng.choice(_CLIFFORD_1Q)))(int(rng.integers(num_qubits)))
    qc.measure_all()
    return qc


def random_pauli_noise(rng: np.random.Generator, num_qubits: int) -> NoiseModel:
    """Random Pauli-mixture noise: depolarizing base rates plus a random
    per-gate Pauli channel override, and readout error — everything the
    stabilizer backend claims to support."""
    model = NoiseModel.depolarizing(
        p1=float(rng.uniform(0.001, 0.02)),
        p2=float(rng.uniform(0.005, 0.05)),
        readout={q: float(rng.uniform(0.0, 0.05)) for q in range(num_qubits)},
    )
    probabilities = {
        "X": float(rng.uniform(0.0, 0.01)),
        "Y": float(rng.uniform(0.0, 0.01)),
        "Z": float(rng.uniform(0.0, 0.01)),
    }
    model.set_gate_error("h", pauli_channel(probabilities))
    return model


def total_variation(sampled, exact, num_bits: int) -> float:
    return 0.5 * sum(
        abs(sampled.get(outcome) - exact.get(outcome)) for outcome in range(2**num_bits)
    )


class TestTableau:
    """Hand-checkable tableau facts (no sampling)."""

    def test_fresh_tableau_measures_zero(self):
        t = StabilizerTableau(3)
        for q in range(3):
            assert not t.measurement_is_random(q)
            outcome, was_random = t.measure(q)
            assert outcome == 0 and not was_random

    def test_x_flips_deterministic_outcome(self):
        t = StabilizerTableau(2)
        t.x(1)
        assert t.measure(0)[0] == 0
        assert t.measure(1)[0] == 1

    def test_h_makes_outcome_random_and_collapses(self):
        t = StabilizerTableau(1)
        t.h(0)
        assert t.measurement_is_random(0)
        outcome, was_random = t.measure(0, forced=1)
        assert (outcome, was_random) == (1, True)
        # Collapsed: repeating the measurement is now deterministic.
        assert t.measure(0) == (1, False)

    def test_bell_pair_correlates(self):
        for forced in (0, 1):
            t = StabilizerTableau(2)
            t.h(0)
            t.cx(0, 1)
            first, was_random = t.measure(0, forced=forced)
            assert was_random and first == forced
            assert t.measure(1) == (forced, False)

    def test_composed_gates_match_their_definitions(self):
        # sdg = s;s;s, sx = h;s;h, cz = h(t);cx;h(t): verify on a state where
        # the difference would show — the stabilizer group determines the
        # state, so identical measurement statistics on all qubits after a
        # basis change pin the composition.
        a, b = StabilizerTableau(1), StabilizerTableau(1)
        a.h(0); a.sdg(0); a.h(0)
        b.h(0); b.s(0); b.s(0); b.s(0); b.h(0)
        assert np.array_equal(a.x_bits, b.x_bits)
        assert np.array_equal(a.z_bits, b.z_bits)
        assert np.array_equal(a.phases, b.phases)

    def test_y_equals_x_then_z_up_to_tableau_sign_pair(self):
        # Y = iXZ: as a channel (conjugation) they are identical, so the
        # tableaus must agree exactly — signs included, because X and Z
        # anticommute with the same stabilizer rows.
        a, b = StabilizerTableau(1), StabilizerTableau(1)
        a.h(0); a.y(0)
        b.h(0); b.z(0); b.x(0)
        assert np.array_equal(a.phases, b.phases)

    def test_reset_after_entanglement(self):
        t = StabilizerTableau(2)
        t.h(0)
        t.cx(0, 1)
        t.reset(0, rng=np.random.default_rng(0))
        assert t.measure(0) == (0, False)
        # Reset measures before flipping, so the Bell partner collapsed to a
        # definite (randomly chosen) value — deterministic from here on.
        outcome, was_random = t.measure(1, forced=0)
        assert not was_random and outcome in (0, 1)

    def test_ghz_affine_model(self):
        t = StabilizerTableau(3)
        t.h(0)
        t.cx(0, 1)
        t.cx(1, 2)
        base, columns = _affine_measurement_model(t, [0, 1, 2])
        assert base == 0
        assert columns == [0b111]

    def test_measure_without_rng_or_forced_raises(self):
        t = StabilizerTableau(1)
        t.h(0)
        with pytest.raises(ValueError, match="rng or a forced bit"):
            t.measure(0)


class TestAffineModelMatchesIdealDistribution:
    """The affine measurement model must reproduce the exact statevector
    distribution of random Clifford circuits: identical support, uniform
    weight 2**-k on it.  This is a deterministic (non-sampling) check."""

    @pytest.mark.parametrize("num_qubits", [2, 3, 4, 5])
    def test_support_and_uniformity(self, num_qubits, make_rng):
        rng = make_rng(6000 + num_qubits)
        for _ in range(5):
            circuit = random_clifford_circuit(rng, num_qubits)
            tableau = StabilizerTableau(num_qubits)
            for instruction in circuit.data:
                if instruction.is_gate:
                    tableau.apply(instruction.name, instruction.qubits)
            base, columns = _affine_measurement_model(
                tableau, circuit.measurement_layout()
            )
            support = {base}
            for column in columns:
                support |= {outcome ^ column for outcome in support}
            assert len(support) == 2 ** len(columns)
            exact = ideal_distribution(circuit)
            weight = 1.0 / len(support)
            for outcome in range(2**num_qubits):
                expected = weight if outcome in support else 0.0
                assert exact.get(outcome) == pytest.approx(expected, abs=1e-9)


class TestDifferentialVsDenseTier:
    """Stabilizer counts vs the exact density-matrix reference on random
    Clifford circuits with random Pauli noise.

    Tolerance: TV 0.06 over K <= 64 outcomes with N = 20000 shots and 400
    noise realisations — same budget as the trajectory-backend suite
    (tests/test_backend_equivalence.py): shot noise alone gives E[TV] <=
    sqrt((K - 1)/(4 N)) ~= 0.028 at K = 64 with a McDiarmid tail
    P(TV >= E + t) <= exp(-2 N t^2), leaving ~0.03 for finite-trajectory
    error; re-seeding failure probability is far below 1e-3.
    """

    @pytest.mark.parametrize("num_qubits", [2, 3, 4, 5, 6])
    def test_noisy_counts_within_tv_budget(self, num_qubits, make_rng):
        rng = make_rng(7000 + num_qubits)
        circuit = random_clifford_circuit(rng, num_qubits)
        model = random_pauli_noise(rng, num_qubits)
        assert is_clifford_program(circuit, model)
        exact, _ = noisy_distribution_density_matrix(circuit, model)
        counts, measured = simulate_stabilizer_trajectories(
            circuit, model, shots=20000, seed=int(rng.integers(2**31)), max_trajectories=400
        )
        assert measured == sorted(circuit.measured_qubits)
        tv = total_variation(counts.to_distribution(), exact, num_qubits)
        assert tv <= 0.06, f"stabilizer TV {tv:.4f} vs density matrix"

    @pytest.mark.parametrize("num_qubits", [2, 3, 4])
    def test_quarter_turn_rotations_match_dense(self, num_qubits, make_rng):
        # rz/p/rx/ry at multiples of pi/2 are the recognizer's only
        # angle-dependent acceptances; check the translation against the
        # dense reference, not just the classifier.
        rng = make_rng(7500 + num_qubits)
        qc = QuantumCircuit(num_qubits, num_qubits)
        for _ in range(25):
            name = str(rng.choice(["rz", "rx", "ry", "p", "h", "cx"]))
            if name == "cx":
                if num_qubits < 2:
                    continue
                a, b = rng.choice(num_qubits, size=2, replace=False)
                qc.cx(int(a), int(b))
            elif name == "h":
                qc.h(int(rng.integers(num_qubits)))
            else:
                angle = float(rng.integers(-4, 5)) * np.pi / 2
                getattr(qc, name)(angle, int(rng.integers(num_qubits)))
        qc.measure_all()
        assert is_clifford_program(qc)
        model = random_pauli_noise(rng, num_qubits)
        exact, _ = noisy_distribution_density_matrix(qc, model)
        counts, _ = simulate_stabilizer_trajectories(
            qc, model, shots=20000, seed=int(rng.integers(2**31)), max_trajectories=400
        )
        tv = total_variation(counts.to_distribution(), exact, num_qubits)
        # Same 0.06 budget as above (K <= 16 here, so E[TV] <= 0.014).
        assert tv <= 0.06, f"quarter-turn TV {tv:.4f} vs density matrix"

    def test_ideal_deterministic_outcomes_agree_exactly(self, make_rng):
        # Circuits built only from x/cx keep the state a computational basis
        # state: every measurement is deterministic, so stabilizer counts
        # must put all shots on the density-matrix argmax — exactly.
        rng = make_rng(7900)
        for _ in range(10):
            qc = QuantumCircuit(4, 4)
            for _ in range(12):
                if rng.random() < 0.5:
                    qc.x(int(rng.integers(4)))
                else:
                    a, b = rng.choice(4, size=2, replace=False)
                    qc.cx(int(a), int(b))
            qc.measure_all()
            exact = ideal_distribution(qc)
            counts, _ = simulate_stabilizer_trajectories(qc, shots=200, seed=1)
            (outcome, n), = counts.items()
            assert n == 200
            assert exact.get(outcome) == pytest.approx(1.0, abs=1e-12)

    def test_seeded_reproducibility(self, make_rng):
        rng = make_rng(7950)
        circuit = random_clifford_circuit(rng, 3)
        model = random_pauli_noise(rng, 3)
        a, _ = simulate_stabilizer_trajectories(circuit, model, shots=3000, seed=42)
        b, _ = simulate_stabilizer_trajectories(circuit, model, shots=3000, seed=42)
        assert dict(a.items()) == dict(b.items())


class TestCliffordRecognizer:
    def test_accepts_clifford_menu(self):
        qc = QuantumCircuit(2, 2)
        for name in _CLIFFORD_1Q:
            getattr(qc, name)(0)
        qc.cx(0, 1)
        qc.cz(0, 1)
        qc.swap(0, 1)
        qc.rz(np.pi / 2, 0)
        qc.rx(-np.pi, 1)
        qc.ry(3 * np.pi / 2, 0)
        qc.reset(1)
        qc.measure_all()
        assert is_clifford_program(qc)

    def test_accepts_state_preparations(self):
        from repro.circuits.operations import StatePreparation

        qc = QuantumCircuit(2, 2)
        qc.append(StatePreparation("+"), (0,))
        qc.append(StatePreparation("-i"), (1,))
        qc.measure_all()
        assert is_clifford_program(qc)

    @pytest.mark.parametrize("name", _NON_CLIFFORD_1Q)
    def test_rejects_non_clifford_gates(self, name):
        qc = QuantumCircuit(1, 1)
        getattr(qc, name)(0)
        qc.measure(0, 0)
        assert not is_clifford_program(qc)

    def test_rejects_generic_angles(self):
        qc = QuantumCircuit(1, 1)
        qc.rz(0.3, 0)
        qc.measure(0, 0)
        assert not is_clifford_program(qc)

    def test_rejects_non_pauli_noise(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.measure(0, 0)
        model = NoiseModel()
        model.set_gate_error("h", amplitude_damping_channel(0.05))
        assert is_clifford_program(qc)  # gates alone are fine
        assert not is_clifford_program(qc, model)

    def test_accepts_pauli_mixture_noise(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.measure(0, 0)
        model = NoiseModel()
        model.set_gate_error("h", phase_flip_channel(0.02))
        assert is_clifford_program(qc, model)

    def test_pauli_mixture_extraction(self):
        probabilities, labels, identity_flags = depolarizing_channel(0.1, 1).pauli_mixture()
        assert sorted(labels) == ["I", "X", "Y", "Z"]
        assert identity_flags == [label == "I" for label in labels]
        assert np.isclose(probabilities.sum(), 1.0)
        assert amplitude_damping_channel(0.1).pauli_mixture() is None
        two_qubit = pauli_channel({"XY": 0.05, "ZZ": 0.02}, num_qubits=2)
        _, labels2, _ = two_qubit.pauli_mixture()
        assert set(labels2) == {"II", "XY", "ZZ"}


class TestDetectorFuzz:
    """Random mixed (Clifford + non-Clifford) circuits must never be
    *mis*classified: whenever the detector says Clifford, the stabilizer
    sampler must agree with a dense re-simulation.  (The converse — a missed
    Clifford — costs only speed, never correctness.)"""

    _MIXED = _CLIFFORD_1Q + _NON_CLIFFORD_1Q + ["rz", "ry", "rx"]

    def test_fuzz_classified_clifford_always_agrees_with_dense(self, make_rng):
        rng = make_rng(8000)
        classified_clifford = 0
        for case in range(60):
            # Even cases draw from the full mixed menu (almost surely
            # non-Clifford — exercising the reject path); odd cases restrict
            # to Cliffords + quarter-turn angles so the accept path is
            # exercised deterministically often.
            clifford_only = case % 2 == 1
            menu = _CLIFFORD_1Q + ["rz", "ry", "rx"] if clifford_only else self._MIXED
            num_qubits = int(rng.integers(2, 5))
            qc = QuantumCircuit(num_qubits, num_qubits)
            for _ in range(int(rng.integers(5, 25))):
                if num_qubits >= 2 and rng.random() < 0.3:
                    a, b = rng.choice(num_qubits, size=2, replace=False)
                    getattr(qc, str(rng.choice(_CLIFFORD_2Q)))(int(a), int(b))
                else:
                    name = str(rng.choice(menu))
                    q = int(rng.integers(num_qubits))
                    if name in ("rz", "ry", "rx"):
                        # Mix exact quarter turns with generic angles.
                        if clifford_only or rng.random() < 0.5:
                            angle = float(rng.integers(-4, 5)) * np.pi / 2
                        else:
                            angle = float(rng.uniform(0, 2 * np.pi))
                        getattr(qc, name)(angle, q)
                    else:
                        getattr(qc, name)(q)
            qc.measure_all()
            if not is_clifford_program(qc):
                continue
            classified_clifford += 1
            # Exact check: the sampled support must be the statevector
            # support and uniform on it (Hoeffding at 20000 shots bounds
            # each frequency within 0.02 of its 2**-k value at ~1e-8 per
            # outcome; zero-probability outcomes can never be sampled if
            # the classification is right, so any appearance is a bug).
            exact = ideal_distribution(qc)
            counts, _ = simulate_stabilizer_trajectories(
                qc, shots=20000, seed=int(rng.integers(2**31))
            )
            for outcome, n in counts.items():
                assert exact.get(outcome) > 0.0, (
                    f"stabilizer sampled impossible outcome {outcome}"
                )
                assert abs(n / 20000 - exact.get(outcome)) < 0.02
        # The fuzz must actually exercise the accept path to mean anything
        # (the 30 clifford_only cases guarantee it does).
        assert classified_clifford >= 25

    def test_engine_fallback_counted(self):
        noise = NoiseModel.depolarizing(p1=0.002, p2=0.01)
        clifford = QuantumCircuit(12, 12)
        clifford.h(0)
        for i in range(11):
            clifford.cx(i, i + 1)
        clifford.measure_all()
        non_clifford = QuantumCircuit(12, 12)
        non_clifford.h(0)
        non_clifford.t(0)
        for i in range(11):
            non_clifford.cx(i, i + 1)
        non_clifford.measure_all()
        with ExecutionEngine() as engine:
            fast = engine.execute(clifford, noise, shots=500, seed=3)
            assert fast.method == "stabilizer"
            assert engine.stats.stabilizer_executed == 1
            # Explicit stabilizer request on a non-Clifford program falls
            # back to the dense tier and is *not* counted as stabilizer.
            dense = engine.execute(
                non_clifford, noise, shots=500, seed=3, method="stabilizer"
            )
            assert dense.method == "trajectory"
            assert engine.stats.stabilizer_executed == 1
            assert engine.stats.executed == 2
            # And the fallback shares cache lines with the equivalent dense
            # submission (same resolved key).
            again = engine.execute(non_clifford, noise, shots=500, seed=3)
            assert engine.stats.cache_hits == 1
            assert dict(again.counts.items()) == dict(dense.counts.items())
            snapshot = engine.stats.to_dict()
            assert snapshot["stabilizer_executed"] == 1
            engine.stats.reset()
            assert engine.stats.stabilizer_executed == 0
