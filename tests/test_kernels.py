"""Differential tests for the specialized dense-kernel tier.

The contract under test (see ``src/repro/simulators/kernels.py``) is
two-tier:

* **bit-identical** to the generic tensordot reference wherever the block's
  arithmetic is exact — permutation/diagonal entries drawn from
  ``{0, ±1, ±i}`` (X/Y/Z/S/CX/CZ/SWAP chains), where every product is
  representable and ``0 * x`` contributes exactly nothing;
* **ulp-bounded** everywhere else: BLAS contracts the tensordot path's
  multiply-adds with FMA while the elementwise kernels round each product,
  so arbitrary-phase blocks may differ in the last bits of an amplitude.

Plus: structural classification, the fusion-width cost model, backend
resolution (env knob, numba fallback), the two-pass fusion rewrite's
matrix equivalence, and the metrics satellite pinning kernel-dispatch
counters to the hot loop (counts sum to the fused-block count of a traced
ensemble run).
"""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.noise import NoiseModel
from repro.simulators import ExecutionEngine, Statevector, fuse_circuit
from repro.simulators.apply import (
    apply_matrix_to_density_matrix,
    apply_matrix_to_statevector_batch,
)
from repro.simulators.ensemble import simulate_trajectories_ensemble
from repro.simulators.fusion import (
    DEFAULT_FUSION_MAX_QUBITS,
    WIDE_FUSION_MAX_QUBITS,
    WIDE_FUSION_THRESHOLD,
    choose_fusion_width,
)
from repro.simulators.kernels import (
    KERNEL_BACKEND_ENV,
    apply_fused_operation,
    apply_plan_to_density_matrix,
    build_plan,
    classify_matrix,
    kernel_dispatch_counts,
    numba_available,
    reset_kernel_dispatch_counts,
    resolve_backend,
)
from repro.simulators.trajectory import _trajectory_plan

# Backends exercised by every differential test; numba participates only
# when importable (the CI optional-dependency leg) and skips cleanly here.
BACKENDS = ["numpy"] + (["numba"] if numba_available() else [])

EXACT_PHASES = np.array([1.0, -1.0, 1.0j, -1.0j])


def _random_unitary(dim: int, rng: np.random.Generator) -> np.ndarray:
    q, r = np.linalg.qr(
        rng.standard_normal((dim, dim)) + 1j * rng.standard_normal((dim, dim))
    )
    return q * (np.diagonal(r) / np.abs(np.diagonal(r)))


def _random_diag(dim: int, rng: np.random.Generator) -> np.ndarray:
    return np.diag(np.exp(1j * rng.uniform(0, 2 * np.pi, size=dim)))


def _random_perm(dim: int, rng: np.random.Generator, exact: bool) -> np.ndarray:
    matrix = np.zeros((dim, dim), dtype=complex)
    # A random cyclic shift keeps every nonzero off the diagonal, so the
    # matrix always classifies as "perm" rather than "diag".
    columns = (np.arange(dim) + rng.integers(1, dim)) % dim
    phases = (
        rng.choice(EXACT_PHASES, size=dim)
        if exact
        else np.exp(1j * rng.uniform(0, 2 * np.pi, size=dim))
    )
    matrix[np.arange(dim), columns] = phases
    return matrix


def _random_states(batch: int, num_qubits: int, rng: np.random.Generator) -> np.ndarray:
    states = rng.standard_normal((batch, 2**num_qubits)) + 1j * rng.standard_normal(
        (batch, 2**num_qubits)
    )
    return states / np.linalg.norm(states, axis=1, keepdims=True)


def _random_embedding(k: int, num_qubits: int, rng: np.random.Generator) -> tuple:
    return tuple(sorted(rng.choice(num_qubits, size=k, replace=False)))


class TestClassification:
    def test_known_gate_kinds(self):
        h = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        rz = np.diag([1.0, np.exp(0.3j)])
        cx = np.eye(4, dtype=complex)[[0, 1, 3, 2]]
        cz = np.diag([1.0, 1.0, 1.0, -1.0]).astype(complex)
        assert classify_matrix(h) == "dense1q"
        assert classify_matrix(x) == "perm"
        assert classify_matrix(rz) == "diag"
        assert classify_matrix(cx) == "perm"
        assert classify_matrix(cz) == "diag"

    def test_dense_sizes(self):
        rng = np.random.default_rng(5)
        assert classify_matrix(_random_unitary(4, rng)) == "dense2q"
        assert classify_matrix(_random_unitary(8, rng)) == "generic"

    def test_diag_takes_priority_over_perm(self):
        # A diagonal matrix is also a generalized permutation; the one-pass
        # multiply must win.
        assert classify_matrix(np.diag([1.0, -1.0]).astype(complex)) == "diag"

    def test_plan_payloads(self):
        rng = np.random.default_rng(6)
        perm = _random_perm(4, rng, exact=True)
        plan = build_plan(perm, (0, 2), 4)
        assert plan.kind == "perm"
        # The payload reconstructs the matrix: row r has its only nonzero
        # (phases[r]) in column perm[r].
        rebuilt = np.zeros((4, 4), dtype=complex)
        rebuilt[np.arange(4), plan.perm] = plan.phases
        assert np.array_equal(rebuilt, perm)
        trivial = build_plan(np.eye(4, dtype=complex)[[1, 0, 2, 3]], (1, 3), 4)
        assert trivial.trivial_phases


class TestDifferentialEquivalence:
    """Every specialized kernel vs the generic tensordot path."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("batch", [1, 13])
    def test_random_dense_gates(self, backend, k, batch):
        rng = np.random.default_rng(100 * k + batch)
        for num_qubits in (k, min(k + 2, 7)):
            qubits = _random_embedding(k, num_qubits, rng)
            matrix = _random_unitary(2**k, rng)
            plan = build_plan(matrix, qubits, num_qubits)
            states = _random_states(batch, num_qubits, rng)
            ref = apply_matrix_to_statevector_batch(states, matrix, qubits, num_qubits)
            out = apply_fused_operation(
                states.copy(), plan, matrix, qubits, num_qubits, backend=backend
            )
            assert np.allclose(out, ref, rtol=1e-12, atol=1e-14)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("batch", [1, 13])
    def test_random_diag_gates(self, backend, k, batch):
        rng = np.random.default_rng(200 * k + batch)
        num_qubits = min(k + 2, 7)
        qubits = _random_embedding(k, num_qubits, rng)
        matrix = _random_diag(2**k, rng)
        plan = build_plan(matrix, qubits, num_qubits)
        assert plan.kind == "diag"
        states = _random_states(batch, num_qubits, rng)
        ref = apply_matrix_to_statevector_batch(states, matrix, qubits, num_qubits)
        out = apply_fused_operation(
            states.copy(), plan, matrix, qubits, num_qubits, backend=backend
        )
        assert np.allclose(out, ref, rtol=1e-12, atol=1e-14)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("batch", [1, 13])
    def test_exact_perm_gates_bit_identical(self, backend, k, batch):
        """Permutation blocks with entries in {0, ±1, ±i} are exact — the
        gather kernel must agree with tensordot to the last bit."""
        rng = np.random.default_rng(300 * k + batch)
        num_qubits = min(k + 2, 7)
        qubits = _random_embedding(k, num_qubits, rng)
        matrix = _random_perm(2**k, rng, exact=True)
        plan = build_plan(matrix, qubits, num_qubits)
        assert plan.kind == "perm"
        states = _random_states(batch, num_qubits, rng)
        ref = apply_matrix_to_statevector_batch(states, matrix, qubits, num_qubits)
        out = apply_fused_operation(
            states.copy(), plan, matrix, qubits, num_qubits, backend=backend
        )
        assert np.array_equal(out, ref)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_arbitrary_phase_perm_gates(self, backend):
        rng = np.random.default_rng(17)
        for k in (1, 2, 3):
            num_qubits = k + 2
            qubits = _random_embedding(k, num_qubits, rng)
            matrix = _random_perm(2**k, rng, exact=False)
            plan = build_plan(matrix, qubits, num_qubits)
            assert plan.kind == "perm" and not plan.trivial_phases
            states = _random_states(9, num_qubits, rng)
            ref = apply_matrix_to_statevector_batch(states, matrix, qubits, num_qubits)
            out = apply_fused_operation(
                states.copy(), plan, matrix, qubits, num_qubits, backend=backend
            )
            assert np.allclose(out, ref, rtol=1e-12, atol=1e-14)

    def test_generic_backend_forces_reference_path(self):
        rng = np.random.default_rng(23)
        matrix = _random_diag(4, rng)
        plan = build_plan(matrix, (0, 1), 3)
        states = _random_states(4, 3, rng)
        ref = apply_matrix_to_statevector_batch(states, matrix, (0, 1), 3)
        out = apply_fused_operation(
            states.copy(), plan, matrix, (0, 1), 3, backend="generic"
        )
        # Same code path => bit-identical by construction.
        assert np.array_equal(out, ref)

    def test_single_state_shape_through_statevector(self):
        """The 1-row-batch spelling of Statevector.evolve_circuit matches the
        unfused generic evolution."""
        circuit = QuantumCircuit(4, 4)
        for q in range(4):
            circuit.h(q)
        for q in range(3):
            circuit.cx(q, q + 1)
        for q in range(4):
            circuit.rz(0.1 + 0.2 * q, q)
        reference = Statevector.zero_state(4).evolve_circuit(circuit, fusion=False)
        for backend in BACKENDS:
            fused = Statevector.zero_state(4).evolve_circuit(
                circuit, fusion=True, kernel_backend=backend
            )
            assert np.allclose(fused.data, reference.data, rtol=1e-12, atol=1e-14)

    @pytest.mark.parametrize("backend", BACKENDS + ["generic"])
    def test_density_matrix_fast_paths(self, backend):
        rng = np.random.default_rng(31)
        num_qubits = 3
        dim = 2**num_qubits
        base = _random_states(dim, num_qubits, rng)
        rho = base.conj().T @ base  # positive semidefinite
        rho = rho / np.trace(rho)
        for make in (
            lambda: _random_diag(4, rng),
            lambda: _random_perm(4, rng, exact=True),
            lambda: _random_perm(4, rng, exact=False),
        ):
            matrix = make()
            qubits = (0, 2)
            plan = build_plan(matrix, qubits, num_qubits)
            ref = apply_matrix_to_density_matrix(rho, matrix, qubits, num_qubits)
            fast = apply_plan_to_density_matrix(rho, plan, backend)
            if backend == "generic":
                assert fast is None  # forced back to the reference conjugation
                continue
            assert fast is not None
            assert np.allclose(fast, ref, rtol=1e-12, atol=1e-14)
        # Dense blocks have no fast path on any backend.
        dense_plan = build_plan(_random_unitary(4, rng), (0, 1), num_qubits)
        assert apply_plan_to_density_matrix(rho, dense_plan, "numpy") is None


class TestCostModel:
    def test_explicit_override_wins(self):
        assert choose_fusion_width(10, 600, max_qubits=2) == 2
        assert choose_fusion_width(10, 600, max_qubits=0) == 0  # fusion disabled
        assert choose_fusion_width(2, 1, max_qubits=7) == 7

    def test_small_blocks_when_dispatch_dominates(self):
        # T=1, narrow circuit: far below the wide threshold.
        assert choose_fusion_width(5, 1) == DEFAULT_FUSION_MAX_QUBITS
        assert choose_fusion_width(2, 1) == 2  # capped at circuit width

    def test_wide_blocks_when_arithmetic_dominates(self):
        # A full trajectory ensemble over a mid-size register crosses the
        # threshold: 600 * 2**7 = 76800 >= 65536.
        assert 600 * 2**7 >= WIDE_FUSION_THRESHOLD
        assert choose_fusion_width(7, 600) == WIDE_FUSION_MAX_QUBITS
        # A single very wide state crosses it on width alone.
        assert choose_fusion_width(20, 1) == WIDE_FUSION_MAX_QUBITS
        # Width is still capped at the register.
        assert choose_fusion_width(4, 100_000) == 4

    def test_threshold_boundary(self):
        num_qubits = 8
        at = WIDE_FUSION_THRESHOLD // 2**num_qubits
        assert choose_fusion_width(num_qubits, at) == WIDE_FUSION_MAX_QUBITS
        assert choose_fusion_width(num_qubits, at - 1) == DEFAULT_FUSION_MAX_QUBITS


class TestBackendResolution:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        assert resolve_backend(None) == "numpy"

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "generic")
        assert resolve_backend(None) == "generic"
        # An explicit argument beats the environment.
        assert resolve_backend("numpy") == "numpy"

    def test_numba_degrades_transparently(self):
        resolved = resolve_backend("numba")
        assert resolved == ("numba" if numba_available() else "numpy")
        auto = resolve_backend("auto")
        assert auto == ("numba" if numba_available() else "numpy")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("cuda")


class TestFusionTwoPass:
    """The quadratic re-embedding fix must not change fused semantics."""

    def _layered_circuit(self, num_qubits=5, depth=3):
        circuit = QuantumCircuit(num_qubits, num_qubits)
        for q in range(num_qubits):
            circuit.h(q)
        for layer in range(depth):
            for q in range(num_qubits - 1):
                circuit.cx(q, q + 1)
            for q in range(num_qubits):
                circuit.rz(0.1 + 0.05 * q + 0.2 * layer, q)
        circuit.measure_all()
        return circuit

    @pytest.mark.parametrize("max_qubits", [1, 2, 3, 5])
    def test_fused_program_matches_unfused_evolution(self, max_qubits):
        circuit = self._layered_circuit()
        program = fuse_circuit(circuit, max_qubits=max_qubits)
        unfused = fuse_circuit(circuit, max_qubits=0)
        rng = np.random.default_rng(41)
        states = _random_states(3, circuit.num_qubits, rng)
        fused_out, plain_out = states, states
        for op in program.operations:
            fused_out = apply_matrix_to_statevector_batch(
                fused_out, op.matrix, op.qubits, circuit.num_qubits
            )
        for op in unfused.operations:
            plain_out = apply_matrix_to_statevector_batch(
                plain_out, op.matrix, op.qubits, circuit.num_qubits
            )
        assert np.allclose(fused_out, plain_out, rtol=1e-12, atol=1e-14)

    def test_every_block_carries_a_plan(self):
        circuit = self._layered_circuit()
        noise = NoiseModel.depolarizing(p1=0.01, p2=0.02)
        for max_qubits in (0, 2, 3):
            program = fuse_circuit(circuit, noise, max_qubits=max_qubits)
            for op in program.operations:
                assert op.kernel is not None
                assert op.kernel.kind == classify_matrix(op.matrix)
                assert op.kernel.qubits == op.qubits

    def test_single_wide_gate_block_matrix_is_verbatim(self):
        circuit = QuantumCircuit(2, 2)
        circuit.cx(0, 1)
        [inst] = [i for i in circuit.data if i.is_gate]
        program = fuse_circuit(circuit, max_qubits=1)  # cx wider than the cap
        [op] = program.operations
        # A lone gate already little-endian in its sorted support passes
        # through without any basis-evolution arithmetic.
        assert np.array_equal(op.matrix, inst.operation.matrix)


class TestDispatchAccounting:
    """Metrics satellite: counters live in the hot loop, not bookkeeping."""

    def _circuit(self, tag=0.0):
        circuit = QuantumCircuit(5, 5)
        for q in range(5):
            circuit.h(q)
        for q in range(4):
            circuit.cx(q, q + 1)
        for q in range(5):
            circuit.rz(0.11 + 0.07 * q + tag, q)
        circuit.measure_all()
        return circuit

    def test_ensemble_dispatches_once_per_fused_block(self):
        circuit = self._circuit()
        noise = NoiseModel.depolarizing(p1=0.01, p2=0.02, readout=0.01)
        num_trajectories, _ = _trajectory_plan(1024, noise, 60)
        width = choose_fusion_width(circuit.num_qubits, num_trajectories)
        expected = len(fuse_circuit(circuit, noise, max_qubits=width).operations)
        reset_kernel_dispatch_counts()
        simulate_trajectories_ensemble(
            circuit, noise, shots=1024, seed=3, max_trajectories=60
        )
        counts = kernel_dispatch_counts()
        assert sum(counts.values()) == expected
        assert counts["generic"] == 0  # every block classified on this circuit

    def test_traced_engine_run_reports_dispatch_counts_and_backend(self):
        circuit = self._circuit(tag=0.003)
        noise = NoiseModel.depolarizing(p1=0.01, p2=0.02, readout=0.01)
        with ExecutionEngine(max_trajectories=60) as engine:
            compact, _ = circuit.compact_qubits()
            num_trajectories, _ = _trajectory_plan(1024, noise, 60)
            width = choose_fusion_width(compact.num_qubits, num_trajectories)
            expected = len(fuse_circuit(compact, noise, max_qubits=width).operations)
            engine.install_tracer(__import__("repro.tracing", fromlist=["TraceRecorder"]).TraceRecorder())
            reset_kernel_dispatch_counts()
            result = engine.execute(
                circuit, noise, shots=1024, seed=3, method="trajectory"
            )
            assert result.ok
            # Registry bridge: the scrape-time collector mirrors the
            # hot-loop tallies into repro_kernel_dispatch_total{kind=...}.
            engine.metrics.collect()
            family = engine.metrics.get("repro_kernel_dispatch_total")
            by_kind = {
                labels["kind"]: snap["value"]
                for labels, snap in family.series_snapshots()
            }
            assert sum(by_kind.values()) == expected
            backend_family = engine.metrics.get("repro_kernel_backend")
            backends = {
                labels["backend"]: snap["value"]
                for labels, snap in backend_family.series_snapshots()
            }
            assert backends.get(engine.kernel_backend) == 1
            # Trace stamp: every execute event names the kernel backend.
            executes = [
                e for e in engine.tracer.trace_events() if e.name == "execute"
            ]
            assert executes
            assert all(
                e.attrs.get("kernel_backend") == engine.kernel_backend
                for e in executes
            )

    def test_generic_backend_counts_generic_only(self):
        circuit = self._circuit(tag=0.007)
        noise = NoiseModel.depolarizing(p1=0.01, p2=0.02)
        reset_kernel_dispatch_counts()
        simulate_trajectories_ensemble(
            circuit, noise, shots=256, seed=5, max_trajectories=20,
            kernel_backend="generic",
        )
        counts = kernel_dispatch_counts()
        assert counts["generic"] > 0
        assert sum(v for k, v in counts.items() if k != "generic") == 0


class TestEngineIntegration:
    def test_backend_keys_sampled_cache_lines_apart(self):
        circuit = QuantumCircuit(3, 3)
        for q in range(3):
            circuit.h(q)
        circuit.cx(0, 1)
        circuit.measure_all()
        noise = NoiseModel.depolarizing(p1=0.01, p2=0.02)
        with ExecutionEngine(kernel_backend="numpy") as fast, ExecutionEngine(
            kernel_backend="generic"
        ) as slow:
            a = fast.execute(circuit, noise, shots=256, seed=9, method="trajectory")
            b = slow.execute(circuit, noise, shots=256, seed=9, method="trajectory")
            # Identical RNG stream; backends agree to sampling resolution.
            assert a.shots == b.shots
            assert fast.kernel_backend != slow.kernel_backend

    def test_engine_serial_pool_identical_with_kernels(self):
        circuits = []
        for i in range(4):
            circuit = QuantumCircuit(4, 4)
            for q in range(4):
                circuit.h(q)
            circuit.cx(0, 1)
            circuit.rz(0.2 + 0.1 * i, 2)
            circuit.cx(2, 3)
            circuit.measure_all()
            circuits.append(circuit)
        noise = NoiseModel.depolarizing(p1=0.01, p2=0.02)
        with ExecutionEngine() as serial:
            expected = serial.execute_many(circuits, noise, shots=512, seed=21)
        with ExecutionEngine(workers=2) as pooled:
            observed = pooled.execute_many(circuits, noise, shots=512, seed=21)
        for left, right in zip(expected, observed):
            assert left.distribution == right.distribution  # bit-identical
