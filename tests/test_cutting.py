"""Tests for the wire-cutting primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cutting import (
    MEASUREMENT_BASES,
    PREPARATION_LABELS,
    REDUCED_PREPARATION_LABELS,
    decompose_in_pauli_basis,
    decompose_in_preparation_basis,
    multiply_pauli_strings,
    pauli_string_matrix,
    preparation_density_matrix,
    preparation_state,
    project_to_physical_state,
    reconstruct_density_matrix,
)


class TestPreparationStates:
    def test_labels(self):
        assert set(REDUCED_PREPARATION_LABELS) <= set(PREPARATION_LABELS)
        assert len(MEASUREMENT_BASES) == 3

    @pytest.mark.parametrize("label", PREPARATION_LABELS)
    def test_states_are_normalised(self, label):
        assert np.linalg.norm(preparation_state(label)) == pytest.approx(1.0)

    def test_unknown_label(self):
        with pytest.raises(ValueError):
            preparation_state("2")

    def test_product_density_matrix_little_endian(self):
        rho = preparation_density_matrix(["1", "0"])  # wire0=|1>, wire1=|0>
        assert rho[0b01, 0b01] == pytest.approx(1.0)

    def test_orthogonal_pairs(self):
        for a, b in [("0", "1"), ("+", "-"), ("i", "-i")]:
            overlap = abs(np.vdot(preparation_state(a), preparation_state(b)))
            assert overlap == pytest.approx(0.0, abs=1e-12)


class TestPauliAlgebra:
    def test_multiplication_table(self):
        assert multiply_pauli_strings("X", "Y") == (1j, "Z")
        assert multiply_pauli_strings("Y", "X") == (-1j, "Z")
        assert multiply_pauli_strings("Z", "Z") == (1, "I")
        phase, label = multiply_pauli_strings("ZI", "IZ")
        assert (phase, label) == (1, "ZZ")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            multiply_pauli_strings("Z", "ZZ")

    def test_matrix_consistency(self):
        phase, label = multiply_pauli_strings("XZ", "YY")
        assert np.allclose(
            pauli_string_matrix("XZ") @ pauli_string_matrix("YY"),
            phase * pauli_string_matrix(label),
        )

    def test_pauli_decomposition_round_trip(self, make_rng):
        rng = make_rng(2)
        operator = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        coefficients = decompose_in_pauli_basis(operator)
        rebuilt = sum(c * pauli_string_matrix(p) for p, c in coefficients.items())
        assert np.allclose(rebuilt, operator)

    def test_pauli_decomposition_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            decompose_in_pauli_basis(np.zeros((2, 3)))


class TestPreparationDecomposition:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_single_qubit_round_trip(self, make_rng, seed):
        rng = make_rng(seed)
        operator = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        coefficients = decompose_in_preparation_basis(operator)
        rebuilt = sum(
            c * preparation_density_matrix(list(labels)) for labels, c in coefficients.items()
        )
        assert np.allclose(rebuilt, operator)
        # only the reduced preparation set is used
        for labels in coefficients:
            assert set(labels) <= set(REDUCED_PREPARATION_LABELS)

    def test_two_qubit_round_trip(self, make_rng):
        rng = make_rng(7)
        operator = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        coefficients = decompose_in_preparation_basis(operator)
        rebuilt = sum(
            c * preparation_density_matrix(list(labels)) for labels, c in coefficients.items()
        )
        assert np.allclose(rebuilt, operator)

    def test_density_matrix_of_prepared_state_is_sparse(self):
        coefficients = decompose_in_preparation_basis(preparation_density_matrix(["0"]))
        assert coefficients == {("0",): pytest.approx(1.0)}


class TestReconstruction:
    def test_reconstruct_plus_state(self):
        rho = reconstruct_density_matrix({"X": 1.0}, 1)
        assert np.allclose(rho, preparation_density_matrix(["+"]))

    def test_reconstruct_defaults_identity(self):
        rho = reconstruct_density_matrix({}, 1)
        assert np.allclose(rho, np.eye(2) / 2)

    def test_reconstruct_two_qubits(self):
        rho = reconstruct_density_matrix({"ZI": 1.0, "IZ": 1.0, "ZZ": 1.0}, 2)
        assert rho[0, 0] == pytest.approx(1.0)

    def test_projection_clips_negative_eigenvalues(self):
        unphysical = np.array([[1.2, 0.0], [0.0, -0.2]])
        projected = project_to_physical_state(unphysical)
        eigenvalues = np.linalg.eigvalsh(projected)
        assert np.all(eigenvalues >= -1e-12)
        assert np.trace(projected).real == pytest.approx(1.0)

    def test_projection_of_valid_state_is_identity(self):
        rho = preparation_density_matrix(["i"])
        assert np.allclose(project_to_physical_state(rho), rho, atol=1e-12)

    def test_projection_of_zero_matrix(self):
        projected = project_to_physical_state(np.zeros((2, 2)))
        assert np.allclose(projected, np.eye(2) / 2)
