"""Tests for the calibration & noise-learning subsystem.

Statistical assertions follow the conftest deflake policy: every stochastic
quantity is seeded, and each tolerance documents its failure probability
under re-seeding (binomial/Hoeffding for counts, fit-residual bookkeeping
for decay rates — see tests/conftest.py).
"""

import numpy as np
import pytest

from repro.calibration import (
    CALIBRATION_FORMAT_VERSION,
    CalibrationRecord,
    CalibrationRunner,
    LearnedDeviceModel,
    average_infidelity_from_pauli_fidelities,
    clifford_1q_group,
    confusion_matrix_from_counts,
    fit_exponential_decay,
    interleaved_gate_error,
    pair_readout_circuits,
    pauli_learning_circuits,
    rb_circuits,
    readout_calibration_circuits,
    survival_to_epc,
)
from repro.algorithms import iqft_benchmark_circuit
from repro.core import QuTracer
from repro.distributions import Counts
from repro.mitigation import PauliCheck, run_jigsaw, run_pcs
from repro.noise import (
    DeviceModel,
    EdgeCalibration,
    NoiseModel,
    QubitCalibration,
    ReadoutError,
    as_noise_model,
    depolarizing_channel,
    depolarizing_from_average_infidelity,
    joint_confusion_matrix,
)
from repro.simulators import ExecutionEngine, ideal_distribution


def tiny_device(readout=(0.03, 0.06, 0.02), sq=(3e-4, 5e-4, 2e-4), cx=(8e-3, 1.2e-2)):
    qubit_calibrations = {
        q: QubitCalibration(
            t1=120e3, t2=150e3, readout_error=readout[q], sq_error=sq[q], sq_gate_time=35.56
        )
        for q in range(3)
    }
    edge_calibrations = {
        (0, 1): EdgeCalibration(cx_error=cx[0], gate_time=400.0),
        (1, 2): EdgeCalibration(cx_error=cx[1], gate_time=450.0),
    }
    return DeviceModel("tiny", 3, [(0, 1), (1, 2)], qubit_calibrations, edge_calibrations)


# ---------------------------------------------------------------------------
# Experiments
# ---------------------------------------------------------------------------


class TestExperiments:
    def test_clifford_group_closure_and_unitarity(self):
        group = clifford_1q_group()
        assert len(group) == 24
        for names, matrix in group:
            assert np.allclose(matrix @ matrix.conj().T, np.eye(2))
        # The identity element compiles to zero gates.
        assert any(len(names) == 0 for names, _ in group)

    def test_rb_sequences_invert_to_identity(self, make_rng):
        # The inverting Clifford makes ideal survival exactly 1 — validates
        # both the group's inverse lookup and the gate compilation.
        rng = make_rng(3)
        for spec in rb_circuits(1, (1, 5, 17), 2, rng, 3, interleaved_gate=None):
            assert ideal_distribution(spec.circuit)[0] == pytest.approx(1.0)
        for spec in rb_circuits(0, (4, 9), 2, rng, 2, interleaved_gate="x"):
            assert ideal_distribution(spec.circuit)[0] == pytest.approx(1.0)

    def test_pauli_learning_ideal_expectation_is_one(self, make_rng):
        # Sign tracking + basis rotations: for every spec, the noiseless
        # expectation of the ideally-evolved Pauli is exactly +1.
        rng = make_rng(5)
        specs = pauli_learning_circuits(
            (0, 1), ("XX", "YZ", "ZI", "IY", "XZ"), (1, 2, 4), 2, rng, 2
        )
        for spec in specs:
            value = spec.sign * ideal_distribution(spec.circuit).expectation_z(spec.parity_bits)
            assert value == pytest.approx(1.0), (spec.pauli, spec.depth, spec.interleaved)

    def test_pauli_learning_pairs_interleaved_with_reference(self, make_rng):
        specs = pauli_learning_circuits((0, 2), ("XX",), (2,), 1, make_rng(0), 3)
        assert len(specs) == 2
        interleaved = next(s for s in specs if s.interleaved)
        reference = next(s for s in specs if not s.interleaved)
        # Paired design: same twirls, so the circuits differ only by the CXs.
        assert interleaved.circuit.count_ops()["cx"] == 2
        assert "cx" not in reference.circuit.count_ops()

    def test_readout_chunking_bounds_circuit_width(self):
        specs = readout_calibration_circuits(range(27), 27, chunk_size=6)
        assert len(specs) == 2 * 5  # ceil(27/6) chunks, two basis states each
        for spec in specs:
            compact, _ = spec.circuit.compact_qubits()
            assert compact.num_qubits <= 6

    def test_pair_readout_patterns(self):
        specs = pair_readout_circuits([(4, 2)], 5)
        assert [s.pattern for s in specs] == [0, 1, 2, 3]
        # pattern bit i prepares pair[i]: pattern 1 flips qubit 4 only.
        ops = specs[1].circuit.count_ops()
        assert ops.get("x", 0) == 1
        assert specs[1].circuit.data[0].qubits == (4,)

    def test_invalid_inputs_rejected(self, make_rng):
        rng = make_rng(0)
        with pytest.raises(ValueError):
            pauli_learning_circuits((0, 0), ("XX",), (1,), 1, rng, 2)
        with pytest.raises(ValueError):
            pauli_learning_circuits((0, 1), ("II",), (1,), 1, rng, 2)
        with pytest.raises(ValueError):
            rb_circuits(0, (0,), 1, rng, 1)


# ---------------------------------------------------------------------------
# Fitting
# ---------------------------------------------------------------------------


class TestFitting:
    def test_exponential_fit_recovers_clean_decay(self):
        lengths = np.array([1, 4, 16, 40, 80], dtype=float)
        truth = 0.55 * 0.991**lengths + 0.45
        fit = fit_exponential_decay(lengths, truth)
        assert fit.rate == pytest.approx(0.991, abs=1e-4)
        assert fit.amplitude == pytest.approx(0.55, abs=1e-3)
        assert fit.offset == pytest.approx(0.45, abs=1e-3)
        assert fit.residual_rms < 1e-6

    def test_exponential_fit_with_fixed_offset_and_noise(self, make_rng):
        rng = make_rng(9)
        lengths = np.repeat([2.0, 6.0, 12.0, 20.0], 3)
        truth = 0.97 * 0.985**lengths
        noisy = truth + rng.normal(0.0, 0.01, size=lengths.shape)
        fit = fit_exponential_decay(lengths, noisy, fixed_offset=0.0)
        # 12 points with sigma=0.01 put ~3e-3 of noise on the rate; the
        # seeded draw lands well inside 5 standard errors.
        assert fit.offset == 0.0
        assert fit.rate == pytest.approx(0.985, abs=5 * max(fit.rate_stderr, 1e-3))
        lo, hi = fit.confidence_interval()
        assert lo < fit.rate < hi

    def test_fit_input_validation(self):
        with pytest.raises(ValueError):
            fit_exponential_decay([1.0], [0.5])
        with pytest.raises(ValueError):
            fit_exponential_decay([1, 2], [0.5, 0.4], rate_bounds=(0.0, 2.0))

    def test_rb_conversions_match_depolarizing_conventions(self):
        # survival_to_epc and the Pauli-fidelity average must agree with the
        # KrausChannel fidelity conventions used everywhere else.
        for p, n in ((0.02, 1), (0.05, 2)):
            channel = depolarizing_channel(p, n)
            infidelity = 1.0 - channel.average_gate_fidelity()
            d2 = 4**n
            fidelities = [1.0 - p] * (d2 - 1)
            assert average_infidelity_from_pauli_fidelities(
                fidelities, num_qubits=n
            ) == pytest.approx(infidelity, rel=1e-10)
            # Round-trip through the device-model conversion as well.
            assert depolarizing_from_average_infidelity(infidelity, n) == pytest.approx(p)

    def test_interleaved_gate_error(self):
        assert interleaved_gate_error(0.99, 0.99 * 0.996) == pytest.approx(0.002)
        # Sampling noise cannot drive the estimate negative.
        assert interleaved_gate_error(0.99, 0.995) == 0.0
        with pytest.raises(ValueError):
            interleaved_gate_error(0.0, 0.5)
        assert survival_to_epc(0.99) == pytest.approx(0.005)

    def test_confusion_matrix_from_counts_is_column_stochastic(self):
        counts = {
            0: Counts({0: 90, 1: 6, 2: 4}, 2),
            1: Counts({1: 95, 0: 5}, 2),
            2: Counts({2: 97, 3: 3}, 2),
            3: Counts({3: 100}, 2),
        }
        matrix = confusion_matrix_from_counts(counts, bits=(0, 1))
        assert matrix.shape == (4, 4)
        assert np.allclose(matrix.sum(axis=0), 1.0)
        assert matrix[0, 0] == pytest.approx(0.90)
        assert matrix[1, 1] == pytest.approx(0.95)
        with pytest.raises(ValueError):
            confusion_matrix_from_counts({0: counts[0]}, bits=(0, 1))


# ---------------------------------------------------------------------------
# Record + learned model
# ---------------------------------------------------------------------------


class TestRecordAndLearnedModel:
    def test_record_round_trips_through_json(self, tmp_path):
        device = tiny_device()
        with CalibrationRunner(
            device, shots=1024, seed=3, rb_lengths=(2, 8), rb_samples=1,
            pauli_depths=(1, 3), pauli_samples=1, pauli_strings=("ZZ", "XX"),
        ) as runner:
            record = runner.run()
        path = tmp_path / "record.json"
        record.save(str(path))
        loaded = CalibrationRecord.load(str(path))
        assert loaded.to_dict() == record.to_dict()
        assert loaded.format_version == CALIBRATION_FORMAT_VERSION
        assert loaded.seed == 3 and loaded.shots == 1024
        assert loaded.calibrated_qubits == [0, 1, 2]
        assert loaded.calibrated_pairs == [(0, 1), (1, 2)]
        # The learned models built from the original and reloaded records
        # derive identical noise models.
        original = LearnedDeviceModel.from_record(record)
        reloaded = LearnedDeviceModel.from_record(loaded)
        assert original.noise_model().fingerprint() == reloaded.noise_model().fingerprint()

    def test_record_version_gate(self):
        data = {"format_version": 999, "device_name": "x", "num_qubits": 1,
                "coupling_edges": [], "created_at": "now", "seed": 0, "shots": 1}
        with pytest.raises(ValueError, match="version"):
            CalibrationRecord.from_dict(data)

    def test_learned_model_uses_asymmetric_readout(self):
        record = CalibrationRecord(
            device_name="tiny", num_qubits=2, coupling_edges=[(0, 1)],
            created_at="t", seed=0, shots=100,
            qubits={0: {"readout": {"prob_1_given_0": 0.1, "prob_0_given_1": 0.3}}},
            pairs={},
        )
        learned = LearnedDeviceModel.from_record(record)
        model = learned.noise_model()
        error = model.readout_error(0)
        assert error.prob_1_given_0 == pytest.approx(0.1)
        assert error.prob_0_given_1 == pytest.approx(0.3)
        # Uncalibrated qubit 1 falls back to the median learned average.
        fallback = model.readout_error(1)
        assert fallback.prob_1_given_0 == pytest.approx(0.2)

    def test_learned_t1_sentinel_keeps_channels_depolarizing(self):
        # The learned 1q channel's infidelity must equal the learned error
        # rate itself: relaxation is already folded in, never added twice.
        record = CalibrationRecord(
            device_name="tiny", num_qubits=1, coupling_edges=[], created_at="t",
            seed=0, shots=100, qubits={0: {"gate_error": 2e-3}}, pairs={},
        )
        learned = LearnedDeviceModel.from_record(record)
        channel = learned._single_qubit_channel(learned.qubit_calibrations[0])
        assert 1.0 - channel.average_gate_fidelity() == pytest.approx(2e-3, rel=1e-6)


# ---------------------------------------------------------------------------
# Runner end-to-end
# ---------------------------------------------------------------------------


class TestRunnerEndToEnd:
    def test_learns_tiny_device_within_tolerance(self):
        # Full pipeline against a 3-qubit reference.  Tolerances follow the
        # example's bookkeeping: at 8192 shots the binomial error on each
        # confusion entry is <= 0.0055, RB/Pauli decay ratios land within
        # ~10-20% of the channel infidelities (verified across seeds 5/11/23
        # during development; the pinned seed is deterministic).
        device = tiny_device()
        runner = CalibrationRunner(device, shots=8192, seed=5, rb_samples=3)
        learned = runner.learn()
        report = learned.compare_to(device)
        assert report["median_2q_channel_infidelity"]["relative_error"] <= 0.35
        assert report["median_readout_error"]["relative_error"] <= 0.25
        assert report["median_1q_channel_infidelity"]["relative_error"] <= 0.60
        for q in range(3):
            truth = device.qubit_calibrations[q].readout_error
            assert learned.readout_errors[q].prob_1_given_0 == pytest.approx(truth, abs=0.03)
            assert learned.readout_errors[q].prob_0_given_1 == pytest.approx(truth, abs=0.03)

    def test_pair_confusion_matches_tensor_of_qubit_confusions(self):
        # The measured 4x4 joint confusion must agree with the tensor of the
        # learned per-qubit errors (the simulator's readout is uncorrelated
        # by construction) — validating joint_confusion_matrix as the single
        # source of truth for correlated readout.
        device = tiny_device()
        runner = CalibrationRunner(
            device, rb_qubits=[], shots=8192, seed=7,
            pauli_depths=(1,), pauli_samples=1, pauli_strings=("ZZ",),
        )
        record = runner.run()
        for pair in ((0, 1), (1, 2)):
            measured = np.array(record.pairs[pair]["joint_confusion"])
            expected = joint_confusion_matrix(
                [record.readout_error(pair[0]), record.readout_error(pair[1])]
            )
            # Entries are binomial means of 8192 shots (sigma <= 0.0055) and
            # the two sides use independent samples: 0.03 is > 4 combined
            # sigmas per entry.
            assert np.max(np.abs(measured - expected)) <= 0.03

    def test_plan_is_deterministic_and_memoised(self):
        device = tiny_device()
        runner_a = CalibrationRunner(device, shots=64, seed=9, rb_samples=1)
        runner_b = CalibrationRunner(device, shots=64, seed=9, rb_samples=1)
        plan_a, plan_b = runner_a.plan(), runner_b.plan()
        assert runner_a.plan() is plan_a  # memoised
        assert len(plan_a) == len(plan_b)
        from repro.simulators import circuit_fingerprint

        for spec_a, spec_b in zip(plan_a, plan_b):
            assert circuit_fingerprint(spec_a.circuit) == circuit_fingerprint(spec_b.circuit)

    def test_shared_engine_and_warm_rerun(self):
        # Re-calibration through the same engine is served from the cache:
        # the second run executes nothing new and reproduces the record.
        device = tiny_device()
        engine = ExecutionEngine()
        runner = CalibrationRunner(
            device, shots=512, seed=13, rb_lengths=(2, 6), rb_samples=1,
            pauli_depths=(1, 2), pauli_samples=1, pauli_strings=("ZZ", "XX"),
            engine=engine,
        )
        first = runner.run()
        executed_after_first = engine.stats.executed
        second = CalibrationRunner(
            device, shots=512, seed=13, rb_lengths=(2, 6), rb_samples=1,
            pauli_depths=(1, 2), pauli_samples=1, pauli_strings=("ZZ", "XX"),
            engine=engine,
        ).run()
        assert engine.stats.executed == executed_after_first
        assert first.qubits == second.qubits
        assert first.pairs == second.pairs
        # Provenance is per-run, not engine-lifetime: both records saw the
        # same number of requests, but the warm rerun executed nothing.
        first_stats = first.metadata["engine_stats"]
        second_stats = second.metadata["engine_stats"]
        assert first_stats["requests"] == second_stats["requests"] > 0
        assert first_stats["executed"] > 0
        assert second_stats["executed"] == 0
        assert second_stats["hit_rate"] == 1.0

    def test_runner_validates_topology(self):
        device = tiny_device()
        with pytest.raises(ValueError):
            CalibrationRunner(device, qubits=[7])
        with pytest.raises(ValueError):
            CalibrationRunner(device, pairs=[(0, 2)])
        with pytest.raises(ValueError):
            CalibrationRunner(device, shots=0)

    def test_duration_is_monotonic_and_non_negative(self):
        # Regression: duration_seconds used to come from time.time(),
        # which an NTP step can run backwards; it is now perf_counter
        # based and can never go negative.
        device = tiny_device()
        record = CalibrationRunner(
            device, shots=128, seed=3, rb_lengths=(2,), rb_samples=1,
            pauli_depths=(1,), pauli_samples=1, pauli_strings=("ZZ",),
        ).run()
        assert record.metadata["duration_seconds"] >= 0.0

    def test_record_links_its_execution_trace(self, tmp_path):
        # A traced engine stamps the calibration batch's trace ID into the
        # record, tying provenance to the persisted JSONL artifact.
        device = tiny_device()
        engine = ExecutionEngine(trace_dir=str(tmp_path / "traces"))
        record = CalibrationRunner(
            device, shots=128, seed=3, rb_lengths=(2,), rb_samples=1,
            pauli_depths=(1,), pauli_samples=1, pauli_strings=("ZZ",),
            engine=engine,
        ).run()
        assert record.metadata["trace_id"] == engine.tracer.last_trace_id
        assert engine.tracer.last_trace_path is not None
        # An untraced engine leaves no dangling key behind.
        untraced = CalibrationRunner(
            device, shots=128, seed=3, rb_lengths=(2,), rb_samples=1,
            pauli_depths=(1,), pauli_samples=1, pauli_strings=("ZZ",),
        ).run()
        assert "trace_id" not in untraced.metadata


# ---------------------------------------------------------------------------
# Wiring: learned models anywhere a NoiseModel is accepted
# ---------------------------------------------------------------------------


class TestLearnedModelWiring:
    def test_as_noise_model_coercion(self):
        device = tiny_device()
        model = as_noise_model(device)
        assert isinstance(model, NoiseModel)
        assert as_noise_model(model) is model
        with pytest.raises(TypeError):
            as_noise_model(42)

    def test_engine_and_mitigation_accept_devices_directly(self):
        device = tiny_device()
        circuit = iqft_benchmark_circuit(3, value=5)
        engine = ExecutionEngine()
        result = engine.execute(circuit, device, shots=256, seed=1)
        assert result.counts.shots == 256
        jig = run_jigsaw(circuit, device, shots=512, subset_size=1, seed=1, engine=engine)
        assert jig.mitigated_distribution.num_bits == 3

    def test_device_noise_model_is_memoised(self):
        # Repeated coercions (passing the device per engine call) must reuse
        # one derived model, not rebuild every channel.
        device = tiny_device()
        assert device.noise_model() is device.noise_model()
        assert as_noise_model(device) is as_noise_model(device)

    def test_none_noise_model_still_means_ideal(self):
        # Coercion must not break the pre-existing None -> ideal contract.
        circuit = iqft_benchmark_circuit(3, value=5)
        jig = run_jigsaw(circuit, None, shots=256, subset_size=1, seed=1)
        assert jig.mitigated_distribution.num_bits == 3
        # (ideal_checks=True requires a real model — it derives a
        # perfect-ancilla variant — so None is only meaningful without it.)
        pcs = run_pcs(circuit, [PauliCheck(pauli={0: "Z"}, region=(0, 1))], None)
        assert pcs.mitigated_distribution.num_bits == 3

    def test_qutracer_runs_against_learned_device(self):
        device = tiny_device()
        runner = CalibrationRunner(
            device, shots=2048, seed=5, rb_lengths=(2, 10), rb_samples=1,
            pauli_depths=(1, 4), pauli_samples=1, pauli_strings=("ZZ", "XX"),
        )
        learned = runner.learn()
        circuit = iqft_benchmark_circuit(3, value=5)
        with QuTracer(device=learned, shots=2048, shots_per_circuit=512, seed=7) as tracer:
            outcome = tracer.run(circuit, subset_size=1)
        assert 0.0 <= outcome.mitigated_fidelity <= 1.0
        # QuTracer's QSPC mitigation is structural: a comfortable margin
        # over the unmitigated run even on the learned stand-in.
        assert outcome.mitigated_fidelity > outcome.unmitigated_fidelity
