"""Tests for the benchmark circuit constructions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    bernstein_vazirani_circuit,
    cut_value,
    cut_value_distribution_expectation,
    default_qaoa_angles,
    draper_constant_adder,
    fourier_state_preparation,
    hardware_efficient_ansatz,
    iqft_benchmark_circuit,
    iqft_circuit,
    maxcut_brute_force,
    qaoa_maxcut_circuit,
    qft_adder_circuit,
    qft_circuit,
    qft_multiplier_circuit,
    qpe_circuit,
    qpe_ideal_distribution_peak,
    random_regular_maxcut_graph,
    random_vqe_parameters,
    ring_graph,
    vqe_circuit,
)
from repro.simulators import ideal_distribution, simulate_statevector


class TestQFT:
    def test_qft_matrix_is_dft(self):
        n = 3
        dim = 2**n
        omega = np.exp(2j * np.pi / dim)
        dft = np.array([[omega ** (j * k) for j in range(dim)] for k in range(dim)]) / math.sqrt(dim)
        assert np.allclose(qft_circuit(n).to_matrix(), dft)

    def test_iqft_is_inverse(self):
        n = 3
        product = qft_circuit(n).compose(iqft_circuit(n)).to_matrix()
        assert np.allclose(product, np.eye(2**n))

    def test_approximate_qft_has_fewer_gates(self):
        full = qft_circuit(5).count_ops()["cp"]
        approx = qft_circuit(5, approximation_degree=2).count_ops()["cp"]
        assert approx < full

    @pytest.mark.parametrize("value", [0, 1, 5, 7])
    def test_fourier_state_round_trip(self, value):
        qc = fourier_state_preparation(3, value).compose(iqft_circuit(3))
        dist = simulate_statevector(qc).probability_distribution()
        assert dist[value] == pytest.approx(1.0)

    def test_iqft_benchmark_peak(self):
        qc = iqft_benchmark_circuit(3, value=6)
        assert ideal_distribution(qc)[6] == pytest.approx(1.0)
        assert qc.metadata["ideal_value"] == 6

    def test_iqft_benchmark_default_value(self):
        qc = iqft_benchmark_circuit(4)
        assert qc.metadata["ideal_value"] == 0b0101

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            qft_circuit(0)
        with pytest.raises(ValueError):
            fourier_state_preparation(2, 4)


class TestQPE:
    @pytest.mark.parametrize("num_counting, phase", [(3, 0.125), (4, 5 / 16), (4, 11 / 16)])
    def test_exactly_representable_phase_gives_single_peak(self, num_counting, phase):
        qc = qpe_circuit(num_counting, phase=phase)
        dist = ideal_distribution(qc)
        peak = qpe_ideal_distribution_peak(num_counting, phase)
        assert dist[peak] == pytest.approx(1.0, abs=1e-9)

    def test_non_representable_phase_peaks_nearby(self):
        qc = qpe_circuit(4, phase=0.3)
        dist = ideal_distribution(qc)
        best = max(dict(dist.items()), key=lambda k: dist[k])
        assert best == qpe_ideal_distribution_peak(4, 0.3)
        assert dist[best] > 0.4

    def test_only_counting_register_is_measured(self):
        qc = qpe_circuit(4, phase=0.25)
        assert qc.measured_qubits == [0, 1, 2, 3]
        assert qc.num_qubits == 5

    def test_explicit_unitary(self):
        unitary = np.diag([1.0, np.exp(2j * np.pi * 0.5)])
        qc = qpe_circuit(3, unitary=unitary)
        assert ideal_distribution(qc)[4] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            qpe_circuit(0)
        with pytest.raises(ValueError):
            qpe_circuit(3, phase=0.1, unitary=np.eye(2))
        with pytest.raises(ValueError):
            qpe_circuit(3, unitary=np.eye(4))


class TestBernsteinVazirani:
    @pytest.mark.parametrize("secret", ["1011", "0000", "1111"])
    def test_recovers_secret_string(self, secret):
        qc = bernstein_vazirani_circuit(secret)
        assert ideal_distribution(qc)[int(secret, 2)] == pytest.approx(1.0)

    def test_integer_secret_requires_width(self):
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit(5)
        qc = bernstein_vazirani_circuit(5, num_qubits=4)
        assert ideal_distribution(qc)[5] == pytest.approx(1.0)

    def test_secret_too_wide(self):
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit(9, num_qubits=3)

    def test_table2_shape_is_nine_qubits(self):
        qc = bernstein_vazirani_circuit("10110101")
        assert qc.num_qubits == 9

    @given(st.integers(min_value=0, max_value=31))
    @settings(max_examples=12, deadline=None)
    def test_any_secret_recovered(self, secret):
        qc = bernstein_vazirani_circuit(secret, num_qubits=5)
        assert ideal_distribution(qc)[secret] == pytest.approx(1.0)


class TestArithmetic:
    @pytest.mark.parametrize("a, b", [(0, 0), (3, 5), (9, 9), (15, 1)])
    def test_constant_adder(self, a, b):
        qc = draper_constant_adder(4, a, initial_value=b)
        assert ideal_distribution(qc)[(a + b) % 16] == pytest.approx(1.0)

    @pytest.mark.parametrize("a, b", [(0, 0), (3, 6), (7, 15), (5, 11)])
    def test_two_register_adder(self, a, b):
        qc = qft_adder_circuit(4, a=a, b=b)
        expected = qc.metadata["expected_sum"]
        assert ideal_distribution(qc)[expected] == pytest.approx(1.0)

    def test_adder_is_seven_qubits_for_table2(self):
        assert qft_adder_circuit(4, a=3, b=6).num_qubits == 7

    @pytest.mark.parametrize("a, b", [(0, 1), (1, 1), (3, 2), (3, 3)])
    def test_multiplier(self, a, b):
        qc = qft_multiplier_circuit(2, 2, a=a, b=b)
        assert ideal_distribution(qc)[a * b] == pytest.approx(1.0)

    def test_multiplier_is_four_qubits_for_table2(self):
        assert qft_multiplier_circuit(1, 1, a=1, b=1).num_qubits == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            draper_constant_adder(0, 1)
        with pytest.raises(ValueError):
            qft_adder_circuit(0, 1, 1)
        with pytest.raises(ValueError):
            qft_multiplier_circuit(0, 1, 0, 0)

    @given(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7))
    @settings(max_examples=15, deadline=None)
    def test_adder_property(self, a, b):
        qc = draper_constant_adder(3, a, initial_value=b)
        assert ideal_distribution(qc)[(a + b) % 8] == pytest.approx(1.0)


class TestVQE:
    def test_structure_counts(self):
        qc = vqe_circuit(5, 2)
        ops = qc.count_ops()
        assert ops["ry"] == 15  # (layers + 1) * n
        assert ops["cz"] == 8  # layers * (n - 1)
        assert ops["measure"] == 5

    def test_entanglement_repetitions_scale_cnot_depth(self):
        shallow = vqe_circuit(4, 1, entanglement_repetitions=1)
        deep = vqe_circuit(4, 1, entanglement_repetitions=5)
        assert deep.count_ops()["cz"] == 5 * shallow.count_ops()["cz"]

    def test_cx_entangler(self):
        qc = vqe_circuit(4, 1, entangler="cx")
        assert "cx" in qc.count_ops()

    def test_parameters_shape_validation(self):
        with pytest.raises(ValueError):
            vqe_circuit(4, 2, parameters=np.zeros((2, 4)))
        with pytest.raises(ValueError):
            hardware_efficient_ansatz(1, 1)
        with pytest.raises(ValueError):
            hardware_efficient_ansatz(4, -1)
        with pytest.raises(ValueError):
            hardware_efficient_ansatz(4, 1, entangler="iswap")

    def test_deterministic_with_seed(self):
        a = vqe_circuit(4, 2, seed=3)
        b = vqe_circuit(4, 2, seed=3)
        assert [i.operation.params for i in a.data] == [i.operation.params for i in b.data]

    def test_random_parameters_shape(self):
        assert random_vqe_parameters(6, 3, seed=0).shape == (4, 6)

    def test_zero_layer_ansatz_is_product_state(self):
        qc = vqe_circuit(3, 0, measure=False)
        assert "cz" not in qc.count_ops()


class TestMaxCutAndQAOA:
    def test_ring_graph_cut_values(self):
        graph = ring_graph(4)
        assert cut_value(graph, 0b0101) == pytest.approx(4.0)
        assert cut_value(graph, 0b0011) == pytest.approx(2.0)
        assert cut_value(graph, 0) == pytest.approx(0.0)

    def test_cut_value_input_forms(self):
        graph = ring_graph(4)
        assert cut_value(graph, "0101") == cut_value(graph, 0b0101)
        assert cut_value(graph, [1, 0, 1, 0]) == cut_value(graph, 0b0101)
        with pytest.raises(ValueError):
            cut_value(graph, "01")

    def test_brute_force_ring(self):
        best, assignments = maxcut_brute_force(ring_graph(6))
        assert best == pytest.approx(6.0)
        assert 0b010101 in assignments and 0b101010 in assignments

    def test_regular_graph_properties(self):
        graph = random_regular_maxcut_graph(10, degree=3, seed=1)
        assert all(d == 3 for _, d in graph.degree())
        assert graph.number_of_edges() == 15

    def test_qaoa_structure(self):
        graph = ring_graph(6)
        qc = qaoa_maxcut_circuit(graph, 2)
        ops = qc.count_ops()
        assert ops["h"] == 6
        assert ops["cx"] == 2 * 2 * graph.number_of_edges()
        assert ops["rx"] == 12
        assert qc.metadata["layers"] == 2

    def test_qaoa_rzz_variant(self):
        qc = qaoa_maxcut_circuit(ring_graph(4), 1, use_rzz=True)
        assert "rzz" in qc.count_ops()

    def test_qaoa_output_is_z2_symmetric(self):
        graph = ring_graph(4)
        dist = ideal_distribution(qaoa_maxcut_circuit(graph, 2))
        for outcome in range(16):
            assert dist[outcome] == pytest.approx(dist[outcome ^ 0b1111], abs=1e-9)

    def test_qaoa_beats_random_guessing(self):
        graph = ring_graph(6)
        dist = ideal_distribution(qaoa_maxcut_circuit(graph, 2))
        expectation = cut_value_distribution_expectation(graph, dist)
        assert expectation > graph.number_of_edges() / 2  # random guessing baseline

    def test_angle_validation(self):
        with pytest.raises(ValueError):
            qaoa_maxcut_circuit(ring_graph(4), 2, gammas=[0.1], betas=[0.1, 0.2])
        with pytest.raises(ValueError):
            default_qaoa_angles(0)

    def test_graph_labels_must_be_contiguous(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_edge(2, 5)
        with pytest.raises(ValueError):
            qaoa_maxcut_circuit(graph, 1)

    def test_default_angles_seeded(self):
        g1 = default_qaoa_angles(3, seed=2)
        g2 = default_qaoa_angles(3, seed=2)
        assert g1 == g2
