"""Hardware-aware compilation: pass pipeline, CompilationCache, engine wiring.

Three contracts are guarded here:

* **Compilation correctness** — transpiling onto a real coupling map (layout
  + SABRE routing + basis translation) never changes the measured ideal
  distribution: classical bits carry each logical qubit through the routed
  permutation, and for unmeasured circuits the reported ``final_layout`` is
  exactly the permutation needed to read the output.  Property-tested over
  random 2–5 qubit circuits on the falcon / heavy-hex couplings.
* **Cache-key hygiene** — device-compiled and plain logical submissions can
  never collide in the engine's result cache, and compiled artifacts are
  content-addressed by (circuit, device, pipeline) so learned and true
  devices with different calibration get different addresses.
* **End-to-end device mode** — QuTracer / Jigsaw / PCS / SQEM accept
  ``device=`` (true or learned) and execute routed, basis-translated
  circuits through the engine's CompilationCache.
"""

import numpy as np
import pytest

from repro.algorithms import iqft_benchmark_circuit, qft_circuit, vqe_circuit
from repro.circuits import QuantumCircuit
from repro.distributions import hellinger_fidelity
from repro.mitigation import PauliCheck, run_jigsaw, run_pcs, run_sqem
from repro.noise import (
    NoiseModel,
    ReadoutError,
    fake_hanoi,
    fake_mumbai,
    falcon_27_coupling,
    heavy_hex_coupling,
)
from repro.core import QuTracer
from repro.simulators import ExecutionEngine, ideal_distribution
from repro.transpiler import (
    BASIS_GATES,
    AnalysisPass,
    ApplyLayout,
    BasisTranslation,
    CompilationCache,
    CouplingMap,
    GateCountAnalysis,
    PassManager,
    Peephole1QMerge,
    PropertySet,
    SabreRouting,
    TrivialLayoutPass,
    build_preset_pipeline,
    transpile,
)


def random_circuit(num_qubits: int, rng, depth: int = 4) -> QuantumCircuit:
    """Random 1q rotations + arbitrary-pair CXs, measured on every qubit."""
    qc = QuantumCircuit(num_qubits, num_qubits, f"random_{num_qubits}")
    for _ in range(depth):
        for q in range(num_qubits):
            qc.u(*(rng.uniform(0, 2 * np.pi, size=3)), q)
        if num_qubits >= 2:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            qc.cx(int(a), int(b))
    qc.measure_all()
    return qc


class TestCompilationPreservesDistributions:
    @pytest.mark.parametrize("num_qubits", [2, 3, 4, 5])
    @pytest.mark.parametrize(
        "coupling_builder",
        [falcon_27_coupling, heavy_hex_coupling],
        ids=["falcon", "heavy-hex"],
    )
    def test_random_circuits_on_real_couplings(self, make_rng, num_qubits, coupling_builder):
        rng = make_rng(100 + num_qubits)
        coupling = CouplingMap(coupling_builder())
        for trial in range(3):
            circuit = random_circuit(num_qubits, rng)
            result = transpile(circuit, coupling_map=coupling)
            for inst in result.circuit.data:
                if inst.is_gate:
                    assert inst.name in BASIS_GATES
                if inst.is_two_qubit_gate:
                    assert coupling.are_adjacent(*inst.qubits)
            fidelity = hellinger_fidelity(
                ideal_distribution(circuit), ideal_distribution(result.circuit)
            )
            assert fidelity == pytest.approx(1.0, abs=1e-9), (num_qubits, trial)

    def test_device_pipeline_preserves_distribution(self, make_rng):
        rng = make_rng(7)
        device = fake_hanoi()
        for num_qubits in (3, 4):
            circuit = random_circuit(num_qubits, rng)
            result = transpile(circuit, device=device)
            fidelity = hellinger_fidelity(
                ideal_distribution(circuit), ideal_distribution(result.circuit)
            )
            assert fidelity == pytest.approx(1.0, abs=1e-9)

    def test_final_layout_reads_unmeasured_outputs(self, make_rng):
        # Without measurements there are no clbits to absorb the routed
        # permutation: final_layout must be exactly the map that reads the
        # physical output back into logical order.
        rng = make_rng(21)
        coupling = CouplingMap([(0, 1), (1, 2), (2, 3)])
        circuit = random_circuit(4, rng).remove_final_measurements()
        result = transpile(circuit, coupling_map=coupling, basis=False)
        physical = ideal_distribution(result.circuit)
        logical_view = physical.marginal(
            [result.final_layout.physical(q) for q in range(4)]
        )
        assert hellinger_fidelity(ideal_distribution(circuit), logical_view) == pytest.approx(
            1.0, abs=1e-9
        )

    def test_qft_on_falcon_needs_and_survives_routing(self):
        # All-to-all interactions on a sparse map force real SWAP work.
        circuit = qft_circuit(5)
        circuit.measure_all()
        result = transpile(circuit, coupling_map=CouplingMap(falcon_27_coupling()))
        assert result.swaps_inserted > 0
        assert hellinger_fidelity(
            ideal_distribution(circuit), ideal_distribution(result.circuit)
        ) == pytest.approx(1.0, abs=1e-9)


class TestPassPipeline:
    def test_property_set_records_pass_stats(self):
        circuit = qft_circuit(4)
        circuit.measure_all()
        result = transpile(circuit, coupling_map=CouplingMap([(0, 1), (1, 2), (2, 3)]))
        properties = result.property_set
        assert properties["routing"]["swaps_inserted"] == result.swaps_inserted
        assert "gates_merged" in properties["peephole"]
        assert properties["two_qubit_gate_count"] == result.two_qubit_gate_count
        assert properties["basis"]["two_qubit_gates"] == result.two_qubit_gate_count
        assert properties["depth"] == result.circuit.depth()

    def test_custom_pass_manager(self):
        manager = PassManager([TrivialLayoutPass(), ApplyLayout(), Peephole1QMerge()])
        circuit = QuantumCircuit(1)
        for _ in range(6):
            circuit.h(0).t(0)
        compiled, properties = manager.run(circuit, PropertySet())
        assert len(compiled.gates) == 1  # twelve 1q gates merged into one unitary
        assert properties["peephole"]["gates_merged"] == 11

    def test_analysis_pass_must_not_rewrite(self):
        class Broken(AnalysisPass):
            name = "broken"

            def run(self, circuit, properties):
                return circuit

        with pytest.raises(TypeError, match="broken"):
            PassManager([Broken()]).run(QuantumCircuit(1))

    def test_pipeline_signature_identifies_configuration(self):
        default = build_preset_pipeline()
        assert default.signature() == build_preset_pipeline().signature()
        assert default.signature() != build_preset_pipeline(seed=3).signature()
        assert default.signature() != build_preset_pipeline(basis=False).signature()
        assert "sabre_routing" in default.signature()

    def test_two_qubit_gate_count_is_arity_based(self):
        # A routed SWAP that survives (basis=False) is two-qubit work; the
        # old {cx, cz} name filter counted it as zero.  QFT's all-to-all
        # interaction graph cannot be embedded in a line, so SWAPs survive
        # even after bidirectional preconditioning.
        qc = qft_circuit(4)
        qc.measure_all()
        result = transpile(qc, coupling_map=CouplingMap([(0, 1), (1, 2), (2, 3)]), basis=False)
        ops = result.circuit.count_ops()
        swaps = ops.get("swap", 0)
        assert swaps > 0
        assert result.two_qubit_gate_count == swaps + ops.get("cp", 0)

    def test_basis_false_preserves_gate_names(self):
        # basis=False must leave the input gate stream inspectable
        # name-for-name (plus routed SWAPs): no peephole u1q rewriting.
        qc = qft_circuit(4)
        qc.measure_all()
        result = transpile(qc, coupling_map=CouplingMap([(0, 1), (1, 2), (2, 3)]), basis=False)
        original_ops = qc.count_ops()
        routed_ops = result.circuit.count_ops()
        assert "u1q" not in routed_ops
        for name, count in original_ops.items():
            if name == "swap":  # routing adds SWAPs on top of QFT's own
                assert routed_ops[name] >= count
            else:
                assert routed_ops[name] == count


class TestCompilationCache:
    def test_warm_hits_and_content_addressing(self):
        device = fake_hanoi()
        cache = CompilationCache()
        circuit = vqe_circuit(4, 1, seed=3)
        first = cache.get_or_compile(circuit, device)
        second = cache.get_or_compile(circuit.copy(), device)
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 1
        assert second is first

    def test_key_separates_devices_and_pipelines(self):
        circuit = vqe_circuit(4, 1, seed=3)
        circuit.measure_all()
        hanoi, mumbai = fake_hanoi(), fake_mumbai()
        cache_a, cache_b = CompilationCache(), CompilationCache(seed=9)
        key_hanoi = cache_a.key_for(circuit, hanoi)
        key_mumbai = cache_a.key_for(circuit, mumbai)
        assert key_hanoi != key_mumbai  # device fingerprint differs
        assert cache_a.key_for(circuit, hanoi) != cache_b.key_for(circuit, hanoi)  # pipeline seed

    def test_learned_model_gets_its_own_address(self):
        from repro.calibration import CalibrationRecord, LearnedDeviceModel

        device = fake_hanoi()
        record = CalibrationRecord(
            device_name=device.name,
            num_qubits=device.num_qubits,
            coupling_edges=device.coupling_edges,
            created_at="2026-07-30T00:00:00+0000",
            seed=1,
            shots=1024,
            qubits={0: {"readout": {"prob_1_given_0": 0.02, "prob_0_given_1": 0.05}}},
            pairs={},
        )
        learned = LearnedDeviceModel.from_record(record)
        assert learned.fingerprint() != device.fingerprint()
        assert learned.coupling_map().edges == device.coupling_map().edges
        assert record.coupling_map().edges == device.coupling_map().edges

    def test_engine_persistent_compilation_warm_start(self, tmp_path):
        device = fake_hanoi()
        circuit = iqft_benchmark_circuit(3, value=5)
        with ExecutionEngine(cache_dir=str(tmp_path)) as engine:
            engine.execute(circuit, device=device, shots=256, seed=1)
            assert engine.stats.compile_misses == 1
        with ExecutionEngine(cache_dir=str(tmp_path)) as fresh:
            fresh.execute(circuit, device=device, shots=256, seed=1)
            assert fresh.stats.compile_misses == 0
            assert fresh.stats.compile_hits == 1


class TestEngineDeviceMode:
    def test_device_and_logical_submissions_never_collide(self):
        device = fake_hanoi()
        circuit = iqft_benchmark_circuit(3, value=5)
        engine = ExecutionEngine()
        compiled_result = engine.execute(circuit, device=device)
        logical_result = engine.execute(circuit, device.noise_model())
        # Each submission executed fresh: no cross-talk between the
        # device-compiled key and the logical key.
        assert engine.stats.cache_misses == 2
        assert engine.stats.cache_hits == 0
        # And each is served from its own cache line thereafter.
        engine.execute(circuit, device=device)
        engine.execute(circuit, device.noise_model())
        assert engine.stats.cache_hits == 2
        assert engine.stats.cache_misses == 2
        # The compiled run executed routed/translated gates on good qubits,
        # so the two distributions are genuinely different objects.
        assert compiled_result.measured_qubits == logical_result.measured_qubits

    def test_measured_qubits_are_logical(self):
        device = fake_hanoi()
        qc = QuantumCircuit(3, 3)
        qc.h(0).cx(0, 1).cx(1, 2)
        qc.measure(1, 1)
        qc.measure(2, 2)
        result = ExecutionEngine().execute(qc, device=device)
        assert result.measured_qubits == [1, 2]
        assert result.distribution.num_bits == 2

    def test_unmeasured_submission_is_measure_alled(self):
        device = fake_hanoi()
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        result = ExecutionEngine().execute(qc, device=device)
        assert result.measured_qubits == [0, 1]
        assert result.distribution.num_bits == 2

    def test_noise_override_is_physical_wire_space(self):
        # An explicit noise_model passed with device= applies to the
        # *compiled physical* circuit — logical-qubit-indexed channels do
        # not follow their qubits through layout/routing (they drift wire
        # to wire through SWAPs, so they can't).  The documented contract:
        # noise applies to the circuit being executed.  Per-physical-wire
        # readout noise on the wire the layout actually picks shows up;
        # the same noise on a wire the layout avoids does not.
        device = fake_hanoi()
        qc = QuantumCircuit(1, 1)
        qc.x(0)
        qc.measure(0, 0)
        compiled = ExecutionEngine().compile(qc, device)
        chosen_wire = compiled.layout[0]
        flip_chosen = NoiseModel()
        flip_chosen.set_readout_error(ReadoutError(0.5, 0.5), chosen_wire)
        result = ExecutionEngine().execute(qc, flip_chosen, device=device)
        assert result.distribution.to_dict()[1] == pytest.approx(0.5)
        idle_wire = next(w for w in range(device.num_qubits) if w != chosen_wire)
        flip_idle = NoiseModel()
        flip_idle.set_readout_error(ReadoutError(0.5, 0.5), idle_wire)
        result = ExecutionEngine().execute(qc, flip_idle, device=device)
        assert result.distribution.to_dict().get(1, 0.0) == pytest.approx(1.0)

    def test_device_mode_distribution_matches_logical_semantics(self):
        # With an ideal override the compiled circuit must reproduce the
        # logical circuit's exact distribution: routing + basis translation
        # + clbit delivery is semantics-preserving end to end.
        device = fake_hanoi()
        circuit = iqft_benchmark_circuit(3, value=5)
        result = ExecutionEngine().execute(circuit, NoiseModel.ideal(), device=device)
        assert hellinger_fidelity(
            result.distribution, ideal_distribution(circuit)
        ) == pytest.approx(1.0, abs=1e-9)

    def test_parallel_device_batch_matches_serial(self, make_rng):
        device = fake_hanoi()
        circuits = [random_circuit(n, make_rng(n)) for n in (2, 3, 2, 3)]
        engine = ExecutionEngine()
        serial = engine.execute_many(circuits, shots=256, seed=5, device=device)
        parallel = ExecutionEngine(workers=2).execute_many(
            circuits, shots=256, seed=5, device=device
        )
        for a, b in zip(serial, parallel):
            assert a.distribution.to_dict() == b.distribution.to_dict()
            assert a.measured_qubits == b.measured_qubits


class TestMitigationDeviceMode:
    def test_qutracer_compile_mode_end_to_end(self):
        device = fake_hanoi()
        circuit = iqft_benchmark_circuit(3, value=5)
        tracer = QuTracer(device=device, shots=4000, shots_per_circuit=512, seed=7, compile=True)
        outcome = tracer.run(circuit, subset_size=1)
        assert outcome.mitigated_fidelity > outcome.unmitigated_fidelity
        # Post-transpile gate counts are measured on compiled copies.
        assert outcome.average_copy_two_qubit_gates > 0
        # Every execution went through the compilation cache.
        assert tracer.engine.stats.compile_misses + tracer.engine.stats.compile_hits > 0

    def test_qutracer_compile_requires_device(self):
        with pytest.raises(ValueError, match="compile"):
            QuTracer(noise_model=NoiseModel.depolarizing(0.001, 0.01), compile=True)

    def test_jigsaw_and_pcs_accept_device(self):
        device = fake_hanoi()
        circuit = iqft_benchmark_circuit(3, value=5)
        engine = ExecutionEngine()
        jig = run_jigsaw(circuit, None, shots=2048, subset_size=1, seed=1, device=device, engine=engine)
        assert jig.mitigated_distribution.num_bits == 3
        pcs = run_pcs(
            circuit,
            [PauliCheck(pauli={0: "Z"}, region=(0, 3))],
            None,
            shots=2048,
            seed=2,
            device=device,
            engine=engine,
        )
        assert 0.0 <= pcs.post_selection_rate <= 1.0
        assert engine.stats.compile_misses > 0

    def test_pcs_ideal_checks_rejects_device(self):
        device = fake_hanoi()
        circuit = iqft_benchmark_circuit(3, value=5)
        with pytest.raises(ValueError, match="ideal_checks"):
            run_pcs(
                circuit,
                [PauliCheck(pauli={0: "Z"}, region=(0, 3))],
                None,
                ideal_checks=True,
                device=device,
            )

    def test_sqem_compile_passthrough(self):
        device = fake_hanoi()
        qc = QuantumCircuit(2, 2)
        qc.h(0).cx(0, 1).measure_all()
        result = run_sqem(qc, device=device, shots=1024, shots_per_circuit=256, seed=3, compile=True)
        assert 0.0 <= result.mitigated_fidelity <= 1.0
