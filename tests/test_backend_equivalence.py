"""Cross-backend equivalence property tests.

Every simulator backend claims to compute the same physics; this suite
pins that claim on *random* circuits and *random* noise models instead of
the hand-picked workloads the unit tests use (the systematic-cross-check
discipline: independent implementations must agree before either is
trusted):

* **statevector vs density matrix** — for ideal (noise-free) circuits both
  are exact, so they must agree to numerical precision, with and without
  gate fusion;
* **density matrix vs trajectory backends** — with noise, the exact
  density-matrix distribution is the reference; the sampled ensemble and
  per-trajectory backends must land within a total-variation budget that
  the sampling statistics justify, with and without fusion;
* **density matrix vs stabilizer** — on *Clifford-restricted* random
  circuits the tableau backend is a fourth independent implementation of
  the same statistics, held to the same TV budget, and its engine tasks
  must be bit-identical between parallel and serial execution.

All randomness is drawn through the shared seeded-rng fixture
(``tests/conftest.py``), so every case is deterministic and reproducible
from its seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.noise import NoiseModel
from repro.simulators import (
    ExecutionEngine,
    ideal_distribution,
    is_clifford_program,
    noisy_distribution_density_matrix,
    simulate_stabilizer_trajectories,
    simulate_statevector,
    simulate_trajectories_batched,
    simulate_trajectories_ensemble,
)

# One- and two-qubit gates that exercise distinct matrix structures
# (Cliffords, non-Cliffords, parameterised rotations).
_ONE_QUBIT = ["h", "x", "s", "t", "sx", "rz", "ry"]
_TWO_QUBIT = ["cx", "cz"]
# Clifford-only menu for the stabilizer column (the tableau backend rejects
# non-Clifford gates by design; the angle-free subset keeps every draw valid).
_CLIFFORD_ONE_QUBIT = ["h", "x", "s", "sdg", "sx", "y", "z"]


def random_circuit(rng: np.random.Generator, num_qubits: int, num_gates: int = 20) -> QuantumCircuit:
    qc = QuantumCircuit(num_qubits, num_qubits)
    for _ in range(num_gates):
        if num_qubits >= 2 and rng.random() < 0.35:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            getattr(qc, str(rng.choice(_TWO_QUBIT)))(int(a), int(b))
        else:
            name = str(rng.choice(_ONE_QUBIT))
            qubit = int(rng.integers(num_qubits))
            if name in ("rz", "ry"):
                getattr(qc, name)(float(rng.uniform(0, 2 * np.pi)), qubit)
            else:
                getattr(qc, name)(qubit)
    qc.measure_all()
    return qc


def random_clifford_circuit(
    rng: np.random.Generator, num_qubits: int, num_gates: int = 20
) -> QuantumCircuit:
    qc = QuantumCircuit(num_qubits, num_qubits)
    for _ in range(num_gates):
        if num_qubits >= 2 and rng.random() < 0.35:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            getattr(qc, str(rng.choice(_TWO_QUBIT)))(int(a), int(b))
        else:
            getattr(qc, str(rng.choice(_CLIFFORD_ONE_QUBIT)))(int(rng.integers(num_qubits)))
    qc.measure_all()
    return qc


def random_noise_model(rng: np.random.Generator, num_qubits: int) -> NoiseModel:
    """Depolarizing gate noise + readout, with random per-qubit variation."""
    model = NoiseModel.depolarizing(
        p1=float(rng.uniform(0.001, 0.015)),
        p2=float(rng.uniform(0.005, 0.04)),
        readout={q: float(rng.uniform(0.0, 0.05)) for q in range(num_qubits)},
    )
    return model


def total_variation(sampled, exact, num_bits: int) -> float:
    return 0.5 * sum(
        abs(sampled.get(outcome) - exact.get(outcome)) for outcome in range(2**num_bits)
    )


class TestStatevectorVsDensityMatrix:
    """Both exact backends must agree to numerical precision when ideal."""

    @pytest.mark.parametrize("num_qubits", [2, 3, 4, 5])
    @pytest.mark.parametrize("fusion", [True, False])
    def test_ideal_distributions_agree_exactly(self, num_qubits, fusion, make_rng):
        rng = make_rng(1000 + num_qubits)
        for _ in range(4):
            circuit = random_circuit(rng, num_qubits)
            sv = ideal_distribution(circuit)
            dm, measured = noisy_distribution_density_matrix(
                circuit, NoiseModel.ideal(), fusion=fusion
            )
            assert measured == sorted(circuit.measured_qubits)
            for outcome in range(2**num_qubits):
                assert dm.get(outcome) == pytest.approx(sv.get(outcome), abs=1e-10)

    @pytest.mark.parametrize("num_qubits", [2, 3, 4])
    def test_statevector_fusion_invariance(self, num_qubits, make_rng):
        rng = make_rng(2000 + num_qubits)
        for _ in range(4):
            circuit = random_circuit(rng, num_qubits).remove_final_measurements()
            fused = simulate_statevector(circuit, fusion=True)
            plain = simulate_statevector(circuit, fusion=False)
            assert fused.fidelity(plain) == pytest.approx(1.0, abs=1e-10)


class TestTrajectoryBackendsVsDensityMatrix:
    """Sampled backends vs the exact noisy reference, within a TV budget.

    Tolerance: TV 0.06 over K <= 32 outcomes with N = 20000 shots and 400
    noise realisations.  Shot noise alone gives E[TV] <= sqrt((K-1)/(4N))
    ~= 0.020 with a McDiarmid tail P(TV >= E + t) <= exp(-2 N t^2), so the
    0.06 budget leaves >= 0.03 for finite-trajectory error (measured ~0.02
    at these noise rates); overall failure probability under re-seeding is
    well below 1e-3, and the pinned seeds make each case deterministic.
    """

    @pytest.mark.parametrize("num_qubits", [2, 3, 4, 5])
    @pytest.mark.parametrize("fusion", [True, False])
    def test_ensemble_within_tv_budget(self, num_qubits, fusion, make_rng):
        rng = make_rng(3000 + num_qubits)
        circuit = random_circuit(rng, num_qubits)
        model = random_noise_model(rng, num_qubits)
        exact, _ = noisy_distribution_density_matrix(circuit, model)
        counts, measured = simulate_trajectories_ensemble(
            circuit,
            model,
            shots=20000,
            seed=int(rng.integers(2**31)),
            max_trajectories=400,
            fusion=fusion,
        )
        assert measured == sorted(circuit.measured_qubits)
        tv = total_variation(counts.to_distribution(), exact, num_qubits)
        assert tv <= 0.06, f"ensemble TV {tv:.4f} vs density matrix (fusion={fusion})"

    @pytest.mark.parametrize("num_qubits", [2, 3, 4])
    def test_trajectory_loop_within_tv_budget(self, num_qubits, make_rng):
        rng = make_rng(4000 + num_qubits)
        circuit = random_circuit(rng, num_qubits)
        model = random_noise_model(rng, num_qubits)
        exact, _ = noisy_distribution_density_matrix(circuit, model)
        counts, _ = simulate_trajectories_batched(
            circuit, model, shots=20000, seed=int(rng.integers(2**31)), max_trajectories=400
        )
        tv = total_variation(counts.to_distribution(), exact, num_qubits)
        assert tv <= 0.06, f"trajectory-loop TV {tv:.4f} vs density matrix"

    @pytest.mark.parametrize("num_qubits", [2, 3])
    def test_ensemble_matches_loop_statistics(self, num_qubits, make_rng):
        # The two trajectory backends draw different RNG streams, so they
        # cannot match bit-for-bit — but both estimate the same physics, so
        # their empirical distributions must agree within twice the
        # single-backend budget (triangle inequality through the exact
        # reference).
        rng = make_rng(5000 + num_qubits)
        circuit = random_circuit(rng, num_qubits)
        model = random_noise_model(rng, num_qubits)
        ensemble, _ = simulate_trajectories_ensemble(
            circuit, model, shots=20000, seed=7, max_trajectories=400
        )
        loop, _ = simulate_trajectories_batched(
            circuit, model, shots=20000, seed=7, max_trajectories=400
        )
        tv = total_variation(ensemble.to_distribution(), loop.to_distribution(), num_qubits)
        assert tv <= 0.12, f"ensemble vs trajectory-loop TV {tv:.4f}"


class TestStabilizerVsDensityMatrix:
    """The stabilizer tableau backend as a fourth column: on Clifford
    workloads it must estimate the same physics as the exact density-matrix
    reference, within the same TV budget as the other sampled backends (see
    TestTrajectoryBackendsVsDensityMatrix for the 0.06 derivation — here
    K <= 32, N = 20000 shots, 400 trajectories)."""

    @pytest.mark.parametrize("num_qubits", [2, 3, 4, 5])
    def test_stabilizer_within_tv_budget(self, num_qubits, make_rng):
        rng = make_rng(6000 + num_qubits)
        circuit = random_clifford_circuit(rng, num_qubits)
        model = random_noise_model(rng, num_qubits)
        assert is_clifford_program(circuit, model)
        exact, _ = noisy_distribution_density_matrix(circuit, model)
        counts, measured = simulate_stabilizer_trajectories(
            circuit, model, shots=20000, seed=int(rng.integers(2**31)), max_trajectories=400
        )
        assert measured == sorted(circuit.measured_qubits)
        tv = total_variation(counts.to_distribution(), exact, num_qubits)
        assert tv <= 0.06, f"stabilizer TV {tv:.4f} vs density matrix"

    def test_parallel_vs_serial_bit_identity(self, make_rng):
        # Stabilizer engine tasks must be bit-identical whether they run in
        # pool workers or in-process — same contract the trajectory tasks
        # already honour (worker-purity: the derived seed travels with the
        # task, so scheduling cannot change any result).
        rng = make_rng(6100)
        circuits = [random_clifford_circuit(rng, 11, num_gates=25) for _ in range(6)]
        model = random_noise_model(rng, 11)
        for circuit in circuits:
            assert is_clifford_program(circuit, model)
        with ExecutionEngine(workers=2, density_matrix_threshold=4) as parallel_engine:
            parallel = parallel_engine.execute_many(
                circuits, model, shots=2000, seed=13
            )
            assert parallel_engine.stats.stabilizer_executed > 0
        with ExecutionEngine(workers=1, density_matrix_threshold=4) as serial_engine:
            serial = serial_engine.execute_many(circuits, model, shots=2000, seed=13)
        for fast, slow in zip(parallel, serial):
            assert fast.method == "stabilizer"
            assert slow.method == "stabilizer"
            assert dict(fast.counts.items()) == dict(slow.counts.items())
            assert fast.measured_qubits == slow.measured_qubits
