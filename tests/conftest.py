"""Shared test fixtures — seeded randomness for every stochastic test.

Deflake policy
--------------
Every test that draws randomness (random circuits, sampled distributions,
trajectory simulations) routes it through the :func:`make_rng` fixture
below instead of calling ``np.random.default_rng`` directly.  This keeps
all test entropy in one place, so:

* a test failure always reproduces — no test reads OS entropy;
* seeds are visible at the call site (``make_rng(7)``), greppable, and
  changeable in one sweep if a numpy upgrade ever shifts stream contents;
* new tests cannot silently introduce unseeded randomness without
  bypassing the fixture (reviewable in the diff).

Statistical tolerance policy
----------------------------
Seeded tests cannot flake, but their tolerances still document how much
slack the *statistics* need, so that re-seeding (or a numpy RNG change)
keeps them passing with overwhelming probability.  Every statistical
assertion carries a comment deriving its failure probability under
re-seeding, using one of:

* **Hoeffding** for sample means of bounded variables: ``P(|mean - mu| >=
  t) <= 2 exp(-2 N t^2)`` for N samples in [0, 1] (per-outcome frequency
  deviations, Pauli expectations rescaled to [0, 1]).
* **Total variation of an empirical distribution**: ``E[TV] <=
  sqrt((K - 1) / (4 N))`` for K outcomes and N samples, plus a
  McDiarmid tail ``P(TV >= E[TV] + t) <= exp(-2 N t^2)`` — each sample
  changes TV by at most 1/N.
* **Decay-rate fits** (RB survival / Pauli-learning expectations, the
  calibration suites): the fitted rate of ``y = a p^m (+ b)`` is, to
  first order, a linear functional of the per-length sample means, so its
  sampling error is normal with the standard error the fit itself reports
  (``DecayFit.rate_stderr``, from the linearized covariance
  ``sigma^2 (J^T J)^{-1}``).  Each shot-level mean obeys the binomial
  bound ``sigma <= sqrt(0.25 / shots)`` (<= 0.0055 at 8192 shots), and
  assertions on fitted rates allow >= 5 reported standard errors, putting
  re-seeding failure below the normal 5-sigma tail ~6e-7.  *Derived*
  error rates amplify relative error: an interleaved-RB gate error or a
  Pauli decay-rate *ratio* differences/divides two rates that are both
  ~1, so a tiny absolute rate error becomes a large relative error on the
  small difference — which is why the end-to-end learned-vs-true
  assertions (tests/test_calibration.py, the calibrate_and_mitigate
  example) use documented *relative* tolerances of 25-60% per parameter
  while the confusion-matrix entries, plain binomial means, get 0.03
  absolute (> 4 combined sigmas).  Medians over several qubits/pairs
  tighten these further (the median of k iid estimates concentrates
  ~sqrt(k) faster than one estimate).

A tolerance is considered deflaked when the documented bound puts the
failure probability at or below ~1e-3 under re-seeding (most are far
smaller); the pinned seed then makes the suite fully deterministic on any
given numpy version.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def make_rng():
    """Factory for seeded :class:`numpy.random.Generator` instances.

    Session-scoped because the factory itself is stateless (every call
    builds a fresh generator), which also lets hypothesis ``@given`` tests
    use it without tripping the function-scoped-fixture health check.

    Usage::

        def test_something(make_rng):
            rng = make_rng(7)

    The factory is intentionally a thin wrapper over
    ``np.random.default_rng(seed)`` — streams are identical to direct
    calls, so migrating a test to the fixture never changes its data.
    Passing ``None`` is rejected: that would read OS entropy and reintroduce
    flakes.
    """

    def _make(seed: int) -> np.random.Generator:
        if seed is None:
            raise ValueError("tests must pass an explicit seed (deflake policy)")
        return np.random.default_rng(seed)

    return _make


@pytest.fixture
def rng(make_rng) -> np.random.Generator:
    """A default seeded generator for tests that need just one stream."""
    return make_rng(0)
