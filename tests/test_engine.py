"""Tests for the batched, cached :class:`repro.simulators.ExecutionEngine`."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.noise import NoiseModel
from repro.simulators import (
    ExecutionEngine,
    circuit_fingerprint,
    execute,
    get_default_engine,
    simulate_trajectories_batched,
)


def ghz(num_qubits: int = 3) -> QuantumCircuit:
    qc = QuantumCircuit(num_qubits, num_qubits)
    qc.h(0)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    qc.measure_all()
    return qc


def noisy_model() -> NoiseModel:
    return NoiseModel.depolarizing(p1=0.01, p2=0.05, readout=0.03)


def _field_default(field):
    import dataclasses

    if field.default is not dataclasses.MISSING:
        return field.default
    return field.default_factory()


class TestFingerprints:
    def test_identical_structure_same_fingerprint(self):
        assert circuit_fingerprint(ghz()) == circuit_fingerprint(ghz())

    def test_name_is_ignored(self):
        a, b = ghz(), ghz()
        b.name = "other"
        assert circuit_fingerprint(a) == circuit_fingerprint(b)

    def test_different_gates_differ(self):
        other = ghz()
        other.x(0)
        assert circuit_fingerprint(ghz()) != circuit_fingerprint(other)

    def test_parameter_changes_differ(self):
        a = QuantumCircuit(1)
        a.rx(0.3, 0)
        b = QuantumCircuit(1)
        b.rx(0.4, 0)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_noise_fingerprint_content_addressed(self):
        assert noisy_model().fingerprint() == noisy_model().fingerprint()
        assert noisy_model().fingerprint() != NoiseModel.depolarizing(p2=0.01).fingerprint()
        assert NoiseModel.ideal().fingerprint() == NoiseModel.ideal().fingerprint()


class TestNoiseRemap:
    def test_remap_moves_per_qubit_entries(self):
        model = NoiseModel.depolarizing(p1=0.01, readout={5: 0.2})
        remapped = model.remap_qubits({5: 0})
        assert remapped.readout_error(0) is not None
        assert remapped.readout_error(5) is None

    def test_remap_drops_absent_qubits(self):
        model = NoiseModel.depolarizing(readout={3: 0.1, 7: 0.2})
        remapped = model.remap_qubits({3: 0})
        assert remapped.readout_error(0) is not None
        assert remapped.readout_error(1) is None


class TestCacheAccounting:
    def test_hits_and_misses(self):
        engine = ExecutionEngine()
        circuit = ghz()
        engine.execute(circuit, noisy_model(), shots=500, seed=3)
        assert engine.stats.cache_misses == 1
        assert engine.stats.cache_hits == 0
        engine.execute(circuit, noisy_model(), shots=500, seed=3)
        assert engine.stats.cache_misses == 1
        assert engine.stats.cache_hits == 1
        assert engine.stats.executed == 1
        assert engine.stats.hit_rate == pytest.approx(0.5)

    def test_different_key_misses(self):
        engine = ExecutionEngine()
        circuit = ghz()
        engine.execute(circuit, noisy_model(), shots=500, seed=3)
        engine.execute(circuit, noisy_model(), shots=500, seed=4)
        engine.execute(circuit, noisy_model(), shots=600, seed=3)
        engine.execute(circuit, NoiseModel.depolarizing(p2=0.2), shots=500, seed=3)
        assert engine.stats.cache_misses == 4
        assert engine.stats.cache_hits == 0

    def test_unseeded_sampling_is_uncacheable(self):
        engine = ExecutionEngine()
        circuit = ghz()
        engine.execute(circuit, noisy_model(), shots=500)
        engine.execute(circuit, noisy_model(), shots=500)
        assert engine.stats.uncacheable == 2
        assert engine.stats.executed == 2

    def test_exact_unsampled_is_cacheable_without_seed(self):
        engine = ExecutionEngine()
        circuit = ghz()
        engine.execute(circuit, noisy_model())
        engine.execute(circuit, noisy_model())
        assert engine.stats.cache_hits == 1
        assert engine.stats.executed == 1

    def test_lru_eviction(self):
        engine = ExecutionEngine(cache_size=2)
        circuits = []
        for i in range(3):
            qc = QuantumCircuit(2, 2)
            qc.rx(0.1 * (i + 1), 0).cx(0, 1).measure_all()
            circuits.append(qc)
        for qc in circuits:
            engine.execute(qc, noisy_model())
        assert engine.cache_len == 2
        engine.execute(circuits[0], noisy_model())  # evicted -> miss
        assert engine.stats.cache_misses == 4

    def test_stats_reset_restores_every_field_default(self):
        # Regression: reset() used to hand-list fields, so a counter added
        # to EngineStats could silently survive a reset.  It is now driven
        # by dataclasses.fields, pinned here over every current field.
        import dataclasses

        engine = ExecutionEngine()
        engine.execute(ghz(), noisy_model(), shots=100, seed=3)
        engine.execute(ghz(), noisy_model(), shots=100, seed=3)
        stats = engine.stats
        assert any(
            getattr(stats, field.name) != _field_default(field)
            for field in dataclasses.fields(stats)
        )
        stats.reset()
        for field in dataclasses.fields(stats):
            assert getattr(stats, field.name) == _field_default(field), field.name


class TestBatchDeduplication:
    def test_duplicates_executed_once(self):
        engine = ExecutionEngine()
        batch = [ghz(), ghz(), ghz(), ghz()]
        results = engine.execute_many(batch, noisy_model(), shots=400, seed=11)
        assert engine.stats.executed == 1
        assert engine.stats.batch_dedup_hits == 3
        reference = results[0].distribution.to_dict()
        for result in results[1:]:
            assert result.distribution.to_dict() == reference

    def test_dedup_matches_sequential_execution(self):
        model = noisy_model()
        batch = [ghz(), ghz(4), ghz()]
        engine = ExecutionEngine()
        batched = engine.execute_many(batch, model, shots=400, seed=7)
        sequential = [
            ExecutionEngine().execute(circuit, model, shots=400, seed=7)
            for circuit in batch
        ]
        for a, b in zip(batched, sequential):
            assert a.distribution.to_dict() == b.distribution.to_dict()
            assert a.measured_qubits == b.measured_qubits

    def test_exact_method_matches_plain_execute(self):
        circuit = ghz()
        model = noisy_model()
        engine_result = ExecutionEngine().execute(circuit, model)
        plain_result = execute(circuit, model)
        assert engine_result.method == plain_result.method == "density_matrix"
        for outcome, probability in plain_result.distribution.items():
            assert engine_result.distribution[outcome] == pytest.approx(probability)

    def test_results_are_independent_shells(self):
        engine = ExecutionEngine()
        first, second = engine.execute_many([ghz(), ghz()], noisy_model(), shots=100, seed=1)
        first.metadata["tag"] = "mine"
        assert "tag" not in second.metadata

    def test_miss_path_result_cannot_poison_cache(self):
        engine = ExecutionEngine()
        first = engine.execute(ghz(), noisy_model(), shots=100, seed=3)
        first.metadata["tag"] = "mine"
        first.measured_qubits.reverse()
        hit = engine.execute(ghz(), noisy_model(), shots=100, seed=3)
        assert engine.stats.cache_hits == 1
        assert hit.metadata == {}
        assert hit.measured_qubits == sorted(hit.measured_qubits)

    def test_cache_hit_across_embeddings_keeps_own_wire_labels(self):
        # Same compact structure (H + measure on one wire of three) embedded
        # on different wires shares a cache line, but each requester must get
        # measured_qubits for its own embedding — a hit used to replay the
        # first requester's labels.
        def embedded(wire):
            qc = QuantumCircuit(3, 1)
            qc.h(wire)
            qc.measure(wire, 0)
            return qc

        model = noisy_model()
        engine = ExecutionEngine()
        on_wire_2 = engine.execute(embedded(2), model)
        on_wire_0 = engine.execute(embedded(0), model)
        assert engine.stats.cache_hits == 1  # embeddings really collide
        assert on_wire_2.measured_qubits == [2]
        assert on_wire_0.measured_qubits == [0]
        assert on_wire_0.bit_for_qubit(0) == 0

    def test_cache_hit_across_embeddings_with_seeded_shots(self):
        def embedded(wire):
            qc = QuantumCircuit(3, 1)
            qc.h(wire)
            qc.measure(wire, 0)
            return qc

        model = noisy_model()
        engine = ExecutionEngine()
        on_wire_2 = engine.execute(embedded(2), model, shots=300, seed=8)
        on_wire_0 = engine.execute(embedded(0), model, shots=300, seed=8)
        assert engine.stats.cache_hits == 1
        assert on_wire_2.measured_qubits == [2]
        assert on_wire_0.measured_qubits == [0]
        assert on_wire_0.counts.to_dict() == on_wire_2.counts.to_dict()

    def test_unmeasured_circuit_matches_sequential_width(self):
        # No measurements: sequential execute() reports a full-width
        # distribution over all qubits; the engine must expand its compacted
        # result back (idle wires read 0) instead of returning 1 bit.
        qc = QuantumCircuit(3)
        qc.h(1)
        sequential = execute(qc)
        engine_result = ExecutionEngine().execute(qc)
        assert engine_result.distribution.num_bits == 3
        assert engine_result.measured_qubits == [0, 1, 2]
        assert engine_result.distribution == sequential.distribution

    def test_payload_mutation_cannot_poison_cache(self):
        engine = ExecutionEngine()
        model = noisy_model()
        first = engine.execute(ghz(), model, shots=200, seed=4)
        first.counts._counts.clear()
        first.distribution._probs.clear()
        hit = engine.execute(ghz(), model, shots=200, seed=4)
        assert engine.stats.cache_hits == 1
        assert hit.counts.shots == 200
        assert hit.distribution.total == pytest.approx(1.0)

    def test_in_place_noise_mutation_invalidates_memos(self):
        from repro.noise.readout import ReadoutError

        engine = ExecutionEngine()
        model = NoiseModel.depolarizing(p1=0.01, p2=0.05)
        before = engine.execute(ghz(), model).distribution
        model.set_readout_error(ReadoutError(0.3, 0.3))
        after = engine.execute(ghz(), model).distribution
        fresh = ExecutionEngine().execute(ghz(), model).distribution
        assert after.to_dict() == fresh.to_dict()
        assert after.to_dict() != before.to_dict()


class TestCompaction:
    def test_remapped_noise_is_memoised_per_subset(self):
        wide = QuantumCircuit(8, 2)
        wide.h(2).cx(2, 5)
        wide.measure(2, 0)
        wide.measure(5, 1)
        engine = ExecutionEngine()
        model = noisy_model()
        first = engine._prepare(wide, model, None, 1, "auto", 600, True)
        second = engine._prepare(wide, model, None, 1, "auto", 600, True)
        assert first.noise is second.noise  # one remap + one fingerprint hash
        model.set_default_1q_error(model._default_1q[0])
        third = engine._prepare(wide, model, None, 1, "auto", 600, True)
        assert third.noise is not first.noise  # mutation invalidates the memo

    def test_idle_wires_do_not_widen_simulation(self):
        wide = QuantumCircuit(24, 24)
        wide.h(3).cx(3, 17)
        wide.measure(3, 3)
        wide.measure(17, 17)
        engine = ExecutionEngine()
        result = engine.execute(wide, noisy_model(), shots=500, seed=2)
        # Two active wires -> exact density-matrix simulation, not trajectories.
        assert result.method == "density_matrix"
        assert result.measured_qubits == [3, 17]
        assert result.bit_for_qubit(17) == 1

    def test_compaction_preserves_distribution(self):
        # Narrow enough that both engines use the exact density-matrix
        # method, so the two distributions must agree to rounding error.
        wide = QuantumCircuit(8, 8)
        wide.h(5).cx(5, 2)
        wide.measure(5, 5)
        wide.measure(2, 2)
        compact_result = ExecutionEngine().execute(wide, noisy_model())
        plain_result = ExecutionEngine(compact=False).execute(wide, noisy_model())
        assert compact_result.method == plain_result.method == "density_matrix"
        for outcome in range(4):
            assert compact_result.distribution[outcome] == pytest.approx(
                plain_result.distribution[outcome], abs=1e-9
            )

    def test_per_qubit_noise_follows_compaction(self):
        # Readout error lives on qubit 11; after compaction it must still
        # apply to that logical wire.
        wide = QuantumCircuit(12, 12)
        wide.x(11)
        wide.measure(11, 11)
        model = NoiseModel.depolarizing(readout={11: 0.25})
        result = ExecutionEngine().execute(wide, model)
        assert result.distribution[0] == pytest.approx(0.25)
        assert result.distribution[1] == pytest.approx(0.75)


class TestVectorizedTrajectories:
    def wide_noisy_circuit(self) -> QuantumCircuit:
        qc = QuantumCircuit(12, 12)
        for q in range(12):
            qc.h(q)
        for q in range(11):
            qc.cx(q, q + 1)
        # A t gate keeps the circuit non-Clifford: these tests pin the dense
        # trajectory path, which auto-selection reserves for exactly this
        # case now that Clifford programs route to the stabilizer backend.
        qc.t(0)
        qc.measure_all()
        return qc

    def test_seed_reproducibility(self):
        circuit = self.wide_noisy_circuit()
        model = noisy_model()
        counts_a, qubits_a = simulate_trajectories_batched(
            circuit, model, shots=400, seed=21, max_trajectories=50
        )
        counts_b, qubits_b = simulate_trajectories_batched(
            circuit, model, shots=400, seed=21, max_trajectories=50
        )
        assert qubits_a == qubits_b
        assert counts_a.to_dict() == counts_b.to_dict()

    def test_engine_uses_batched_path_reproducibly(self):
        circuit = self.wide_noisy_circuit()
        model = noisy_model()
        a = ExecutionEngine().execute(circuit, model, shots=300, seed=5)
        b = ExecutionEngine().execute(circuit, model, shots=300, seed=5)
        assert a.method == "trajectory"
        assert a.counts.to_dict() == b.counts.to_dict()

    def test_default_shots_share_cache_line_with_explicit_4096(self):
        # The trajectory path always samples; shots=None means the default
        # budget of 4096, so the two spellings are identical work and must
        # hit the same cache entry.
        circuit = self.wide_noisy_circuit()
        model = noisy_model()
        engine = ExecutionEngine()
        implicit = engine.execute(circuit, model, seed=6)
        explicit = engine.execute(circuit, model, shots=4096, seed=6)
        assert implicit.method == "trajectory"
        assert engine.stats.cache_hits == 1
        assert implicit.counts.to_dict() == explicit.counts.to_dict()

    def test_non_positive_shots_rejected(self):
        engine = ExecutionEngine()
        with pytest.raises(ValueError, match="shots"):
            engine.execute(ghz(), noisy_model(), shots=0)
        with pytest.raises(ValueError, match="shots"):
            engine.execute(self.wide_noisy_circuit(), noisy_model(), shots=-5)

    def test_matches_loop_implementation_statistically(self):
        # Bell pair with depolarizing noise: compare the batched sampler with
        # the exact density-matrix distribution.
        qc = QuantumCircuit(2, 2)
        qc.h(0).cx(0, 1).measure_all()
        model = noisy_model()
        exact = execute(qc, model, method="density_matrix").distribution
        counts, _ = simulate_trajectories_batched(
            qc, model, shots=20000, seed=3, max_trajectories=300
        )
        sampled = counts.to_distribution()
        for outcome in range(4):
            assert sampled[outcome] == pytest.approx(exact[outcome], abs=0.02)

    def test_general_channels_supported(self):
        # Amplitude damping is not a unitary mixture; the batched sampler
        # must fall back to exact Born sampling and still match.
        from repro.noise.channels import amplitude_damping_channel

        model = NoiseModel()
        model.set_default_1q_error(amplitude_damping_channel(0.3))
        qc = QuantumCircuit(1, 1)
        qc.x(0)
        qc.measure(0, 0)
        exact = execute(qc, model, method="density_matrix").distribution
        counts, _ = simulate_trajectories_batched(
            qc, model, shots=20000, seed=9, max_trajectories=400
        )
        sampled = counts.to_distribution()
        assert sampled[0] == pytest.approx(exact[0], abs=0.02)
        assert sampled[1] == pytest.approx(exact[1], abs=0.02)


class TestDefaultEngine:
    def test_default_engine_is_shared(self):
        assert get_default_engine() is get_default_engine()
