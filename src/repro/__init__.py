"""QuTracer reproduction package.

The package implements the full stack needed by the ISCA 2024 paper
"QuTracer: Mitigating Quantum Gate and Measurement Errors by Tracing Subsets
of Qubits": a circuit IR and simulators, noise models, the Jigsaw / PCS /
SQEM baselines, and the QuTracer framework itself (qubit subsetting Pauli
checks, circuit analysis, the optimization passes, and the single- and
multi-layer tracing drivers).

Quickstart
----------
>>> from repro import QuantumCircuit, NoiseModel, QuTracer
>>> from repro.algorithms import iqft_benchmark_circuit
>>> circuit = iqft_benchmark_circuit(3, value=5)
>>> noise = NoiseModel.depolarizing(p1=0.01, p2=0.05, readout=0.05)
>>> tracer = QuTracer(noise_model=noise, shots=4000, seed=7)
>>> result = tracer.run(circuit)
>>> 0.0 <= result.fidelity_vs(result.ideal_distribution) <= 1.0
True
"""

from .circuits import QuantumCircuit
from .noise import NoiseModel
from .distributions import ProbabilityDistribution, hellinger_fidelity

__all__ = [
    "QuantumCircuit",
    "NoiseModel",
    "ProbabilityDistribution",
    "hellinger_fidelity",
    "QuTracer",
    "QuTracerResult",
]


def __getattr__(name):
    # QuTracer lives in repro.core, which depends on every substrate; import
    # it lazily so that `import repro` stays cheap for substrate-only users.
    if name in ("QuTracer", "QuTracerResult"):
        from . import core

        return getattr(core, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

__version__ = "1.0.0"
