"""Bernstein-Vazirani circuits (the 9-q BV benchmark of Table II)."""

from __future__ import annotations

from ..circuits import QuantumCircuit

__all__ = ["bernstein_vazirani_circuit"]


def bernstein_vazirani_circuit(
    secret: int | str, num_qubits: int | None = None, measure: bool = True
) -> QuantumCircuit:
    """Bernstein-Vazirani circuit for a hidden bitstring.

    Parameters
    ----------
    secret:
        The hidden string, as an integer or a bitstring (MSB first).
    num_qubits:
        Number of *data* qubits.  Required when ``secret`` is an integer
        whose width is ambiguous; inferred from the string length otherwise.
        The circuit has one extra ancilla (the phase-kickback qubit), so the
        paper's "9-q BV" is ``num_qubits=8`` data qubits plus the ancilla.

    The ideal output distribution over the data qubits is a single peak at
    ``secret``.
    """
    if isinstance(secret, str):
        if num_qubits is None:
            num_qubits = len(secret)
        secret_value = int(secret, 2)
    else:
        secret_value = int(secret)
        if num_qubits is None:
            raise ValueError("num_qubits is required when secret is an integer")
    if secret_value >= 2**num_qubits:
        raise ValueError(f"secret {secret_value} does not fit in {num_qubits} qubits")

    ancilla = num_qubits
    qc = QuantumCircuit(num_qubits + 1, name=f"bv_{num_qubits + 1}")
    qc.metadata["secret"] = secret_value

    # Ancilla in |->, data register in uniform superposition.
    qc.x(ancilla)
    qc.h(ancilla)
    for q in range(num_qubits):
        qc.h(q)
    # Oracle: CX from every secret bit onto the ancilla.
    for q in range(num_qubits):
        if (secret_value >> q) & 1:
            qc.cx(q, ancilla)
    for q in range(num_qubits):
        qc.h(q)
    if measure:
        qc.measure_subset(list(range(num_qubits)))
    return qc
