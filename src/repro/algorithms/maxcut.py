"""MaxCut problem instances for the QAOA benchmarks.

The paper evaluates QAOA on MaxCut over regular graphs (Sec. V-D notes that
the Z2 symmetry of MaxCut motivates subset size 2, and Sec. VII-D exploits
the symmetry of regular graphs).
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx
import numpy as np

__all__ = [
    "random_regular_maxcut_graph",
    "ring_graph",
    "cut_value",
    "maxcut_brute_force",
    "cut_value_distribution_expectation",
]


def random_regular_maxcut_graph(num_nodes: int, degree: int = 3, seed: int = 0) -> nx.Graph:
    """A random ``degree``-regular graph with unit edge weights."""
    graph = nx.random_regular_graph(degree, num_nodes, seed=seed)
    nx.set_edge_attributes(graph, 1.0, "weight")
    return graph


def ring_graph(num_nodes: int) -> nx.Graph:
    """The cycle graph (2-regular), the simplest symmetric MaxCut instance."""
    graph = nx.cycle_graph(num_nodes)
    nx.set_edge_attributes(graph, 1.0, "weight")
    return graph


def cut_value(graph: nx.Graph, assignment: int | str | Iterable[int]) -> float:
    """Weight of the cut induced by a bit assignment.

    ``assignment`` may be an integer (bit ``i`` = node ``i``), a bitstring
    (MSB first, i.e. the reverse node order — the usual printed form), or an
    iterable of bits indexed by node.
    """
    bits = _as_bits(graph.number_of_nodes(), assignment)
    value = 0.0
    for u, v, data in graph.edges(data=True):
        if bits[u] != bits[v]:
            value += float(data.get("weight", 1.0))
    return value


def _as_bits(num_nodes: int, assignment: int | str | Iterable[int]) -> list[int]:
    if isinstance(assignment, int):
        return [(assignment >> i) & 1 for i in range(num_nodes)]
    if isinstance(assignment, str):
        if len(assignment) != num_nodes:
            raise ValueError("bitstring length must equal the number of nodes")
        return [int(ch) for ch in reversed(assignment)]
    bits = [int(b) for b in assignment]
    if len(bits) != num_nodes:
        raise ValueError("assignment length must equal the number of nodes")
    return bits


def maxcut_brute_force(graph: nx.Graph) -> tuple[float, list[int]]:
    """Exact optimum by enumeration (fine for the <= 12-node benchmark graphs).

    Returns the optimal cut value and the list of optimal assignments
    (as integers).  Because of the Z2 symmetry the optima come in pairs
    ``(x, ~x)``.
    """
    num_nodes = graph.number_of_nodes()
    if num_nodes > 20:
        raise ValueError("brute force is limited to 20 nodes")
    best_value = -1.0
    best: list[int] = []
    for assignment in range(2**num_nodes):
        value = cut_value(graph, assignment)
        if value > best_value + 1e-12:
            best_value = value
            best = [assignment]
        elif abs(value - best_value) <= 1e-12:
            best.append(assignment)
    return best_value, best


def cut_value_distribution_expectation(graph: nx.Graph, distribution) -> float:
    """Expected cut value under a probability distribution over assignments."""
    return float(
        sum(prob * cut_value(graph, outcome) for outcome, prob in distribution.items())
    )
