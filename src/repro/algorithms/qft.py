"""Quantum Fourier transform circuits.

The inverse QFT is the motivating example of the paper (Sec. III, Fig. 2) and
a building block of QPE and the QFT arithmetic benchmarks.
"""

from __future__ import annotations

import math

from ..circuits import QuantumCircuit

__all__ = [
    "qft_circuit",
    "iqft_circuit",
    "fourier_state_preparation",
    "iqft_benchmark_circuit",
]


def qft_circuit(num_qubits: int, with_swaps: bool = True, approximation_degree: int = 0) -> QuantumCircuit:
    """Textbook QFT.

    ``approximation_degree`` drops the smallest-angle controlled phases (the
    approximate QFT); 0 keeps every rotation.
    """
    if num_qubits < 1:
        raise ValueError("num_qubits must be positive")
    qc = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    for target in range(num_qubits - 1, -1, -1):
        qc.h(target)
        for control in range(target - 1, -1, -1):
            distance = target - control
            if approximation_degree and distance > num_qubits - approximation_degree:
                continue
            qc.cp(math.pi / 2**distance, control, target)
    if with_swaps:
        for q in range(num_qubits // 2):
            qc.swap(q, num_qubits - 1 - q)
    return qc


def iqft_circuit(num_qubits: int, with_swaps: bool = True, approximation_degree: int = 0) -> QuantumCircuit:
    """Inverse QFT (adjoint of :func:`qft_circuit`)."""
    inverse = qft_circuit(num_qubits, with_swaps=with_swaps, approximation_degree=approximation_degree).inverse()
    inverse.name = f"iqft_{num_qubits}"
    return inverse


def fourier_state_preparation(num_qubits: int, value: int, bit_reversed: bool = False) -> QuantumCircuit:
    """Prepare the Fourier-basis encoding of ``value``.

    With ``bit_reversed=False`` the state equals ``QFT |value>`` in the
    standard (with-swaps) convention, so applying :func:`iqft_circuit` with
    swaps returns ``|value>``.  With ``bit_reversed=True`` the per-qubit
    phases follow the swap-less convention, so the *swap-less* inverse QFT
    returns ``|value>`` — this is the form used by the motivating-example
    benchmark, whose circuit (like the paper's Fig. 2) contains no SWAPs.
    """
    if not 0 <= value < 2**num_qubits:
        raise ValueError(f"value {value} out of range for {num_qubits} qubits")
    qc = QuantumCircuit(num_qubits, name=f"fourier_state_{value}")
    for q in range(num_qubits):
        qc.h(q)
        if bit_reversed:
            qc.p(2.0 * math.pi * value / 2 ** (q + 1), q)
        else:
            qc.p(2.0 * math.pi * value / 2 ** (num_qubits - q), q)
    return qc


def iqft_benchmark_circuit(num_qubits: int, value: int | None = None, measure: bool = True) -> QuantumCircuit:
    """Fourier-state preparation followed by the inverse QFT (Fig. 2(a)).

    The ideal output is the basis state ``|value>`` (default: the state with
    alternating bits set, which exercises every rotation).
    """
    if value is None:
        value = sum(1 << b for b in range(0, num_qubits, 2))
    qc = fourier_state_preparation(num_qubits, value, bit_reversed=True)
    qc = qc.compose(iqft_circuit(num_qubits, with_swaps=False))
    qc.name = f"iqft_benchmark_{num_qubits}"
    qc.metadata["ideal_value"] = value
    if measure:
        qc.measure_all()
    return qc
