"""QFT-based arithmetic: the Draper adder and the Ruiz-Perez multiplier.

These are the QFTAdder (7-q) and QFTMultiplier (4-q) benchmarks of Table II.
Both follow the cited constructions:

* Draper [15]: add a value into a register by rotating in the Fourier basis;
* Ruiz-Perez & Garcia-Escartin [39]: out-of-place multiplication via
  controlled Fourier additions.
"""

from __future__ import annotations

import math

from ..circuits import QuantumCircuit
from .qft import iqft_circuit, qft_circuit

__all__ = [
    "draper_constant_adder",
    "qft_adder_circuit",
    "qft_multiplier_circuit",
]


def draper_constant_adder(num_qubits: int, constant: int, initial_value: int = 0, measure: bool = True) -> QuantumCircuit:
    """In-place addition of a classical constant: ``|b> -> |b + constant mod 2^n>``.

    The register is prepared in ``initial_value``, moved to the Fourier basis,
    rotated by the constant, and transformed back.
    """
    if num_qubits < 1:
        raise ValueError("num_qubits must be positive")
    constant %= 2**num_qubits
    initial_value %= 2**num_qubits
    qc = QuantumCircuit(num_qubits, name=f"draper_adder_{num_qubits}")
    for q in range(num_qubits):
        if (initial_value >> q) & 1:
            qc.x(q)
    qc = qc.compose(qft_circuit(num_qubits, with_swaps=False))
    # In the swap-less Fourier basis produced by qft_circuit, qubit q carries
    # the phase 2 pi x / 2^(q+1); adding `constant` shifts that phase.
    for q in range(num_qubits):
        qc.p(2.0 * math.pi * constant / 2 ** (q + 1), q)
    qc = qc.compose(iqft_circuit(num_qubits, with_swaps=False))
    qc.name = f"draper_adder_{num_qubits}"
    qc.metadata["expected_sum"] = (initial_value + constant) % 2**num_qubits
    if measure:
        qc.measure_all()
    return qc


def qft_adder_circuit(num_sum_bits: int, a: int, b: int, measure: bool = True) -> QuantumCircuit:
    """Two-register Draper adder: ``|a>|b> -> |a>|a + b mod 2^n>``.

    Register ``a`` occupies qubits ``0 .. n-1`` and register ``b`` (which
    receives the sum) occupies qubits ``n .. 2n-1``; only the sum register is
    measured.  The paper's 7-qubit QFTAdder corresponds to
    ``num_sum_bits = 4`` with a 3-bit ``a`` register (7 qubits total); we keep
    the register split general and default the benchmark harness to that
    shape.
    """
    if num_sum_bits < 1:
        raise ValueError("num_sum_bits must be positive")
    num_a_bits = num_sum_bits - 1
    a %= 2**max(num_a_bits, 1)
    b %= 2**num_sum_bits
    num_qubits = num_a_bits + num_sum_bits
    qc = QuantumCircuit(num_qubits, name=f"qft_adder_{num_qubits}")
    qc.metadata["expected_sum"] = (a + b) % 2**num_sum_bits

    a_register = list(range(num_a_bits))
    b_register = list(range(num_a_bits, num_qubits))
    for bit, q in enumerate(a_register):
        if (a >> bit) & 1:
            qc.x(q)
    for bit, q in enumerate(b_register):
        if (b >> bit) & 1:
            qc.x(q)

    qc = qc.compose(qft_circuit(num_sum_bits, with_swaps=False), qubits=b_register)
    # Controlled phase additions: control on a-bit j adds 2^j to the register.
    for j, control in enumerate(a_register):
        for k, target in enumerate(b_register):
            angle = 2.0 * math.pi * 2**j / 2 ** (k + 1)
            angle = math.remainder(angle, 2.0 * math.pi)
            if abs(angle) > 1e-12:
                qc.cp(angle, control, target)
    qc = qc.compose(iqft_circuit(num_sum_bits, with_swaps=False), qubits=b_register)
    if measure:
        qc.measure_subset(b_register)
    return qc


def qft_multiplier_circuit(
    num_a_bits: int, num_b_bits: int, a: int, b: int, measure: bool = True
) -> QuantumCircuit:
    """Out-of-place QFT multiplier: ``|a>|b>|0> -> |a>|b>|a*b>``.

    The output register has ``num_a_bits + num_b_bits`` qubits.  The paper's
    4-qubit QFTMultiplier is the ``1 x 1`` multiplier (1 + 1 + 2 qubits).
    Only the product register is measured.
    """
    if num_a_bits < 1 or num_b_bits < 1:
        raise ValueError("register sizes must be positive")
    a %= 2**num_a_bits
    b %= 2**num_b_bits
    num_out_bits = num_a_bits + num_b_bits
    num_qubits = num_a_bits + num_b_bits + num_out_bits
    qc = QuantumCircuit(num_qubits, name=f"qft_multiplier_{num_qubits}")
    qc.metadata["expected_product"] = (a * b) % 2**num_out_bits

    a_register = list(range(num_a_bits))
    b_register = list(range(num_a_bits, num_a_bits + num_b_bits))
    out_register = list(range(num_a_bits + num_b_bits, num_qubits))
    for bit, q in enumerate(a_register):
        if (a >> bit) & 1:
            qc.x(q)
    for bit, q in enumerate(b_register):
        if (b >> bit) & 1:
            qc.x(q)

    qc = qc.compose(qft_circuit(num_out_bits, with_swaps=False), qubits=out_register)
    # For every pair of set input bits (j, k) add 2^(j+k) to the product
    # register.  A doubly-controlled phase is decomposed into CP conjugated by
    # CX (standard CCP decomposition) to stay within the 1/2-qubit gate set.
    for j, control_a in enumerate(a_register):
        for k, control_b in enumerate(b_register):
            for m, target in enumerate(out_register):
                angle = 2.0 * math.pi * 2 ** (j + k) / 2 ** (m + 1)
                angle = math.remainder(angle, 2.0 * math.pi)
                if abs(angle) < 1e-12:
                    continue
                _append_ccp(qc, angle, control_a, control_b, target)
    qc = qc.compose(iqft_circuit(num_out_bits, with_swaps=False), qubits=out_register)
    if measure:
        qc.measure_subset(out_register)
    return qc


def _append_ccp(qc: QuantumCircuit, angle: float, control_a: int, control_b: int, target: int) -> None:
    """Doubly-controlled phase via the standard CP/CX decomposition."""
    qc.cp(angle / 2.0, control_b, target)
    qc.cx(control_a, control_b)
    qc.cp(-angle / 2.0, control_b, target)
    qc.cx(control_a, control_b)
    qc.cp(angle / 2.0, control_a, target)
