"""Quantum phase estimation (QPE).

The paper uses QPE both as the running example for single-layer qubit
subsetting (Sec. V-B, Fig. 5) and as a real-device benchmark (5-q / 6-q QPE
in Table II).  The standard construction is: Hadamards on the counting
register, controlled powers ``U^(2^k)``, then the inverse QFT on the counting
register, which is finally measured.
"""

from __future__ import annotations

import math

import numpy as np

from ..circuits import QuantumCircuit, UnitaryGate, controlled_matrix
from .qft import iqft_circuit

__all__ = ["qpe_circuit", "qpe_ideal_distribution_peak"]


def qpe_circuit(
    num_counting: int,
    phase: float = None,
    unitary: np.ndarray | None = None,
    eigenstate_is_one: bool = True,
    measure: bool = True,
) -> QuantumCircuit:
    """Build a QPE circuit with ``num_counting`` counting qubits and one target.

    Parameters
    ----------
    num_counting:
        Size of the counting (ancilla) register; the circuit has
        ``num_counting + 1`` qubits in total.  The counting qubits are
        qubits ``0 .. num_counting-1`` and are the only ones measured,
        mirroring the paper's benchmark where qubit subsetting targets the
        counting register.
    phase:
        Eigenphase ``theta`` of the unitary (``U|1> = exp(2 pi i theta)|1>``).
        Defaults to a phase exactly representable with ``num_counting`` bits
        so the ideal output is a single peak.
    unitary:
        Alternatively, an explicit 2x2 unitary whose eigenstate |1> is used.
    eigenstate_is_one:
        Prepare the target qubit in |1> (the eigenstate of a phase gate).
    """
    if num_counting < 1:
        raise ValueError("num_counting must be positive")
    if unitary is not None and phase is not None:
        raise ValueError("give either phase or unitary, not both")
    if unitary is None:
        if phase is None:
            # Default: ideal peak at the bit pattern 0101.. (exactly representable).
            peak = sum(1 << b for b in range(0, num_counting, 2))
            phase = peak / 2**num_counting
        unitary = np.diag([1.0, np.exp(2j * math.pi * phase)])
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (2, 2):
        raise ValueError("the target unitary must act on a single qubit")

    num_qubits = num_counting + 1
    target = num_counting
    qc = QuantumCircuit(num_qubits, name=f"qpe_{num_qubits}")
    qc.metadata["phase"] = phase

    if eigenstate_is_one:
        qc.x(target)
    for q in range(num_counting):
        qc.h(q)
    for q in range(num_counting):
        power = 2**q
        powered = np.linalg.matrix_power(unitary, power)
        controlled = controlled_matrix(powered, 1)
        # Wire order (target, control): the control is the high qubit of the
        # controlled matrix built by controlled_matrix.
        qc.unitary(controlled, (target, q), name=f"c-u^{power}")
    qc = qc.compose(iqft_circuit(num_counting, with_swaps=True), qubits=list(range(num_counting)))
    if measure:
        qc.measure_subset(list(range(num_counting)))
    return qc


def qpe_ideal_distribution_peak(num_counting: int, phase: float) -> int:
    """The counting-register outcome with the highest ideal probability."""
    return int(round(phase * 2**num_counting)) % 2**num_counting
