"""QAOA circuits for MaxCut.

The 10-qubit QAOA benchmarks of Fig. 9 / Table I / Tables II-III use
multi-layer QAOA on MaxCut instances.  Each layer is a cost layer of ZZ
interactions (one per graph edge) followed by a mixer layer of X rotations;
this is the structure QuTracer's multi-layer subsetting checks layer by
layer.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from ..circuits import QuantumCircuit

__all__ = ["qaoa_maxcut_circuit", "default_qaoa_angles", "qaoa_cost_layer", "qaoa_mixer_layer"]


def default_qaoa_angles(layers: int, seed: int | None = None) -> tuple[list[float], list[float]]:
    """Reasonable fixed QAOA angles (linear ramp schedule).

    The paper evaluates fidelity of the circuit output against the ideal
    distribution for the *same* angles, so the angles do not need to be
    optimal — they only need to be fixed and non-trivial.  A linear ramp
    (gammas increasing, betas decreasing) is the standard heuristic.
    """
    if layers < 1:
        raise ValueError("layers must be positive")
    if seed is not None:
        rng = np.random.default_rng(seed)
        gammas = list(rng.uniform(-1.0, -0.2, size=layers))
        betas = list(rng.uniform(0.2, 1.0, size=layers))
        return gammas, betas
    # With the e^{-i gamma Z Z} cost-layer convention used by
    # :func:`qaoa_cost_layer`, negative gammas paired with positive betas
    # increase the expected cut monotonically with depth on the benchmark
    # ring / regular graphs (verified numerically in the test suite).
    gammas = [-0.5 * (i + 1) / layers for i in range(layers)]
    betas = [0.5 * (1.0 - i / layers) for i in range(layers)]
    return gammas, betas


def qaoa_cost_layer(qc: QuantumCircuit, graph: nx.Graph, gamma: float, use_rzz: bool = False) -> None:
    """Append one cost layer.  The default decomposition is CX-RZ-CX, which is
    what the device basis supports; ``use_rzz`` keeps the two-qubit RZZ gate."""
    for u, v, data in graph.edges(data=True):
        weight = float(data.get("weight", 1.0))
        angle = gamma * weight
        if use_rzz:
            qc.rzz(2.0 * angle, u, v)
        else:
            qc.cx(u, v)
            qc.rz(2.0 * angle, v)
            qc.cx(u, v)


def qaoa_mixer_layer(qc: QuantumCircuit, beta: float) -> None:
    for q in range(qc.num_qubits):
        qc.rx(2.0 * beta, q)


def qaoa_maxcut_circuit(
    graph: nx.Graph,
    layers: int,
    gammas: Sequence[float] | None = None,
    betas: Sequence[float] | None = None,
    use_rzz: bool = False,
    measure: bool = True,
) -> QuantumCircuit:
    """Standard QAOA circuit for MaxCut on ``graph``.

    Qubit ``i`` corresponds to graph node ``i`` (nodes must be ``0..n-1``).
    """
    nodes = sorted(graph.nodes())
    if nodes != list(range(len(nodes))):
        raise ValueError("graph nodes must be labelled 0..n-1")
    if gammas is None or betas is None:
        default_gammas, default_betas = default_qaoa_angles(layers)
        gammas = gammas if gammas is not None else default_gammas
        betas = betas if betas is not None else default_betas
    if len(gammas) != layers or len(betas) != layers:
        raise ValueError("gammas and betas must both have one entry per layer")

    num_qubits = len(nodes)
    qc = QuantumCircuit(num_qubits, name=f"qaoa_{num_qubits}q_{layers}l")
    qc.metadata["layers"] = layers
    qc.metadata["gammas"] = list(map(float, gammas))
    qc.metadata["betas"] = list(map(float, betas))
    for q in range(num_qubits):
        qc.h(q)
    for layer in range(layers):
        qaoa_cost_layer(qc, graph, float(gammas[layer]), use_rzz=use_rzz)
        qaoa_mixer_layer(qc, float(betas[layer]))
    if measure:
        qc.measure_all()
    return qc
