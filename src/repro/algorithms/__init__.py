"""Benchmark circuit constructions used throughout the paper's evaluation."""

from .arithmetic import draper_constant_adder, qft_adder_circuit, qft_multiplier_circuit
from .bv import bernstein_vazirani_circuit
from .maxcut import (
    cut_value,
    cut_value_distribution_expectation,
    maxcut_brute_force,
    random_regular_maxcut_graph,
    ring_graph,
)
from .qaoa import default_qaoa_angles, qaoa_cost_layer, qaoa_maxcut_circuit, qaoa_mixer_layer
from .qft import (
    fourier_state_preparation,
    iqft_benchmark_circuit,
    iqft_circuit,
    qft_circuit,
)
from .qpe import qpe_circuit, qpe_ideal_distribution_peak
from .vqe import hardware_efficient_ansatz, random_vqe_parameters, vqe_circuit

__all__ = [
    "qft_circuit",
    "iqft_circuit",
    "fourier_state_preparation",
    "iqft_benchmark_circuit",
    "qpe_circuit",
    "qpe_ideal_distribution_peak",
    "bernstein_vazirani_circuit",
    "draper_constant_adder",
    "qft_adder_circuit",
    "qft_multiplier_circuit",
    "hardware_efficient_ansatz",
    "vqe_circuit",
    "random_vqe_parameters",
    "qaoa_maxcut_circuit",
    "default_qaoa_angles",
    "qaoa_cost_layer",
    "qaoa_mixer_layer",
    "ring_graph",
    "random_regular_maxcut_graph",
    "cut_value",
    "maxcut_brute_force",
    "cut_value_distribution_expectation",
]
