"""Hardware-efficient VQE ansatz circuits.

The paper's VQE benchmarks (Fig. 6, Fig. 7, Fig. 8, Tables II/III) use a
hardware-efficient ansatz: a layer of single-qubit Ry rotations, followed by
``layers`` repetitions of [linear-entanglement CZ layer + Ry layer].  The
"CNOT depth" sweep of Fig. 8 repeats the entanglement layer a configurable
number of times.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuits import QuantumCircuit

__all__ = ["hardware_efficient_ansatz", "vqe_circuit", "random_vqe_parameters"]


def random_vqe_parameters(
    num_qubits: int, layers: int, seed: int | None = None, scale: float = np.pi
) -> np.ndarray:
    """Random rotation angles with shape ``(layers + 1, num_qubits)``."""
    rng = np.random.default_rng(seed)
    return rng.uniform(-scale, scale, size=(layers + 1, num_qubits))


def hardware_efficient_ansatz(
    num_qubits: int,
    layers: int,
    parameters: Sequence[Sequence[float]] | np.ndarray | None = None,
    entangler: str = "cz",
    entanglement_repetitions: int = 1,
    barriers: bool = False,
    seed: int | None = 7,
) -> QuantumCircuit:
    """Build the Ry + linear-entanglement ansatz of Fig. 6(a).

    Parameters
    ----------
    num_qubits, layers:
        Width and number of entangling layers.  ``layers = 0`` gives a single
        Ry layer.
    parameters:
        Rotation angles with shape ``(layers + 1, num_qubits)``.  Random
        angles (seeded) are used when omitted.
    entangler:
        ``"cz"`` (paper default) or ``"cx"`` linear entanglement.
    entanglement_repetitions:
        Number of times each entanglement layer is repeated; this is the knob
        behind the "CNOT depth" sweep of Fig. 8.
    barriers:
        Insert a barrier after every entanglement block (useful for
        visualisation; the QuTracer analysis inserts its own cut markers).
    """
    if num_qubits < 2:
        raise ValueError("the ansatz needs at least two qubits")
    if layers < 0:
        raise ValueError("layers must be non-negative")
    if entangler not in ("cz", "cx"):
        raise ValueError("entangler must be 'cz' or 'cx'")
    if parameters is None:
        parameters = random_vqe_parameters(num_qubits, layers, seed=seed)
    parameters = np.asarray(parameters, dtype=float)
    if parameters.shape != (layers + 1, num_qubits):
        raise ValueError(
            f"parameters must have shape {(layers + 1, num_qubits)}, got {parameters.shape}"
        )

    qc = QuantumCircuit(num_qubits, name=f"vqe_{num_qubits}q_{layers}l")
    qc.metadata["layers"] = layers
    qc.metadata["entangler"] = entangler
    for q in range(num_qubits):
        qc.ry(float(parameters[0, q]), q)
    for layer in range(layers):
        for _ in range(entanglement_repetitions):
            for q in range(num_qubits - 1):
                if entangler == "cz":
                    qc.cz(q, q + 1)
                else:
                    qc.cx(q, q + 1)
        if barriers:
            qc.barrier()
        for q in range(num_qubits):
            qc.ry(float(parameters[layer + 1, q]), q)
    return qc


def vqe_circuit(
    num_qubits: int,
    layers: int,
    parameters: np.ndarray | None = None,
    entangler: str = "cz",
    entanglement_repetitions: int = 1,
    seed: int | None = 7,
    measure: bool = True,
) -> QuantumCircuit:
    """The ansatz with final measurements on every qubit (the VQE benchmark)."""
    qc = hardware_efficient_ansatz(
        num_qubits,
        layers,
        parameters=parameters,
        entangler=entangler,
        entanglement_repetitions=entanglement_repetitions,
        seed=seed,
    )
    if measure:
        qc.measure_all()
    return qc
