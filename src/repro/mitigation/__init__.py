"""Error-mitigation baselines: Jigsaw, PCS (+ideal), SQEM."""

from .jigsaw import JigsawResult, build_subset_circuit, default_subsets, run_jigsaw
from .pcs import PauliCheck, PCSResult, build_pcs_circuit, post_select, run_pcs
from .sqem import run_sqem

__all__ = [
    "JigsawResult",
    "run_jigsaw",
    "build_subset_circuit",
    "default_subsets",
    "PauliCheck",
    "PCSResult",
    "build_pcs_circuit",
    "post_select",
    "run_pcs",
    "run_sqem",
]
