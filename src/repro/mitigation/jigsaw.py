"""Jigsaw: measurement subsetting [13].

Jigsaw splits the shot budget between (i) the original circuit with all
qubits measured — the noisy *global* distribution — and (ii) copies of the
circuit that measure only a small subset of qubits — the *local*
distributions, which suffer less measurement error (in particular less
measurement crosstalk on hardware).  The local distributions then refine the
global one through Bayesian recombination.

Gate errors are untouched, which is the limitation QuTracer addresses.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..circuits import QuantumCircuit
from ..distributions import ProbabilityDistribution, iterative_bayesian_update
from ..noise import NoiseModel, as_noise_model
from ..simulators import ExecutionEngine, get_default_engine

__all__ = ["JigsawResult", "default_subsets", "build_subset_circuit", "run_jigsaw"]


@dataclasses.dataclass
class JigsawResult:
    """Output of a Jigsaw run."""

    global_distribution: ProbabilityDistribution
    local_distributions: list[tuple[ProbabilityDistribution, list[int]]]
    mitigated_distribution: ProbabilityDistribution
    subsets: list[list[int]]
    shots_global: int
    shots_per_subset: int

    @property
    def total_shots(self) -> int:
        return self.shots_global + self.shots_per_subset * len(self.subsets)


def default_subsets(qubits: Sequence[int], subset_size: int = 2) -> list[list[int]]:
    """Adjacent, non-overlapping subsets covering all measured qubits.

    This mirrors the Jigsaw paper's default of splitting the measured
    register into groups of two (the last group may be smaller when the
    register is odd).
    """
    qubits = list(qubits)
    if subset_size < 1:
        raise ValueError("subset_size must be positive")
    subsets = [qubits[i : i + subset_size] for i in range(0, len(qubits), subset_size)]
    return [s for s in subsets if s]


def build_subset_circuit(circuit: QuantumCircuit, subset: Sequence[int]) -> QuantumCircuit:
    """Copy of ``circuit`` measuring only ``subset`` (gates untouched)."""
    subset = list(subset)
    measured = set(circuit.measured_qubits or range(circuit.num_qubits))
    for q in subset:
        if q not in measured:
            raise ValueError(f"qubit {q} is not measured by the original circuit")
    stripped = circuit.remove_final_measurements()
    stripped.measure_subset(subset)
    stripped.name = f"{circuit.name}_subset_{'_'.join(map(str, subset))}"
    return stripped


def run_jigsaw(
    circuit: QuantumCircuit,
    noise_model: NoiseModel,
    shots: int = 8192,
    subset_size: int = 2,
    subsets: Sequence[Sequence[int]] | None = None,
    update_rounds: int = 1,
    seed: int | None = None,
    max_trajectories: int = 600,
    engine: ExecutionEngine | None = None,
    workers: int | None = None,
    cache_dir: str | None = None,
    device=None,
    retry_policy=None,
) -> JigsawResult:
    """Run the Jigsaw protocol.

    ``device`` (a :class:`~repro.noise.DeviceModel`, true or learned)
    switches on hardware-aware execution: the global circuit and every
    subset copy are compiled onto the device — noise-aware layout, SABRE
    routing, basis translation — through the engine's
    :class:`~repro.transpiler.CompilationCache` and executed under the
    device's noise model (``noise_model`` may then be ``None``; an explicit
    model overrides the device's and is interpreted over *physical device
    wires*, see :meth:`~repro.simulators.engine.ExecutionEngine.execute_many`).

    Half the shots produce the global distribution, the other half are split
    evenly across the subset circuits (the paper's configuration in
    Sec. VI).  The mitigated distribution is the global distribution after a
    Bayesian update from every local distribution.

    The subset circuits are submitted as one batch through ``engine``
    (default: the process-wide engine), which deduplicates identical subset
    circuits and caches results across repeated runs of the same workload.
    ``workers``/``cache_dir`` build a dedicated engine (process-parallel
    sharding and/or a persistent on-disk cache) when no ``engine`` is
    passed; they are ignored otherwise.
    """
    if not circuit.has_measurements:
        circuit = circuit.copy()
        circuit.measure_all()
    # Accepts a DeviceModel / LearnedDeviceModel wherever a NoiseModel fits
    # (None still means ideal noise, resolved by the engine).
    if noise_model is not None:
        noise_model = as_noise_model(noise_model)
    owned_engine = None
    if engine is None:
        if workers is not None or cache_dir is not None:
            # Dedicated engine for this call; its worker pool is released
            # deterministically below instead of waiting for GC.
            engine = owned_engine = ExecutionEngine(
                workers=workers, cache_dir=cache_dir, retry_policy=retry_policy
            )
        else:
            engine = get_default_engine()
    measured = circuit.measured_qubits
    if subsets is None:
        subsets = default_subsets(measured, subset_size)
    subsets = [list(s) for s in subsets]
    if not subsets:
        raise ValueError("at least one subset is required")

    shots_global = max(shots // 2, 1)
    shots_per_subset = max((shots - shots_global) // len(subsets), 1)

    try:
        global_result = engine.execute(
            circuit,
            noise_model,
            shots=shots_global,
            seed=seed,
            max_trajectories=max_trajectories,
            device=device,
        )
        global_distribution = global_result.distribution

        subset_circuits = [build_subset_circuit(circuit, subset) for subset in subsets]
        local_results = engine.execute_many(
            subset_circuits,
            noise_model,
            shots=shots_per_subset,
            seed=None if seed is None else seed + 101,
            max_trajectories=max_trajectories,
            device=device,
        )
    finally:
        if owned_engine is not None:
            owned_engine.close()
    local_distributions: list[tuple[ProbabilityDistribution, list[int]]] = []
    for subset, local_result in zip(subsets, local_results):
        # Bits of the local distribution follow clbit order (sorted subset).
        ordered_subset = [q for q in sorted(subset)]
        subset_bits = [global_result.bit_for_qubit(q) for q in ordered_subset]
        local_distributions.append((local_result.distribution, subset_bits))

    mitigated = iterative_bayesian_update(global_distribution, local_distributions, rounds=update_rounds)
    return JigsawResult(
        global_distribution=global_distribution,
        local_distributions=local_distributions,
        mitigated_distribution=mitigated,
        subsets=subsets,
        shots_global=shots_global,
        shots_per_subset=shots_per_subset,
    )
