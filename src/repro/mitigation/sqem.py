"""SQEM: classical simulators as quantum error mitigators via circuit cutting [28].

SQEM virtualises the PCS checks the same way QSPC does — the checks become a
classically-recombined ensemble of prepare/run/measure circuits — but it
predates QuTracer's circuit optimizations: the full original circuit is
executed for every copy (no false dependency removal / localized simulation /
state traceback), every measurement basis is run, and the full six-state
wire-cutting preparation basis is used.  That is exactly the QuTracer driver
with all optimizations disabled, which is how it is implemented here; the
qualitative consequences match the paper (SQEM mitigates both gate and
measurement errors, but its copies are larger and more numerous, so QuTracer
overtakes it as circuits deepen, Fig. 7/8).

SQEM's cost scales exponentially with the number of checked layers, so —
like the paper — the benchmarks only apply it to single-layer circuits.
"""

from __future__ import annotations

from typing import Sequence

from ..circuits import QuantumCircuit
from ..core import QuTracer, QuTracerOptions, QuTracerResult
from ..noise import DeviceModel, NoiseModel
from ..simulators import ExecutionEngine

__all__ = ["run_sqem"]


def run_sqem(
    circuit: QuantumCircuit,
    noise_model: NoiseModel | None = None,
    device: DeviceModel | None = None,
    shots: int = 8192,
    shots_per_circuit: int | None = None,
    subsets: Sequence[Sequence[int]] | None = None,
    subset_size: int = 1,
    seed: int | None = None,
    max_trajectories: int = 300,
    engine: ExecutionEngine | None = None,
    workers: int | None = None,
    cache_dir: str | None = None,
    compile: bool = False,
) -> QuTracerResult:
    """Run the SQEM baseline and return the refined global distribution.

    The result object is a :class:`~repro.core.QuTracerResult`; its overhead
    fields (circuit copies, two-qubit gate counts) reflect SQEM's larger
    cost.  SQEM's many full-width copies all flow through ``engine``, where
    its heavy duplication (every basis, every preparation, re-run per layer)
    becomes cache hits.  ``workers``/``cache_dir`` configure the default
    engine's process-parallel sharding and persistent on-disk cache when no
    ``engine`` is passed (forwarded to :class:`~repro.core.QuTracer`).
    ``compile=True`` (requires ``device``) runs every copy hardware-aware:
    compiled onto the device through the engine's
    :class:`~repro.transpiler.CompilationCache` and executed under the
    device's noise model — see :class:`~repro.core.QuTracer`.
    """
    options = QuTracerOptions(
        enable_checks=True,
        false_dependency_removal=False,
        localized_simulation=False,
        state_traceback=False,
        state_preparation_reduction=False,
        restrict_measurement_bases=False,
    )
    runner = QuTracer(
        noise_model=noise_model,
        device=device,
        shots=shots,
        shots_per_circuit=shots_per_circuit,
        seed=seed,
        options=options,
        max_trajectories=max_trajectories,
        engine=engine,
        workers=workers,
        cache_dir=cache_dir,
        compile=compile,
    )
    try:
        return runner.run(circuit, subsets=subsets, subset_size=subset_size)
    finally:
        # Releases the worker pool when the tracer built its own engine;
        # a caller-supplied engine is left untouched.
        runner.close()
