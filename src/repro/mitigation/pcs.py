"""Pauli Check Sandwiching (PCS) [19].

A pair of Pauli checks ``C_L`` / ``C_R`` with ``C_R U C_L = U`` is wrapped
around a protected circuit region using an ancilla qubit: the ancilla is put
in ``|+>``, a controlled-``C_L`` is applied before the region and a
controlled-``C_R`` after it, the ancilla is rotated back and measured, and
runs where the ancilla reads 1 are discarded.  Errors inside the region that
anticommute with the check are removed by the post-selection (Eq. (4)).

The module also provides the paper's "ideal PCS" baseline: the same circuit,
but the checking gates and the ancilla readout are noise-free.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from ..circuits import Instruction, QuantumCircuit, standard_gate
from ..distributions import ProbabilityDistribution
from ..noise import NoiseModel, as_noise_model
from ..simulators import ExecutionEngine, get_default_engine

__all__ = ["PauliCheck", "PCSResult", "build_pcs_circuit", "post_select", "run_pcs"]

_CONTROLLED_GATE_FOR_PAULI = {"X": "cx", "Y": "cy", "Z": "cz"}


@dataclasses.dataclass(frozen=True)
class PauliCheck:
    """One pair of sandwiching checks.

    Attributes
    ----------
    pauli:
        The check operator as a mapping payload-qubit -> Pauli letter
        (identity elsewhere).  The same operator is used for the left and
        right check, which is the single-qubit-Z configuration the paper
        uses (``C_L = C_R``); it must commute with the protected region.
    region:
        Instruction index range ``(start, end)`` of the payload circuit that
        the check protects (half-open, measurement instructions excluded).
    """

    pauli: Mapping[int, str]
    region: tuple[int, int]

    def __post_init__(self) -> None:
        for qubit, letter in self.pauli.items():
            if letter.upper() not in _CONTROLLED_GATE_FOR_PAULI:
                raise ValueError(f"unsupported check Pauli {letter!r} on qubit {qubit}")
        start, end = self.region
        if start > end:
            raise ValueError("check region start must not exceed end")


@dataclasses.dataclass
class PCSResult:
    """Post-selected output of a PCS run."""

    mitigated_distribution: ProbabilityDistribution
    raw_distribution: ProbabilityDistribution
    post_selection_rate: float
    circuit: QuantumCircuit
    ancilla_qubits: list[int]


def build_pcs_circuit(
    circuit: QuantumCircuit, checks: Sequence[PauliCheck]
) -> tuple[QuantumCircuit, list[int]]:
    """Insert sandwiching checks (one ancilla per check) into ``circuit``.

    Returns the instrumented circuit and the ancilla qubit indices.  Payload
    measurements are preserved; each ancilla is measured into a fresh
    classical bit.
    """
    if not checks:
        raise ValueError("at least one check is required")
    num_payload_qubits = circuit.num_qubits
    num_checks = len(checks)
    ancilla_qubits = [num_payload_qubits + i for i in range(num_checks)]

    payload_instructions = [inst for inst in circuit.data if not inst.is_measurement]
    measurements = [inst for inst in circuit.data if inst.is_measurement]
    for check in checks:
        if check.region[1] > len(payload_instructions):
            raise ValueError("check region exceeds the payload length")

    new = QuantumCircuit(
        num_payload_qubits + num_checks,
        max(circuit.num_clbits, num_payload_qubits) + num_checks,
        f"{circuit.name}_pcs",
    )
    new.metadata = dict(circuit.metadata)

    def apply_check(check_index: int, check: PauliCheck) -> None:
        ancilla = ancilla_qubits[check_index]
        for qubit, letter in sorted(check.pauli.items()):
            gate = standard_gate(_CONTROLLED_GATE_FOR_PAULI[letter.upper()])
            new.append(gate, (ancilla, qubit))

    # Hadamards opening every ancilla.
    for ancilla in ancilla_qubits:
        new.h(ancilla)
    for index, inst in enumerate(payload_instructions):
        for check_index, check in enumerate(checks):
            if check.region[0] == index:
                apply_check(check_index, check)
        new.append_instruction(inst)
        for check_index, check in enumerate(checks):
            if check.region[1] == index + 1:
                apply_check(check_index, check)
    # Checks whose region ends at the very start (empty circuits) or at the end
    # when the payload is empty.
    if not payload_instructions:
        for check_index, check in enumerate(checks):
            apply_check(check_index, check)
            apply_check(check_index, check)
    for ancilla in ancilla_qubits:
        new.h(ancilla)
    for inst in measurements:
        new.append_instruction(inst)
    clbit_base = max(circuit.num_clbits, num_payload_qubits)
    for i, ancilla in enumerate(ancilla_qubits):
        new.measure(ancilla, clbit_base + i)
    return new, ancilla_qubits


def post_select(
    distribution: ProbabilityDistribution,
    required_zero_bits: Sequence[int],
    keep_bits: Sequence[int],
) -> tuple[ProbabilityDistribution, float]:
    """Keep outcomes whose ``required_zero_bits`` are all zero.

    Returns the renormalised distribution over ``keep_bits`` and the fraction
    of probability mass that survived post-selection.
    """
    required_zero_bits = list(required_zero_bits)
    keep_bits = list(keep_bits)
    surviving: dict[int, float] = {}
    kept_mass = 0.0
    for outcome, probability in distribution.items():
        if any((outcome >> bit) & 1 for bit in required_zero_bits):
            continue
        kept_mass += probability
        reduced = 0
        for i, bit in enumerate(keep_bits):
            if (outcome >> bit) & 1:
                reduced |= 1 << i
        surviving[reduced] = surviving.get(reduced, 0.0) + probability
    if not surviving:
        return ProbabilityDistribution.uniform(len(keep_bits)), 0.0
    return (
        ProbabilityDistribution(surviving, len(keep_bits)).normalized(),
        kept_mass / max(distribution.total, 1e-15),
    )


def run_pcs(
    circuit: QuantumCircuit,
    checks: Sequence[PauliCheck],
    noise_model: NoiseModel,
    shots: int | None = None,
    ideal_checks: bool = False,
    seed: int | None = None,
    max_trajectories: int = 600,
    engine: ExecutionEngine | None = None,
    workers: int | None = None,
    cache_dir: str | None = None,
    device=None,
    retry_policy=None,
) -> PCSResult:
    """Execute the PCS-instrumented circuit and post-select on the ancillas.

    ``device`` (a :class:`~repro.noise.DeviceModel`, true or learned)
    switches on hardware-aware execution: the instrumented circuit is
    compiled onto the device — noise-aware layout, SABRE routing, basis
    translation — through the engine's
    :class:`~repro.transpiler.CompilationCache` and executed under the
    device's noise model (``noise_model`` may then be ``None``; an explicit
    model overrides the device's and is interpreted over *physical device
    wires*, see :meth:`~repro.simulators.engine.ExecutionEngine.execute_many`).
    ``ideal_checks=True`` is incompatible with ``device=``: the ideal-PCS
    baseline is defined on the *logical* circuit (noise-free ancilla wires),
    and after routing the ancillas share physical wires with the payload, so
    the per-wire perfection has no physical counterpart.

    ``ideal_checks=True`` reproduces the paper's *ideal PCS* baseline: every
    gate touching an ancilla and the ancilla readout are error free, so only
    the payload noise remains (Sec. VII-A / VII-C).

    The instrumented circuit runs through ``engine`` (default: the
    process-wide :class:`~repro.simulators.engine.ExecutionEngine`), so a
    sweep that re-runs the same checked circuit hits the result cache.
    ``cache_dir`` builds a dedicated engine with a persistent on-disk cache
    when no ``engine`` is passed.  ``workers`` is accepted for signature
    uniformity with the other mitigation entry points, but PCS executes a
    *single* instrumented circuit, so there is nothing to shard — it only
    pre-configures the dedicated engine for any future batched use.  Both
    are ignored when ``engine`` is given.
    """
    if device is not None and ideal_checks:
        raise ValueError(
            "ideal_checks=True is a logical-circuit baseline; it cannot be "
            "compiled onto a device (routed ancillas share physical wires "
            "with the payload)"
        )
    if not circuit.has_measurements:
        circuit = circuit.copy()
        circuit.measure_all()
    # Accepts a DeviceModel / LearnedDeviceModel wherever a NoiseModel fits
    # (None still means ideal noise, resolved by the engine).
    if noise_model is not None:
        noise_model = as_noise_model(noise_model)
    owned_engine = None
    if engine is None:
        if workers is not None or cache_dir is not None:
            engine = owned_engine = ExecutionEngine(
                workers=workers, cache_dir=cache_dir, retry_policy=retry_policy
            )
        else:
            engine = get_default_engine()
    instrumented, ancilla_qubits = build_pcs_circuit(circuit, checks)
    model = noise_model.with_perfect_qubits(ancilla_qubits) if ideal_checks else noise_model
    try:
        result = engine.execute(
            instrumented,
            model,
            shots=shots,
            seed=seed,
            max_trajectories=max_trajectories,
            device=device,
        )
    finally:
        if owned_engine is not None:
            owned_engine.close()
    payload_bits = [
        result.bit_for_qubit(q) for q in circuit.measured_qubits
    ]
    # Keep bits ordered by clbit so the mitigated distribution lines up with
    # the original circuit's distribution.
    payload_bits = sorted(payload_bits)
    ancilla_bits = [result.bit_for_qubit(q) for q in ancilla_qubits]
    mitigated, rate = post_select(result.distribution, ancilla_bits, payload_bits)
    return PCSResult(
        mitigated_distribution=mitigated,
        raw_distribution=result.distribution,
        post_selection_rate=rate,
        circuit=instrumented,
        ancilla_qubits=ancilla_qubits,
    )
