"""Trace event schema.

One :class:`TraceEvent` is one record in a trace: either a **span** (a
named interval with a start offset and a duration, nested under a parent
span) or a point **event** (a fact attached to the enclosing span —
typically an after-the-fact measurement such as "this execution took
1.3 ms and was retried once").

Offsets are relative to the trace's epoch, which is the
``time.perf_counter()`` reading when the root span opened — monotonic
within one process, so per-stage deltas between events of one trace are
meaningful.  Events produced in *other* processes (pool workers) cannot
share that clock; they report their own measured ``duration`` plus the
worker ``pid`` inside ``attrs`` and are stitched into the parent's tree
by the dispatching event (see ``docs/architecture.md``).

Everything in ``attrs`` must be JSON-serializable; events round-trip
through JSON bit-identically (``json`` preserves floats via shortest
round-trip repr), which the chaos tests assert.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any

__all__ = ["TRACE_FORMAT", "TRACE_FORMAT_VERSION", "TraceEvent", "result_digest"]

# Written into the header line of every persisted trace; bumped when the
# on-disk schema changes incompatibly.  Loaders reject unknown versions.
TRACE_FORMAT = "repro-trace"
TRACE_FORMAT_VERSION = 1


@dataclasses.dataclass
class TraceEvent:
    """One record of a trace (a span interval or a point event).

    ``start`` is seconds since the trace epoch; ``duration`` is seconds
    (``None`` for point events that carry no measurement).  ``parent_id``
    is the enclosing span's ``span_id`` (``None`` only for the root
    span), which is what lets a flat JSONL file reconstruct the tree.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    kind: str  # "span" | "event"
    start: float
    duration: float | None
    attrs: dict[str, Any] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceEvent":
        return cls(
            trace_id=payload["trace_id"],
            span_id=payload["span_id"],
            parent_id=payload["parent_id"],
            name=payload["name"],
            kind=payload["kind"],
            start=payload["start"],
            duration=payload["duration"],
            attrs=dict(payload.get("attrs") or {}),
        )


def result_digest(payload: Any) -> str:
    """Short content digest of a cached execution payload.

    Stamped onto ``cache-put`` events so a trace replay can verify that
    the entry a key serves *today* is bit-identical to what the traced
    run stored.  Accepts an ``ExecutionResult``-shaped object or a
    ``(distribution, measured_qubits)`` dm-state payload; ``repr`` of the
    outcome/probability pairs round-trips floats exactly, so equal
    results digest equally across processes and sessions.
    """
    if hasattr(payload, "distribution"):
        counts = getattr(payload, "counts", None)
        body = (
            sorted(payload.distribution.items()),
            sorted(counts.items()) if counts is not None else None,
            list(payload.measured_qubits),
            getattr(payload, "method", None),
            getattr(payload, "shots", None),
        )
    else:
        distribution, measured_qubits = payload
        body = (sorted(distribution.items()), None, list(measured_qubits), "dm-state", None)
    return hashlib.sha256(repr(body).encode()).hexdigest()[:16]
