"""Entry point for ``python -m repro.tracing``."""

from .cli import main

raise SystemExit(main())
