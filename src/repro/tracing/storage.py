"""Versioned JSONL persistence for traces.

One trace = one file, ``trace-<trace_id>.jsonl``: a header line naming
the format and schema version, then one JSON object per
:class:`~repro.tracing.events.TraceEvent`.  Files are published
atomically (temp file + ``os.replace``) so readers — including a
concurrent CLI ``summarize`` — never observe a torn trace, mirroring the
result cache's publish discipline.  Typically the store lives next to
the persistent result cache (``<cache_dir>/../traces`` or any directory
the caller picks); traces and the cached results they reference then
travel together as one provenance bundle.

Writes never raise: a full disk or read-only tree increments
:attr:`TraceStore.write_errors` and the traced run continues with the
in-memory copy.  Loads are strict — a missing or alien header is a
``ValueError``, because a trace that cannot be attributed to a schema
version cannot be diffed safely.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from .events import TRACE_FORMAT, TRACE_FORMAT_VERSION, TraceEvent

__all__ = ["TraceStore", "load_trace"]


class TraceStore:
    """Directory of JSONL trace artifacts."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.write_errors = 0

    def path_for(self, trace_id: str) -> str:
        return os.path.join(self.root, f"trace-{trace_id}.jsonl")

    def write(self, trace_id: str, events: list[TraceEvent]) -> str | None:
        """Persist one finished trace; returns its path (None on failure)."""
        header = {
            "format": TRACE_FORMAT,
            "version": TRACE_FORMAT_VERSION,
            "trace_id": trace_id,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "events": len(events),
        }
        # Compact separators and insertion-ordered keys: the flush runs at
        # batch close inside the traced call, so encode speed is part of
        # the tracing-overhead budget the benchmark gates.  Loaders parse
        # JSON, never byte-compare, so key order is free to vary.
        dumps = json.dumps
        lines = [dumps(header, separators=(",", ":"))]
        lines.extend(dumps(event.to_dict(), separators=(",", ":")) for event in events)
        payload = "\n".join(lines) + "\n"
        path = self.path_for(trace_id)
        try:
            fd, temp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(temp_path, path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except OSError:
            self.write_errors += 1
            return None
        return path

    def list(self) -> list[str]:
        """Trace file paths, oldest first (by mtime, then name)."""
        entries = []
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        for name in names:
            if not (name.startswith("trace-") and name.endswith(".jsonl")):
                continue
            path = os.path.join(self.root, name)
            try:
                mtime = os.stat(path).st_mtime
            except OSError:
                continue
            entries.append((mtime, name, path))
        return [path for _, _, path in sorted(entries)]


def load_trace(path: str) -> tuple[dict, list[TraceEvent]]:
    """Load ``(header, events)`` from a persisted trace; strict on format."""
    with open(path, "r") as handle:
        lines = [line for line in handle.read().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise ValueError(f"{path}: not a {TRACE_FORMAT} file")
    if header.get("version") != TRACE_FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported trace version {header.get('version')!r} "
            f"(expected {TRACE_FORMAT_VERSION})"
        )
    events = [TraceEvent.from_dict(json.loads(line)) for line in lines[1:]]
    return header, events
