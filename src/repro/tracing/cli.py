"""Command-line tooling for persisted traces.

``python -m repro.tracing <command>``:

* ``summarize <trace>`` — per-stage timing lines (greppable
  ``stage <name>  n=... total=... mean=...``), cache-tier and
  backend-method histograms, and a fault summary.
* ``diff <a> <b>`` — per-stage timing deltas, tier-count shifts, and a
  per-slot drift check on ``(fingerprint, method, tier)``.  Exits 1 when
  any slot's method or hit attribution drifted; otherwise prints the
  sentinel ``no method or hit-attribution drift``.
* ``replay <trace> --cache-dir DIR`` — re-fetches every cached key the
  traced run wrote (from its ``cache-put`` provenance) out of the
  persistent result cache and verifies the stored payloads are
  bit-identical to what the trace recorded.  Exits 1 on a digest
  mismatch.
* ``list <dir>`` — trace artifact paths, oldest first.

The module imports nothing from the rest of ``repro`` at import time;
``replay`` loads the cache layer lazily so tracing stays dependency-free
within the package.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Sequence

from .events import TraceEvent
from .storage import TraceStore, load_trace

__all__ = ["main"]

# Canonical print order; stages outside this list sort after it.
_STAGE_ORDER = ["prepare", "compile", "cache", "dispatch", "execute", "deliver", "total"]


def _stage_timings(events: list[TraceEvent]) -> dict[str, list[float]]:
    """Seconds spent per pipeline stage, one sample per measurement."""
    stages: dict[str, list[float]] = {}
    for event in events:
        if event.kind == "event" and event.name == "request":
            for stage in ("prepare", "cache", "deliver"):
                timing = event.attrs.get(f"t_{stage}")
                if timing is not None:
                    stages.setdefault(stage, []).append(float(timing))
        elif event.kind == "event" and event.name in ("execute", "compile", "dispatch"):
            if event.duration is not None:
                stages.setdefault(event.name, []).append(float(event.duration))
        elif event.kind == "span" and event.parent_id is None and event.duration is not None:
            stages.setdefault("total", []).append(float(event.duration))
    return stages


def _request_events(events: list[TraceEvent]) -> list[TraceEvent]:
    requests = [e for e in events if e.kind == "event" and e.name == "request"]
    requests.sort(key=lambda event: event.attrs.get("slot", 0))
    return requests


def _counts(values: list) -> dict:
    counts: dict = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return counts


def _stage_key(name: str) -> tuple[int, str]:
    try:
        return (_STAGE_ORDER.index(name), name)
    except ValueError:
        return (len(_STAGE_ORDER), name)


def _ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.3f}ms"


def _print_stages(stages: dict[str, list[float]]) -> None:
    for name in sorted(stages, key=_stage_key):
        samples = stages[name]
        total = sum(samples)
        print(
            f"stage {name:<10} n={len(samples):<5d} "
            f"total={_ms(total)} mean={_ms(total / len(samples))}"
        )


def _cmd_summarize(args: argparse.Namespace) -> int:
    header, events = load_trace(args.trace)
    print(f"trace {header.get('trace_id')}  events={len(events)}  file={args.trace}")
    stages = _stage_timings(events)
    if stages:
        _print_stages(stages)
    requests = _request_events(events)
    for label, field in (("tier", "tier"), ("method", "method")):
        for value, count in sorted(_counts([r.attrs.get(field) for r in requests]).items(),
                                   key=lambda item: str(item[0])):
            print(f"{label} {str(value):<14} n={count}")
    executes = [e for e in events if e.kind == "event" and e.name == "execute"]
    for value, count in sorted(
        _counts([e.attrs.get("location") for e in executes]).items(),
        key=lambda item: str(item[0]),
    ):
        print(f"location {str(value):<10} n={count}")
    retries = sum(int(e.attrs.get("retries") or 0) for e in executes)
    degraded = sum(int(e.attrs.get("degraded") or 0) for e in executes)
    failed_slots = sum(1 for r in requests if r.attrs.get("ok") is False)
    print(f"faults retries={retries} degraded={degraded} failed_slots={failed_slots}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    header_a, events_a = load_trace(args.trace_a)
    header_b, events_b = load_trace(args.trace_b)
    print(f"diff a={header_a.get('trace_id')} b={header_b.get('trace_id')}")

    stages_a = _stage_timings(events_a)
    stages_b = _stage_timings(events_b)
    for name in sorted(set(stages_a) | set(stages_b), key=_stage_key):
        total_a = sum(stages_a.get(name, []))
        total_b = sum(stages_b.get(name, []))
        delta = total_b - total_a
        relative = f" ({delta / total_a:+.1%})" if total_a > 0 else ""
        sign = "+" if delta >= 0 else ""
        print(
            f"stage {name:<10} a={_ms(total_a)} b={_ms(total_b)} "
            f"delta={sign}{_ms(delta)}{relative}"
        )

    requests_a = _request_events(events_a)
    requests_b = _request_events(events_b)
    tiers_a = _counts([r.attrs.get("tier") for r in requests_a])
    tiers_b = _counts([r.attrs.get("tier") for r in requests_b])
    for tier in sorted(set(tiers_a) | set(tiers_b), key=str):
        count_a = tiers_a.get(tier, 0)
        count_b = tiers_b.get(tier, 0)
        print(f"tier {str(tier):<14} a={count_a} b={count_b} delta={count_b - count_a:+d}")

    drift = 0
    if len(requests_a) != len(requests_b):
        print(f"drift slots a={len(requests_a)} b={len(requests_b)}")
        drift += 1
    for slot_a, slot_b in zip(requests_a, requests_b):
        slot = slot_a.attrs.get("slot")
        for field in ("fingerprint", "method", "tier"):
            value_a = slot_a.attrs.get(field)
            value_b = slot_b.attrs.get(field)
            if value_a != value_b:
                print(f"drift slot={slot} field={field} a={value_a!r} b={value_b!r}")
                drift += 1
    if drift:
        print(f"drift: {drift} divergence(s)")
        return 1
    print(f"slots compared={len(requests_a)}")
    print("no method or hit-attribution drift")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    # Lazy import: the tracing package must not depend on the simulator
    # layer at import time (the engine imports tracing, not vice versa).
    from ..simulators.cache import PersistentResultCache

    from .events import result_digest

    _, events = load_trace(args.trace)
    # cache-put provenance digests the exact payload the traced run
    # stored; request-event keys without one (served from a pre-existing
    # entry the traced run never wrote) get a presence check only.
    digests: dict[str, str | None] = {}
    for event in events:
        if event.kind == "event" and event.name == "cache-put":
            digests[event.attrs["key"]] = event.attrs.get("digest")
    for request in _request_events(events):
        if request.attrs.get("ok") is not True or "degraded_from" in request.attrs:
            continue
        key_repr = request.attrs.get("key")
        if key_repr is not None:
            digests.setdefault(key_repr, None)

    cache = PersistentResultCache(args.cache_dir)
    verified = present = missing = mismatched = 0
    for key_repr, expected in sorted(digests.items()):
        key = ast.literal_eval(key_repr)
        payload = cache.get(key)
        if payload is None:
            missing += 1
            print(f"missing {key_repr}")
        elif expected is None:
            present += 1
        elif result_digest(payload) == expected:
            verified += 1
        else:
            mismatched += 1
            print(f"mismatch {key_repr} expected={expected} got={result_digest(payload)}")
    print(
        f"replay keys={len(digests)} verified={verified} present={present} "
        f"missing={missing} mismatched={mismatched}"
    )
    if mismatched or (missing and args.strict):
        return 1
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    for path in TraceStore(args.trace_dir).list():
        print(path)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tracing",
        description="Summarize, diff and replay persisted execution traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser("summarize", help="per-stage timings and attributions")
    summarize.add_argument("trace", help="path to a trace-<id>.jsonl artifact")
    summarize.set_defaults(func=_cmd_summarize)

    diff = sub.add_parser("diff", help="compare two traces; exit 1 on drift")
    diff.add_argument("trace_a")
    diff.add_argument("trace_b")
    diff.set_defaults(func=_cmd_diff)

    replay = sub.add_parser(
        "replay", help="verify the persistent cache against a trace's provenance"
    )
    replay.add_argument("trace")
    replay.add_argument("--cache-dir", required=True, help="persistent result cache directory")
    replay.add_argument(
        "--strict", action="store_true", help="also fail when a traced key was evicted"
    )
    replay.set_defaults(func=_cmd_replay)

    listing = sub.add_parser("list", help="list trace artifacts, oldest first")
    listing.add_argument("trace_dir")
    listing.set_defaults(func=_cmd_list)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. ``list | head -1``) closed the pipe;
        # that is not an error.  Detach stdout so the interpreter's exit
        # flush does not raise the same error again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
