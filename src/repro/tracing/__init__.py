"""Structured execution tracing and provenance.

Every pipeline stage — submit, compile, cache lookup, execute (in-process
or in a pool worker), deliver, mitigate — can record what happened and
how long it took into one per-batch trace: a tree of spans and events
with cache-tier attribution, resolved backend methods and fault
annotations (retries, degradation-ladder rungs, isolated failures)
sourced from the fault layer.  Traces persist as versioned JSONL
artifacts, and ``python -m repro.tracing`` summarizes a trace, replays a
traced batch against the persistent result cache, and diffs two traces.

The package is deliberately dependency-free within ``repro``: the engine
imports it, never the other way round (the CLI imports the cache layer
lazily), so tracing can wrap any layer without import cycles.

See ``docs/architecture.md`` ("Execution tracing & provenance") for the
event schema and the pool-boundary propagation contract.
"""

from .events import TRACE_FORMAT, TRACE_FORMAT_VERSION, TraceEvent, result_digest
from .recorder import TraceRecorder, maybe_span
from .storage import TraceStore, load_trace

__all__ = [
    "TRACE_FORMAT",
    "TRACE_FORMAT_VERSION",
    "TraceEvent",
    "TraceRecorder",
    "TraceStore",
    "load_trace",
    "maybe_span",
    "result_digest",
]
