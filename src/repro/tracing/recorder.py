"""The in-process trace recorder.

A :class:`TraceRecorder` holds a stack of open spans.  Opening a span
while the stack is empty starts a **new trace**: a fresh trace ID, a
fresh epoch (``time.perf_counter()`` at that instant), an empty event
list.  Closing the root span finishes the trace — it is appended to
:attr:`TraceRecorder.traces` (a bounded in-memory ring) and, when the
recorder has a :class:`~repro.tracing.storage.TraceStore`, queued for a
JSONL flush that runs *off* the traced call's critical path: on the next
trace start, on :attr:`last_trace_path` access, on :meth:`flush` (the
engine calls it from ``close()``), or at interpreter exit.

Design constraints, in order:

* **Never fail the traced work.**  ``event()`` outside any open trace is
  a silent no-op (an engine used standalone emits events only inside its
  own batch span); storage write failures are counted, not raised.
* **Cheap when present, free when absent.**  Consumers guard emit sites
  with ``if tracer is not None`` — a disabled engine pays one attribute
  load per batch.  An enabled recorder appends plain field tuples
  (materialized into :class:`~repro.tracing.events.TraceEvent` only on
  read); no locks (the engine is single-threaded per instance), no I/O
  on the traced call's critical path.
* **Exception-transparent.**  The :meth:`span` context manager closes
  the span with ``status="raised"`` and re-raises, so a batch aborted by
  a terminal fault still yields a complete, persisted trace.
"""

from __future__ import annotations

import atexit
import contextlib
import os
import time
import weakref
from typing import Any, Iterator

from .events import TraceEvent
from .storage import TraceStore

__all__ = ["TraceRecorder", "maybe_span"]


def _flush_ref(ref: "weakref.ref[TraceRecorder]") -> None:
    recorder = ref()
    if recorder is not None:
        recorder.flush()


class _OpenSpan:
    __slots__ = ("span_id", "parent_id", "name", "start", "attrs")

    def __init__(
        self, span_id: str, parent_id: str | None, name: str, start: float, attrs: dict
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.attrs = attrs


class TraceRecorder:
    """Collects spans/events into traces; optionally persists them.

    Parameters
    ----------
    store:
        Destination for finished traces (``None`` keeps them in memory
        only).
    keep:
        How many finished traces the in-memory ring retains.
    """

    def __init__(self, store: TraceStore | None = None, keep: int = 16) -> None:
        self.store = store
        self.keep = int(keep)
        # Finished traces, oldest first: [(trace_id, [raw record, ...])].
        # Records are stored as plain field tuples and materialized into
        # :class:`TraceEvent` only on access (:meth:`trace_events`) or at
        # flush — dataclass construction is measurable at hot-loop event
        # rates and the benchmark gates the emit path, not the read path.
        self.traces: list[tuple[str, list[tuple]]] = []
        self.last_trace_id: str | None = None
        self._last_trace_path: str | None = None
        self._stack: list[_OpenSpan] = []
        self._events: list[tuple] = []
        self._trace_id: str | None = None
        self._epoch = 0.0
        self._seq = 0
        self._trace_count = 0
        # Ring-overflow accounting: traces (and the events they carried)
        # evicted from the bounded ring.  Before these counters existed
        # the loss was silent; the engine's metrics collector bridges
        # them (with the store's write_errors) onto the scrape endpoint.
        self.dropped_traces = 0
        self.dropped_events = 0
        # Finished-but-unflushed trace.  The JSONL encode + write (~1-2 ms)
        # is deferred off the traced call's critical path — the same move
        # production tracers make with batched span exporters — and runs on
        # the next trace start, on path access, on flush(), or at interpreter
        # exit (weakref so the atexit hook never pins a dead recorder).
        self._pending: tuple[str, list[tuple]] | None = None
        if store is not None:
            atexit.register(_flush_ref, weakref.ref(self))

    # ------------------------------------------------------------------
    # Trace/span lifecycle
    # ------------------------------------------------------------------

    @property
    def active(self) -> bool:
        """True while a trace is open (at least one span on the stack)."""
        return bool(self._stack)

    @property
    def current_trace_id(self) -> str | None:
        """The open trace's ID, or ``None`` between traces."""
        return self._trace_id if self._stack else None

    @property
    def last_trace_path(self) -> str | None:
        """Path of the most recent persisted trace (forces a pending flush)."""
        self.flush()
        return self._last_trace_path

    def flush(self) -> None:
        """Write any finished-but-unflushed trace to the store."""
        pending = self._pending
        if pending is None or self.store is None:
            self._pending = None
            return
        self._pending = None
        # A failed flush degrades to in-memory-only for this trace; the
        # store counts the error and the traced run is unaffected.
        trace_id, raw_events = pending
        events = [TraceEvent(*raw) for raw in raw_events]
        self._last_trace_path = self.store.write(trace_id, events)

    def start_span(self, name: str, **attrs: Any) -> _OpenSpan:
        """Open a span; opening with an empty stack starts a new trace."""
        if not self._stack and self._pending is not None:
            self.flush()  # one deferred artifact at a time
        now = time.perf_counter()
        if not self._stack:
            self._trace_count += 1
            self._trace_id = (
                f"{time.time_ns():016x}-{os.getpid():x}-{self._trace_count:x}"
            )
            self._epoch = now
            self._events = []
            self._seq = 0
        parent_id = self._stack[-1].span_id if self._stack else None
        # attrs is already a fresh dict (**kwargs) — no defensive copy.
        span = _OpenSpan(self._next_id(), parent_id, name, now, attrs)
        self._stack.append(span)
        return span

    def end_span(self, span: _OpenSpan, **attrs: Any) -> None:
        """Close ``span`` (and any deeper spans left open by an abort)."""
        now = time.perf_counter()
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        merged = span.attrs
        if attrs:
            merged = {**merged, **attrs}
        self._events.append(
            (
                self._trace_id or "",
                span.span_id,
                span.parent_id,
                span.name,
                "span",
                span.start - self._epoch,
                now - span.start,
                merged,
            )
        )
        if not self._stack:
            self._finish_trace()

    @contextlib.contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[_OpenSpan]:
        span = self.start_span(name, **attrs)
        try:
            yield span
        except BaseException as exc:
            self.end_span(span, status="raised", error=type(exc).__name__)
            raise
        else:
            self.end_span(span)

    def event(self, name: str, duration: float | None = None, **attrs: Any) -> None:
        """Record a point event under the current span.

        A measured ``duration`` backdates the event's start so the record
        covers the interval it describes.  Outside any open trace this is
        a no-op — tracing must never invent implicit traces.
        """
        self.emit(name, attrs, duration)

    def emit(self, name: str, attrs: dict, duration: float | None = None) -> None:
        """:meth:`event` taking a prebuilt attrs dict — the hot-loop variant.

        The per-slot emitters build their attrs dict incrementally, so
        routing it through ``**kwargs`` would repack it for nothing; at a
        hundred-plus events per batch that repack shows up in the traced
        arm of the overhead benchmark.  The dict is owned by the trace
        from here on — callers must not mutate it afterwards.
        """
        if not self._stack:
            return
        self._seq += 1
        self._events.append(
            (
                self._trace_id or "",
                f"s{self._seq}",
                self._stack[-1].span_id,
                name,
                "event",
                (time.perf_counter() - self._epoch) - (duration or 0.0),
                duration,
                attrs,
            )
        )

    # ------------------------------------------------------------------
    # Finished-trace access
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Recorder health snapshot, in the subsystem ``stats()`` idiom.

        Surfaces what used to vanish silently: ring evictions
        (``dropped_traces`` / ``dropped_events``) and the store's
        ``write_errors``.
        """
        return {
            "traces": self._trace_count,
            "retained": len(self.traces),
            "dropped_traces": self.dropped_traces,
            "dropped_events": self.dropped_events,
            "pending_flush": self._pending is not None,
            "write_errors": self.store.write_errors if self.store is not None else 0,
        }

    def trace_events(self, trace_id: str | None = None) -> list[TraceEvent]:
        """Events of a finished trace (default: the most recent one)."""
        if not self.traces:
            return []
        if trace_id is None:
            return [TraceEvent(*raw) for raw in self.traces[-1][1]]
        for tid, events in reversed(self.traces):
            if tid == trace_id:
                return [TraceEvent(*raw) for raw in events]
        return []

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _next_id(self) -> str:
        self._seq += 1
        return f"s{self._seq}"

    def _finish_trace(self) -> None:
        trace_id = self._trace_id or ""
        events = self._events
        self.traces.append((trace_id, events))
        if len(self.traces) > self.keep:
            overflow = self.traces[: len(self.traces) - self.keep]
            self.dropped_traces += len(overflow)
            self.dropped_events += sum(len(raw) for _, raw in overflow)
            del self.traces[: len(self.traces) - self.keep]
        self.last_trace_id = trace_id
        self._trace_id = None
        self._events = []
        if self.store is not None:
            self._pending = (trace_id, events)


@contextlib.contextmanager
def maybe_span(
    tracer: TraceRecorder | None, name: str, **attrs: Any
) -> Iterator[_OpenSpan | None]:
    """``tracer.span(...)`` when a tracer is present; a no-op otherwise.

    Lets optionally-traced consumers (QuTracer, the calibration runner)
    instrument one code path instead of two.
    """
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attrs) as span:
        yield span
