"""Low-level tensor application of operators to states.

Both simulators view a state as a tensor with one axis of dimension two per
qubit.  Following numpy's row-major reshape of the integer index
``i = sum_k b_k 2**k``, the axis for qubit ``q`` is ``num_qubits - 1 - q``.
Gate matrices are little-endian in their wire tuple (first wire = least
significant bit), so the wire tuple is traversed in reverse when aligning
gate axes with state axes — the same convention as
:func:`repro.circuits.circuit._expand_gate`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "apply_matrix_to_statevector",
    "apply_matrix_to_statevector_batch",
    "apply_matrix_to_density_matrix",
    "apply_kraus_to_density_matrix",
    "apply_uniform_depolarizing_to_density_matrix",
    "statevector_probabilities",
    "statevector_probabilities_batch",
    "density_matrix_probabilities",
    "reduced_density_matrix",
    "reduced_density_matrix_from_statevector",
]


def _state_axes(qubits: Sequence[int], num_qubits: int) -> list[int]:
    return [num_qubits - 1 - q for q in reversed(list(qubits))]


def apply_matrix_to_statevector(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply ``matrix`` (acting on ``qubits``) to a statevector of ``num_qubits``."""
    k = len(qubits)
    axes = _state_axes(qubits, num_qubits)
    tensor = state.reshape([2] * num_qubits)
    gate_tensor = matrix.reshape([2] * (2 * k))
    moved = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), axes))
    result = np.moveaxis(moved, list(range(k)), axes)
    return np.ascontiguousarray(result.reshape(2**num_qubits))


def apply_matrix_to_statevector_batch(
    states: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply ``matrix`` (acting on ``qubits``) to every row of a ``(T, 2**n)``
    batch of statevectors with a single contraction.

    The trajectory axis (axis 0) is never contracted, so the gate is
    dispatched once for the whole ensemble rather than once per trajectory —
    the core kernel of :mod:`repro.simulators.ensemble`.
    """
    k = len(qubits)
    batch = states.shape[0]
    # Batch axis first, then one axis per qubit; qubit axes shift by one.
    axes = [a + 1 for a in _state_axes(qubits, num_qubits)]
    tensor = states.reshape([batch] + [2] * num_qubits)
    gate_tensor = matrix.reshape([2] * (2 * k))
    moved = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), axes))
    result = np.moveaxis(moved, list(range(k)), axes)
    return np.ascontiguousarray(result.reshape(batch, 2**num_qubits))


def apply_matrix_to_density_matrix(
    rho: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply the unitary conjugation ``M rho M^dagger`` on the given qubits."""
    dim = 2**num_qubits
    k = len(qubits)
    axes_row = _state_axes(qubits, num_qubits)
    # Column (ket-dual) axes sit after the row axes in the 2n-axis tensor.
    axes_col = [a + num_qubits for a in axes_row]
    tensor = rho.reshape([2] * (2 * num_qubits))
    gate_tensor = matrix.reshape([2] * (2 * k))
    gate_tensor_conj = matrix.conj().reshape([2] * (2 * k))

    moved = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), axes_row))
    moved = np.moveaxis(moved, list(range(k)), axes_row)
    moved = np.tensordot(gate_tensor_conj, moved, axes=(list(range(k, 2 * k)), axes_col))
    moved = np.moveaxis(moved, list(range(k)), axes_col)
    return np.ascontiguousarray(moved.reshape(dim, dim))


def apply_kraus_to_density_matrix(
    rho: np.ndarray, operators: Sequence[np.ndarray], qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply a Kraus channel ``rho -> sum_k K rho K^dagger`` on the given qubits."""
    result = np.zeros_like(rho)
    for op in operators:
        result += apply_matrix_to_density_matrix(rho, op, qubits, num_qubits)
    return result


def apply_uniform_depolarizing_to_density_matrix(
    rho: np.ndarray, probability: float, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Closed form of the uniform depolarizing channel on ``qubits``:
    ``rho -> (1 - p) rho + p (I / 2**k) (x) tr_qubits(rho)``.

    Equivalent to :func:`apply_kraus_to_density_matrix` with the channel's
    ``4**k`` Kraus operators, but costs one partial trace and one embedding
    instead of ``2 * 4**k`` large tensor contractions — the dominant cost of
    exact noisy simulation under depolarizing noise models.
    """
    qubits = list(qubits)
    k = len(qubits)
    dim = 2**num_qubits
    if k == num_qubits:
        mixed = np.trace(rho) / dim * np.eye(dim, dtype=complex)
        return (1.0 - probability) * rho + probability * mixed
    keep = [q for q in range(num_qubits) if q not in qubits]
    traced = reduced_density_matrix(rho, keep, num_qubits)
    kept = len(keep)
    # Outer product (traced over keep-qubits) x (I / 2**k over channel qubits),
    # then move every axis to its global little-endian position.
    traced_tensor = traced.reshape([2] * (2 * kept))
    eye_tensor = (np.eye(2**k, dtype=complex) / 2**k).reshape([2] * (2 * k))
    product = np.multiply.outer(traced_tensor, eye_tensor)
    # product axes: [traced rows][traced cols][eye rows][eye cols]; the row
    # axis for keep[i] is kept-1-i (little-endian), likewise for qubits[i].
    destinations = []
    for i in range(kept):  # traced row axes
        destinations.append(num_qubits - 1 - keep[kept - 1 - i])
    for i in range(kept):  # traced col axes
        destinations.append(2 * num_qubits - 1 - keep[kept - 1 - i])
    for i in range(k):  # eye row axes
        destinations.append(num_qubits - 1 - qubits[k - 1 - i])
    for i in range(k):  # eye col axes
        destinations.append(2 * num_qubits - 1 - qubits[k - 1 - i])
    mixed = np.moveaxis(product, range(2 * num_qubits), destinations).reshape(dim, dim)
    return (1.0 - probability) * rho + probability * mixed


def statevector_probabilities(
    state: np.ndarray, qubits: Sequence[int] | None, num_qubits: int
) -> np.ndarray:
    """Measurement probabilities of ``qubits`` (little-endian in the result)."""
    probs = _abs_squared(state)
    if qubits is None:
        return probs
    return _marginalise(probs, qubits, num_qubits)


def statevector_probabilities_batch(
    states: np.ndarray, qubits: Sequence[int] | None, num_qubits: int
) -> np.ndarray:
    """Per-row measurement probabilities of a ``(T, 2**n)`` statevector batch.

    Returns a ``(T, 2**m)`` block whose row ``t`` is
    :func:`statevector_probabilities` of ``states[t]``.
    """
    probs = _abs_squared(states)
    if qubits is None:
        return probs
    qubits = list(qubits)
    batch = probs.shape[0]
    axes_keep = _state_axes(qubits, num_qubits)
    run = _consecutive_run(axes_keep)
    if run is not None:
        # Kept axes already form an ascending run: reshape (free on the
        # contiguous block) and sum, skipping the full-permutation copy.
        outer, k = run, len(qubits)
        blocked = probs.reshape(batch, 1 << outer, 1 << k, -1)
        return blocked.sum(axis=(1, 3))
    tensor = probs.reshape([batch] + [2] * num_qubits)
    axes_keep = [a + 1 for a in axes_keep]
    axes_other = [a for a in range(1, num_qubits + 1) if a not in axes_keep]
    permuted = np.transpose(tensor, [0] + axes_keep + axes_other)
    return np.ascontiguousarray(
        permuted.reshape(batch, 2 ** len(qubits), -1).sum(axis=2)
    )


def density_matrix_probabilities(
    rho: np.ndarray, qubits: Sequence[int] | None, num_qubits: int
) -> np.ndarray:
    probs = np.real(np.diagonal(rho)).copy()
    probs[probs < 0] = 0.0
    if qubits is None:
        return probs
    return _marginalise(probs, qubits, num_qubits)


def _abs_squared(values: np.ndarray) -> np.ndarray:
    """``|values|**2`` as ``real**2 + imag**2`` — one real temporary instead of
    the complex-magnitude round-trip (sqrt then square) of ``np.abs(x) ** 2``."""
    re = values.real
    im = values.imag
    return re * re + im * im


def _consecutive_run(axes_keep: Sequence[int]) -> int | None:
    """If ``axes_keep`` is an ascending consecutive run ``[s, s+1, ...]``,
    return ``s`` (the number of more-significant axes); else ``None``.

    Such a run means the kept block is already contiguous in the flat
    row-major index, so marginalising is a reshape + sum with no transpose.
    """
    start = axes_keep[0]
    for offset, axis in enumerate(axes_keep):
        if axis != start + offset:
            return None
    return start


def _marginalise(probs: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Marginal distribution over ``qubits``; bit ``i`` of the result index is
    ``qubits[i]`` of the full index."""
    qubits = list(qubits)
    axes_keep = _state_axes(qubits, num_qubits)
    run = _consecutive_run(axes_keep)
    if run is not None:
        blocked = probs.reshape(1 << run, 2 ** len(qubits), -1)
        return blocked.sum(axis=(0, 2))
    tensor = probs.reshape([2] * num_qubits)
    axes_other = [a for a in range(num_qubits) if a not in axes_keep]
    permuted = np.transpose(tensor, axes_keep + axes_other)
    return np.ascontiguousarray(permuted.reshape(2 ** len(qubits), -1).sum(axis=1))


def reduced_density_matrix_from_statevector(
    state: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Partial trace of ``|psi><psi|`` keeping ``qubits`` (little-endian order)."""
    keep = list(qubits)
    axes_keep = _state_axes(keep, num_qubits)
    axes_other = [a for a in range(num_qubits) if a not in axes_keep]
    tensor = state.reshape([2] * num_qubits)
    permuted = np.transpose(tensor, axes_keep + axes_other)
    matrix = permuted.reshape(2 ** len(keep), -1)
    return matrix @ matrix.conj().T


def reduced_density_matrix(
    rho: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Partial trace of a density matrix keeping ``qubits`` (little-endian order)."""
    keep = list(qubits)
    k = len(keep)
    axes_keep = _state_axes(keep, num_qubits)
    axes_other = [a for a in range(num_qubits) if a not in axes_keep]
    tensor = rho.reshape([2] * (2 * num_qubits))
    perm = (
        axes_keep
        + axes_other
        + [a + num_qubits for a in axes_keep]
        + [a + num_qubits for a in axes_other]
    )
    permuted = np.transpose(tensor, perm)
    other_dim = 2 ** (num_qubits - k)
    reshaped = permuted.reshape(2**k, other_dim, 2**k, other_dim)
    return np.ascontiguousarray(np.einsum("ambm->ab", reshaped))
