"""Gate fusion: merge runs of adjacent gates into single classified blocks.

For the compacted 2-6 qubit circuits that dominate subset-tracing workloads
the cost of a simulation step is numpy dispatch, not arithmetic, so applying
one fused 3-qubit matrix beats applying the five small gates it replaces.
:func:`fuse_circuit` greedily merges adjacent gates whose combined support
stays within ``max_qubits`` wires into one unitary block, and attaches each
gate's noise-insertion sites *after the block that ends with that gate* —
noise placement is therefore unchanged: a gate followed by noise always
terminates its block, so its channels still act on exactly the state they
would have seen gate-by-gate.

Fusion runs in two passes.  Pass 1 segments the instruction stream into
blocks — a decision that depends only on gate supports, barriers and noise
sites, never on matrix values — and pass 2 materialises each block's matrix
exactly once at its final support by evolving a ``2**k`` identity basis
through the block's gates (one batched application per gate).  The earlier
single-pass spelling re-embedded the whole accumulated matrix every time a
new gate grew the support, which is quadratic in block length; the two-pass
form touches each gate matrix once.

Pass 2 also attaches a :class:`~repro.simulators.kernels.KernelPlan` to
every block — the structural classification (diag / perm / dense1q /
dense2q / generic) that routes the simulators' hot loops to specialized
kernels with zero per-application re-analysis.

Fusion *width* is chosen per program by :func:`choose_fusion_width` when the
caller does not pin it: wide (4-5 wire) blocks amortise dispatch when the
amplitude block ``T * 2**n`` is large, while narrow (3 wire) blocks keep
matrices structurally classifiable when dispatch dominates.

The output is a :class:`FusedProgram` — the common instruction stream
consumed by the ensemble, single-statevector and density-matrix simulators.
Barriers and measurements are fusion boundaries (gates are never merged
across them); measurements themselves are handled by the simulators'
measurement layout, not the program.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..circuits import QuantumCircuit
from ..noise import KrausChannel, NoiseModel
from .apply import apply_matrix_to_statevector_batch
from .kernels import KernelPlan, build_plan

__all__ = [
    "FusedOperation",
    "FusedProgram",
    "fuse_circuit",
    "choose_fusion_width",
    "DEFAULT_FUSION_MAX_QUBITS",
    "WIDE_FUSION_MAX_QUBITS",
    "WIDE_FUSION_THRESHOLD",
]

DEFAULT_FUSION_MAX_QUBITS = 3

# Cost-model constants: when the amplitude block T * 2**n meets the
# threshold, per-block dispatch overhead is amortised over enough data that
# wider (and denser) fused matrices win; below it, narrow blocks keep more
# of the stream on the one-pass diag/perm kernels.
WIDE_FUSION_MAX_QUBITS = 5
WIDE_FUSION_THRESHOLD = 1 << 16


def choose_fusion_width(
    num_qubits: int,
    batch_size: int = 1,
    max_qubits: int | None = None,
) -> int:
    """Pick the fusion width for a program: explicit pin wins, else cost model.

    ``max_qubits`` is the caller's explicit override (returned unchanged,
    including ``<= 0`` meaning fusion disabled).  Otherwise the width is
    chosen from the amplitude-block size ``batch_size * 2**num_qubits``:
    :data:`WIDE_FUSION_MAX_QUBITS` when it reaches
    :data:`WIDE_FUSION_THRESHOLD` (arithmetic-bound regime) and
    :data:`DEFAULT_FUSION_MAX_QUBITS` when dispatch dominates — both capped
    at the circuit width, since a block can never out-span the register.
    """
    if max_qubits is not None:
        return max_qubits
    if batch_size * (1 << num_qubits) >= WIDE_FUSION_THRESHOLD:
        return max(1, min(WIDE_FUSION_MAX_QUBITS, num_qubits))
    return max(1, min(DEFAULT_FUSION_MAX_QUBITS, num_qubits))


@dataclasses.dataclass
class FusedOperation:
    """One fused unitary block plus the noise sites that follow it.

    ``qubits`` is sorted ascending and the matrix is little-endian in it
    (first wire = least significant bit), matching the convention of
    :func:`repro.simulators.apply.apply_matrix_to_statevector`.  ``sites``
    are the ``(channel, wires)`` noise insertions of the block's final gate,
    in :meth:`~repro.noise.NoiseModel.channels_for` order.  ``kernel`` is
    the block's structural classification, computed once here so the
    simulators' hot loops never re-analyse the matrix.
    """

    matrix: np.ndarray
    qubits: tuple[int, ...]
    sites: list[tuple[KrausChannel, tuple[int, ...]]]
    kernel: KernelPlan | None = None


@dataclasses.dataclass
class FusedProgram:
    """A circuit lowered to fused unitary blocks with interleaved noise."""

    operations: list[FusedOperation]
    num_qubits: int
    num_gates: int  # gate count before fusion, for diagnostics


@dataclasses.dataclass
class _Segment:
    """Pass-1 output: one block's gates and final support, matrix-free."""

    gates: list  # list of circuit instructions, in order
    support: list[int]  # sorted final wires of the block
    sites: list[tuple[KrausChannel, tuple[int, ...]]]


def fuse_circuit(
    circuit: QuantumCircuit,
    noise_model: NoiseModel | None = None,
    max_qubits: int = DEFAULT_FUSION_MAX_QUBITS,
) -> FusedProgram:
    """Lower ``circuit`` to a :class:`FusedProgram` under ``noise_model``.

    ``max_qubits`` bounds the support of a fused block; ``max_qubits <= 0``
    disables fusion entirely (every gate becomes its own block), which is
    the like-for-like spelling of an unfused program.  A gate wider than
    ``max_qubits`` always forms its own block — gates are never split.
    """
    noise_model = noise_model or NoiseModel.ideal()

    # Pass 1: segment the stream.  Merge decisions read only supports and
    # noise placement, so no matrix arithmetic happens here.
    segments: list[_Segment] = []
    open_seg: _Segment | None = None
    num_gates = 0

    def flush() -> None:
        nonlocal open_seg
        if open_seg is not None:
            segments.append(open_seg)
        open_seg = None

    for inst in circuit.data:
        if inst.is_barrier or inst.is_measurement:
            flush()
            continue
        if not inst.is_gate:
            raise ValueError(f"cannot simulate instruction {inst.name!r}")
        num_gates += 1
        gate_support = sorted(set(inst.qubits))
        if open_seg is None:
            open_seg = _Segment([inst], gate_support, [])
        else:
            merged = sorted(set(open_seg.support) | set(gate_support))
            if len(merged) <= max_qubits:
                open_seg.gates.append(inst)
                open_seg.support = merged
            else:
                flush()
                open_seg = _Segment([inst], gate_support, [])
        sites = [
            (channel, qubits)
            for channel, qubits in noise_model.channels_for(inst)
            if not channel.is_identity()
        ]
        if sites:
            # Noise must act right after this gate, so the block ends here.
            open_seg.sites = sites
            flush()
    flush()

    # Pass 2: build each block's matrix once, at its final support, by
    # evolving the 2**k identity basis through the block's gates — one
    # batched application per gate, no intermediate re-embedding.
    operations = [
        FusedOperation(
            matrix := _block_matrix(seg),
            qubits := tuple(seg.support),
            seg.sites,
            build_plan(matrix, qubits, circuit.num_qubits),
        )
        for seg in segments
    ]
    return FusedProgram(operations, circuit.num_qubits, num_gates)


def _block_matrix(seg: _Segment) -> np.ndarray:
    """Product of the segment's gates, little-endian in its sorted support.

    Row ``i`` of the evolved basis is ``(G_m ... G_1)|i>`` — column ``i`` of
    the block matrix — so the transpose is the product.  A single-gate
    segment reduces to the exact embedding arithmetic of the previous
    implementation (identity basis through one batched application).
    """
    support = seg.support
    k = len(support)
    first = seg.gates[0]
    if len(seg.gates) == 1 and list(first.qubits) == support:
        return first.operation.matrix
    basis = np.eye(2**k, dtype=complex)
    for inst in seg.gates:
        positions = tuple(support.index(q) for q in inst.qubits)
        basis = apply_matrix_to_statevector_batch(
            basis, inst.operation.matrix, positions, k
        )
    return basis.T
