"""Gate fusion: merge runs of adjacent gates into single matrices.

For the compacted 2-6 qubit circuits that dominate subset-tracing workloads
the cost of a simulation step is numpy dispatch, not arithmetic, so applying
one fused 3-qubit matrix beats applying the five small gates it replaces.
:func:`fuse_circuit` greedily merges adjacent gates whose combined support
stays within ``max_qubits`` wires into one unitary block, and attaches each
gate's noise-insertion sites *after the block that ends with that gate* —
noise placement is therefore unchanged: a gate followed by noise always
terminates its block, so its channels still act on exactly the state they
would have seen gate-by-gate.

The output is a :class:`FusedProgram` — the common instruction stream
consumed by the ensemble, single-statevector and density-matrix simulators.
Barriers and measurements are fusion boundaries (gates are never merged
across them); measurements themselves are handled by the simulators'
measurement layout, not the program.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..circuits import QuantumCircuit
from ..noise import KrausChannel, NoiseModel
from .apply import apply_matrix_to_statevector_batch

__all__ = ["FusedOperation", "FusedProgram", "fuse_circuit", "DEFAULT_FUSION_MAX_QUBITS"]

DEFAULT_FUSION_MAX_QUBITS = 3


@dataclasses.dataclass
class FusedOperation:
    """One fused unitary block plus the noise sites that follow it.

    ``qubits`` is sorted ascending and the matrix is little-endian in it
    (first wire = least significant bit), matching the convention of
    :func:`repro.simulators.apply.apply_matrix_to_statevector`.  ``sites``
    are the ``(channel, wires)`` noise insertions of the block's final gate,
    in :meth:`~repro.noise.NoiseModel.channels_for` order.
    """

    matrix: np.ndarray
    qubits: tuple[int, ...]
    sites: list[tuple[KrausChannel, tuple[int, ...]]]


@dataclasses.dataclass
class FusedProgram:
    """A circuit lowered to fused unitary blocks with interleaved noise."""

    operations: list[FusedOperation]
    num_qubits: int
    num_gates: int  # gate count before fusion, for diagnostics


def fuse_circuit(
    circuit: QuantumCircuit,
    noise_model: NoiseModel | None = None,
    max_qubits: int = DEFAULT_FUSION_MAX_QUBITS,
) -> FusedProgram:
    """Lower ``circuit`` to a :class:`FusedProgram` under ``noise_model``.

    ``max_qubits`` bounds the support of a fused block; ``max_qubits <= 0``
    disables fusion entirely (every gate becomes its own block), which is
    the like-for-like spelling of an unfused program.  A gate wider than
    ``max_qubits`` always forms its own block — gates are never split.
    """
    noise_model = noise_model or NoiseModel.ideal()
    operations: list[FusedOperation] = []
    support: list[int] = []  # sorted wires of the open block
    matrix: np.ndarray | None = None  # open block's accumulated unitary
    num_gates = 0

    def flush(sites: list[tuple[KrausChannel, tuple[int, ...]]]) -> None:
        nonlocal support, matrix
        if matrix is not None:
            operations.append(FusedOperation(matrix, tuple(support), sites))
        elif sites:  # pragma: no cover - sites only ever follow a gate
            raise RuntimeError("noise sites with no preceding gate block")
        support, matrix = [], None

    for inst in circuit.data:
        if inst.is_barrier:
            flush([])
            continue
        if inst.is_measurement:
            flush([])
            continue
        if not inst.is_gate:
            raise ValueError(f"cannot simulate instruction {inst.name!r}")
        num_gates += 1
        gate_support = sorted(set(inst.qubits))
        merged = sorted(set(support) | set(gate_support))
        if matrix is None:
            support, matrix = gate_support, _embedded(
                inst.operation.matrix, inst.qubits, gate_support
            )
        elif len(merged) <= max_qubits:
            if merged != support:
                matrix = _embedded(matrix, tuple(support), merged)
                support = merged
            matrix = _embedded(inst.operation.matrix, inst.qubits, support) @ matrix
        else:
            flush([])
            support, matrix = gate_support, _embedded(
                inst.operation.matrix, inst.qubits, gate_support
            )
        sites = [
            (channel, qubits)
            for channel, qubits in noise_model.channels_for(inst)
            if not channel.is_identity()
        ]
        if sites:
            # Noise must act right after this gate, so the block ends here.
            flush(sites)
    flush([])
    return FusedProgram(operations, circuit.num_qubits, num_gates)


def _embedded(
    matrix: np.ndarray, wires: tuple[int, ...] | list[int], support: list[int]
) -> np.ndarray:
    """Expand ``matrix`` (little-endian in ``wires``) to act on ``support``.

    ``wires`` may be in any order; ``support`` must contain them all.  The
    result is little-endian in ``support``.  Applying the matrix to each
    basis state of the support space yields the expanded operator's columns.
    """
    if list(wires) == support:
        return matrix
    k = len(support)
    positions = tuple(support.index(q) for q in wires)
    basis = np.eye(2**k, dtype=complex)
    # Row i of the result is M|i>, i.e. column i of the expanded operator.
    return apply_matrix_to_statevector_batch(basis, matrix, positions, k).T
