"""Batched, cached circuit execution — the shared front-end for subset-circuit
workloads.

QuTracer-style mitigation runs *many small circuits*: one per traced subset,
per Pauli-check variant, per layer.  Large fractions of those circuits repeat
— the same layer is re-checked for every subset, the same check configuration
recurs across layers, benchmark sweeps re-run identical baselines.  The
:class:`ExecutionEngine` turns those repeats into cache hits:

* :meth:`ExecutionEngine.execute_many` takes a whole batch of circuits and
  deduplicates identical members before running anything;
* results are stored in a **content-addressed cache** keyed by the circuit's
  structural fingerprint, the noise model's fingerprint, and the execution
  parameters (method, shots, derived seed), so repeats across calls — and
  across consumers sharing one engine — are free;
* idle wires are compacted away (with the noise model remapped to the
  surviving wires), so a subset circuit embedded on a wide device simulates
  in ``2**k`` rather than ``2**n`` memory and can use the exact
  density-matrix method instead of trajectory sampling;
* the trajectory path uses the ensemble backend
  (:func:`~repro.simulators.ensemble.simulate_trajectories_ensemble`), which
  carries every trajectory in one ``(T, 2**n)`` array, applies each fused
  gate once to the whole batch, and samples all measurement shots in one
  inverse-CDF pass — see ``docs/architecture.md``.

See ``docs/architecture.md`` for the cache-key design, batching semantics
and method auto-selection rules.

Determinism and caching
-----------------------
A request is **cacheable** when its outcome is a pure function of its key:
exact methods without sampling always are; sampled requests are cacheable
only when a ``seed`` is given.  Unseeded sampling is executed fresh every
time so repeated calls stay statistically independent.

Per-circuit seeds are derived from the base seed *and the circuit
fingerprint*, so distinct circuits in a batch are decorrelated while
identical circuits receive identical seeds — which is exactly what makes
deduplication exact rather than approximate.
"""

from __future__ import annotations

import atexit
import dataclasses
import hashlib
import time
import weakref
from collections import OrderedDict
from typing import Any, Sequence

import numpy as np

from ..circuits import QuantumCircuit, circuit_fingerprint
from ..distributions import Counts, ProbabilityDistribution, scatter_outcomes
from ..metrics import MetricsRegistry, MetricsStore, get_global_registry
from ..noise import NoiseModel, as_noise_model
from ..tracing import TraceRecorder, TraceStore, result_digest
from ..transpiler.compilation import CompilationCache, CompiledCircuit
from .cache import DEFAULT_MAX_BYTES, PersistentResultCache
from .density_matrix import noisy_distribution_density_matrix
from .execute import DEFAULT_DENSITY_MATRIX_THRESHOLD
from .faults import (
    BackendUnavailableError,
    EngineInvariantError,
    ExecutionFault,
    FaultInjector,
    RetryPolicy,
    SimulationError,
    TranspilationError,
    apply_injected_directive,
    fault_annotation,
)
from .fusion import DEFAULT_FUSION_MAX_QUBITS  # noqa: F401  (re-exported knob)
from .kernels import kernel_dispatch_counts, resolve_backend
from .parallel import (
    DEFAULT_TRAJECTORY_SHOTS,
    CompactTask,
    ParallelSharder,
    apply_readout_confusion,
    run_compact_task,
)
from .result import ExecutionResult, FailedResult
from .stabilizer import is_clifford_program
from .trajectory import simulate_trajectories_batched

__all__ = [
    "ExecutionEngine",
    "EngineStats",
    "circuit_fingerprint",
    "get_default_engine",
]

# Graceful degradation ladder walked when a backend raises
# BackendUnavailableError: the stabilizer tableau falls back to the dense
# trajectory ensemble, and the ensemble falls back to the per-trajectory
# reference loop.  Each rung is strictly more general (and slower) than the
# one above it; results from a degraded rung are never cached (the healthy
# backend's cache line must keep meaning "what the resolved method returns").
_DEGRADATION_LADDER = {"stabilizer": "trajectory", "trajectory": "trajectory_loop"}

# DEFAULT_TRAJECTORY_SHOTS is defined next to the compute function in
# .parallel and imported above: the cache key (here) and the simulated shot
# count (there) must agree on what shots=None means.


# circuit_fingerprint moved to repro.circuits.fingerprint (the transpiler's
# CompilationCache keys on it too); re-exported here for compatibility.


# EngineStats field -> (metric family, help).  Every *numeric* field must
# appear here: _bind() walks dataclasses.fields() and raises on an unmapped
# counter, so a newly added stat cannot silently fork from the registry.
_STAT_METRICS = {
    "requests": ("repro_engine_requests_total", "Request slots submitted to execute/execute_many."),
    "cache_hits": ("repro_engine_cache_hits_total", "Slots served from the result cache (memory or persistent tier)."),
    "cache_misses": ("repro_engine_cache_misses_total", "Cacheable slots that missed every cache tier."),
    "batch_dedup_hits": ("repro_engine_batch_dedup_hits_total", "Slots served by another slot of the same batch."),
    "uncacheable": ("repro_engine_uncacheable_total", "Unseeded sampled slots executed fresh every time."),
    "executed": ("repro_engine_executed_total", "Backend executions actually run (post dedup and caches)."),
    "state_cache_hits": ("repro_engine_state_cache_hits_total", "Density-matrix runs served a cached pre-readout distribution."),
    "persistent_hits": ("repro_engine_persistent_hits_total", "Cache hits served from the on-disk tier (subset of cache_hits)."),
    "parallel_executed": ("repro_engine_parallel_executed_total", "Executions dispatched to pool workers."),
    "compile_hits": ("repro_engine_compile_hits_total", "Hardware-aware compilations served by the CompilationCache."),
    "compile_misses": ("repro_engine_compile_misses_total", "Hardware-aware compilations that had to run the pipeline."),
    "stabilizer_executed": ("repro_engine_stabilizer_executed_total", "Executions routed through the stabilizer tableau backend."),
    "retries": ("repro_engine_retries_total", "Re-attempts after retryable faults."),
    "isolated_failures": ("repro_engine_isolated_failures_total", "Request slots terminated as FailedResult under on_error='isolate'."),
    "degraded_backend": ("repro_engine_degraded_backend_total", "Rungs walked down the backend degradation ladder."),
    "pool_respawns": ("repro_engine_pool_respawns_total", "Process-pool respawns after worker crashes or timeouts."),
}


@dataclasses.dataclass
class EngineStats:
    """Cache and execution accounting for one :class:`ExecutionEngine`.

    When the engine runs with metrics enabled (the default), the numeric
    fields here are a **thin view over registry counter series** — after
    :meth:`_bind`, every read and write routes to the engine's
    :class:`~repro.metrics.MetricsRegistry`, so the dataclass API and the
    scrape endpoint can never disagree (bridge, don't duplicate).  Unbound
    instances (``metrics=False``, or constructed standalone) behave as the
    plain dataclass they always were.
    """

    requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    batch_dedup_hits: int = 0
    uncacheable: int = 0
    executed: int = 0
    # Density-matrix runs that reused a cached pre-readout distribution
    # (same circuit + gate noise under a different readout model).
    state_cache_hits: int = 0
    # Subset of cache_hits that were served from the persistent on-disk
    # layer (and promoted into the in-memory cache).
    persistent_hits: int = 0
    # Executions dispatched to pool workers (the rest ran in-process).
    parallel_executed: int = 0
    # Hardware-aware compilations served from / missed by the
    # CompilationCache (device= submissions only).
    compile_hits: int = 0
    compile_misses: int = 0
    # Executions routed through the stabilizer tableau backend (auto-selected
    # Clifford fast path or an explicit method="stabilizer" that did not fall
    # back to the dense tier).
    stabilizer_executed: int = 0
    # --- fault-tolerance accounting -----------------------------------
    # Re-attempts after retryable faults (transient simulation errors,
    # worker crashes recovered in-process).
    retries: int = 0
    # Request slots that terminated as FailedResult under on_error="isolate"
    # (duplicates of one poison circuit each count: the *executions* behind
    # them are deduplicated, the slots are not).
    isolated_failures: int = 0
    # Times the engine walked one rung of the backend degradation ladder
    # (stabilizer -> trajectory ensemble -> per-trajectory loop).
    degraded_backend: int = 0
    # Process-pool respawns after worker crashes / stuck-worker timeouts.
    pool_respawns: int = 0
    # Why the sharder last ran without its pool (None while parallel is
    # healthy); mirrors ParallelSharder.fallback_reason so silent in-process
    # degradation is visible on the engine's own telemetry.
    fallback_reason: str | None = None

    @property
    def hit_rate(self) -> float:
        served = self.cache_hits + self.batch_dedup_hits
        return served / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (plus the derived hit rate).

        Used by consumers that archive execution accounting alongside their
        results — e.g. the calibration subsystem's ``CalibrationRecord``.
        """
        snapshot = dataclasses.asdict(self)
        snapshot["hit_rate"] = round(self.hit_rate, 6)
        return snapshot

    def reset(self) -> None:
        """Return every field to its dataclass default.

        Field-driven so a newly added counter can never be silently
        skipped — hand-listing fields here is how stale telemetry leaked
        across runs before.  On a bound instance the writes route to the
        registry series, so the scrape view resets in the same motion
        (``repro.metrics diff`` reports a reset as the counter regression
        it is).
        """
        for field in dataclasses.fields(self):
            if field.default is not dataclasses.MISSING:
                setattr(self, field.name, field.default)
            elif field.default_factory is not dataclasses.MISSING:
                setattr(self, field.name, field.default_factory())
            else:  # pragma: no cover - every stats field has a default
                raise TypeError(f"EngineStats.{field.name} has no default to reset to")

    # ------------------------------------------------------------------
    # Registry bridge
    # ------------------------------------------------------------------

    def _bind(self, registry: MetricsRegistry) -> None:
        """Route this instance's numeric fields through registry series.

        Current values seed the series; the instance attributes are then
        removed so every later access goes through ``__getattr__`` /
        ``__setattr__`` to the single registry-held value.
        """
        series = {}
        for field in dataclasses.fields(self):
            if field.name == "fallback_reason":  # str|None: not a counter
                continue
            metric_name, help_text = _STAT_METRICS[field.name]
            bound = registry.counter(metric_name, help_text).labels()
            bound.set(object.__getattribute__(self, field.name))
            series[field.name] = bound
        object.__setattr__(self, "_series", series)
        for name in series:
            self.__dict__.pop(name, None)

    def __setattr__(self, name: str, value) -> None:
        series = self.__dict__.get("_series")
        if series is not None:
            bound = series.get(name)
            if bound is not None:
                bound.set(value)
                return
        object.__setattr__(self, name, value)

    def __getattribute__(self, name: str):
        # __getattr__ would not suffice: dataclass field defaults are
        # *class* attributes, so after _bind removes the instance values a
        # plain lookup would quietly resolve to the default instead of the
        # registry series.  Route bound counter fields here; everything
        # else (properties, methods, unbound instances) falls through.
        instance_dict = object.__getattribute__(self, "__dict__")
        series = instance_dict.get("_series")
        if series is not None:
            bound = series.get(name)
            if bound is not None:
                return bound.value
        return object.__getattribute__(self, name)


@dataclasses.dataclass
class _Prepared:
    """A request after compaction and key derivation.

    ``active`` and ``num_qubits`` record the original wire embedding: cached
    results live in *compact* space (they never mention original wire
    indices), and :meth:`ExecutionEngine._deliver` translates them into each
    requester's embedding.  Baking the embedding into the cached object would
    let a cache hit from a different embedding of the same compact structure
    hand back another requester's wire labels.
    """

    compact: QuantumCircuit
    active: list[int]
    num_qubits: int
    has_measurements: bool
    noise: NoiseModel
    method: str
    seed: int | None
    key: tuple | None  # None => not cacheable
    fingerprint: str = ""
    fusion: bool = True
    # Device-compiled requests only: the original submission's clbit ->
    # logical qubit map.  Compiled circuits measure *physical* wires into
    # the logical clbits, so delivery translates measured_qubits back
    # through this instead of reporting physical wire indices.
    logical_measured: list[int] | None = None


class ExecutionEngine:
    """Batched, cached execution front-end over the simulators.

    Parameters
    ----------
    density_matrix_threshold:
        Widest (compacted) noisy circuit simulated exactly; wider circuits
        use Monte-Carlo trajectories.
    max_trajectories:
        Trajectory budget per circuit for the stochastic path.
    cache_size:
        Maximum number of cached results (LRU eviction).
    compact:
        Drop idle wires (and remap the noise model accordingly) before
        simulating.  Disable only for debugging; results are identical.
    fusion:
        Merge runs of adjacent gates whose combined support stays within
        ``fusion_max_qubits`` wires into single matrices before simulating
        (:mod:`repro.simulators.fusion`).  Noise placement is unchanged.
        Overridable per call via :meth:`execute_many`.
    fusion_max_qubits:
        Fused-block width cap.  ``None`` (default) lets
        :func:`~repro.simulators.fusion.choose_fusion_width` size blocks
        per program from batch size and circuit width; an explicit integer
        pins the width for every request.
    kernel_backend:
        Kernel tier for classified fused blocks
        (:mod:`repro.simulators.kernels`): ``"numpy"`` (specialized
        vectorized kernels), ``"numba"`` (JIT, transparent numpy fallback
        when unavailable), ``"generic"`` (force the tensordot reference
        path) or ``"auto"``.  ``None`` reads ``REPRO_KERNEL_BACKEND``.
        The resolved backend is part of sampled and statevector cache keys
        and is stamped into trace events.
    workers:
        Process count for sharding :meth:`execute_many` batches across a
        :class:`~repro.simulators.parallel.ParallelSharder` pool.  ``None``
        or ``1`` keeps everything in-process.  Deduplication and cache
        lookups always happen in the parent; only novel work is dispatched,
        and results are bit-identical to a serial run (workers execute the
        same pure compute function with the same derived seeds).
        Overridable per call via :meth:`execute_many`.
    chunk_size:
        Tasks per pickled work unit when sharding (``None`` auto-sizes).
    cache_dir:
        Directory for the persistent on-disk result cache
        (:class:`~repro.simulators.cache.PersistentResultCache`).  Backs the
        in-memory LRU: misses fall through to disk, fresh results are
        written through, so repeated experiments warm-start across
        processes and sessions.  ``None`` (default) disables persistence.
    persistent_cache_bytes:
        Size cap for the on-disk cache tree (LRU eviction by mtime).
    compilation_cache_size:
        In-memory LRU capacity of the hardware-aware
        :class:`~repro.transpiler.CompilationCache` used by ``device=``
        submissions (persistent when ``cache_dir`` is set).
    retry_policy:
        :class:`~repro.simulators.faults.RetryPolicy` governing re-attempts
        after retryable faults (transient simulation errors, worker
        crashes) and the backoff between pool respawns.  ``None`` uses the
        default policy (3 attempts, exponential backoff, deterministic
        jitter); pass ``RetryPolicy.none()`` to disable retry.
    task_timeout:
        Wall-clock seconds each *dispatched* task may take under
        ``workers > 1`` (measured from dispatch; a blown budget cancels the
        future, fails the slot with
        :class:`~repro.simulators.faults.TaskTimeoutError` and recycles the
        pool).  ``None`` disables timeouts.  The in-process path cannot
        preempt a running simulation, so timeouts only guard pool dispatch.
    on_error:
        Default failure semantics for :meth:`execute_many` (overridable per
        call): ``"raise"`` preserves the historical contract — the first
        terminal fault aborts the batch; ``"isolate"`` converts each failed
        slot into a :class:`~repro.simulators.result.FailedResult` and
        completes every healthy slot bit-identically to a fault-free run.
    tracer:
        A :class:`~repro.tracing.TraceRecorder` to record per-batch
        execution traces into (``None`` disables tracing; traced and
        untraced runs are bit-identical).  Every :meth:`execute_many`
        call becomes one trace: per-stage timings, cache-tier
        attribution, resolved methods and fault annotations, with pool
        workers reporting span fragments through the task metadata.
    trace_dir:
        Convenience: directory for persisted JSONL trace artifacts.
        Builds ``TraceRecorder(store=TraceStore(trace_dir))`` when no
        explicit ``tracer`` is given; ignored otherwise.
    metrics:
        Aggregate telemetry (:mod:`repro.metrics`).  ``None`` (default)
        builds a private :class:`~repro.metrics.MetricsRegistry`; pass a
        registry to publish into a shared one (the process-wide default
        engine uses :func:`~repro.metrics.get_global_registry`); pass
        ``False`` to disable the layer entirely — ``EngineStats`` then
        stays a plain dataclass and the hot path records no timings.
        With metrics on, ``engine.metrics`` is scrape-safe at any time:
        per-stage latency histograms, per-tier request counters, fault
        counters by error class, and health gauges for every cache tier.
    metrics_dir:
        Directory for JSONL metrics snapshots, written on
        :meth:`close` and at interpreter exit (atomic publish; writes
        never raise).  Requires metrics enabled.  Inspect with
        ``python -m repro.metrics summarize/diff/watch``.
    """

    def __init__(
        self,
        density_matrix_threshold: int = DEFAULT_DENSITY_MATRIX_THRESHOLD,
        max_trajectories: int = 600,
        cache_size: int = 32768,
        compact: bool = True,
        fusion: bool = True,
        fusion_max_qubits: int | None = None,
        kernel_backend: str | None = None,
        workers: int | None = None,
        chunk_size: int | None = None,
        cache_dir: str | None = None,
        persistent_cache_bytes: int | None = DEFAULT_MAX_BYTES,
        compilation_cache_size: int = 1024,
        retry_policy: RetryPolicy | None = None,
        task_timeout: float | None = None,
        on_error: str = "raise",
        tracer: TraceRecorder | None = None,
        trace_dir: str | None = None,
        metrics: MetricsRegistry | bool | None = None,
        metrics_dir: str | None = None,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None for in-process)")
        if on_error not in ("raise", "isolate"):
            raise ValueError("on_error must be 'raise' or 'isolate'")
        if metrics is False and metrics_dir is not None:
            raise ValueError("metrics_dir requires metrics enabled")
        self.density_matrix_threshold = int(density_matrix_threshold)
        self.max_trajectories = int(max_trajectories)
        self.cache_size = int(cache_size)
        self.compact = bool(compact)
        self.fusion = bool(fusion)
        self.fusion_max_qubits = (
            int(fusion_max_qubits) if fusion_max_qubits is not None else None
        )
        # Resolved once: every task this engine dispatches (in-process or
        # pool) runs the same kernel tier, and the cache keys below carry it.
        self.kernel_backend = resolve_backend(kernel_backend)
        self.workers = int(workers) if workers is not None else None
        self.chunk_size = chunk_size
        self.retry_policy = retry_policy or RetryPolicy()
        self.task_timeout = task_timeout
        self.on_error = on_error
        if tracer is None and trace_dir is not None:
            tracer = TraceRecorder(store=TraceStore(trace_dir))
        self.tracer = tracer
        self._fault_injector: FaultInjector | None = None
        self._sharder: ParallelSharder | None = None
        self._persistent = (
            PersistentResultCache(cache_dir, max_bytes=persistent_cache_bytes)
            if cache_dir is not None
            else None
        )
        # Hardware-aware compilation artifacts, content-addressed by
        # (circuit fingerprint, device fingerprint, pipeline signature) and
        # backed by the same persistent store as the result cache — so
        # calibration sweeps and parallel shards never re-route a circuit.
        self._compilation = CompilationCache(
            max_entries=compilation_cache_size, persistent=self._persistent
        )
        self.stats = EngineStats()
        # --- aggregate telemetry (repro.metrics) ----------------------
        # self._observe gates every hot-path instrumentation site; with
        # metrics=False the engine behaves exactly as before the metrics
        # layer existed (plain-dataclass stats, no timing calls).
        if metrics is False:
            self.metrics: MetricsRegistry | None = None
            self._observe = False
        else:
            self.metrics = metrics if isinstance(metrics, MetricsRegistry) else MetricsRegistry()
            self._observe = True
        self._metrics_store = MetricsStore(metrics_dir) if metrics_dir is not None else None
        self._metrics_flushed = False
        if self._observe:
            registry = self.metrics
            self.stats._bind(registry)
            self._stage_hist = registry.histogram(
                "repro_engine_stage_seconds",
                "Per-slot pipeline stage latency (prepare / cache lookup / deliver).",
                labelnames=("stage",),
            )
            self._stage_series = {
                stage: self._stage_hist.labels(stage=stage)
                for stage in ("prepare", "cache", "deliver")
            }
            self._execute_hist = registry.histogram(
                "repro_engine_execute_seconds",
                "Backend execution wall time per recovery-loop invocation, by resolved method.",
                labelnames=("method",),
            )
            self._execute_method_series: dict[str, Any] = {}
            self._tier_counter = registry.counter(
                "repro_engine_requests_by_tier_total",
                "Request slots by serving tier (memory/persistent/batch-dedup/executed/...).",
                labelnames=("tier",),
            )
            self._tier_series: dict[str, Any] = {}
            self._fault_counter = registry.counter(
                "repro_engine_faults_total",
                "Fault-layer interventions (retried/degraded/isolated) by error class.",
                labelnames=("kind", "error"),
            )
            registry.add_collector(self._collect_health)
            if self._metrics_store is not None:
                # Weak atexit hook, mirroring the tracer's flush-at-exit: a
                # live engine snapshots its final registry state even when
                # the consumer never calls close(); a collected engine
                # must not be kept alive by the hook.
                atexit.register(_flush_metrics_ref, weakref.ref(self))
        # Maps result keys -> ExecutionResult and "dm-state" keys -> the
        # (distribution, measured_qubits) pre-readout payload.
        self._cache: OrderedDict[tuple, Any] = OrderedDict()
        # Per-object memos, all keyed weakly on the live NoiseModel and
        # tagged with its mutation version so an in-place ``set_*`` call
        # invalidates them instead of serving stale derived data.
        # noise model -> (version, fingerprint)
        self._noise_fingerprints: "weakref.WeakKeyDictionary[NoiseModel, tuple]" = (
            weakref.WeakKeyDictionary()
        )
        # noise model -> (version, gate-noise-only model, its fingerprint);
        # avoids a deep copy + rehash per density-matrix request.
        self._gate_noise: "weakref.WeakKeyDictionary[NoiseModel, tuple]" = (
            weakref.WeakKeyDictionary()
        )
        # noise model -> (version, {active-wire tuple: remapped model});
        # subset circuits sharing a compaction reuse one remapped model (and
        # therefore its memoised fingerprint) instead of rebuilding and
        # re-hashing the full device model on every request.
        self._remapped: "weakref.WeakKeyDictionary[NoiseModel, tuple]" = (
            weakref.WeakKeyDictionary()
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def execute(
        self,
        circuit: QuantumCircuit,
        noise_model: NoiseModel | None = None,
        shots: int | None = None,
        seed: int | None = None,
        method: str = "auto",
        max_trajectories: int | None = None,
        fusion: bool | None = None,
        device=None,
        on_error: str | None = None,
    ) -> ExecutionResult:
        """Run one circuit through the cache (see :meth:`execute_many`).

        A single-request batch never shards (there is nothing to run
        concurrently), so this is always served in-process regardless of
        the engine's ``workers`` setting.
        """
        return self.execute_many(
            [circuit],
            noise_model=noise_model,
            shots=shots,
            seed=seed,
            method=method,
            max_trajectories=max_trajectories,
            fusion=fusion,
            device=device,
            on_error=on_error,
        )[0]

    def install_fault_injector(self, injector: FaultInjector | None) -> None:
        """Install (or, with ``None``, remove) a chaos fault injector.

        The injector's task directives are resolved in the parent at
        dispatch time (workers stay stateless) and its cache hooks are
        threaded onto the persistent cache, so an injected fault schedule
        replays deterministically.  Testing harness — never install one in
        production use.
        """
        self._fault_injector = injector
        if self._persistent is not None:
            self._persistent.fault_injector = injector

    def install_tracer(self, tracer: TraceRecorder | None) -> None:
        """Install (or, with ``None``, remove) an execution-trace recorder.

        Takes effect on the next :meth:`execute_many` call; traced and
        untraced runs return bit-identical results.
        """
        self.tracer = tracer

    def execute_many(
        self,
        circuits: Sequence[QuantumCircuit],
        noise_model: NoiseModel | None = None,
        shots: int | None = None,
        seed: int | None = None,
        method: str = "auto",
        max_trajectories: int | None = None,
        fusion: bool | None = None,
        workers: int | None = None,
        device=None,
        on_error: str | None = None,
    ) -> list[ExecutionResult | FailedResult]:
        """Run a batch of circuits, deduplicating and caching shared work.

        All circuits share the noise model and shot budget (the common case:
        one batch of subset/check-variant circuits per mitigation step).
        ``fusion`` overrides the engine's gate-fusion default for this call
        (``None`` keeps it); sampled trajectory results key the fusion
        settings into the cache because the RNG stream depends on them.
        ``workers`` overrides the engine's process count for this call
        (``None`` keeps it): with more than one worker, requests that
        survive deduplication and cache lookup are sharded across a process
        pool and return bit-identical results to a serial run.
        Identical circuits are executed once; every requester receives a
        result equal to what a sequential :func:`~repro.simulators.execute.execute`
        call would produce.  ``seed`` decorrelates distinct circuits (each
        derives its own seed from the base seed and its fingerprint) while
        keeping identical circuits bit-identical.

        ``method`` accepts ``"auto"``, ``"statevector"``,
        ``"density_matrix"``, ``"trajectory"`` and ``"stabilizer"``.  Auto
        selection routes wide noisy *Clifford* programs under Pauli noise
        (RB, twirled circuits) through the stabilizer tableau backend;
        explicitly requesting ``"stabilizer"`` uses it for any eligible
        circuit and transparently falls back to the auto-selected dense
        method when :func:`~repro.simulators.is_clifford_program` rejects
        the program.

        Results are internally cached in compact (idle-wires-dropped) space
        and translated into each requester's wire embedding on delivery, so
        two embeddings of the same structure (H on wire 2 of 3 vs. H on
        wire 0 of 3) share cache lines yet each see their own
        ``measured_qubits``.  Each returned result owns its payloads —
        mutating a returned distribution or counts object cannot corrupt
        later cache hits.

        One documented divergence from sequential ``execute``: a circuit
        with **no measurements** yields a full-width distribution in which
        idle wires read a deterministic 0 — they are never simulated, so
        (unlike an uncompacted sequential noisy run, which treats every
        wire of an unmeasured circuit as read out) they receive no readout
        confusion.

        Returns one :class:`~repro.simulators.result.ExecutionResult` per
        input circuit, in input order.

        ``noise_model`` may be anything :func:`~repro.noise.as_noise_model`
        accepts — in particular a :class:`~repro.noise.DeviceModel` or a
        :class:`~repro.calibration.LearnedDeviceModel`, whose derived
        ``noise_model()`` is used.

        ``device`` switches on **hardware-aware compilation**: each logical
        circuit is transpiled onto the device (noise-aware layout, SABRE
        routing, basis translation) through the engine's content-addressed
        :class:`~repro.transpiler.CompilationCache` before execution, and
        executed under the device's noise model.  An explicit
        ``noise_model`` overrides the device's, and — like the device's own
        model — is interpreted over the **physical device wires** of the
        compiled circuit (noise applies to the circuit being executed):
        default/uniform channels and readout compose naturally, but
        channels indexed by *logical* qubit will not follow those qubits
        through layout and routing — remap them onto physical wires
        yourself, or attach them to a device model instead.  Results come
        back in *logical* terms:
        the classical bits carry each logical qubit through the routed
        permutation, and ``measured_qubits`` name the original logical
        qubits.  A circuit submitted without measurements is measure-all'd
        before compilation (its distribution covers every logical qubit,
        with readout noise — devices read out what they measure).

        ``on_error`` overrides the engine's failure semantics for this call
        (``None`` keeps them): under ``"isolate"`` a circuit that fails
        after retry and degradation are exhausted yields a
        :class:`~repro.simulators.result.FailedResult` in its slot while
        every healthy slot completes bit-identically to a fault-free run;
        duplicates of one poison circuit are failed from a single execution
        (dedup applies to failures exactly as it does to results).
        Argument-validation errors (unknown method, non-positive shots,
        bad ``on_error``) always raise — they doom the whole batch, not a
        slot.
        """
        tracer = self.tracer
        if tracer is None:
            return self._execute_many_impl(
                circuits, noise_model, shots, seed, method, max_trajectories,
                fusion, workers, device, on_error,
            )
        # One execute_many call == one trace.  The root span closes (and
        # the trace flushes to storage) even when a terminal fault aborts
        # the batch in raise mode — an aborted batch still leaves a
        # complete post-mortem artifact.
        span = tracer.start_span(
            "engine.execute_many",
            requests=len(circuits),
            shots=shots,
            seed=seed,
            method=method,
            on_error=self.on_error if on_error is None else on_error,
        )
        try:
            results = self._execute_many_impl(
                circuits, noise_model, shots, seed, method, max_trajectories,
                fusion, workers, device, on_error,
            )
        except BaseException as exc:
            tracer.end_span(span, status="raised", **fault_annotation(exc))
            raise
        tracer.end_span(span, status="ok")
        return results

    def _execute_many_impl(
        self,
        circuits: Sequence[QuantumCircuit],
        noise_model,
        shots: int | None,
        seed: int | None,
        method: str,
        max_trajectories: int | None,
        fusion: bool | None,
        workers: int | None,
        device,
        on_error: str | None,
    ) -> list[ExecutionResult | FailedResult]:
        tracer = self.tracer
        on_error = self.on_error if on_error is None else on_error
        if on_error not in ("raise", "isolate"):
            raise ValueError("on_error must be 'raise' or 'isolate'")
        isolate = on_error == "isolate"
        # Batch-wide argument validation stays raise-always even in isolate
        # mode: these reject the call, not any one circuit.
        if method not in ("auto", "statevector", "density_matrix", "trajectory", "stabilizer"):
            raise ValueError(f"unknown method {method!r}")
        if shots is not None and shots <= 0:
            raise ValueError("shots must be positive")
        if device is not None and noise_model is None:
            noise_model = device
        noise_model = as_noise_model(noise_model) if noise_model is not None else NoiseModel.ideal()
        max_trajectories = max_trajectories or self.max_trajectories
        fusion = self.fusion if fusion is None else bool(fusion)
        workers = (self.workers or 1) if workers is None else int(workers)
        # Per-slot trace bookkeeping ("bt"): stage timings and cache-tier
        # attribution, emitted as one "request" event per slot at batch end
        # and fed to the metrics histograms.  None when both tracing and
        # metrics are off — every emit site is guarded, so the dark hot
        # path pays one comparison per slot.
        observing = tracer is not None or self._observe
        if self._metrics_store is not None:
            # New work after a close() re-arms the atexit snapshot.
            self._metrics_flushed = False
        bt: dict[str, list] | None = None
        prepared: list[_Prepared | FailedResult] = []
        for circuit in circuits:
            prepare_started = time.perf_counter() if observing else 0.0
            try:
                prepared.append(
                    self._prepare(
                        circuit, noise_model, shots, seed, method, max_trajectories, fusion, device
                    )
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                if not isolate:
                    raise  # historical contract: the original exception type
                prepared.append(self._failed_prepare(circuit, exc))
            if bt is None and observing:
                bt = _batch_trace(len(circuits))
            if bt is not None:
                bt["prepare"][len(prepared) - 1] = time.perf_counter() - prepare_started
        if bt is None and observing:
            bt = _batch_trace(len(circuits))
        if workers > 1 and len(prepared) > 1:
            return self._execute_many_parallel(
                prepared, shots, max_trajectories, workers, isolate, bt
            )

        results: list[ExecutionResult | FailedResult | None] = [None] * len(prepared)
        batch_first: dict[tuple, ExecutionResult] = {}
        # key -> FailedResult of its single failed execution; duplicate
        # requesters are failed from here without re-running the poison.
        batch_failed: dict[tuple, FailedResult] = {}
        for index, request in enumerate(prepared):
            self.stats.requests += 1
            if isinstance(request, FailedResult):
                self._count_isolated(request)
                if bt is not None:
                    bt["tiers"][index] = "failed-prepare"
                results[index] = request
                continue
            if request.key is None:
                self.stats.uncacheable += 1
                if bt is not None:
                    bt["tiers"][index] = "uncacheable"
                try:
                    result = self._execute_with_policy(request, shots, max_trajectories)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    if not isolate:
                        raise
                    self._count_isolated(exc)
                    results[index] = self._failed_result(request, exc)
                    continue
                results[index] = self._deliver_traced(result, request, bt, index)
                continue
            if request.key in batch_first:
                self.stats.batch_dedup_hits += 1
                if bt is not None:
                    bt["tiers"][index] = "batch-dedup"
                results[index] = self._deliver_traced(batch_first[request.key], request, bt, index)
                continue
            if request.key in batch_failed:
                self.stats.batch_dedup_hits += 1
                self._count_isolated(batch_failed[request.key])
                if bt is not None:
                    bt["tiers"][index] = "batch-dedup"
                results[index] = dataclasses.replace(
                    batch_failed[request.key], metadata=dict(batch_failed[request.key].metadata)
                )
                continue
            cached = self._cache_get_traced(request.key, bt, index)
            if cached is not None:
                self.stats.cache_hits += 1
                results[index] = self._deliver_traced(cached, request, bt, index)
                continue
            self.stats.cache_misses += 1
            if bt is not None:
                bt["tiers"][index] = "executed"
            try:
                result = self._execute_with_policy(request, shots, max_trajectories)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                if not isolate:
                    raise
                failed = self._failed_result(request, exc)
                batch_failed[request.key] = failed
                self._count_isolated(failed)
                results[index] = failed
                continue
            # A degraded-backend result is never cached: the key's cache
            # line must keep meaning "what the resolved method returns".
            # It may still serve duplicate slots within this batch.
            if "degraded_from" not in result.metadata:
                self._cache_put(request.key, result)
            batch_first[request.key] = result
            # The requester gets its own delivery too — handing out the
            # cache-backing object would let caller mutations poison
            # every later hit on this key.
            results[index] = self._deliver_traced(result, request, bt, index)
        self._emit_slot_events(results, prepared, bt)
        self._observe_batch(bt)
        # One result per input, in input order — callers zip against their
        # inputs, so a silently shrunk list would misattribute results.
        self._check_delivered(results, prepared)
        return results  # type: ignore[return-value]

    def _check_delivered(
        self,
        results: list,
        prepared: list,
    ) -> None:
        """Every request slot must hold a result — name the lost ones if not."""
        undelivered = [
            request.key or request.fingerprint if isinstance(request, _Prepared) else None
            for request, result in zip(prepared, results)
            if result is None
        ]
        if undelivered:
            raise EngineInvariantError(
                "a request was dispatched without a result",
                undelivered=undelivered,
                stage="deliver",
            )

    # ------------------------------------------------------------------
    # Trace emission
    # ------------------------------------------------------------------

    def _cache_get_traced(self, key: tuple, bt: dict | None, index: int) -> Any:
        """Cache lookup that attributes the serving tier to the slot."""
        if bt is None:
            return self._cache_get(key)
        lookup_started = time.perf_counter()
        persistent_before = self.stats.persistent_hits
        cached = self._cache_get(key)
        bt["cache"][index] = time.perf_counter() - lookup_started
        if cached is not None:
            bt["tiers"][index] = (
                "persistent" if self.stats.persistent_hits > persistent_before else "memory"
            )
        return cached

    def _deliver_traced(
        self, source: ExecutionResult, request: _Prepared, bt: dict | None, index: int
    ) -> ExecutionResult:
        if bt is None:
            return self._deliver(source, request)
        deliver_started = time.perf_counter()
        delivered = self._deliver(source, request)
        bt["deliver"][index] = time.perf_counter() - deliver_started
        return delivered

    def _emit_slot_events(self, results: list, prepared: list, bt: dict | None) -> None:
        """One "request" event per slot — the trace's per-request ledger.

        Emitted for every slot exactly once, whatever happened to it
        (served, executed, degraded, isolated, failed in prepare) — the
        chaos tests pivot on this invariant.
        """
        tracer = self.tracer
        if bt is None or tracer is None:
            return
        for slot, (request, result) in enumerate(zip(prepared, results)):
            attrs: dict[str, Any] = {"slot": slot, "tier": bt["tiers"][slot] or "uncacheable"}
            for stage in ("prepare", "cache", "deliver"):
                timing = bt[stage][slot]
                if timing is not None:
                    attrs[f"t_{stage}"] = timing
            if isinstance(request, _Prepared):
                attrs["fingerprint"] = request.fingerprint
                attrs["resolved"] = request.method
                if request.key is not None:
                    attrs["key"] = repr(request.key)
            if isinstance(result, FailedResult):
                attrs["ok"] = False
                attrs["fingerprint"] = attrs.get("fingerprint") or result.fingerprint
                attrs["method"] = result.method
                attrs["stage"] = result.stage
                attrs["attempts"] = result.attempts
                if result.error is not None:
                    attrs.update(fault_annotation(result.error))
            elif result is not None:
                attrs["ok"] = True
                attrs["method"] = result.method
                degraded_from = result.metadata.get("degraded_from")
                if degraded_from is not None:
                    attrs["degraded_from"] = degraded_from
            tracer.emit("request", attrs)

    def _emit_pool_execute_event(
        self, task: CompactTask, output: Any, fragment: dict | None
    ) -> None:
        """Execute event for one sharder task, stitched from a worker fragment.

        Worker monotonic clocks are incomparable with the parent's, so
        the fragment contributes only its measured duration and pid; the
        event's position in the trace comes from the parent's dispatch
        span.  Faulted tasks carry their annotation instead (recovery
        attempts emit their own in-process execute events).
        """
        tracer = self.tracer
        if tracer is None:
            return
        attrs: dict[str, Any] = {
            "fingerprint": task.fingerprint,
            "resolved": task.method,
            "location": "pool",
        }
        duration = None
        if fragment is not None:
            attrs["worker_pid"] = fragment.get("pid")
            duration = fragment.get("duration")
            if fragment.get("in_worker") is False:
                # The sharder ran this task in the parent (fallback or
                # serial rung) — same compute function, no pool transit.
                attrs["location"] = "in-process-fallback"
        if isinstance(output, ExecutionFault):
            attrs["status"] = "fault"
            attrs.update(fault_annotation(output))
        else:
            attrs["status"] = "ok"
            attrs["method"] = getattr(output, "method", None)
        tracer.emit("execute", attrs, duration)

    # ------------------------------------------------------------------
    # Metrics emission
    # ------------------------------------------------------------------

    @property
    def metrics_enabled(self) -> bool:
        """True when the aggregate telemetry layer is recording."""
        return self._observe

    def _observe_batch(self, bt: dict | None) -> None:
        """Feed one batch's stage timings and tier attributions to the registry."""
        if bt is None or not self._observe:
            return
        for stage, series in self._stage_series.items():
            for timing in bt[stage]:
                if timing is not None:
                    series.observe(timing)
        tier_series = self._tier_series
        for tier in bt["tiers"]:
            tier = tier or "uncacheable"
            series = tier_series.get(tier)
            if series is None:
                series = tier_series[tier] = self._tier_counter.labels(tier=tier)
            series.inc()

    def _execute_series(self, method: str | None):
        method = method or "unknown"
        series = self._execute_method_series.get(method)
        if series is None:
            series = self._execute_method_series[method] = self._execute_hist.labels(
                method=method
            )
        return series

    def _count_isolated(self, failed) -> None:
        """Count one isolated slot, labeled by the fault's error class.

        ``failed`` is the :class:`FailedResult` in hand or the raw
        exception when the slot has not been wrapped yet.
        """
        self.stats.isolated_failures += 1
        if self._observe:
            error = failed.error if isinstance(failed, FailedResult) else failed
            label = type(error).__name__ if isinstance(error, BaseException) else "unknown"
            self._fault_counter.labels(kind="isolated", error=label).inc()

    def _count_fault(self, kind: str, fault: BaseException) -> None:
        if self._observe:
            self._fault_counter.labels(kind=kind, error=type(fault).__name__).inc()

    def _collect_health(self) -> None:
        """Scrape-time collector: refresh bridged health series.

        Reads the authoritative sources (cache ``stats()``, the
        compilation cache's tallies, the tracer and the snapshot store)
        and mirrors them into registry series, so an export is current
        without any of these subsystems writing metrics on their own hot
        paths.  Pure reads — safe concurrent with execution.
        """
        registry = self.metrics
        if self._persistent is not None:
            cache_stats = self._persistent.stats()
            events = registry.counter(
                "repro_result_cache_events_total",
                "Persistent result-cache events, bridged from PersistentResultCache.stats().",
                labelnames=("event",),
            )
            for event in ("hits", "misses", "evictions", "write_errors", "corrupt_entries"):
                events.labels(event=event).set(cache_stats.get(event, 0))
            registry.gauge(
                "repro_result_cache_approx_bytes",
                "Approximate bytes resident in the persistent result-cache tree.",
            ).set(cache_stats.get("approx_bytes", 0))
            registry.gauge(
                "repro_result_cache_disabled",
                "1 when the persistent cache disabled itself after repeated write errors.",
            ).set(1 if cache_stats.get("disabled") else 0)
        compilation = self._compilation
        tiers = registry.counter(
            "repro_compilation_cache_lookups_total",
            "CompilationCache lookups by serving tier.",
            labelnames=("tier",),
        )
        persistent_hits = compilation.persistent_hits
        tiers.labels(tier="memory").set(compilation.hits - persistent_hits)
        tiers.labels(tier="persistent").set(persistent_hits)
        tiers.labels(tier="compiled").set(compilation.misses)
        registry.gauge(
            "repro_compilation_cache_entries",
            "Compiled circuits resident in the in-memory compilation cache.",
        ).set(compilation.stats().get("entries", 0))
        tracer = self.tracer
        if tracer is not None:
            trace_stats = tracer.stats()
            registry.counter(
                "repro_trace_write_errors_total",
                "Trace artifacts that failed to persist (write-never-raises).",
            ).set(trace_stats.get("write_errors", 0))
            registry.counter(
                "repro_trace_dropped_traces_total",
                "Finished traces evicted from the recorder's bounded ring.",
            ).set(trace_stats.get("dropped_traces", 0))
            registry.counter(
                "repro_trace_dropped_events_total",
                "Events lost with ring-evicted traces.",
            ).set(trace_stats.get("dropped_events", 0))
        if self._metrics_store is not None:
            registry.counter(
                "repro_metrics_write_errors_total",
                "Metrics snapshots that failed to persist (write-never-raises).",
            ).set(self._metrics_store.write_errors)
        # Kernel-tier dispatch accounting, bridged from the plain-int
        # counters the hot loop increments (repro.simulators.kernels); the
        # backend gauge attributes any BENCH drift to kernel routing.
        dispatch = registry.counter(
            "repro_kernel_dispatch_total",
            "Fused-block applications by kernel kind, bridged from the dispatch tier.",
            labelnames=("kind",),
        )
        for kind, count in kernel_dispatch_counts().items():
            dispatch.labels(kind=kind).set(count)
        registry.gauge(
            "repro_kernel_backend",
            "1 for this engine's resolved kernel backend.",
            labelnames=("backend",),
        ).labels(backend=self.kernel_backend).set(1)

    def _flush_metrics(self) -> None:
        """Snapshot the registry to the metrics store (never raises)."""
        if self._metrics_store is None:
            return
        self._metrics_store.write(self.metrics)
        self._metrics_flushed = True

    def _failed_prepare(self, circuit: QuantumCircuit, exc: Exception) -> FailedResult:
        """FailedResult for a circuit that could not be prepared (isolate mode)."""
        try:
            fingerprint: str | None = circuit_fingerprint(circuit)
        except Exception:
            fingerprint = None
        if isinstance(exc, ExecutionFault):
            fault = exc
        else:
            fault = TranspilationError(str(exc), fingerprint=fingerprint, stage="prepare")
            fault.__cause__ = exc
        return FailedResult(
            error=fault,
            fingerprint=fault.fingerprint or fingerprint,
            method=fault.method,
            stage=fault.stage or "prepare",
        )

    def _failed_result(self, request: _Prepared, exc: Exception) -> FailedResult:
        """FailedResult for a prepared request whose execution terminally failed."""
        if isinstance(exc, ExecutionFault):
            fault = exc
        else:
            fault = SimulationError(
                str(exc),
                fingerprint=request.fingerprint,
                method=request.method,
                stage="simulate",
            )
            fault.__cause__ = exc
        return FailedResult(
            error=fault,
            fingerprint=fault.fingerprint or request.fingerprint,
            method=fault.method or request.method,
            stage=fault.stage or "simulate",
            attempts=getattr(fault, "attempts", 1),
        )

    def _guarded(
        self,
        request: _Prepared,
        shots: int | None,
        max_trajectories: int,
        isolate: bool,
        first_fault: ExecutionFault | None = None,
    ) -> tuple[ExecutionResult | None, FailedResult | None]:
        """Run under policy; ``(result, None)`` or — isolating — ``(None, failed)``.

        In raise mode the terminal exception propagates (aborting the batch,
        the historical contract).
        """
        try:
            result = self._execute_with_policy(
                request, shots, max_trajectories, first_fault=first_fault
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            if not isolate:
                raise
            return None, self._failed_result(request, exc)
        return result, None

    def _execute_many_parallel(
        self,
        prepared: list[_Prepared | FailedResult],
        shots: int | None,
        max_trajectories: int,
        workers: int,
        isolate: bool,
        bt: dict | None = None,
    ) -> list[ExecutionResult | FailedResult]:
        """Shard a prepared batch across the process pool.

        The parent does everything stateful — deduplication, in-memory and
        persistent cache lookups, cache writes, delivery translation — so
        workers stay pure.  Only requests that miss every cache are
        dispatched; duplicates of a dispatched key wait for its single
        execution, exactly as in the serial path.

        Fault recovery is parent-side too: the sharder returns a structured
        :class:`~repro.simulators.faults.ExecutionFault` per failed slot
        (it already absorbed pool crashes and timeouts), and the parent
        feeds it to :meth:`_execute_with_policy` — retrying retryable
        faults in-process, walking the degradation ladder, and only then
        failing the slot (isolate mode) or the batch (raise mode).

        Density-matrix requests keep the readout-factored state cache: a
        state-cache hit is finished in the parent (confusion + optional
        sampling are cheap); a miss dispatches the expensive *gate-noise*
        evolution to a worker and the parent applies readout on top and
        writes the ``dm-state`` entry — so measurement-error sweeps
        warm-start under ``workers>1`` exactly as they do serially.
        """
        results: list[ExecutionResult | FailedResult | None] = [None] * len(prepared)
        # key -> requester indices awaiting the key's single execution
        pending: OrderedDict[tuple, list[int]] = OrderedDict()
        tasks: list[CompactTask] = []
        # Mirror of ``tasks``:
        #   ("keyed", key)          -> cache-missed non-dm execution
        #   ("direct", index)       -> uncacheable non-dm execution
        #   ("dm-state", state_key) -> gate-noise evolution; consumers below
        task_refs: list[tuple[str, Any]] = []
        # state_key -> [("keyed", key) | ("direct", index), ...]; several
        # uncacheable requests of one circuit share a single evolution, as
        # they would share the state-cache line serially.
        dm_consumers: OrderedDict[tuple, list[tuple[str, Any]]] = OrderedDict()

        def enqueue_density_matrix(request: _Prepared, consumer: tuple[str, Any]) -> bool:
            """True if the request was finished from the state cache."""
            gate_noise, gate_fingerprint = self._gate_noise_for(request.noise)
            state_key = ("dm-state", request.fingerprint, gate_fingerprint)
            if state_key not in dm_consumers and self._cache_get(state_key) is not None:
                return True  # cheap: finish in-parent via the serial path
            if state_key not in dm_consumers:
                dm_consumers[state_key] = []
                tasks.append(
                    dataclasses.replace(
                        self._task_for(request, None, max_trajectories),
                        noise=gate_noise,
                        seed=None,
                    )
                )
                task_refs.append(("dm-state", state_key))
            dm_consumers[state_key].append(consumer)
            return False

        for index, request in enumerate(prepared):
            self.stats.requests += 1
            if isinstance(request, FailedResult):
                # Prepare already failed this slot (isolate mode only).
                self._count_isolated(request)
                if bt is not None:
                    bt["tiers"][index] = "failed-prepare"
                results[index] = request
                continue
            if request.key is None:
                # Unseeded sampling: uncacheable and never deduplicated —
                # each occurrence is an independent draw (in a worker, from
                # fresh OS entropy, exactly as in-process).
                self.stats.uncacheable += 1
                if bt is not None:
                    bt["tiers"][index] = "uncacheable"
                if request.method == "density_matrix":
                    if enqueue_density_matrix(request, ("direct", index)):
                        result, failed = self._guarded(request, shots, max_trajectories, isolate)
                        if failed is not None:
                            self._count_isolated(failed)
                            results[index] = failed
                        else:
                            results[index] = self._deliver_traced(result, request, bt, index)
                else:
                    tasks.append(self._task_for(request, shots, max_trajectories))
                    task_refs.append(("direct", index))
                continue
            if request.key in pending:
                self.stats.batch_dedup_hits += 1
                if bt is not None:
                    bt["tiers"][index] = "batch-dedup"
                pending[request.key].append(index)
                continue
            cached = self._cache_get_traced(request.key, bt, index)
            if cached is not None:
                self.stats.cache_hits += 1
                results[index] = self._deliver_traced(cached, request, bt, index)
                continue
            self.stats.cache_misses += 1
            if bt is not None:
                bt["tiers"][index] = "executed"
            if request.method == "density_matrix":
                if enqueue_density_matrix(request, ("keyed", request.key)):
                    # Later duplicates of this key hit the result cache.
                    result, failed = self._guarded(request, shots, max_trajectories, isolate)
                    if failed is not None:
                        self._count_isolated(failed)
                        results[index] = failed
                    else:
                        if "degraded_from" not in result.metadata:
                            self._cache_put(request.key, result)
                        results[index] = self._deliver_traced(result, request, bt, index)
                else:
                    pending[request.key] = [index]
            else:
                pending[request.key] = [index]
                tasks.append(self._task_for(request, shots, max_trajectories))
                task_refs.append(("keyed", request.key))

        sharder = self._get_sharder(workers)
        directives = None
        if self._fault_injector is not None:
            # Resolve injector directives parent-side, one ordinal per
            # dispatched task in dispatch order — workers stay stateless
            # and a chaos schedule replays deterministically.
            directives = [
                self._fault_injector.take_directive(task.fingerprint) for task in tasks
            ]
        tracer = self.tracer
        dispatch_started = time.perf_counter() if tracer is not None else 0.0
        outputs = sharder.run(tasks, directives=directives, isolate=True)
        self.stats.parallel_executed += sharder.last_dispatched
        self.stats.pool_respawns += sharder.last_respawns
        self.stats.fallback_reason = sharder.fallback_reason
        if tracer is not None and tasks:
            tracer.event(
                "dispatch",
                duration=time.perf_counter() - dispatch_started,
                tasks=len(tasks),
                workers=workers,
                dispatched=sharder.last_dispatched,
                respawns=sharder.last_respawns,
                fallback=sharder.fallback_reason,
            )

        def finish_density_matrix(request: _Prepared, pre_readout: ExecutionResult) -> ExecutionResult:
            # Same arithmetic as the serial readout-factored path: exact
            # confusion per measured bit, then optional seeded sampling.
            self.stats.executed += 1
            distribution = apply_readout_confusion(
                pre_readout.distribution, pre_readout.measured_qubits, request.noise
            )
            result = ExecutionResult(
                distribution=distribution,
                measured_qubits=list(pre_readout.measured_qubits),
                method="density_matrix",
            )
            if shots is not None:
                rng = np.random.default_rng(request.seed)
                counts = distribution.sample(shots, rng)
                result.counts = counts
                result.shots = shots
                result.distribution = counts.to_distribution()
            return result

        def fail_pending(key: tuple, failed: FailedResult) -> None:
            # One poison execution fails every duplicate slot awaiting it —
            # the same dedup that shares results shares failures.
            for index in pending[key]:
                self._count_isolated(failed)
                results[index] = dataclasses.replace(failed, metadata=dict(failed.metadata))

        for task_index, ((kind, ref), output) in enumerate(zip(task_refs, outputs)):
            # Pool-boundary trace stitching: pop the worker's span fragment
            # before the result can reach the cache (a persisted entry must
            # not carry one run's trace residue into every later hit).
            fragment = None
            if isinstance(output, ExecutionResult):
                fragment = output.metadata.pop("trace_fragment", None)
            if tracer is not None:
                self._emit_pool_execute_event(tasks[task_index], output, fragment)
            if self._observe and fragment is not None:
                # Worker clocks are incomparable with the parent's; the
                # fragment's self-measured duration is still a valid
                # latency sample for the method's execute histogram.
                duration = fragment.get("duration")
                if duration is not None:
                    self._execute_series(tasks[task_index].method).observe(duration)
            if kind == "direct":
                request = prepared[ref]
                if isinstance(output, ExecutionFault):
                    result, failed = self._guarded(
                        request, shots, max_trajectories, isolate, first_fault=output
                    )
                    if failed is not None:
                        self._count_isolated(failed)
                        results[ref] = failed
                    else:
                        results[ref] = self._deliver_traced(result, request, bt, ref)
                    continue
                self.stats.executed += 1
                if request.method == "stabilizer":
                    self.stats.stabilizer_executed += 1
                results[ref] = self._deliver_traced(output, request, bt, ref)
            elif kind == "keyed":
                request = prepared[pending[ref][0]]
                if isinstance(output, ExecutionFault):
                    result, failed = self._guarded(
                        request, shots, max_trajectories, isolate, first_fault=output
                    )
                    if failed is not None:
                        fail_pending(ref, failed)
                    else:
                        if "degraded_from" not in result.metadata:
                            self._cache_put(ref, result)
                        for index in pending[ref]:
                            results[index] = self._deliver_traced(result, prepared[index], bt, index)
                    continue
                self.stats.executed += 1
                if request.method == "stabilizer":
                    self.stats.stabilizer_executed += 1
                self._cache_put(ref, output)
                for index in pending[ref]:
                    results[index] = self._deliver_traced(output, prepared[index], bt, index)
            else:  # dm-state: populate the state cache, then finish consumers
                if isinstance(output, ExecutionFault):
                    # Recover in-parent: the first consumer re-runs the
                    # evolution through the state cache (seeded with the
                    # pool's fault so retry/degradation apply); later
                    # consumers are then served by that cache line.
                    fault: ExecutionFault | None = output
                    for consumer_kind, consumer_ref in dm_consumers[ref]:
                        if consumer_kind == "direct":
                            request = prepared[consumer_ref]
                            result, failed = self._guarded(
                                request, shots, max_trajectories, isolate, first_fault=fault
                            )
                            fault = None
                            if failed is not None:
                                self._count_isolated(failed)
                                results[consumer_ref] = failed
                            else:
                                results[consumer_ref] = self._deliver_traced(
                                    result, request, bt, consumer_ref
                                )
                        else:
                            request = prepared[pending[consumer_ref][0]]
                            result, failed = self._guarded(
                                request, shots, max_trajectories, isolate, first_fault=fault
                            )
                            fault = None
                            if failed is not None:
                                fail_pending(consumer_ref, failed)
                            else:
                                if "degraded_from" not in result.metadata:
                                    self._cache_put(consumer_ref, result)
                                for index in pending[consumer_ref]:
                                    results[index] = self._deliver_traced(
                                        result, prepared[index], bt, index
                                    )
                    continue
                self._cache_put(ref, (output.distribution, list(output.measured_qubits)))
                for consumer_kind, consumer_ref in dm_consumers[ref]:
                    if consumer_kind == "direct":
                        request = prepared[consumer_ref]
                        results[consumer_ref] = self._deliver_traced(
                            finish_density_matrix(request, output), request, bt, consumer_ref
                        )
                    else:
                        request = prepared[pending[consumer_ref][0]]
                        result = finish_density_matrix(request, output)
                        self._cache_put(consumer_ref, result)
                        for index in pending[consumer_ref]:
                            results[index] = self._deliver_traced(
                                result, prepared[index], bt, index
                            )
        self._emit_slot_events(results, prepared, bt)
        self._observe_batch(bt)
        self._check_delivered(results, prepared)
        return results  # type: ignore[return-value]

    def _task_for(
        self, request: _Prepared, shots: int | None, max_trajectories: int
    ) -> CompactTask:
        tracer = self.tracer
        return CompactTask(
            circuit=request.compact,
            noise=request.noise,
            method=request.method,
            shots=shots,
            seed=request.seed,
            max_trajectories=max_trajectories,
            fusion=request.fusion,
            fusion_max_qubits=self.fusion_max_qubits,
            kernel_backend=self.kernel_backend,
            fingerprint=request.fingerprint,
            trace_id=tracer.current_trace_id if tracer is not None else None,
        )

    def _get_sharder(self, workers: int) -> ParallelSharder:
        if self._sharder is None or self._sharder.workers != workers:
            if self._sharder is not None:
                self._sharder.shutdown()
            self._sharder = ParallelSharder(
                workers,
                chunk_size=self.chunk_size,
                retry_policy=self.retry_policy,
                task_timeout=self.task_timeout,
                metrics=self.metrics if self._observe else None,
            )
        return self._sharder

    def close(self) -> None:
        """Release the worker pool (if any).  The engine stays usable; a
        later parallel call lazily recreates the pool."""
        if self._sharder is not None:
            self._sharder.shutdown()
            self._sharder = None
        if self.tracer is not None:
            self.tracer.flush()  # publish any deferred trace artifact
        self._flush_metrics()  # publish the final registry snapshot

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def clear_cache(self) -> None:
        """Drop the in-memory cache (the persistent layer is untouched)."""
        self._cache.clear()

    @property
    def cache_len(self) -> int:
        return len(self._cache)

    @property
    def persistent_cache(self) -> PersistentResultCache | None:
        return self._persistent

    # ------------------------------------------------------------------
    # Request preparation
    # ------------------------------------------------------------------

    def compile(self, circuit: QuantumCircuit, device) -> CompiledCircuit:
        """Hardware-aware compilation through the engine's CompilationCache.

        Returns the cached :class:`~repro.transpiler.CompiledCircuit` for
        ``(circuit, device)`` — compiling on first sight, serving the
        content-addressed artifact thereafter.  Consumers (QuTracer's
        overhead accounting) use this to read post-transpile gate counts
        without paying for a second compilation.
        """
        tracer = self.tracer
        hits_before = self._compilation.hits
        compile_started = time.perf_counter() if tracer is not None else 0.0
        compiled = self._compilation.get_or_compile(circuit, device)
        hit = self._compilation.hits > hits_before
        if hit:
            self.stats.compile_hits += 1
        else:
            self.stats.compile_misses += 1
        if tracer is not None:
            lookup = self._compilation.last_lookup
            tracer.event(
                "compile",
                duration=time.perf_counter() - compile_started,
                fingerprint=lookup[0] if lookup else None,
                tier=lookup[1] if lookup else None,
                hit=hit,
            )
        return compiled

    @property
    def compilation_cache(self) -> CompilationCache:
        return self._compilation

    def _prepare(
        self,
        circuit: QuantumCircuit,
        noise_model: NoiseModel,
        shots: int | None,
        seed: int | None,
        method: str,
        max_trajectories: int,
        fusion: bool,
        device=None,
    ) -> _Prepared:
        if method not in ("auto", "statevector", "density_matrix", "trajectory", "stabilizer"):
            raise ValueError(f"unknown method {method!r}")
        if shots is not None and shots <= 0:
            raise ValueError("shots must be positive")
        logical_measured = None
        device_fingerprint = None
        if device is not None:
            compiled = self.compile(circuit, device)
            circuit = compiled.circuit
            logical_measured = list(compiled.logical_measurement_layout)
            device_fingerprint = device.fingerprint()
        if self.compact:
            compact, active = circuit.compact_qubits()
            if len(active) < circuit.num_qubits:
                noise = self._remapped_noise(noise_model, active)
            else:
                noise = noise_model
        else:
            compact, active = circuit, list(range(circuit.num_qubits))
            noise = noise_model
        resolved = method
        if resolved == "stabilizer" and not is_clifford_program(compact, noise):
            # Transparent fallback contract: an explicit stabilizer request
            # for a non-Clifford program re-resolves exactly as "auto" would,
            # sharing cache lines with equivalent dense submissions.
            resolved = "auto"
        if resolved == "auto":
            if noise.is_ideal:
                resolved = "statevector"
            elif compact.num_qubits <= self.density_matrix_threshold:
                resolved = "density_matrix"
            elif is_clifford_program(compact, noise):
                # Clifford program + Pauli noise, too wide for the exact
                # tier: the tableau backend samples the same trajectory
                # statistics at polynomial cost.  Narrow circuits keep the
                # exact density-matrix tier (strictly better answers).
                resolved = "stabilizer"
            else:
                resolved = "trajectory"

        fingerprint = circuit_fingerprint(compact)
        derived_seed = _derive_seed(seed, fingerprint)
        sampled = resolved in ("trajectory", "stabilizer")
        stochastic = sampled or shots is not None
        cacheable = not stochastic or derived_seed is not None
        key = None
        if cacheable:
            # The trajectory and stabilizer paths always sample; key their
            # implicit default shot budget explicitly so shots=None and
            # shots=4096 (identical work and identical results) share one
            # cache line.
            key_shots = shots
            if sampled and shots is None:
                key_shots = DEFAULT_TRAJECTORY_SHOTS
            # The trajectory RNG stream depends on the fused program (draws
            # are consumed in program order), so fusion settings — including
            # the width spec (None = cost-model auto, itself a deterministic
            # function of the other key components) and the kernel backend
            # (backends agree only to a few ulp, enough to flip a sampled
            # outcome near a CDF boundary) — are part of the identity of a
            # sampled result.  Statevector results are deterministic but
            # keyed by backend for the same ulp reason; density-matrix keys
            # carry it on the dm-state key instead (readout factoring), and
            # the stabilizer backend ignores fusion and kernels entirely
            # (tableaus need the raw gate names), so its keys do too.  The
            # ``resolved`` method string is the backend tag that keeps
            # stabilizer and dense entries for one circuit from colliding.
            if resolved == "trajectory":
                key_fusion = (
                    fusion,
                    self.fusion_max_qubits if fusion else None,
                    self.kernel_backend,
                )
            elif resolved == "statevector":
                key_fusion = (self.kernel_backend,)
            else:
                key_fusion = None
            # The trailing device component keeps device-compiled and plain
            # logical submissions apart even in the (identity-compile) case
            # where the physical circuit's structure equals the logical one.
            key = (
                fingerprint,
                self._noise_fingerprint(noise),
                resolved,
                key_shots,
                derived_seed,
                max_trajectories if sampled else None,
                key_fusion,
                device_fingerprint,
            )
        return _Prepared(
            compact=compact,
            active=active,
            num_qubits=circuit.num_qubits,
            has_measurements=compact.has_measurements,
            noise=noise,
            method=resolved,
            seed=derived_seed,
            key=key,
            fingerprint=fingerprint,
            fusion=fusion,
            logical_measured=logical_measured,
        )

    def _noise_fingerprint(self, noise_model: NoiseModel) -> str:
        # Noise models are reused across thousands of requests (QuTracer holds
        # one per layout assignment); memoise per live object.  The weak key
        # rules out id-reuse staleness, the version tag rules out in-place
        # mutation staleness (``set_*`` bumps ``NoiseModel.version``).
        version = noise_model.version
        cached = self._noise_fingerprints.get(noise_model)
        if cached is None or cached[0] != version:
            cached = (version, noise_model.fingerprint())
            self._noise_fingerprints[noise_model] = cached
        return cached[1]

    def _remapped_noise(self, noise_model: NoiseModel, active: Sequence[int]) -> NoiseModel:
        # Memoised noise_model.remap_qubits for a compaction: every subset
        # circuit with the same active wires shares one remapped model, so its
        # fingerprint is hashed once instead of once per request.
        version = noise_model.version
        entry = self._remapped.get(noise_model)
        if entry is None or entry[0] != version:
            entry = (version, {})
            self._remapped[noise_model] = entry
        per_subset = entry[1]
        key = tuple(active)
        remapped = per_subset.get(key)
        if remapped is None:
            if len(per_subset) >= 4096:  # runaway-subset backstop
                per_subset.clear()
            remapped = noise_model.remap_qubits({q: i for i, q in enumerate(active)})
            per_subset[key] = remapped
        return remapped

    # ------------------------------------------------------------------
    # Execution and delivery
    # ------------------------------------------------------------------

    def _execute_with_policy(
        self,
        request: _Prepared,
        shots: int | None,
        max_trajectories: int,
        first_fault: ExecutionFault | None = None,
    ) -> ExecutionResult:
        """Instrumented front of :meth:`_execute_with_policy_impl`.

        When traced, emits one "execute" event per recovery-loop
        invocation: measured duration, retry/degradation deltas, dm-state
        attribution and — on the raise path — the fault annotation.  When
        metrics are on, the same measured duration feeds the per-method
        execute histogram.  ``first_fault`` marks a recovery of work that
        already failed in a pool worker.
        """
        tracer = self.tracer
        traced = tracer is not None and tracer.active
        if not traced and not self._observe:
            return self._execute_with_policy_impl(request, shots, max_trajectories, first_fault)
        stats = self.stats
        retries_before = stats.retries
        degraded_before = stats.degraded_backend
        dm_hits_before = stats.state_cache_hits
        started = time.perf_counter()
        attrs: dict[str, Any] = {
            "fingerprint": request.fingerprint,
            "resolved": request.method,
            "location": "in-process" if first_fault is None else "pool-recovery",
            "kernel_backend": self.kernel_backend,
        }
        try:
            result = self._execute_with_policy_impl(request, shots, max_trajectories, first_fault)
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            elapsed = time.perf_counter() - started
            if traced:
                tracer.event(
                    "execute",
                    duration=elapsed,
                    status="failed",
                    retries=stats.retries - retries_before,
                    degraded=stats.degraded_backend - degraded_before,
                    **attrs,
                    **fault_annotation(exc),
                )
            if self._observe:
                self._execute_series(request.method).observe(elapsed)
            raise
        elapsed = time.perf_counter() - started
        if traced:
            degraded_from = result.metadata.get("degraded_from")
            tracer.event(
                "execute",
                duration=elapsed,
                status="ok",
                method=result.method,
                retries=stats.retries - retries_before,
                degraded=stats.degraded_backend - degraded_before,
                dm_state_hit=stats.state_cache_hits > dm_hits_before,
                **({"degraded_from": degraded_from} if degraded_from is not None else {}),
                **attrs,
            )
        if self._observe:
            self._execute_series(result.method or request.method).observe(elapsed)
        return result

    def _execute_with_policy_impl(
        self,
        request: _Prepared,
        shots: int | None,
        max_trajectories: int,
        first_fault: ExecutionFault | None = None,
    ) -> ExecutionResult:
        """Run one request under the retry policy and the degradation ladder.

        The recovery loop the execute paths share:

        * a :class:`BackendUnavailableError` walks one rung down the backend
          ladder (stabilizer → trajectory ensemble → per-trajectory loop)
          instead of counting as an attempt;
        * a retryable fault (per :attr:`retry_policy`) sleeps the policy's
          deterministic backoff and re-runs, up to ``max_attempts``;
        * anything else is terminal: taxonomy faults are raised annotated
          with the attempt count, bare exceptions (usage errors such as
          "statevector cannot apply noise") propagate unmodified so
          pre-taxonomy callers keep seeing the types they catch.

        ``first_fault`` seeds the loop with a fault that already happened
        elsewhere (a pool worker): recovery then starts at the classify
        step, and injector directives are re-resolved as *retries* (only
        sticky poison re-fires — the Nth-task ordinal was consumed by the
        original dispatch).
        """
        policy = self.retry_policy
        method = request.method
        attempt = 1
        fault = first_fault
        # The first in-loop execution consumes a fresh injector ordinal only
        # when nothing was dispatched for this request yet.
        fresh = first_fault is None
        while True:
            if fault is not None:
                if isinstance(fault, BackendUnavailableError) and method in _DEGRADATION_LADDER:
                    method = _DEGRADATION_LADDER[method]
                    self.stats.degraded_backend += 1
                    self._count_fault("degraded", fault)
                elif policy.is_retryable(fault) and attempt < policy.max_attempts:
                    self.stats.retries += 1
                    self._count_fault("retried", fault)
                    policy.sleep(attempt, seed=request.seed)
                    attempt += 1
                else:
                    fault.attempts = attempt
                    raise fault
                fault = None
            directive = None
            injector = self._fault_injector
            if injector is not None:
                directive = (
                    injector.take_directive(request.fingerprint)
                    if fresh
                    else injector.retry_directive(request.fingerprint)
                )
            fresh = False
            try:
                result = self._run(
                    request, shots, max_trajectories, method=method, directive=directive
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except ExecutionFault as exc:
                fault = exc
                continue
            if method != request.method:
                # Mark the slot so callers can see the degradation and the
                # cache layer knows not to store it under the healthy key.
                result.metadata["degraded_from"] = request.method
            return result

    def _run(
        self,
        request: _Prepared,
        shots: int | None,
        max_trajectories: int,
        method: str | None = None,
        directive: tuple | None = None,
    ) -> ExecutionResult:
        """Execute one prepared request and return a compact-space result.

        The returned ``measured_qubits`` index the *compact* circuit's wires;
        they are remapped to the requester's embedding in :meth:`_deliver`,
        never here — the result may be cached and served to requesters with
        different embeddings of the same compact structure.

        ``method`` overrides the request's resolved method (the degradation
        ladder runs a lower rung without re-preparing); ``directive`` is an
        injected chaos fault applied before anything executes.
        """
        method = method or request.method
        apply_injected_directive(
            directive, fingerprint=request.fingerprint, method=method, in_worker=False
        )
        self.stats.executed += 1
        if method == "stabilizer":
            self.stats.stabilizer_executed += 1
        if method == "trajectory_loop":
            # Last ladder rung: the per-trajectory reference loop — slowest
            # backend, fewest assumptions.  Same sampling contract as the
            # ensemble (counts + measured qubits under the derived seed).
            counts, measured_qubits = simulate_trajectories_batched(
                request.compact,
                request.noise,
                shots=shots or DEFAULT_TRAJECTORY_SHOTS,
                seed=request.seed,
                max_trajectories=max_trajectories,
            )
            return ExecutionResult(
                distribution=counts.to_distribution(),
                measured_qubits=measured_qubits,
                counts=counts,
                shots=counts.shots,
                method="trajectory",
            )
        if method == "density_matrix":
            # Readout-factored path: the expensive gate-noise evolution is
            # served by the state cache; only the confusion differs per
            # request.  Arithmetic matches run_compact_task's uncached
            # density-matrix branch bit for bit.
            distribution, measured_qubits = self._density_matrix_distribution(request)
            result = ExecutionResult(
                distribution=distribution,
                measured_qubits=measured_qubits,
                method="density_matrix",
            )
            if shots is not None:
                rng = np.random.default_rng(request.seed)
                counts = distribution.sample(shots, rng)
                result.counts = counts
                result.shots = shots
                result.distribution = counts.to_distribution()
            return result
        # Statevector and trajectory share the pure compute function with
        # the pool workers — one code path, bit-identical results.  The
        # method override (a degraded ladder rung) replaces the request's
        # resolved method without re-preparing.
        task = self._task_for(request, shots, max_trajectories)
        if method != request.method:
            task = dataclasses.replace(task, method=method)
        return run_compact_task(task)

    def _gate_noise_for(self, noise: NoiseModel) -> tuple[NoiseModel, str]:
        """Memoised readout-free derivative of ``noise`` and its fingerprint."""
        version = noise.version
        memo = self._gate_noise.get(noise)
        if memo is None or memo[0] != version:
            gate_noise = noise.without_readout_errors()
            memo = (version, gate_noise, self._noise_fingerprint(gate_noise))
            self._gate_noise[noise] = memo
        return memo[1], memo[2]

    def _density_matrix_distribution(self, request: _Prepared):
        """Exact noisy distribution with readout factored out of the cache key.

        The expensive part of a density-matrix execution — evolving the state
        through the gates and gate-noise channels — does not depend on the
        readout model, so the pre-readout distribution is cached under
        (circuit, gate noise) and this request's readout confusion is applied
        on top.  A sweep over measurement-error rates (Fig. 7) re-simulates
        nothing; and because the simulation is deterministic, the state cache
        serves unseeded requests too.
        """
        gate_noise, gate_fingerprint = self._gate_noise_for(request.noise)
        state_key = ("dm-state", request.fingerprint, gate_fingerprint, self.kernel_backend)
        cached = self._cache_get(state_key)
        if cached is None:
            distribution, measured_qubits = noisy_distribution_density_matrix(
                request.compact,
                gate_noise,
                fusion=request.fusion,
                fusion_max_qubits=self.fusion_max_qubits,
                kernel_backend=self.kernel_backend,
            )
            self._cache_put(state_key, (distribution, measured_qubits))
        else:
            self.stats.state_cache_hits += 1
            distribution, measured_qubits = cached
        distribution = apply_readout_confusion(distribution, measured_qubits, request.noise)
        return distribution, list(measured_qubits)

    def _deliver(self, source: ExecutionResult, request: _Prepared) -> ExecutionResult:
        """Translate a compact-space result into the requester's embedding.

        Every requester gets an independent ``ExecutionResult`` whose
        payloads it owns: ``measured_qubits`` are remapped through *this*
        request's active-wire list (two embeddings of one compact structure
        share a cache line but must each see their own labels), and the
        distribution/counts are copied so caller mutations cannot poison
        later hits on the cached object.
        """
        if not request.has_measurements and len(request.active) < request.num_qubits:
            # No measurements: sequential execute() reports all wires, so
            # scatter the compact bits back to their original positions
            # (idle wires were never touched and read a deterministic 0).
            distribution = ProbabilityDistribution(
                scatter_outcomes(source.distribution.items(), request.active),
                request.num_qubits,
            )
            counts = (
                Counts(
                    scatter_outcomes(source.counts.items(), request.active),
                    request.num_qubits,
                )
                if source.counts is not None
                else None
            )
            measured_qubits = list(range(request.num_qubits))
        else:
            distribution = source.distribution.copy()
            counts = source.counts.copy() if source.counts is not None else None
            measured_qubits = [request.active[q] for q in source.measured_qubits]
        if request.logical_measured is not None:
            # Device-compiled request: bits already ride the logical clbits
            # through the routed permutation; report the logical qubits the
            # caller submitted, not the physical wires they landed on.
            measured_qubits = list(request.logical_measured)
        return ExecutionResult(
            distribution=distribution,
            measured_qubits=measured_qubits,
            counts=counts,
            shots=source.shots,
            method=source.method,
            metadata=dict(source.metadata),
        )

    # ------------------------------------------------------------------
    # LRU cache plumbing
    # ------------------------------------------------------------------

    def _cache_get(self, key: tuple) -> Any:
        result = self._cache.get(key)
        if result is not None:
            self._cache.move_to_end(key)
            return result
        if self._persistent is not None:
            result = self._persistent.get(key)
            if result is not None:
                self.stats.persistent_hits += 1
                # Promote to memory without re-writing the disk entry.
                self._cache_put(key, result, persist=False)
        return result

    def _cache_put(self, key: tuple, result: Any, persist: bool = True) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.active and persist:
            # Provenance for replay: the key's repr (literal-evaluable back
            # into the tuple) plus a digest of the stored payload, so a
            # later `repro.tracing replay` can verify the persistent cache
            # still serves bit-identical bytes for this trace.
            tracer.event(
                "cache-put",
                key=repr(key),
                digest=result_digest(result),
                dm_state=bool(key) and key[0] == "dm-state",
            )
        if persist and self._persistent is not None:
            self._persistent.put(key, result)
        if self.cache_size == 0:
            return
        self._cache[key] = result
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)


def _batch_trace(num_slots: int) -> dict[str, list]:
    """Per-slot trace bookkeeping arrays for one execute_many batch."""
    return {
        "prepare": [None] * num_slots,
        "cache": [None] * num_slots,
        "deliver": [None] * num_slots,
        "tiers": [None] * num_slots,
    }


def _derive_seed(seed: int | None, fingerprint: str) -> int | None:
    """Per-circuit seed: decorrelated across circuits, equal for equals."""
    if seed is None:
        return None
    digest = hashlib.sha256(f"{seed}:{fingerprint}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def _flush_metrics_ref(ref: "weakref.ref[ExecutionEngine]") -> None:
    """atexit hook body: snapshot a still-live engine's final metrics.

    Module-level (not a bound method) so registering it cannot keep the
    engine alive; skips engines that already flushed via close().
    """
    engine = ref()
    if engine is not None and not engine._metrics_flushed:
        engine._flush_metrics()


_default_engine: ExecutionEngine | None = None


def get_default_engine() -> ExecutionEngine:
    """Process-wide shared engine used when a consumer does not bring its own.

    Publishes its telemetry into the process-wide registry
    (:func:`repro.metrics.get_global_registry`) — the shared engine is
    the process's execution service, so its counters belong on the
    process-wide scrape.
    """
    global _default_engine
    if _default_engine is None:
        _default_engine = ExecutionEngine(metrics=get_global_registry())
    return _default_engine
