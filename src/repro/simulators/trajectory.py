"""Monte-Carlo (quantum trajectory) simulation of noisy circuits.

The exact density-matrix simulator needs ``4**n`` memory, which rules out the
paper's 12-15 qubit VQE workloads.  The trajectory simulator keeps a pure
statevector and, after each gate, samples one Kraus operator of the noise
channel with the Born probability ``<psi| K^dagger K |psi>``.  Averaging over
trajectories (and sampling measurement shots within each trajectory)
converges to the density-matrix result.
"""

from __future__ import annotations

import numpy as np

from ..circuits import QuantumCircuit
from ..distributions import Counts
from ..noise import NoiseModel
from .apply import (
    apply_matrix_to_statevector,
    reduced_density_matrix_from_statevector,
    statevector_probabilities,
)

__all__ = ["simulate_trajectories"]


def simulate_trajectories(
    circuit: QuantumCircuit,
    noise_model: NoiseModel | None = None,
    shots: int = 4096,
    seed: int | None = None,
    max_trajectories: int = 600,
) -> tuple[Counts, list[int]]:
    """Sample ``shots`` noisy measurement outcomes.

    Returns the counts and the list of measured qubits in clbit order (bit
    ``i`` of an outcome corresponds to ``qubits[i]``).

    ``max_trajectories`` bounds the number of independent noise realisations;
    measurement shots are spread evenly across trajectories.  For ideal noise
    models a single trajectory is used.
    """
    if shots <= 0:
        raise ValueError("shots must be positive")
    noise_model = noise_model or NoiseModel.ideal()
    rng = np.random.default_rng(seed)

    clbit_to_qubit: dict[int, int] = {}
    for inst in circuit.data:
        if inst.is_measurement:
            clbit_to_qubit[inst.clbits[0]] = inst.qubits[0]
    if clbit_to_qubit:
        clbits = sorted(clbit_to_qubit)
        measured_qubits = [clbit_to_qubit[c] for c in clbits]
    else:
        measured_qubits = list(range(circuit.num_qubits))

    num_trajectories = 1 if not noise_model.has_gate_errors else min(shots, max_trajectories)
    shots_per_trajectory = _spread(shots, num_trajectories)

    readout = noise_model.readout_errors_for(measured_qubits)
    flip_given_0 = np.array(
        [readout[q].prob_1_given_0 if q in readout else 0.0 for q in measured_qubits]
    )
    flip_given_1 = np.array(
        [readout[q].prob_0_given_1 if q in readout else 0.0 for q in measured_qubits]
    )

    counts: dict[int, int] = {}
    num_qubits = circuit.num_qubits
    for trajectory_shots in shots_per_trajectory:
        state = _run_single_trajectory(circuit, noise_model, rng)
        probs = statevector_probabilities(state, measured_qubits, num_qubits)
        probs = np.clip(probs, 0.0, None)
        probs = probs / probs.sum()
        outcomes = rng.choice(probs.size, size=trajectory_shots, p=probs)
        for outcome in outcomes:
            measured = _apply_readout_flips(int(outcome), flip_given_0, flip_given_1, rng)
            counts[measured] = counts.get(measured, 0) + 1
    return Counts(counts, len(measured_qubits)), measured_qubits


def _spread(total: int, parts: int) -> list[int]:
    base = total // parts
    remainder = total % parts
    return [base + (1 if i < remainder else 0) for i in range(parts)]


def _run_single_trajectory(
    circuit: QuantumCircuit, noise_model: NoiseModel, rng: np.random.Generator
) -> np.ndarray:
    num_qubits = circuit.num_qubits
    state = np.zeros(2**num_qubits, dtype=complex)
    state[0] = 1.0
    for inst in circuit.data:
        if inst.is_barrier or inst.is_measurement:
            continue
        if not inst.is_gate:
            raise ValueError(f"cannot simulate instruction {inst.name!r}")
        state = apply_matrix_to_statevector(state, inst.operation.matrix, inst.qubits, num_qubits)
        for channel, qubits in noise_model.channels_for(inst):
            if channel.is_identity():
                continue
            state = _apply_channel_stochastically(state, channel.operators, qubits, num_qubits, rng)
    return state


def _apply_channel_stochastically(
    state: np.ndarray,
    operators: list[np.ndarray],
    qubits: tuple[int, ...],
    num_qubits: int,
    rng: np.random.Generator,
) -> np.ndarray:
    if len(operators) == 1:
        new_state = apply_matrix_to_statevector(state, operators[0], qubits, num_qubits)
        norm = np.linalg.norm(new_state)
        return new_state / norm if norm > 0 else new_state
    # Born probabilities only involve the reduced state on the channel's qubits.
    rho = reduced_density_matrix_from_statevector(state, qubits, num_qubits)
    probs = np.array([max(float(np.real(np.trace(op.conj().T @ op @ rho))), 0.0) for op in operators])
    total = probs.sum()
    if total <= 0:  # pragma: no cover - numerically degenerate state
        probs = np.full(len(operators), 1.0 / len(operators))
    else:
        probs = probs / total
    index = int(rng.choice(len(operators), p=probs))
    new_state = apply_matrix_to_statevector(state, operators[index], qubits, num_qubits)
    norm = np.linalg.norm(new_state)
    if norm <= 1e-15:  # pragma: no cover - selected operator annihilated the state
        return state
    return new_state / norm


def _apply_readout_flips(
    outcome: int, flip_given_0: np.ndarray, flip_given_1: np.ndarray, rng: np.random.Generator
) -> int:
    measured = outcome
    for bit in range(flip_given_0.size):
        actual = (outcome >> bit) & 1
        flip_prob = flip_given_1[bit] if actual else flip_given_0[bit]
        if flip_prob > 0.0 and rng.random() < flip_prob:
            measured ^= 1 << bit
    return measured
