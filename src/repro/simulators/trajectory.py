"""Monte-Carlo (quantum trajectory) simulation of noisy circuits.

The exact density-matrix simulator needs ``4**n`` memory, which rules out the
paper's 12-15 qubit VQE workloads.  The trajectory simulator keeps a pure
statevector and, after each gate, samples one Kraus operator of the noise
channel with the Born probability ``<psi| K^dagger K |psi>``.  Averaging over
trajectories (and sampling measurement shots within each trajectory)
converges to the density-matrix result.
"""

from __future__ import annotations

import numpy as np

from ..circuits import QuantumCircuit
from ..distributions import Counts
from ..noise import NoiseModel
from .apply import (
    apply_matrix_to_statevector,
    reduced_density_matrix_from_statevector,
    statevector_probabilities,
)

__all__ = ["simulate_trajectories", "simulate_trajectories_batched"]


def simulate_trajectories(
    circuit: QuantumCircuit,
    noise_model: NoiseModel | None = None,
    shots: int = 4096,
    seed: int | None = None,
    max_trajectories: int = 600,
) -> tuple[Counts, list[int]]:
    """Sample ``shots`` noisy measurement outcomes.

    Returns the counts and the list of measured qubits in clbit order (bit
    ``i`` of an outcome corresponds to ``qubits[i]``).

    ``max_trajectories`` bounds the number of independent noise realisations;
    measurement shots are spread evenly across trajectories.  For ideal noise
    models a single trajectory is used.

    Readout flips and counts accumulation are applied to the whole shot
    batch (array flips + ``np.unique``), matching the batched sampler.
    """
    noise_model = noise_model or NoiseModel.ideal()
    rng = np.random.default_rng(seed)
    measured_qubits = circuit.measurement_layout()
    num_trajectories, shots_per_trajectory = _trajectory_plan(
        shots, noise_model, max_trajectories
    )

    num_qubits = circuit.num_qubits
    all_outcomes: list[np.ndarray] = []
    for trajectory_shots in shots_per_trajectory:
        state = _run_single_trajectory(circuit, noise_model, rng)
        probs = statevector_probabilities(state, measured_qubits, num_qubits)
        probs = np.clip(probs, 0.0, None)
        probs = probs / probs.sum()
        if trajectory_shots:
            all_outcomes.append(rng.choice(probs.size, size=trajectory_shots, p=probs))
    return _counts_from_outcomes(all_outcomes, noise_model, measured_qubits, rng), measured_qubits


def simulate_trajectories_batched(
    circuit: QuantumCircuit,
    noise_model: NoiseModel | None = None,
    shots: int = 4096,
    seed: int | None = None,
    max_trajectories: int = 600,
) -> tuple[Counts, list[int]]:
    """Vectorized variant of :func:`simulate_trajectories`.

    Same interface and statistics, different inner loop:

    * **Batched error-insertion sampling** — for *unitary-mixture* channels
      (Pauli/depolarizing channels, where every Kraus operator is a scaled
      unitary) the Born probability ``<psi|K^dagger K|psi> = p_k`` is
      state-independent, so the inserted operator index is pre-sampled for
      every (trajectory, error site) pair in one vectorized draw per site
      instead of computing a reduced density matrix per trajectory per site.
      Non-unitary channels (amplitude damping) keep exact per-state sampling.
    * **Vectorized readout flips** — measurement bit flips are applied to the
      whole shot batch with array operations rather than shot-by-shot.

    The RNG stream differs from :func:`simulate_trajectories`, so the two
    functions agree in distribution but not shot-for-shot.  Results are
    reproducible for a fixed ``seed``.
    """
    noise_model = noise_model or NoiseModel.ideal()
    rng = np.random.default_rng(seed)
    measured_qubits = circuit.measurement_layout()
    num_trajectories, shots_per_trajectory = _trajectory_plan(
        shots, noise_model, max_trajectories
    )
    shots_per_trajectory = np.array(shots_per_trajectory)

    # ------------------------------------------------------------------
    # One pass over the circuit: collect the gate list and classify every
    # error-insertion site.
    # ------------------------------------------------------------------
    gate_ops: list[tuple[np.ndarray, tuple[int, ...]]] = []
    # Per gate, a list of sites; each site is either
    #   ("mixture", qubits, unitaries, identity_flags, presampled_indices) or
    #   ("general", qubits, operators).
    sites_per_gate: list[list[tuple]] = []
    for inst in circuit.data:
        if inst.is_barrier or inst.is_measurement:
            continue
        if not inst.is_gate:
            raise ValueError(f"cannot simulate instruction {inst.name!r}")
        gate_ops.append((inst.operation.matrix, inst.qubits))
        sites: list[tuple] = []
        for channel, qubits in noise_model.channels_for(inst):
            if channel.is_identity():
                continue
            mixture = channel.unitary_mixture()
            if mixture is not None:
                probabilities, unitaries, identity_flags = mixture
                indices = rng.choice(
                    len(unitaries), size=num_trajectories, p=probabilities
                )
                sites.append(("mixture", qubits, unitaries, identity_flags, indices))
            else:
                sites.append(("general", qubits, channel.operators))
        sites_per_gate.append(sites)

    # ------------------------------------------------------------------
    # Run the trajectories with the pre-sampled insertions.
    # ------------------------------------------------------------------
    num_qubits = circuit.num_qubits
    all_outcomes: list[np.ndarray] = []
    for trajectory in range(num_trajectories):
        state = np.zeros(2**num_qubits, dtype=complex)
        state[0] = 1.0
        for (matrix, qubits), sites in zip(gate_ops, sites_per_gate):
            state = apply_matrix_to_statevector(state, matrix, qubits, num_qubits)
            for site in sites:
                if site[0] == "mixture":
                    _, site_qubits, unitaries, identity_flags, indices = site
                    index = int(indices[trajectory])
                    if identity_flags[index]:
                        continue
                    state = apply_matrix_to_statevector(
                        state, unitaries[index], site_qubits, num_qubits
                    )
                else:
                    _, site_qubits, operators = site
                    state = _apply_channel_stochastically(
                        state, operators, site_qubits, num_qubits, rng
                    )
        probs = statevector_probabilities(state, measured_qubits, num_qubits)
        probs = np.clip(probs, 0.0, None)
        probs = probs / probs.sum()
        trajectory_shots = int(shots_per_trajectory[trajectory])
        if trajectory_shots:
            all_outcomes.append(rng.choice(probs.size, size=trajectory_shots, p=probs))

    return _counts_from_outcomes(all_outcomes, noise_model, measured_qubits, rng), measured_qubits


def _counts_from_outcomes(
    all_outcomes: list[np.ndarray],
    noise_model: NoiseModel,
    measured_qubits: list[int],
    rng: np.random.Generator,
) -> Counts:
    """Shared sampler trailer: batch readout flips, then ``np.unique`` counts."""
    outcomes = np.concatenate(all_outcomes) if all_outcomes else np.zeros(0, dtype=int)
    measured = _apply_readout_flips_batched(outcomes, noise_model, measured_qubits, rng)
    values, frequencies = np.unique(measured, return_counts=True)
    counts = {int(v): int(f) for v, f in zip(values, frequencies)}
    return Counts(counts, len(measured_qubits))


def _apply_readout_flips_batched(
    outcomes: np.ndarray,
    noise_model: NoiseModel,
    measured_qubits: list[int],
    rng: np.random.Generator,
) -> np.ndarray:
    """Apply per-qubit readout confusion to a whole batch of outcomes at once."""
    readout = noise_model.readout_errors_for(measured_qubits)
    if not readout or outcomes.size == 0:
        return outcomes
    num_bits = len(measured_qubits)
    flip_given_0 = np.array(
        [readout[q].prob_1_given_0 if q in readout else 0.0 for q in measured_qubits]
    )
    flip_given_1 = np.array(
        [readout[q].prob_0_given_1 if q in readout else 0.0 for q in measured_qubits]
    )
    bits = (outcomes[:, None] >> np.arange(num_bits)) & 1
    flip_probabilities = np.where(bits == 1, flip_given_1, flip_given_0)
    flips = rng.random(bits.shape) < flip_probabilities
    flipped = bits ^ flips
    return (flipped << np.arange(num_bits)).sum(axis=1)


def _trajectory_plan(
    shots: int, noise_model: NoiseModel, max_trajectories: int
) -> tuple[int, list[int]]:
    """Number of noise realisations and the per-trajectory shot split."""
    if shots <= 0:
        raise ValueError("shots must be positive")
    num_trajectories = 1 if not noise_model.has_gate_errors else min(shots, max_trajectories)
    return num_trajectories, _spread(shots, num_trajectories)


def _spread(total: int, parts: int) -> list[int]:
    base = total // parts
    remainder = total % parts
    return [base + (1 if i < remainder else 0) for i in range(parts)]


def _run_single_trajectory(
    circuit: QuantumCircuit, noise_model: NoiseModel, rng: np.random.Generator
) -> np.ndarray:
    num_qubits = circuit.num_qubits
    state = np.zeros(2**num_qubits, dtype=complex)
    state[0] = 1.0
    for inst in circuit.data:
        if inst.is_barrier or inst.is_measurement:
            continue
        if not inst.is_gate:
            raise ValueError(f"cannot simulate instruction {inst.name!r}")
        state = apply_matrix_to_statevector(state, inst.operation.matrix, inst.qubits, num_qubits)
        for channel, qubits in noise_model.channels_for(inst):
            if channel.is_identity():
                continue
            state = _apply_channel_stochastically(state, channel.operators, qubits, num_qubits, rng)
    return state


def _apply_channel_stochastically(
    state: np.ndarray,
    operators: list[np.ndarray],
    qubits: tuple[int, ...],
    num_qubits: int,
    rng: np.random.Generator,
) -> np.ndarray:
    if len(operators) == 1:
        new_state = apply_matrix_to_statevector(state, operators[0], qubits, num_qubits)
        norm = np.linalg.norm(new_state)
        return new_state / norm if norm > 0 else new_state
    # Born probabilities only involve the reduced state on the channel's qubits.
    rho = reduced_density_matrix_from_statevector(state, qubits, num_qubits)
    probs = np.array([max(float(np.real(np.trace(op.conj().T @ op @ rho))), 0.0) for op in operators])
    total = probs.sum()
    if total <= 0:  # pragma: no cover - numerically degenerate state
        probs = np.full(len(operators), 1.0 / len(operators))
    else:
        probs = probs / total
    index = int(rng.choice(len(operators), p=probs))
    new_state = apply_matrix_to_statevector(state, operators[index], qubits, num_qubits)
    norm = np.linalg.norm(new_state)
    if norm <= 1e-15:  # pragma: no cover - selected operator annihilated the state
        return state
    return new_state / norm
