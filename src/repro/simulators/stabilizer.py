"""CHP-style stabilizer tableau backend for Clifford + Pauli-noise programs.

Calibration workloads — randomized benchmarking and Pauli-twirled CX
circuits — are pure Clifford, yet the dense backends pay ``2**n`` (state
vector) or ``4**n`` (density matrix) per gate to simulate them.  This module
simulates such programs in the stabilizer formalism instead:

* :class:`StabilizerTableau` is an Aaronson-Gottesman CHP tableau — binary
  X/Z matrices over ``2n + 1`` rows (``n`` destabilizers, ``n`` stabilizers,
  one scratch row) plus a sign vector — with the standard update rules for
  ``h``/``s``/``cx`` (everything else is composed from those and column
  swaps), deterministic and random measurement outcomes, and ``reset``;
* :func:`is_clifford_program` is the recognition pass: a circuit (plus the
  noise model that will decorate it) is stabilizer-simulable when every gate
  is expressible as a Clifford primitive sequence and every noise channel is
  a probabilistic mixture of Pauli strings
  (:meth:`~repro.noise.KrausChannel.pauli_mixture`);
* :func:`simulate_stabilizer_trajectories` is the sampling backend: same
  contract as :func:`~repro.simulators.ensemble.simulate_trajectories_ensemble`
  (trajectory plan, readout flips, ``Counts`` over the measurement layout),
  but each noise realisation is a *Pauli frame* — two bit-vectors conjugated
  through the circuit — instead of a dense state, so cost scales with the
  gate count and qubit count, not ``2**n``.  This is what opens 20-30 qubit
  RB, which the dense tier cannot represent at all.

How sampling works
------------------
For a Clifford circuit under Pauli noise every trajectory's state is
``P |psi>`` where ``|psi>`` is the noiseless stabilizer state and ``P`` the
accumulated Pauli error (the *frame*).  Measuring qubit ``q`` on ``P |psi>``
gives the outcome ``|psi>`` would give, flipped iff ``P`` has an X (or Y)
component on ``q``.  So the sampler:

1. evolves **one** tableau through the noiseless circuit;
2. propagates all ``T`` trajectory frames through the circuit together,
   bit-packed as one Python integer per qubit per X/Z component (bit ``t`` =
   trajectory ``t``), so a Clifford gate conjugates every frame with one or
   two arbitrary-precision XOR/swap operations — no per-trajectory loop and
   no small-array overhead;
3. samples reference outcomes from the final stabilizer state and XORs each
   trajectory's frame flips on top, then applies the shared readout-flip /
   ``np.unique`` trailer (:func:`repro.simulators.trajectory._counts_from_outcomes`).

Noise sites are sampled sparsely: at error rates of interest almost every
trajectory draws the identity at almost every site, so instead of one
categorical draw per (site, trajectory) the sampler draws, per site, the
*number* of error events from ``Binomial(T, p_error)``, then distinct
trajectory positions uniformly and operator identities from the
error-conditional distribution.  That factorisation is exactly equivalent to
``T`` independent categorical draws and costs ``O(errors)`` instead of
``O(T)`` per site.  The noiseless tableau is bit-packed the same way (one
integer per X/Z column over the ``2n + 1`` rows) during evolution and
unpacked into a :class:`StabilizerTableau` only where row arithmetic is
needed (``reset``, final measurement).

Reference outcomes use the affine structure of stabilizer measurements: the
joint distribution over the measured qubits is uniform over an affine
subspace ``base ^ span(columns)``, where ``k`` is the number of random
(rank-deficient) measurement outcomes.  Collapsing with outcome 1 instead
of 0 differs from the outcome-0 branch by a Pauli correction, so later
outcomes depend GF(2)-linearly on earlier random bits; replaying the
sequential measurement once per injected basis vector (``k + 1`` replays)
recovers ``base`` and the ``columns``, after which any number of shots is a
vectorized XOR.

Contract with the dense tier
----------------------------
* Counts agree with the dense backends **in distribution**, not
  shot-for-shot — the RNG streams differ (documented TV budgets in
  ``tests/test_stabilizer.py``).  Ideal deterministic outcomes agree
  exactly.
* Like the dense backends, measurement *position* is not tracked: the
  reported distribution is that of the final state over
  ``circuit.measurement_layout()``.
* ``reset`` is supported natively (measure + conditional X on the tableau;
  frames are cleared on the reset wire) — the dense simulators reject it.
* Results are reproducible for a fixed seed: the RNG stream is consumed in
  a fixed order (per-channel error-count draws in first-appearance order,
  then that channel's positions and operator identities, then per-site
  collision redraws in site order, then reset draws in circuit order, then
  reference-outcome draws, then readout flips).
"""

from __future__ import annotations

import math

import numpy as np

from ..circuits import QuantumCircuit
from ..distributions import Counts
from ..noise import NoiseModel
from .trajectory import _counts_from_outcomes, _trajectory_plan

__all__ = [
    "StabilizerTableau",
    "is_clifford_program",
    "simulate_stabilizer_trajectories",
]

_QUARTER_TURN = math.pi / 2.0

# Gates with a native tableau update.
_PRIMITIVES = frozenset(
    {"h", "s", "sdg", "x", "y", "z", "sx", "sxdg", "cx", "cz", "swap"}
)

# Single-qubit state preparations (wire assumed |0>, as StatePreparation
# documents) expressed as primitive sequences applied in circuit order.
_PREP_SEQUENCES = {
    "prep_0": (),
    "prep_1": ("x",),
    "prep_+": ("h",),
    "prep_-": ("x", "h"),
    "prep_i": ("h", "s"),
    "prep_-i": ("h", "sdg"),
}

# Quarter-turn rotations: index = angle / (pi/2) mod 4.  ``rz`` and ``p``
# differ from these only by a global phase; ``ry(pi/2) = H Z`` as matrices
# (sequences are applied in circuit order, so ("z", "h") means Z then H).
_ROTATION_SEQUENCES = {
    "rz": ((), ("s",), ("z",), ("sdg",)),
    "p": ((), ("s",), ("z",), ("sdg",)),
    "rx": ((), ("sx",), ("x",), ("sxdg",)),
    "ry": ((), ("z", "h"), ("y",), ("h", "z")),
}


def _clifford_ops(instruction) -> list[tuple[str, tuple[int, ...]]] | None:
    """Primitive (name, qubits) sequence for a gate, or ``None`` if it has no
    Clifford expression this pass recognizes.

    Recognition is by gate *name* (plus quarter-turn angle checks for the
    rotation gates), so it runs on the raw circuit — gate fusion erases
    names into dense matrices, which is why the engine classifies programs
    before fusing.
    """
    name = instruction.name
    if name in _PRIMITIVES:
        return [(name, instruction.qubits)]
    if name == "id":
        return []
    sequence = _PREP_SEQUENCES.get(name)
    if sequence is not None:
        return [(gate, instruction.qubits) for gate in sequence]
    quarter_sequences = _ROTATION_SEQUENCES.get(name)
    if quarter_sequences is not None:
        turns = instruction.operation.params[0] / _QUARTER_TURN
        nearest = round(turns)
        if abs(turns - nearest) > 1e-9:
            return None
        return [
            (gate, instruction.qubits) for gate in quarter_sequences[int(nearest) % 4]
        ]
    return None


def is_clifford_program(
    circuit: QuantumCircuit, noise_model: NoiseModel | None = None
) -> bool:
    """True when ``circuit`` under ``noise_model`` is stabilizer-simulable.

    Two conditions, checked in order (gates first, so non-Clifford circuits
    fail fast without touching the noise model):

    * every gate instruction translates to Clifford primitives
      (:func:`_clifford_ops`); measurements, barriers and ``reset`` are
      always fine;
    * every noise channel the model attaches to an instruction is either an
      identity or a Pauli mixture
      (:meth:`~repro.noise.KrausChannel.pauli_mixture`) — amplitude damping
      and other non-unitary channels disqualify the program.  Readout
      errors are classical bit flips and never disqualify.
    """
    gates = []
    for instruction in circuit.data:
        # Primitive names are unambiguous (only gates carry them), so the
        # common case skips the isinstance predicates and the translator.
        name = instruction.operation.name
        if name in _PRIMITIVES or name == "id":
            gates.append(instruction)
            continue
        if instruction.is_barrier or instruction.is_measurement or name == "reset":
            continue
        if not instruction.is_gate or _clifford_ops(instruction) is None:
            return False
        gates.append(instruction)
    if noise_model is not None and not noise_model.is_ideal:
        # Calibration circuits repeat the same few (gate, qubits) patterns
        # hundreds of times; memoising the channel lookup and the per-channel
        # verdict keeps this pass O(distinct patterns), not O(gates).
        site_memo: dict[tuple, list] = {}
        verdicts: dict[int, bool] = {}
        for instruction in gates:
            key = (instruction.name, instruction.qubits)
            sites = site_memo.get(key)
            if sites is None:
                sites = site_memo[key] = noise_model.channels_for(instruction)
            for channel, _wires in sites:
                verdict = verdicts.get(id(channel))
                if verdict is None:
                    verdict = channel.is_identity() or channel.pauli_mixture() is not None
                    verdicts[id(channel)] = verdict
                if not verdict:
                    return False
    return True


class StabilizerTableau:
    """Aaronson-Gottesman tableau over ``2n + 1`` rows.

    Rows ``0..n-1`` are destabilizers (initially ``X_i``), rows ``n..2n-1``
    stabilizers (initially ``Z_i``), row ``2n`` is measurement scratch.
    ``x_bits[i, q]`` / ``z_bits[i, q]`` hold the X/Z component of row ``i``
    on qubit ``q``; ``phases[i]`` is the sign bit (True = ``-1``).
    """

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise ValueError("a tableau needs at least one qubit")
        self.num_qubits = int(num_qubits)
        n = self.num_qubits
        size = 2 * n + 1
        self.x_bits = np.zeros((size, n), dtype=bool)
        self.z_bits = np.zeros((size, n), dtype=bool)
        self.phases = np.zeros(size, dtype=bool)
        self.x_bits[np.arange(n), np.arange(n)] = True
        self.z_bits[np.arange(n) + n, np.arange(n)] = True

    def copy(self) -> "StabilizerTableau":
        clone = object.__new__(StabilizerTableau)
        clone.num_qubits = self.num_qubits
        clone.x_bits = self.x_bits.copy()
        clone.z_bits = self.z_bits.copy()
        clone.phases = self.phases.copy()
        return clone

    # ------------------------------------------------------------------
    # Clifford gates
    # ------------------------------------------------------------------

    def h(self, q: int) -> None:
        self.phases ^= self.x_bits[:, q] & self.z_bits[:, q]
        column = self.x_bits[:, q].copy()
        self.x_bits[:, q] = self.z_bits[:, q]
        self.z_bits[:, q] = column

    def s(self, q: int) -> None:
        self.phases ^= self.x_bits[:, q] & self.z_bits[:, q]
        self.z_bits[:, q] ^= self.x_bits[:, q]

    def sdg(self, q: int) -> None:
        # S† = Z S (diagonal gates commute).
        self.s(q)
        self.z(q)

    def x(self, q: int) -> None:
        self.phases ^= self.z_bits[:, q]

    def y(self, q: int) -> None:
        self.phases ^= self.x_bits[:, q] ^ self.z_bits[:, q]

    def z(self, q: int) -> None:
        self.phases ^= self.x_bits[:, q]

    def sx(self, q: int) -> None:
        # sqrt(X) = H S H exactly (not just up to phase).
        self.h(q)
        self.s(q)
        self.h(q)

    def sxdg(self, q: int) -> None:
        self.h(q)
        self.sdg(q)
        self.h(q)

    def cx(self, control: int, target: int) -> None:
        xc, zc = self.x_bits[:, control], self.z_bits[:, control]
        xt, zt = self.x_bits[:, target], self.z_bits[:, target]
        self.phases ^= xc & zt & ~(xt ^ zc)
        xt ^= xc
        zc ^= zt

    def cz(self, control: int, target: int) -> None:
        # CZ = (I ⊗ H) CX (I ⊗ H); composing keeps the sign bookkeeping in
        # exactly one place (the cx rule).
        self.h(target)
        self.cx(control, target)
        self.h(target)

    def swap(self, a: int, b: int) -> None:
        self.x_bits[:, [a, b]] = self.x_bits[:, [b, a]]
        self.z_bits[:, [a, b]] = self.z_bits[:, [b, a]]

    def apply(self, name: str, qubits: tuple[int, ...]) -> None:
        """Apply a primitive by name (see ``_PRIMITIVES``)."""
        getattr(self, name)(*qubits)

    def apply_pauli(self, label: str, qubits: tuple[int, ...]) -> None:
        """Apply a Pauli string; ``label[i]`` acts on ``qubits[i]``."""
        for character, q in zip(label.upper(), qubits):
            if character == "X":
                self.x(q)
            elif character == "Y":
                self.y(q)
            elif character == "Z":
                self.z(q)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def measurement_is_random(self, q: int) -> bool:
        """True when measuring ``q`` now would give a 50/50 random outcome."""
        n = self.num_qubits
        return bool(self.x_bits[n : 2 * n, q].any())

    def measure(
        self,
        q: int,
        rng: np.random.Generator | None = None,
        forced: int | None = None,
    ) -> tuple[int, bool]:
        """Measure qubit ``q`` in the Z basis; returns ``(outcome, was_random)``.

        A *random* outcome (some stabilizer anticommutes with ``Z_q``)
        collapses the state; the outcome bit comes from ``forced`` when
        given, else from ``rng``.  A *deterministic* outcome leaves the
        state unchanged and needs no randomness.  Whether an outcome is
        random depends only on the X-bit structure, never on previous
        outcome values — which is what makes forced-bit replay
        (:func:`_affine_measurement_model`) well defined.
        """
        n = self.num_qubits
        stabilizer_rows = np.flatnonzero(self.x_bits[n : 2 * n, q])
        if stabilizer_rows.size:
            pivot = int(stabilizer_rows[0]) + n
            for row in np.flatnonzero(self.x_bits[:, q]):
                if row != pivot and row < 2 * n:
                    self._rowsum(int(row), pivot)
            self.x_bits[pivot - n] = self.x_bits[pivot]
            self.z_bits[pivot - n] = self.z_bits[pivot]
            self.phases[pivot - n] = self.phases[pivot]
            self.x_bits[pivot] = False
            self.z_bits[pivot] = False
            self.z_bits[pivot, q] = True
            if forced is not None:
                outcome = int(forced)
            elif rng is not None:
                outcome = int(rng.integers(2))
            else:
                raise ValueError("random measurement outcome needs an rng or a forced bit")
            self.phases[pivot] = bool(outcome)
            return outcome, True
        scratch = 2 * n
        self.x_bits[scratch] = False
        self.z_bits[scratch] = False
        self.phases[scratch] = False
        for row in np.flatnonzero(self.x_bits[:n, q]):
            self._rowsum(scratch, int(row) + n)
        return int(self.phases[scratch]), False

    def reset(self, q: int, rng: np.random.Generator | None = None) -> None:
        """Reset qubit ``q`` to |0> (measure, then flip on outcome 1)."""
        outcome, _ = self.measure(q, rng=rng)
        if outcome:
            self.x(q)

    def _rowsum(self, target: int, source: int) -> None:
        """Row ``target`` *= row ``source`` with exact sign tracking (the
        CHP ``rowsum``): accumulates the mod-4 phase exponent of the Pauli
        product column by column."""
        x1, z1 = self.x_bits[source], self.z_bits[source]
        x2, z2 = self.x_bits[target], self.z_bits[target]
        g = np.zeros(self.num_qubits, dtype=np.int64)
        both = x1 & z1
        g[both] = z2[both].astype(np.int64) - x2[both].astype(np.int64)
        x_only = x1 & ~z1
        g[x_only] = z2[x_only] * (2 * x2[x_only].astype(np.int64) - 1)
        z_only = ~x1 & z1
        g[z_only] = x2[z_only] * (1 - 2 * z2[z_only].astype(np.int64))
        total = 2 * int(self.phases[target]) + 2 * int(self.phases[source]) + int(g.sum())
        self.phases[target] = bool((total % 4) // 2)
        self.x_bits[target] ^= x1
        self.z_bits[target] ^= z1


# ---------------------------------------------------------------------------
# Bit-packed evolution (the sampler's hot loop)
# ---------------------------------------------------------------------------
#
# During evolution both the tableau and the trajectory frames live as Python
# integers — arbitrary-precision bitwise ops touch hundreds of bits in one
# interpreter step, which beats numpy on the tiny arrays these objects are
# (a 7x3 tableau, 600-bit frame columns) by two orders of magnitude.
#
# Tableau packing is column-major: ``xc[q]`` holds bit ``i`` = ``x_bits[i, q]``
# over the ``2n + 1`` rows, ``r`` packs the phase column.  Every gate rule in
# :class:`StabilizerTableau` is a column operation, so it transcribes
# directly; row arithmetic (measure/rowsum) stays on the numpy class via
# :func:`_unpack_tableau`.
#
# Frame packing is trajectory-major: ``fx[q]`` holds bit ``t`` = the X
# component of trajectory ``t``'s frame on qubit ``q``.  Signs are irrelevant
# for frames, so conjugation rules reduce to Xor/swap of whole columns.


def _pack_column(bits: np.ndarray) -> int:
    return int.from_bytes(np.packbits(bits, bitorder="little").tobytes(), "little")


def _unpack_column(value: int, rows: int) -> np.ndarray:
    raw = value.to_bytes((rows + 7) // 8, "little")
    return np.unpackbits(
        np.frombuffer(raw, dtype=np.uint8), count=rows, bitorder="little"
    ).astype(bool)


def _pack_tableau(tableau: StabilizerTableau) -> tuple[list[int], list[int], int]:
    n = tableau.num_qubits
    xc = [_pack_column(tableau.x_bits[:, q]) for q in range(n)]
    zc = [_pack_column(tableau.z_bits[:, q]) for q in range(n)]
    return xc, zc, _pack_column(tableau.phases)


def _unpack_tableau(xc: list[int], zc: list[int], r: int, n: int) -> StabilizerTableau:
    rows = 2 * n + 1
    tableau = object.__new__(StabilizerTableau)
    tableau.num_qubits = n
    tableau.x_bits = np.stack([_unpack_column(v, rows) for v in xc], axis=1)
    tableau.z_bits = np.stack([_unpack_column(v, rows) for v in zc], axis=1)
    tableau.phases = _unpack_column(r, rows)
    return tableau


def _packed_step(
    name: str,
    qubits: tuple[int, ...],
    xc: list[int],
    zc: list[int],
    r: int,
    fx: list[int],
    fz: list[int],
    full: int,
) -> int:
    """One primitive on the packed tableau *and* the packed frames.

    Returns the updated phase word ``r`` (everything else mutates in place).
    The tableau rules mirror :class:`StabilizerTableau` column for column
    (``full`` is the all-rows mask, standing in for numpy's ``~``);
    composites recurse so the sign bookkeeping lives in one place each.
    """
    if name == "h":
        q = qubits[0]
        r ^= xc[q] & zc[q]
        xc[q], zc[q] = zc[q], xc[q]
        fx[q], fz[q] = fz[q], fx[q]
    elif name == "s":
        q = qubits[0]
        r ^= xc[q] & zc[q]
        zc[q] ^= xc[q]
        fz[q] ^= fx[q]
    elif name == "sdg":
        r = _packed_step("s", qubits, xc, zc, r, fx, fz, full)
        r ^= xc[qubits[0]]
    elif name == "x":
        r ^= zc[qubits[0]]
    elif name == "y":
        q = qubits[0]
        r ^= xc[q] ^ zc[q]
    elif name == "z":
        r ^= xc[qubits[0]]
    elif name == "sx":
        r = _packed_step("h", qubits, xc, zc, r, fx, fz, full)
        r = _packed_step("s", qubits, xc, zc, r, fx, fz, full)
        r = _packed_step("h", qubits, xc, zc, r, fx, fz, full)
    elif name == "sxdg":
        r = _packed_step("h", qubits, xc, zc, r, fx, fz, full)
        r = _packed_step("sdg", qubits, xc, zc, r, fx, fz, full)
        r = _packed_step("h", qubits, xc, zc, r, fx, fz, full)
    elif name == "cx":
        control, target = qubits
        r ^= xc[control] & zc[target] & (xc[target] ^ zc[control] ^ full)
        xc[target] ^= xc[control]
        zc[control] ^= zc[target]
        fx[target] ^= fx[control]
        fz[control] ^= fz[target]
    elif name == "cz":
        control, target = qubits
        r = _packed_step("h", (target,), xc, zc, r, fx, fz, full)
        r = _packed_step("cx", qubits, xc, zc, r, fx, fz, full)
        r = _packed_step("h", (target,), xc, zc, r, fx, fz, full)
    elif name == "swap":
        a, b = qubits
        xc[a], xc[b] = xc[b], xc[a]
        zc[a], zc[b] = zc[b], zc[a]
        fx[a], fx[b] = fx[b], fx[a]
        fz[a], fz[b] = fz[b], fz[a]
    return r


# ---------------------------------------------------------------------------
# Sampling
# ---------------------------------------------------------------------------


def _affine_measurement_model(
    tableau: StabilizerTableau, qubits: list[int]
) -> tuple[int, list[int]]:
    """Affine model of the joint Z-measurement distribution over ``qubits``.

    Returns ``(base, columns)``: outcomes are exactly the integers
    ``base ^ XOR(columns[j] for j with u_j = 1)`` over uniform bits ``u``,
    with every choice of ``u`` equally likely.  Column ``j`` is recovered by
    replaying the sequential measurement with the ``j``-th random outcome
    forced to 1 and the rest to 0; each column has its defining bit set and
    all earlier random bits clear, so the columns are linearly independent
    and the support has size ``2**k`` exactly.
    """

    def replay(forced_bits: tuple[int, ...]) -> tuple[int, int]:
        clone = tableau.copy()
        outcome = 0
        used = 0
        for bit, q in enumerate(qubits):
            forced = forced_bits[used] if used < len(forced_bits) else 0
            value, was_random = clone.measure(q, forced=forced)
            if was_random:
                used += 1
            outcome |= value << bit
        return outcome, used

    base, num_random = replay(())
    columns = []
    for j in range(num_random):
        forced = tuple(1 if i == j else 0 for i in range(num_random))
        outcome, _ = replay(forced)
        columns.append(outcome ^ base)
    return base, columns


def simulate_stabilizer_trajectories(
    circuit: QuantumCircuit,
    noise_model: NoiseModel | None = None,
    shots: int = 4096,
    seed: int | None = None,
    max_trajectories: int = 600,
) -> tuple[Counts, list[int]]:
    """Sample ``shots`` outcomes of a Clifford circuit under Pauli noise.

    Same interface and trajectory statistics as
    :func:`~repro.simulators.ensemble.simulate_trajectories_ensemble` (one
    noise realisation per trajectory, shots spread via the shared
    :func:`~repro.simulators.trajectory._trajectory_plan`, readout flips and
    counts through the shared trailer) — but a realisation is a Pauli frame,
    not a dense state.  Raises ``ValueError`` on non-Clifford gates or
    non-Pauli noise; callers route through :func:`is_clifford_program` (the
    engine does) to fall back to the dense tier instead.

    Returns the counts and the measured qubits in clbit order.
    """
    noise_model = noise_model or NoiseModel.ideal()
    rng = np.random.default_rng(seed)
    measured_qubits = circuit.measurement_layout()
    num_trajectories, shots_per_trajectory = _trajectory_plan(
        shots, noise_model, max_trajectories
    )

    # ------------------------------------------------------------------
    # One pass over the raw circuit: translate gates to primitives and
    # classify every noise site, grouping sites by channel so error events
    # can be drawn in one vectorized pass per distinct channel.  Channel
    # lookups are memoized by (name, qubits) — calibration circuits repeat
    # the same few patterns hundreds of times.
    # ------------------------------------------------------------------
    ops: list[tuple] = []  # ("g", name, qubits) | ("n", site) | ("r", qubit)
    site_wires: list[tuple[int, ...]] = []
    group_sites: list[list[int]] = []  # group index -> site indices, in order
    groups: dict[int, tuple] = {}  # id(channel) -> (order, p_error, cdf, x_rows, z_rows)
    site_memo: dict[tuple, list] = {}
    for instruction in circuit.data:
        name = instruction.operation.name
        if name in _PRIMITIVES:  # common case: one primitive, no translation
            ops.append(("g", name, instruction.qubits))
        elif name == "reset":
            ops.append(("r", instruction.qubits[0]))
            continue
        elif instruction.is_barrier or instruction.is_measurement:
            continue
        elif not instruction.is_gate:
            raise ValueError(f"cannot simulate instruction {name!r}")
        else:
            primitives = _clifford_ops(instruction)
            if primitives is None:
                raise ValueError(
                    f"stabilizer backend cannot simulate non-Clifford gate {name!r}"
                )
            ops.extend(("g", gate, qubits) for gate, qubits in primitives)
        key = (name, instruction.qubits)
        sites = site_memo.get(key)
        if sites is None:
            sites = site_memo[key] = noise_model.channels_for(instruction)
        for channel, wires in sites:
            entry = groups.get(id(channel))
            if entry is None:
                if channel.is_identity():
                    groups[id(channel)] = entry = (None,)
                    continue
                mixture = channel.pauli_mixture()
                if mixture is None:
                    raise ValueError(
                        f"stabilizer backend cannot sample non-Pauli channel {channel.name!r}"
                    )
                probabilities, labels, identity_flags = mixture
                probabilities = np.asarray(probabilities, dtype=float)
                errors = [
                    (p, label)
                    for p, label, is_id in zip(probabilities, labels, identity_flags)
                    if not is_id
                ]
                p_error = float(sum(p for p, _ in errors))
                if p_error <= 0.0:  # mixture is all identity: not a noise site
                    groups[id(channel)] = entry = (None,)
                else:
                    # Error-conditional CDF plus per-operator X/Z flip rows
                    # (tuples of Python bools: the mask-building loop below
                    # indexes them per hit, where numpy scalars would cost).
                    cdf = np.cumsum([p for p, _ in errors]) / p_error
                    x_rows = tuple(
                        tuple(c in ("X", "Y") for c in label.upper())
                        for _, label in errors
                    )
                    z_rows = tuple(
                        tuple(c in ("Z", "Y") for c in label.upper())
                        for _, label in errors
                    )
                    entry = (len(group_sites), p_error, cdf, x_rows, z_rows)
                    groups[id(channel)] = entry
                    group_sites.append([])
            if entry[0] is None:
                continue
            group_sites[entry[0]].append(len(site_wires))
            site_wires.append(tuple(wires))
            ops.append(("n", len(site_wires) - 1))

    # ------------------------------------------------------------------
    # Sparse noise sampling (binomial thinning).  Per site the T categorical
    # draws factor exactly as: error count ~ Binomial(T, p_error), distinct
    # trajectory positions uniform, operators iid from the error-conditional
    # distribution.  Only hit positions are materialised — at realistic
    # error rates that is a handful of bits per site, not a (T,) vector —
    # and they land directly in the packed per-wire frame masks.
    # ------------------------------------------------------------------
    site_masks: list[tuple | None] = [None] * len(site_wires)
    by_order = sorted(
        (entry for entry in groups.values() if entry[0] is not None),
        key=lambda entry: entry[0],
    )
    for order, p_error, cdf, x_rows, z_rows in by_order:
        sites = group_sites[order]
        error_counts = rng.binomial(num_trajectories, p_error, size=len(sites))
        total = int(error_counts.sum())
        if not total:
            continue
        positions = rng.integers(0, num_trajectories, size=total)
        operator_draws = np.searchsorted(cdf, rng.random(total), side="right")
        np.clip(operator_draws, 0, len(cdf) - 1, out=operator_draws)
        positions_list = positions.tolist()
        operators_list = operator_draws.tolist()
        offset = 0
        for site, hits in zip(sites, error_counts.tolist()):
            if not hits:
                continue
            width = len(site_wires[site])
            x_masks = [0] * width
            z_masks = [0] * width
            seen: set[int] = set()
            for position, operator in zip(
                positions_list[offset : offset + hits],
                operators_list[offset : offset + hits],
            ):
                while position in seen:  # collision: resample (positions
                    position = int(rng.integers(num_trajectories))  # must be distinct)
                seen.add(position)
                bit = 1 << position
                x_row = x_rows[operator]
                z_row = z_rows[operator]
                for j in range(width):
                    if x_row[j]:
                        x_masks[j] |= bit
                    if z_row[j]:
                        z_masks[j] |= bit
            site_masks[site] = (x_masks, z_masks)
            offset += hits

    # ------------------------------------------------------------------
    # One packed pass: the noiseless tableau and all T frames evolve
    # together through the primitive stream (see the bit-packing notes
    # above _pack_column).
    # ------------------------------------------------------------------
    n = circuit.num_qubits
    full = (1 << (2 * n + 1)) - 1
    xc = [1 << q for q in range(n)]  # destabilizer row q starts as X_q
    zc = [1 << (n + q) for q in range(n)]  # stabilizer row n+q starts as Z_q
    r = 0
    fx = [0] * n
    fz = [0] * n
    for op in ops:
        kind = op[0]
        if kind == "g":
            r = _packed_step(op[1], op[2], xc, zc, r, fx, fz, full)
        elif kind == "n":
            masks = site_masks[op[1]]
            if masks is not None:
                x_masks, z_masks = masks
                for j, wire in enumerate(site_wires[op[1]]):
                    fx[wire] ^= x_masks[j]
                    fz[wire] ^= z_masks[j]
        else:  # reset: tableau back to |0> on the wire, frame erased with it
            q = op[1]
            tableau = _unpack_tableau(xc, zc, r, n)
            tableau.reset(q, rng=rng)
            xc, zc, r = _pack_tableau(tableau)
            fx[q] = 0
            fz[q] = 0

    # ------------------------------------------------------------------
    # Sample: reference outcomes from the affine model, frame X-flips XORed
    # per trajectory, shared readout/counts trailer.
    # ------------------------------------------------------------------
    tableau = _unpack_tableau(xc, zc, r, n)
    base, columns = _affine_measurement_model(tableau, measured_qubits)
    trajectory_flips = np.zeros(num_trajectories, dtype=np.int64)
    for bit, q in enumerate(measured_qubits):
        if fx[q]:
            flips = _unpack_column(fx[q], num_trajectories)
            trajectory_flips |= flips.astype(np.int64) << bit
    shot_flips = np.repeat(trajectory_flips, shots_per_trajectory)
    outcomes = shot_flips ^ np.int64(base)
    if columns:
        u = rng.integers(0, 2, size=(shots, len(columns)), dtype=np.int64)
        column_values = np.array(columns, dtype=np.int64)
        outcomes ^= u @ column_values
    counts = _counts_from_outcomes([outcomes], noise_model, measured_qubits, rng)
    return counts, measured_qubits
