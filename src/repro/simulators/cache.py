"""Persistent, content-addressed result cache backing the execution engine.

QuTracer-style sweeps (qspc / tracer / pcs / jigsaw / sqem) resubmit the same
subset circuits across *processes and sessions*, not just within one batch:
a benchmark re-run, a parameter sweep restarted after a crash, or a fleet of
worker processes all simulate largely identical circuit populations.  The
in-memory LRU inside :class:`~repro.simulators.engine.ExecutionEngine`
evaporates at interpreter exit; this module adds the durable layer under it.

Design (following content-addressed shared-storage archives: results are
immutable blobs addressed by a fingerprint of everything that determined
them):

* **Content addressing.**  The cache key is the engine's cache-key tuple —
  circuit fingerprint, noise fingerprint, method, shots, derived seed,
  trajectory budget, fusion settings — which already names *content*, never
  object identity.  The key tuple is canonicalised to bytes and hashed; the
  digest is the file name.  Two processes that build equivalent circuits and
  noise models therefore share cache entries with no coordination.
* **Versioned file format.**  Entries live under ``<cache_dir>/vN/`` and
  every file starts with a magic header recording the format version.  A
  format bump changes both, so old trees are simply ignored — never
  misparsed.
* **Atomic writes.**  Entries are written to a temporary file in the target
  directory and published with :func:`os.replace`, so a reader never
  observes a half-written entry even with concurrent writers (the POSIX
  rename is atomic; last writer wins, and both writers wrote the same
  content anyway — the key addresses it).
* **Corruption tolerance.**  Every entry carries a SHA-256 checksum of its
  pickled payload, verified before unpickling — a flipped byte that would
  still unpickle cleanly (bit rot inside a float) is caught, not served.  A
  read that fails for *any* reason (truncated file, wrong magic, checksum
  mismatch, unpicklable payload, stale class layout) is treated as a miss
  and the offending file is **quarantined** — moved to
  ``<cache_dir>/quarantine/`` and counted in :attr:`corrupt_entries` — so a
  fault post-mortem can inspect the bad bytes.  A corrupt cache can cost a
  recomputation, never an exception or a wrong result.
* **I/O degradation ladder.**  After several *consecutive* write failures
  (disk full, tree gone read-only) the cache disables itself for the rest
  of the session — persistent → memory-only, the cache rung of the
  engine's degradation ladder — instead of paying an OSError per put
  forever.  The decision is logged and visible via :meth:`stats`.
* **LRU size cap.**  Each hit refreshes the entry's mtime; when the tree
  exceeds ``max_bytes`` after a write, the oldest-mtime entries are evicted
  until the tree is back under the cap.

The payloads are pickled Python objects (``ExecutionResult`` or the
engine's ``(distribution, measured_qubits)`` density-matrix state entries).
The cache directory is trusted local storage — the same trust boundary as
the repository checkout itself.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import tempfile
from typing import Any, Iterator

__all__ = ["PersistentResultCache", "CACHE_FORMAT_VERSION", "canonical_key_bytes"]

logger = logging.getLogger(__name__)

# v2: the engine's result-cache key grew a trailing device-fingerprint
# component (hardware-aware compilation), and compiled-circuit artifacts
# ("compiled", ...) share the store — v1 trees are invisible, not misread.
# v3: circuit fingerprints stopped hashing standard-gate matrices (the
# (name, params) pair already determines them) and the engine key gained the
# resolved-method backend tag (stabilizer vs dense entries must not collide),
# so v2 entries are addressed differently — again invisible, not misread.
# v4: the entry header grew a payload checksum.  Truncation and foreign
# bytes already failed the magic/unpickle checks, but a flipped byte INSIDE
# a pickled float unpickles cleanly into silently wrong numbers — the
# checksum turns that into a quarantine + recompute like every other
# corruption.
CACHE_FORMAT_VERSION = 4

# Every entry file starts with this line; a reader that does not find it
# (old format, foreign file, truncation that ate the header) discards the
# file instead of attempting to unpickle garbage.
_MAGIC = b"repro-result-cache:v%d\n" % CACHE_FORMAT_VERSION

# SHA-256 of the pickled payload, stored between the magic line and the
# payload and verified before unpickling.
_CHECKSUM_BYTES = 32

# Default size cap: generous for result distributions (a few KB each) while
# still bounded — ~100k typical entries.
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

# Consecutive put() failures tolerated before the cache degrades itself to
# memory-only for the rest of the session.  A transient hiccup (one full
# fsync, a racing cleanup) recovers on the next successful write; a dead
# filesystem stops costing an exception per put.
MAX_CONSECUTIVE_WRITE_FAILURES = 5



def canonical_key_bytes(key: tuple) -> bytes:
    """Deterministic byte encoding of an engine cache-key tuple.

    Keys are built from primitives (``str``/``int``/``bool``/``None`` and
    nested tuples of those), whose ``repr`` is stable across processes and
    Python builds — unlike ``hash()``, which is salted per process.
    """
    return repr(key).encode()


class PersistentResultCache:
    """On-disk LRU cache mapping engine cache keys to pickled results.

    Parameters
    ----------
    cache_dir:
        Root directory of the cache.  Created on demand; entries are stored
        under a version subdirectory (``<cache_dir>/v1/``) fanned out by the
        first byte of the key digest.
    max_bytes:
        Size cap for the entry tree.  When exceeded, least-recently-used
        entries (by mtime — refreshed on every hit) are evicted.
        ``None`` disables eviction.
    """

    def __init__(self, cache_dir: str | os.PathLike, max_bytes: int | None = DEFAULT_MAX_BYTES) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        self.root = os.path.join(os.fspath(cache_dir), f"v{CACHE_FORMAT_VERSION}")
        self.quarantine_dir = os.path.join(os.fspath(cache_dir), "quarantine")
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.write_errors = 0
        # Entries that failed integrity checks on read and were moved to
        # ``quarantine/`` for post-mortem inspection.
        self.corrupt_entries = 0
        # True once repeated write failures degraded the cache to
        # memory-only (get/put become no-ops for the rest of the session).
        self.disabled = False
        self._consecutive_write_failures = 0
        # Chaos hooks: set via ExecutionEngine.install_fault_injector.
        # When present, read/write ordinals may corrupt the entry about to
        # be read or fail the write about to happen — deterministically.
        self.fault_injector = None
        # Running size estimate: measured from disk lazily, bumped per put,
        # re-measured after each eviction.  Scanning the tree on every put
        # would make writes O(entries); the estimate keeps the cap enforced
        # per put while only scanning when it is actually crossed.  (It can
        # undercount concurrent writers; their own estimates cover them.)
        self._approx_bytes: int | None = None
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------

    def _path(self, key: tuple) -> str:
        digest = hashlib.sha256(canonical_key_bytes(key)).hexdigest()
        return os.path.join(self.root, digest[:2], digest + ".pkl")

    def get(self, key: tuple) -> Any:
        """Return the cached value, or ``None`` on miss/corruption.

        A hit refreshes the entry's mtime (the LRU clock).  Any failure —
        missing file, bad magic, truncated or unpicklable payload — counts
        as a miss and quarantines the file for post-mortem inspection.
        """
        if self.disabled:
            return None
        path = self._path(key)
        if self.fault_injector is not None and self.fault_injector.on_cache_read():
            self.fault_injector.corrupt_file(path)
        try:
            with open(path, "rb") as handle:
                if handle.read(len(_MAGIC)) != _MAGIC:
                    raise ValueError("bad cache entry header")
                digest = handle.read(_CHECKSUM_BYTES)
                body = handle.read()
                # Verify before unpickling: a flipped byte inside a pickled
                # float can unpickle cleanly into wrong numbers, and serving
                # those would break the bit-identity contract.
                if hashlib.sha256(body).digest() != digest:
                    raise ValueError("cache entry checksum mismatch")
                value = pickle.loads(body)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupt / foreign / stale-format entry: move it aside so the
            # slot heals itself on the next put and the bad bytes survive
            # for a post-mortem.
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - entry raced away
            pass
        return value

    def put(self, key: tuple, value: Any) -> None:
        """Store ``value`` under ``key`` (atomic publish; last writer wins).

        Write failures (disk full, tree gone read-only) are swallowed and
        counted in :attr:`write_errors`: the caller's simulation already
        succeeded, and an unusable cache must only cost recomputation —
        the same contract corrupt reads honour.  After
        ``MAX_CONSECUTIVE_WRITE_FAILURES`` failures in a row the cache
        degrades itself to memory-only for the rest of the session.
        """
        if self.disabled:
            return
        body = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        payload = _MAGIC + hashlib.sha256(body).digest() + body
        path = self._path(key)
        directory = os.path.dirname(path)
        temp_path = None
        try:
            if self.fault_injector is not None and self.fault_injector.on_cache_write():
                raise OSError("injected cache write failure")
            os.makedirs(directory, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            # Overwrites replace an existing entry: its size must come off
            # the running estimate or repeated puts of one key inflate
            # _approx_bytes and drive premature eviction.
            replaced_bytes = 0
            if self.max_bytes is not None:
                try:
                    replaced_bytes = os.stat(path).st_size
                except OSError:
                    replaced_bytes = 0
            os.replace(temp_path, path)
        except OSError:
            if temp_path is not None:
                self._remove(temp_path)
            self.write_errors += 1
            self._consecutive_write_failures += 1
            if self._consecutive_write_failures >= MAX_CONSECUTIVE_WRITE_FAILURES:
                self.disabled = True
                logger.warning(
                    "PersistentResultCache disabling itself after %d consecutive "
                    "write failures; continuing memory-only",
                    self._consecutive_write_failures,
                )
            return
        except BaseException:
            if temp_path is not None:
                self._remove(temp_path)
            raise
        self._consecutive_write_failures = 0
        if self.max_bytes is not None:
            if self._approx_bytes is None:
                self._approx_bytes = self.total_bytes()
            else:
                self._approx_bytes += len(payload) - replaced_bytes
            if self._approx_bytes > self.max_bytes:
                self._evict()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Counter snapshot for telemetry and fault post-mortems.

        ``approx_bytes`` is the eviction bookkeeping's running estimate of
        the tree size — 0 until the first size-capped write forces a scan
        (an unprompted ``total_bytes()`` walk here would put a directory
        scan on every metrics scrape).
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "write_errors": self.write_errors,
            "corrupt_entries": self.corrupt_entries,
            "disabled": self.disabled,
            "approx_bytes": self._approx_bytes or 0,
        }

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry to ``quarantine/`` instead of deleting it."""
        self.corrupt_entries += 1
        try:
            os.makedirs(self.quarantine_dir, exist_ok=True)
            os.replace(path, os.path.join(self.quarantine_dir, os.path.basename(path)))
            logger.warning(
                "PersistentResultCache quarantined corrupt entry %s",
                os.path.basename(path),
            )
        except OSError:
            # Quarantine tree unwritable or the entry raced away: removal
            # still restores the self-healing contract.
            self._remove(path)

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def total_bytes(self) -> int:
        return sum(size for _, _, size in self._entries())

    def clear(self) -> None:
        for path, _, _ in list(self._entries()):
            self._remove(path)
        self._reap_temp_files(min_age_seconds=0.0)
        self._approx_bytes = 0

    def _entries(self) -> Iterator[tuple[str, float, int]]:
        """Yield ``(path, mtime, size)`` for every entry file."""
        try:
            shards = os.listdir(self.root)
        except FileNotFoundError:
            return
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            try:
                names = os.listdir(shard_dir)
            except (NotADirectoryError, FileNotFoundError):
                continue
            for name in names:
                if not name.endswith(".pkl"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                yield path, stat.st_mtime, stat.st_size

    def _reap_temp_files(self, min_age_seconds: float = 300.0) -> None:
        """Remove ``.tmp`` files orphaned by interrupted writers.

        A writer killed between ``mkstemp`` and ``os.replace`` leaves a
        ``.tmp`` file that no read or eviction would otherwise touch; left
        alone, crashes would accumulate untracked disk usage forever.  The
        age floor avoids racing a live writer (whose temp file is seconds
        old); a reaped live write simply loses that one put, which the
        write-failure contract already allows.
        """
        import time

        cutoff = time.time() - min_age_seconds
        try:
            shards = os.listdir(self.root)
        except FileNotFoundError:
            return
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            try:
                names = os.listdir(shard_dir)
            except (NotADirectoryError, FileNotFoundError):
                continue
            for name in names:
                if not name.endswith(".tmp"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    if os.stat(path).st_mtime <= cutoff:
                        self._remove(path)
                except OSError:
                    continue

    def _evict(self) -> None:
        """Delete oldest-mtime entries until the tree fits ``max_bytes``."""
        if self.max_bytes is None:
            return
        self._reap_temp_files()
        entries = sorted(self._entries(), key=lambda item: item[1])
        total = sum(size for _, _, size in entries)
        for path, _, size in entries:
            if total <= self.max_bytes:
                break
            self._remove(path)
            total -= size
            self.evictions += 1
        self._approx_bytes = total

    @staticmethod
    def _remove(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass
