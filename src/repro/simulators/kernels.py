"""Specialized dense gate kernels: structural classification + pluggable backends.

The generic dense path (:func:`repro.simulators.apply.apply_matrix_to_statevector_batch`)
treats every fused block as an arbitrary ``2**k x 2**k`` matrix: reshape,
``np.tensordot``, ``moveaxis``, ``ascontiguousarray`` — three full passes
over the ``(T, 2**n)`` amplitude block plus a small-M GEMM, regardless of
what the matrix actually *is*.  For the compacted 2-7 qubit circuits of
subset-tracing workloads most fused blocks are structurally trivial:

* **diag** — products of Z/S/T/RZ/CZ-type gates are diagonal; applying one
  is an elementwise multiply by a precomputed ``2**n`` phase vector (one
  pass, ~10x the generic path on the ensemble workload).
* **perm** — products of X/Y/CX/SWAP/CZ chains are *generalized
  permutations* (exactly one nonzero per row and column); applying one is a
  single precomputed fancy-index gather, plus a phase multiply when any
  entry is not exactly 1.
* **dense1q / dense2q** — genuinely dense 1-2 qubit blocks are applied with
  axis-aligned elementwise kernels over bit-strided views, skipping the
  tensordot round-trip's transpose copies.
* **generic** — everything else (3+ qubit dense blocks) falls back to the
  always-correct tensordot path.

Classification happens **once per fused block at fusion time**
(:func:`repro.simulators.fusion.fuse_circuit` attaches a :class:`KernelPlan`
to every ``FusedOperation``), so the per-gate hot loop does zero
re-analysis; the plan lazily caches its full-index phase/gather vectors on
first application.

Backends
--------
``REPRO_KERNEL_BACKEND`` (or the ``kernel_backend=`` knob on
:class:`~repro.simulators.engine.ExecutionEngine` and the simulator entry
points) selects how classified kernels execute:

* ``"numpy"`` (default) — vectorized numpy kernels as described above.
* ``"numba"`` — JIT-compiled kernels for every specialized kind (guarded
  import; falls back to ``"numpy"`` transparently when numba is not
  installed).  Compilation is warmed up once per process on first use.
* ``"generic"`` — force every block through the tensordot reference path
  (the control arm of the kernel-tier benchmarks).
* ``"auto"`` — ``"numba"`` when importable, else ``"numpy"``.

Equivalence contract
--------------------
Every specialized kernel computes the same contraction as the generic
tensordot reference.  Agreement is **bit-identical** whenever the block's
entries make the arithmetic exact — permutation/diagonal entries in
``{0, ±1, ±i}``, i.e. X/Y/Z/S/CX/CZ/SWAP chains — and bounded by a few ulp
per amplitude otherwise (BLAS contracts multiply-adds with FMA; elementwise
numpy/numba kernels round products individually).  The differential suite
(``tests/test_kernels.py``) pins both halves of this contract, and the
engine keys sampled/statevector cache entries by the backend so results
produced under different kernel routings never share a cache line.

Dispatch accounting
-------------------
``kernel_dispatch_counts()`` exposes per-kind counters incremented inside
:func:`apply_fused_operation` itself — the hot loop, not a parallel
bookkeeping path.  The engine bridges them into the metrics registry as
``repro_kernel_dispatch_total{kind=...}`` and stamps the effective backend
into trace events, so a BENCH regression can be attributed to kernel
routing.  Counters are per-process (pool workers count in their own
process, like every other hot-path tally).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Sequence

import numpy as np

from .apply import apply_matrix_to_statevector_batch

__all__ = [
    "KernelPlan",
    "classify_matrix",
    "build_plan",
    "apply_fused_operation",
    "apply_plan_to_density_matrix",
    "resolve_backend",
    "numba_available",
    "kernel_dispatch_counts",
    "reset_kernel_dispatch_counts",
    "KERNEL_KINDS",
    "KERNEL_BACKEND_ENV",
]

KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"
KERNEL_KINDS = ("diag", "perm", "dense1q", "dense2q", "generic")
_BACKEND_NAMES = ("auto", "numpy", "numba", "generic")

# Tolerance-free classification: an entry is "zero" only when it is exactly
# zero.  Gate matrices and their products are built from exact literals and
# rounded arithmetic — a dense block never has exactly-zero off-diagonals by
# accident, and an exact test keeps the specialized kernels bit-compatible
# with the tensordot reference (0 * x contributes exactly nothing).

_dispatch_counts: dict[str, int] = {kind: 0 for kind in KERNEL_KINDS}


def kernel_dispatch_counts() -> dict[str, int]:
    """Snapshot of per-kind kernel dispatches in this process (hot-loop tally)."""
    return dict(_dispatch_counts)


def reset_kernel_dispatch_counts() -> None:
    for kind in KERNEL_KINDS:
        _dispatch_counts[kind] = 0


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------

_numba_checked = False
_numba_module = None


def numba_available() -> bool:
    """True when the optional numba JIT backend can be imported."""
    global _numba_checked, _numba_module
    if not _numba_checked:
        _numba_checked = True
        try:  # guarded optional dependency — never required
            import numba  # type: ignore

            _numba_module = numba
        except Exception:
            _numba_module = None
    return _numba_module is not None


def resolve_backend(name: str | None = None) -> str:
    """Resolve a backend request to the effective backend for this process.

    ``None`` reads ``REPRO_KERNEL_BACKEND`` (default ``"numpy"``).
    ``"numba"`` and ``"auto"`` degrade to ``"numpy"`` transparently when
    numba is not importable — the caller never has to care.
    """
    if name is None:
        name = os.environ.get(KERNEL_BACKEND_ENV) or "numpy"
    name = name.lower()
    if name not in _BACKEND_NAMES:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {_BACKEND_NAMES}"
        )
    if name == "auto":
        name = "numba" if numba_available() else "numpy"
    elif name == "numba" and not numba_available():
        name = "numpy"
    return name


# ----------------------------------------------------------------------
# Classification
# ----------------------------------------------------------------------


@dataclasses.dataclass
class KernelPlan:
    """Structural classification of one fused block, computed once at fusion.

    ``kind`` routes the hot loop; the ``diag``/``perm`` payloads are in the
    block's ``2**k`` subspace (little-endian in the block's sorted wire
    tuple) and the full-dimension phase/gather vectors are derived lazily on
    first application and cached — a program that is fused but never run
    (e.g. only inspected) pays nothing beyond classification.
    """

    kind: str
    qubits: tuple[int, ...]
    matrix: np.ndarray
    num_qubits: int
    # diag payload: the 2**k diagonal.
    diag: np.ndarray | None = None
    # perm payload: column index of the single nonzero per row, and the
    # nonzero values themselves (phases).
    perm: np.ndarray | None = None
    phases: np.ndarray | None = None
    trivial_phases: bool = False  # all phases exactly 1 -> pure gather
    # Lazy full-dimension caches (2**num_qubits):
    _phase_full: np.ndarray | None = dataclasses.field(default=None, repr=False)
    _source_full: np.ndarray | None = dataclasses.field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Lazy full-index payloads
    # ------------------------------------------------------------------

    def _sub_index(self) -> np.ndarray:
        """Little-endian block sub-index of every full basis state."""
        full = np.arange(2**self.num_qubits, dtype=np.intp)
        sub = np.zeros(2**self.num_qubits, dtype=np.intp)
        for j, q in enumerate(self.qubits):
            sub |= ((full >> q) & 1) << j
        return sub

    def phase_full(self) -> np.ndarray:
        """``2**n`` phase vector: entry ``i`` scales amplitude ``i``."""
        if self._phase_full is None:
            values = self.diag if self.kind == "diag" else self.phases
            self._phase_full = values[self._sub_index()]
        return self._phase_full

    def source_full(self) -> np.ndarray:
        """``2**n`` gather vector: output amplitude ``i`` reads input ``source[i]``.

        ``matrix[r, perm[r]]`` is the only nonzero of row ``r``, so output
        sub-index ``r`` reads input sub-index ``perm[r]``; the non-block
        bits pass through unchanged.
        """
        if self._source_full is None:
            full = np.arange(2**self.num_qubits, dtype=np.intp)
            sub = self._sub_index()
            src_sub = self.perm[sub]
            source = full.copy()
            for j, q in enumerate(self.qubits):
                source &= ~(np.intp(1) << q)
                source |= ((src_sub >> j) & 1) << q
            self._source_full = source
        return self._source_full


def classify_matrix(matrix: np.ndarray) -> str:
    """Structural kind of a block matrix: diag / perm / dense1q / dense2q / generic."""
    dim = matrix.shape[0]
    if np.count_nonzero(matrix - np.diag(np.diagonal(matrix))) == 0:
        return "diag"
    nonzero = matrix != 0
    if (nonzero.sum(axis=0) == 1).all() and (nonzero.sum(axis=1) == 1).all():
        return "perm"
    if dim == 2:
        return "dense1q"
    if dim == 4:
        return "dense2q"
    return "generic"


def build_plan(
    matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> KernelPlan:
    """Classify one fused block and precompute its kernel payload."""
    qubits = tuple(qubits)
    kind = classify_matrix(matrix)
    plan = KernelPlan(kind=kind, qubits=qubits, matrix=matrix, num_qubits=num_qubits)
    if kind == "diag":
        plan.diag = np.ascontiguousarray(np.diagonal(matrix))
    elif kind == "perm":
        # Exactly one nonzero per row, so the first nonzero column is it.
        perm = (matrix != 0).argmax(axis=1)
        plan.perm = perm.astype(np.intp)
        plan.phases = np.ascontiguousarray(matrix[np.arange(matrix.shape[0]), perm])
        plan.trivial_phases = bool(np.all(plan.phases == 1.0))
    return plan


# ----------------------------------------------------------------------
# numpy kernels — operate on a C-contiguous (B, 2**n) amplitude block
# ----------------------------------------------------------------------


def _np_diag(states: np.ndarray, plan: KernelPlan, inplace: bool) -> np.ndarray:
    phase = plan.phase_full()
    if inplace:
        states *= phase
        return states
    return states * phase


def _np_perm(states: np.ndarray, plan: KernelPlan) -> np.ndarray:
    out = states[:, plan.source_full()]
    if not plan.trivial_phases:
        out *= plan.phase_full()
    return out


def _np_dense1q(states: np.ndarray, plan: KernelPlan) -> np.ndarray:
    (q,) = plan.qubits
    m = plan.matrix
    batch, dim = states.shape
    view = states.reshape(batch, dim >> (q + 1), 2, 1 << q)
    lo, hi = view[:, :, 0, :], view[:, :, 1, :]
    out = np.empty_like(view)
    np.multiply(lo, m[0, 0], out=out[:, :, 0, :])
    out[:, :, 0, :] += m[0, 1] * hi
    np.multiply(lo, m[1, 0], out=out[:, :, 1, :])
    out[:, :, 1, :] += m[1, 1] * hi
    return out.reshape(batch, dim)


def _np_dense2q(states: np.ndarray, plan: KernelPlan) -> np.ndarray:
    q1, q2 = plan.qubits  # sorted ascending by the fusion layer
    m = plan.matrix
    batch, dim = states.shape
    mid = 1 << (q2 - q1 - 1)
    view = states.reshape(batch * (dim >> (q2 + 1)), 2, mid, 2, 1 << q1)
    sub = [view[:, j >> 1, :, j & 1, :] for j in range(4)]
    out = np.empty_like(view)
    for i in range(4):
        target = out[:, i >> 1, :, i & 1, :]
        np.multiply(sub[0], m[i, 0], out=target)
        for j in range(1, 4):
            target += m[i, j] * sub[j]
    return out.reshape(batch, dim)


def _np_generic(states: np.ndarray, plan: KernelPlan) -> np.ndarray:
    return apply_matrix_to_statevector_batch(
        states, plan.matrix, plan.qubits, plan.num_qubits
    )


# ----------------------------------------------------------------------
# numba kernels (optional) — same arithmetic as the numpy kernels, fused
# into single compiled passes; lazily compiled and cached per process.
# ----------------------------------------------------------------------

_numba_kernels: dict[str, object] | None = None


def _get_numba_kernels() -> dict[str, object] | None:
    """Compile (once per process) and return the JIT kernel table."""
    global _numba_kernels
    if _numba_kernels is not None:
        return _numba_kernels
    if not numba_available():
        return None
    numba = _numba_module
    njit = numba.njit(cache=False, fastmath=False)

    @njit
    def diag_kernel(states, phase, out):  # pragma: no cover - compiled
        batch, dim = states.shape
        for t in range(batch):
            for i in range(dim):
                out[t, i] = states[t, i] * phase[i]

    @njit
    def perm_kernel(states, source, phase, trivial, out):  # pragma: no cover
        batch, dim = states.shape
        for t in range(batch):
            if trivial:
                for i in range(dim):
                    out[t, i] = states[t, source[i]]
            else:
                for i in range(dim):
                    out[t, i] = states[t, source[i]] * phase[i]

    @njit
    def dense1q_kernel(states, m, q, out):  # pragma: no cover - compiled
        batch, dim = states.shape
        stride = 1 << q
        m00, m01, m10, m11 = m[0, 0], m[0, 1], m[1, 0], m[1, 1]
        for t in range(batch):
            for base in range(0, dim, stride << 1):
                for offset in range(stride):
                    i0 = base + offset
                    i1 = i0 + stride
                    a = states[t, i0]
                    b = states[t, i1]
                    out[t, i0] = m00 * a + m01 * b
                    out[t, i1] = m10 * a + m11 * b

    @njit
    def dense2q_kernel(states, m, q1, q2, out):  # pragma: no cover - compiled
        batch, dim = states.shape
        s1 = 1 << q1
        s2 = 1 << q2
        for t in range(batch):
            for i in range(dim):
                if (i & s1) or (i & s2):
                    continue
                i0 = i
                i1 = i | s1
                i2 = i | s2
                i3 = i | s1 | s2
                a = states[t, i0]
                b = states[t, i1]
                c = states[t, i2]
                d = states[t, i3]
                out[t, i0] = m[0, 0] * a + m[0, 1] * b + m[0, 2] * c + m[0, 3] * d
                out[t, i1] = m[1, 0] * a + m[1, 1] * b + m[1, 2] * c + m[1, 3] * d
                out[t, i2] = m[2, 0] * a + m[2, 1] * b + m[2, 2] * c + m[2, 3] * d
                out[t, i3] = m[3, 0] * a + m[3, 1] * b + m[3, 2] * c + m[3, 3] * d

    kernels = {
        "diag": diag_kernel,
        "perm": perm_kernel,
        "dense1q": dense1q_kernel,
        "dense2q": dense2q_kernel,
    }
    # Warm-up: trigger compilation on a minimal block so the first real
    # dispatch (possibly inside a timed benchmark) pays no JIT latency.
    tiny = np.zeros((1, 2), dtype=complex)
    out = np.empty_like(tiny)
    diag_kernel(tiny, np.ones(2, dtype=complex), out)
    perm_kernel(tiny, np.zeros(2, dtype=np.intp), np.ones(2, dtype=complex), True, out)
    dense1q_kernel(tiny, np.eye(2, dtype=complex), 0, out)
    dense2q_kernel(
        np.zeros((1, 4), dtype=complex), np.eye(4, dtype=complex), 0, 1,
        np.empty((1, 4), dtype=complex),
    )
    _numba_kernels = kernels
    return kernels


def _nb_apply(states: np.ndarray, plan: KernelPlan) -> np.ndarray:
    kernels = _get_numba_kernels()
    states = np.ascontiguousarray(states)
    out = np.empty_like(states)
    if plan.kind == "diag":
        kernels["diag"](states, plan.phase_full(), out)
    elif plan.kind == "perm":
        kernels["perm"](
            states, plan.source_full(), plan.phase_full(), plan.trivial_phases, out
        )
    elif plan.kind == "dense1q":
        kernels["dense1q"](states, np.ascontiguousarray(plan.matrix), plan.qubits[0], out)
    else:  # dense2q
        kernels["dense2q"](
            states, np.ascontiguousarray(plan.matrix), plan.qubits[0], plan.qubits[1], out
        )
    return out


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------


def apply_fused_operation(
    states: np.ndarray,
    plan: KernelPlan | None,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
    backend: str = "numpy",
    inplace: bool = False,
) -> np.ndarray:
    """Apply one fused block to a ``(B, 2**n)`` amplitude batch.

    The single hot-loop entry point of the dense tier: routes on the plan's
    precomputed ``kind`` (zero re-analysis), counts the dispatch, and falls
    back to the generic tensordot path for unclassified blocks or the
    ``"generic"`` backend.  ``inplace=True`` lets the diag kernel scale the
    caller-owned buffer without allocating.
    """
    if plan is None or backend == "generic":
        _dispatch_counts["generic"] += 1
        return apply_matrix_to_statevector_batch(states, matrix, qubits, num_qubits)
    kind = plan.kind
    _dispatch_counts[kind] += 1
    if kind == "generic":
        return _np_generic(states, plan)
    if backend == "numba":
        kernels = _get_numba_kernels()
        if kernels is not None:
            return _nb_apply(states, plan)
    if kind == "diag":
        return _np_diag(states, plan, inplace)
    if kind == "perm":
        return _np_perm(states, plan)
    if kind == "dense1q":
        return _np_dense1q(states, plan)
    return _np_dense2q(states, plan)


def apply_plan_to_density_matrix(
    rho: np.ndarray, plan: KernelPlan | None, backend: str = "numpy"
) -> np.ndarray | None:
    """Specialized ``M rho M^dagger`` for diag/perm blocks; ``None`` = no fast path.

    A diagonal block conjugates as an elementwise outer phase scaling
    (``rho_ij -> d_i rho_ij conj(d_j)``) and a generalized permutation as a
    row+column gather — both one or two passes instead of two tensordot
    round-trips over the ``4**n`` matrix.  Dense blocks return ``None`` and
    the caller keeps the generic conjugation.
    """
    if plan is None or backend == "generic":
        return None
    if plan.kind == "diag":
        _dispatch_counts["diag"] += 1
        phase = plan.phase_full()
        return rho * np.outer(phase, phase.conj())
    if plan.kind == "perm":
        _dispatch_counts["perm"] += 1
        source = plan.source_full()
        out = rho[np.ix_(source, source)]
        if not plan.trivial_phases:
            phase = plan.phase_full()
            out *= np.outer(phase, phase.conj())
        return out
    return None
