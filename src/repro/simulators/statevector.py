"""Ideal (noise-free) statevector simulation."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..circuits import QuantumCircuit, pauli_matrix
from ..distributions import ProbabilityDistribution, scatter_outcomes
from .apply import (
    apply_matrix_to_statevector,
    reduced_density_matrix_from_statevector,
    statevector_probabilities,
)

__all__ = ["Statevector", "simulate_statevector", "ideal_distribution"]


class Statevector:
    """A pure state on ``num_qubits`` qubits (little-endian indexing)."""

    def __init__(self, data: np.ndarray | Sequence[complex], num_qubits: int | None = None) -> None:
        array = np.asarray(data, dtype=complex).reshape(-1)
        if num_qubits is None:
            num_qubits = int(round(np.log2(array.size)))
        if 2**num_qubits != array.size:
            raise ValueError(f"statevector length {array.size} is not 2**{num_qubits}")
        norm = np.linalg.norm(array)
        if norm < 1e-12:
            raise ValueError("statevector has zero norm")
        self.num_qubits = num_qubits
        self.data = array / norm

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        data = np.zeros(2**num_qubits, dtype=complex)
        data[0] = 1.0
        return cls(data, num_qubits)

    @classmethod
    def from_int(cls, value: int, num_qubits: int) -> "Statevector":
        data = np.zeros(2**num_qubits, dtype=complex)
        data[value] = 1.0
        return cls(data, num_qubits)

    @classmethod
    def from_label(cls, label: str) -> "Statevector":
        """Bitstring label, most-significant qubit first (Qiskit convention)."""
        return cls.from_int(int(label, 2), len(label))

    # ------------------------------------------------------------------
    # Evolution and measurement
    # ------------------------------------------------------------------

    def evolve_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> "Statevector":
        new_data = apply_matrix_to_statevector(self.data, matrix, qubits, self.num_qubits)
        return Statevector(new_data, self.num_qubits)

    def evolve_circuit(
        self,
        circuit: QuantumCircuit,
        fusion: bool = False,
        fusion_max_qubits: int | None = None,
        kernel_backend: str | None = None,
    ) -> "Statevector":
        from .fusion import choose_fusion_width, fuse_circuit
        from .kernels import apply_fused_operation, resolve_backend

        width = choose_fusion_width(self.num_qubits, 1, fusion_max_qubits)
        program = fuse_circuit(circuit, max_qubits=width if fusion else 0)
        backend = resolve_backend(kernel_backend)
        # The kernel tier operates on (B, 2**n) blocks; a single state rides
        # as a one-row batch (free reshape both ways).
        states = self.data[np.newaxis, :]
        for op in program.operations:
            states = apply_fused_operation(
                states, op.kernel, op.matrix, op.qubits, self.num_qubits,
                backend=backend,
            )
        return Statevector(states[0], self.num_qubits)

    def probabilities(self, qubits: Sequence[int] | None = None) -> np.ndarray:
        return statevector_probabilities(self.data, qubits, self.num_qubits)

    def probability_distribution(self, qubits: Sequence[int] | None = None) -> ProbabilityDistribution:
        probs = self.probabilities(qubits)
        num_bits = self.num_qubits if qubits is None else len(list(qubits))
        return ProbabilityDistribution(probs, num_bits)

    def reduced_density_matrix(self, qubits: Sequence[int]) -> np.ndarray:
        return reduced_density_matrix_from_statevector(self.data, qubits, self.num_qubits)

    def expectation_pauli(self, pauli: Mapping[int, str] | str) -> float:
        """Expectation value of a Pauli string.

        ``pauli`` is either a mapping qubit -> letter, or a full little-endian
        label of length ``num_qubits``.
        """
        if isinstance(pauli, str):
            label = pauli
            if len(label) != self.num_qubits:
                raise ValueError("Pauli label length must equal num_qubits")
            support = [q for q, ch in enumerate(label) if ch.upper() != "I"]
            sub_label = "".join(label[q] for q in support)
        else:
            support = sorted(pauli)
            sub_label = "".join(pauli[q] for q in support)
        if not support:
            return 1.0
        rho = self.reduced_density_matrix(support)
        observable = pauli_matrix(sub_label)
        return float(np.real(np.trace(rho @ observable)))

    def fidelity(self, other: "Statevector") -> float:
        return float(abs(np.vdot(self.data, other.data)) ** 2)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Statevector(num_qubits={self.num_qubits})"


def simulate_statevector(
    circuit: QuantumCircuit,
    initial_state: Statevector | None = None,
    fusion: bool = False,
    kernel_backend: str | None = None,
) -> Statevector:
    """Run ``circuit`` without noise and return the final statevector.

    ``fusion=True`` merges runs of adjacent gates into single matrices first
    (:mod:`repro.simulators.fusion`); identical result up to floating point.
    ``kernel_backend`` routes fused blocks through the specialized kernel
    tier (:mod:`repro.simulators.kernels`).
    """
    state = initial_state or Statevector.zero_state(circuit.num_qubits)
    if state.num_qubits != circuit.num_qubits:
        raise ValueError("initial state width does not match the circuit")
    return state.evolve_circuit(circuit, fusion=fusion, kernel_backend=kernel_backend)


def ideal_distribution(
    circuit: QuantumCircuit, kernel_backend: str | None = None
) -> ProbabilityDistribution:
    """Noise-free output distribution over the circuit's measured bits.

    If the circuit has measurements, the distribution is over the measured
    clbits (sorted); otherwise it is over all qubits.

    Idle wires are compacted away before simulation, so a small circuit
    embedded on a wide device (e.g. a transpiled 4-qubit circuit on a
    27-qubit coupling map) costs ``2**k`` rather than ``2**n`` memory.
    Idle qubits contribute deterministic 0 bits to the unmeasured case.
    """
    compact, active = circuit.compact_qubits()
    state = simulate_statevector(compact, fusion=True, kernel_backend=kernel_backend)
    if compact.has_measurements:
        return state.probability_distribution(compact.measurement_layout())
    compact_distribution = state.probability_distribution()
    if compact.num_qubits == circuit.num_qubits:
        return compact_distribution
    # Scatter each compact outcome's bits back to their original wire
    # positions; the dropped wires were never touched so they read 0.
    return ProbabilityDistribution(
        scatter_outcomes(compact_distribution.items(), active), circuit.num_qubits
    )
