"""Process-parallel sharding for :class:`~repro.simulators.engine.ExecutionEngine`.

``execute_many`` batches are embarrassingly parallel once the parent has
deduplicated them: each surviving request is an independent simulation of a
compact circuit under a remapped noise model.  This module carries those
requests across a :class:`~concurrent.futures.ProcessPoolExecutor`:

* the **parent** prepares every request (compaction, key derivation),
  deduplicates identical circuits and consults the in-memory + persistent
  caches — only genuinely novel work is dispatched;
* each **worker** runs :func:`run_compact_task`, the same pure compute
  function the engine's serial path uses, so a parallel run is bit-identical
  to a serial one (same derived seeds, same RNG streams, same arithmetic);
* compact-space results are pickled back, cached by the parent, and merged
  into each requester's wire embedding through the engine's existing
  ``_deliver`` translation.

Worker determinism
------------------
A task carries everything that determines its result — the compact circuit,
the remapped noise model, the resolved method, the *derived* per-circuit
seed and the fusion settings.  Workers hold no state between tasks and never
touch a cache, so scheduling order, worker count and chunking cannot change
any result, only the wall-clock. Unseeded (uncacheable) requests draw fresh
OS entropy in the worker exactly as they would in the parent: independent
across occurrences either way.

Fault containment
-----------------
Failure is per-task, never per-batch:

* an exception inside :func:`run_compact_task` is flattened into a
  picklable :class:`~repro.simulators.faults.TaskFailureMarker` by the
  chunk runner, so one poison circuit cannot lose its chunk-mates' results
  (the engine's retry / degradation / isolation policy decides what happens
  to the failed slot);
* a **killed worker** breaks the whole pool
  (:class:`~concurrent.futures.process.BrokenProcessPool`); the sharder
  respawns the pool and retries *only the in-flight chunks*, splitting a
  multi-task chunk into singletons first so a crash-inducing task is
  isolated to its own retry instead of repeatedly taking healthy neighbours
  down with it.  Attempts are bounded by the sharder's
  :class:`~repro.simulators.faults.RetryPolicy`; a task that exhausts them
  yields a :class:`~repro.simulators.faults.WorkerCrashError`;
* with ``task_timeout`` set, every dispatched task gets a wall-clock budget
  measured from dispatch; a blown budget cancels the future, yields a
  :class:`~repro.simulators.faults.TaskTimeoutError` for that slot, and the
  pool is recycled (the stuck worker would otherwise poison later batches);
* after ``retry_policy.max_attempts`` pool respawns within one batch the
  sharder **degrades to serial** in-process execution for the remainder of
  the batch (the parallel→serial rung of the engine's degradation ladder)
  and re-probes the pool on the next batch — a transient crash storm does
  not permanently cost the session its parallelism.

Fallback
--------
Sandboxes and exotic platforms sometimes cannot spawn worker processes at
all.  :class:`ParallelSharder` degrades to in-process serial execution when
the pool cannot be created, recording :attr:`ParallelSharder.fallback_reason`
(surfaced on ``EngineStats.fallback_reason``) and logging a warning — never
silently.  Creation is re-probed on the next batch, up to a small cap of
consecutive creation failures for platforms that genuinely cannot fork.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Sequence

import numpy as np

from ..circuits import QuantumCircuit
from ..noise import NoiseModel
from .density_matrix import _apply_confusion_bit, noisy_distribution_density_matrix
from .ensemble import simulate_trajectories_ensemble
from .faults import (
    ExecutionFault,
    RetryPolicy,
    TaskFailureMarker,
    TaskTimeoutError,
    WorkerCrashError,
    apply_injected_directive,
    fault_from_marker,
    marker_from_exception,
)
from .result import ExecutionResult
from .stabilizer import simulate_stabilizer_trajectories
from .statevector import ideal_distribution

__all__ = [
    "CompactTask",
    "ParallelSharder",
    "run_compact_task",
    "DEFAULT_CHUNKS_PER_WORKER",
    "DEFAULT_TRAJECTORY_SHOTS",
]

logger = logging.getLogger(__name__)

# Shot budget used when the trajectory method (which always samples) is
# invoked without an explicit ``shots``.  Lives here — next to the compute
# function that consumes it — and is re-exported by the engine module,
# which keys it into trajectory cache lines; a single definition keeps the
# cache key and the simulated shot count in lockstep.
DEFAULT_TRAJECTORY_SHOTS = 4096

# With no explicit chunk size, a batch of N tasks over W workers is split
# into ~W * DEFAULT_CHUNKS_PER_WORKER chunks: enough slack that an uneven
# task (one slow density-matrix circuit among trajectories) does not leave
# workers idle, without paying per-task IPC for tiny tasks.
DEFAULT_CHUNKS_PER_WORKER = 4

# Consecutive pool-*creation* failures tolerated before the sharder stops
# re-probing each batch (platforms that cannot fork at all fail every time;
# re-probing forever would pay an exception per batch for nothing).
MAX_CREATION_FAILURES = 3


@dataclasses.dataclass
class CompactTask:
    """One deduplicated, compact-space execution request (picklable).

    Fields mirror the engine's ``_Prepared`` after cache lookup: the circuit
    is already compacted, the noise model already remapped, the method
    already resolved and the seed already derived — a worker only computes.
    ``fingerprint`` is carried for fault attribution only (a failure marker
    names the offending circuit); it does not influence the computation.
    """

    circuit: QuantumCircuit
    noise: NoiseModel
    method: str  # resolved: "statevector" | "density_matrix" | "trajectory" | "stabilizer"
    shots: int | None
    seed: int | None
    max_trajectories: int
    fusion: bool
    # None lets fusion.choose_fusion_width size blocks per program; the
    # resolution happens inside the simulator entry points, so serial and
    # pool executions of one task fuse — and therefore sample — identically.
    fusion_max_qubits: int | None = None
    # Kernel tier for classified fused blocks (repro.simulators.kernels).
    # Carried pre-resolved by the engine; None re-resolves from the
    # environment (standalone task construction).
    kernel_backend: str | None = None
    fingerprint: str | None = None
    # Trace propagation across the pool boundary: when the dispatching
    # engine has an open trace, its ID rides along and the execution site
    # attaches a span fragment (pid, measured duration) to the result's
    # metadata — the parent pops the fragment and stitches it into the
    # batch's trace tree.  ``None`` (tracing disabled) adds no work.
    trace_id: str | None = None


def run_compact_task(task: CompactTask) -> ExecutionResult:
    """Execute one compact-space task; pure function of the task contents.

    This is the single source of truth for what an engine execution *is* —
    the serial path (``ExecutionEngine._run``) and every pool worker call
    it, which is what makes parallel results bit-identical to serial ones.
    The density-matrix branch reproduces the engine's readout-factored
    arithmetic (gate-noise evolution, then per-bit confusion) without the
    state cache, so cached and uncached runs agree exactly.
    """
    if task.method == "trajectory":
        counts, measured_qubits = simulate_trajectories_ensemble(
            task.circuit,
            task.noise,
            shots=task.shots or DEFAULT_TRAJECTORY_SHOTS,
            seed=task.seed,
            max_trajectories=task.max_trajectories,
            fusion=task.fusion,
            fusion_max_qubits=task.fusion_max_qubits,
            kernel_backend=task.kernel_backend,
        )
        return ExecutionResult(
            distribution=counts.to_distribution(),
            measured_qubits=measured_qubits,
            counts=counts,
            shots=counts.shots,
            method="trajectory",
        )
    if task.method == "density_matrix":
        distribution, measured_qubits = noisy_distribution_density_matrix(
            task.circuit,
            task.noise,
            fusion=task.fusion,
            fusion_max_qubits=task.fusion_max_qubits,
            kernel_backend=task.kernel_backend,
        )
        result = ExecutionResult(
            distribution=distribution,
            measured_qubits=list(measured_qubits),
            method="density_matrix",
        )
        if task.shots is not None:
            rng = np.random.default_rng(task.seed)
            counts = distribution.sample(task.shots, rng)
            result.counts = counts
            result.shots = task.shots
            result.distribution = counts.to_distribution()
        return result
    if task.method == "statevector":
        if not task.noise.is_ideal:
            raise ValueError("the statevector method cannot apply noise")
        distribution = ideal_distribution(task.circuit, kernel_backend=task.kernel_backend)
        result = ExecutionResult(
            distribution=distribution,
            measured_qubits=task.circuit.measurement_layout(),
            method="statevector",
        )
        if task.shots is not None:
            rng = np.random.default_rng(task.seed)
            counts = distribution.sample(task.shots, rng)
            result.counts = counts
            result.shots = task.shots
            result.distribution = counts.to_distribution()
        return result
    if task.method == "stabilizer":
        # Tableau simulation works on the raw (named-gate) circuit; fusion
        # would erase gate names into dense matrices, so the fusion flags
        # are deliberately ignored here (and excluded from stabilizer cache
        # keys by the engine for the same reason).
        counts, measured_qubits = simulate_stabilizer_trajectories(
            task.circuit,
            task.noise,
            shots=task.shots or DEFAULT_TRAJECTORY_SHOTS,
            seed=task.seed,
            max_trajectories=task.max_trajectories,
        )
        return ExecutionResult(
            distribution=counts.to_distribution(),
            measured_qubits=measured_qubits,
            counts=counts,
            shots=counts.shots,
            method="stabilizer",
        )
    raise ValueError(f"unresolved method {task.method!r}")


def _traced_run(task: CompactTask, in_worker: bool) -> ExecutionResult:
    """Run one task, attaching a trace span fragment when the task asks.

    Monotonic clocks are per-process, so the fragment carries only the
    *duration* (comparable across processes) plus the executing ``pid``;
    the parent's dispatch event anchors it in the trace timeline.  Kept
    out of :func:`run_compact_task` so the pure compute function stays
    byte-identical with and without tracing.
    """
    if task.trace_id is None:
        return run_compact_task(task)
    started = time.perf_counter()
    result = run_compact_task(task)
    result.metadata["trace_fragment"] = {
        "trace_id": task.trace_id,
        "pid": os.getpid(),
        "duration": time.perf_counter() - started,
        "in_worker": in_worker,
    }
    return result


def _run_task_chunk(pairs: list) -> list:
    """Worker entry point: run ``[(task, directive), ...]``, isolating failures.

    Returns one slot per task: an :class:`ExecutionResult` on success, a
    picklable :class:`TaskFailureMarker` on failure — a raising task never
    loses its chunk-mates' finished results.  Injected ``kill`` directives
    terminate the worker process itself (the parent sees the broken pool);
    everything else is contained here.
    """
    outcomes: list = []
    for task, directive in pairs:
        try:
            apply_injected_directive(
                directive,
                fingerprint=task.fingerprint,
                method=task.method,
                in_worker=True,
            )
            outcomes.append(_traced_run(task, in_worker=True))
        except BaseException as exc:  # noqa: BLE001 - flattened for the parent
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            outcomes.append(
                marker_from_exception(exc, fingerprint=task.fingerprint, method=task.method)
            )
    return outcomes


def _run_pair_inprocess(task: CompactTask, directive) -> ExecutionResult | ExecutionFault:
    """In-process twin of the worker loop body (fallback / serial rung)."""
    try:
        apply_injected_directive(
            directive, fingerprint=task.fingerprint, method=task.method, in_worker=False
        )
        return _traced_run(task, in_worker=False)
    except ExecutionFault as fault:
        return fault
    except Exception as exc:
        return fault_from_marker(
            marker_from_exception(exc, fingerprint=task.fingerprint, method=task.method)
        )


def apply_readout_confusion(
    distribution, measured_qubits: Sequence[int], noise: NoiseModel
):
    """Apply per-bit readout confusion for ``measured_qubits`` in clbit order.

    Shared by the engine's readout-factored density-matrix path and
    :func:`noisy_distribution_density_matrix` — both must apply confusion in
    the same order with the same arithmetic for cached and uncached results
    to agree bit-for-bit.
    """
    for bit, qubit in enumerate(measured_qubits):
        error = noise.readout_error(qubit)
        if error is not None:
            distribution = _apply_confusion_bit(distribution, bit, error.confusion_matrix)
    return distribution


class ParallelSharder:
    """A lazily-created process pool that shards :class:`CompactTask` batches.

    Parameters
    ----------
    workers:
        Worker process count.  ``1`` short-circuits to in-process serial
        execution (no pool is ever created).
    chunk_size:
        Tasks per pickled work unit.  ``None`` auto-sizes to about
        ``len(tasks) / (workers * DEFAULT_CHUNKS_PER_WORKER)``.  Forced to
        ``1`` when ``task_timeout`` is set (per-task budgets need per-task
        futures).
    retry_policy:
        Governs pool-crash recovery: how many attempts each task gets when
        its worker dies, and the (deterministic) backoff between respawns.
        Defaults to the module default policy.
    task_timeout:
        Wall-clock seconds each dispatched task may take, measured from
        dispatch of its wave.  ``None`` (default) disables timeouts.
    metrics:
        Optional :class:`~repro.metrics.MetricsRegistry` to publish
        dispatch counts, respawns, and the fallback reason (as an
        ``*_info`` gauge) into.  ``None`` records nothing.

    The pool is created on first use and reused across batches (worker
    startup is paid once per engine, not once per ``execute_many`` call).
    Call :meth:`shutdown` (or use the owning engine as a context manager)
    to release the processes early.
    """

    def __init__(
        self,
        workers: int,
        chunk_size: int | None = None,
        retry_policy: RetryPolicy | None = None,
        task_timeout: float | None = None,
        metrics=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        self.workers = int(workers)
        self.chunk_size = chunk_size
        self.retry_policy = retry_policy or RetryPolicy()
        self.task_timeout = task_timeout
        self._metrics = metrics
        if metrics is not None:
            self._dispatched_counter = metrics.counter(
                "repro_parallel_dispatched_total",
                "Sharded tasks executed in pool worker processes.",
            )
            self._inprocess_counter = metrics.counter(
                "repro_parallel_inprocess_total",
                "Sharded tasks that ran in the parent (serial rung or fallback).",
            )
            self._respawn_counter = metrics.counter(
                "repro_parallel_respawns_total",
                "Process-pool respawns after worker crashes or stuck workers.",
            )
            self._fallback_info = metrics.gauge(
                "repro_parallel_fallback_info",
                "1 on the series labeled with the sharder's current fallback "
                "reason; no series while the pool is healthy.",
                labelnames=("reason",),
            )
        # Why the sharder last ran (or is running) without its pool; sticky
        # record for telemetry — the pool itself is re-probed per batch.
        self.fallback_reason: str | None = None
        # Tasks of the most recent run() that actually executed in pool
        # workers (0 when the run short-circuited in-process or fell back).
        # The engine adds this — not the task count — to
        # ``EngineStats.parallel_executed`` so the stat never overstates
        # parallelism.
        self.last_dispatched = 0
        # Pool respawns of the most recent run() / over the sharder's life.
        self.last_respawns = 0
        self.pool_respawns = 0
        self._executor: ProcessPoolExecutor | None = None
        self._creation_failures = 0

    def _pool(self) -> ProcessPoolExecutor | None:
        if self._creation_failures >= MAX_CREATION_FAILURES:
            return None
        if self._executor is None:
            try:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            except (OSError, ValueError, RuntimeError) as exc:
                # No /dev/shm, fork blocked, resource limits: degrade to
                # serial in-process execution — identical results.  The
                # reason is recorded (and surfaced on EngineStats) and
                # creation is re-probed on the next batch, up to the cap.
                self._creation_failures += 1
                self.fallback_reason = f"pool creation failed: {type(exc).__name__}: {exc}"
                logger.warning(
                    "ParallelSharder falling back in-process (%s); "
                    "re-probing on the next batch (%d/%d failures)",
                    self.fallback_reason,
                    self._creation_failures,
                    MAX_CREATION_FAILURES,
                )
                return None
        self._creation_failures = 0
        return self._executor

    def run(
        self,
        tasks: Sequence[CompactTask],
        directives: Sequence[tuple | None] | None = None,
        isolate: bool = False,
    ) -> list:
        """Execute ``tasks`` and return outcomes in task order.

        ``directives`` (one per task, parent-resolved by the engine's
        :class:`~repro.simulators.faults.FaultInjector`) are applied at each
        task's execution site.  With ``isolate=True`` every slot is either
        an :class:`ExecutionResult` or the structured
        :class:`~repro.simulators.faults.ExecutionFault` that terminated it;
        with ``isolate=False`` (the pre-fault-tolerance contract) the first
        fault is raised after the batch drains.
        """
        tasks = list(tasks)
        self.last_dispatched = 0
        self.last_respawns = 0
        if not tasks:
            return []
        pairs = [
            (task, directives[i] if directives is not None else None)
            for i, task in enumerate(tasks)
        ]
        # A single task gains nothing from IPC; the pool pays off from two.
        if self.workers == 1 or len(tasks) == 1:
            outcomes = [_run_pair_inprocess(task, directive) for task, directive in pairs]
            return self._finish(outcomes, isolate)

        outcomes: list = [None] * len(tasks)
        chunk = 1 if self.task_timeout is not None else self.chunk_size
        if chunk is None:
            chunk = max(1, -(-len(tasks) // (self.workers * DEFAULT_CHUNKS_PER_WORKER)))
        queue: deque = deque(
            (tuple(range(start, min(start + chunk, len(tasks)))), 1)
            for start in range(0, len(tasks), chunk)
        )

        batch_respawns = 0
        while queue:
            pool = self._pool()
            if pool is None or batch_respawns >= self.retry_policy.max_attempts:
                if pool is not None:
                    # Repeated crashes this batch: parallel -> serial rung.
                    self.fallback_reason = (
                        f"process pool broke {batch_respawns}x in one batch"
                    )
                    logger.warning(
                        "ParallelSharder degrading to serial for the rest of "
                        "the batch (%s)",
                        self.fallback_reason,
                    )
                while queue:
                    indices, _ = queue.popleft()
                    for i in indices:
                        if outcomes[i] is None:
                            outcomes[i] = _run_pair_inprocess(*pairs[i])
                break

            wave = list(queue)
            queue.clear()
            futures = []
            dispatched_at = time.monotonic()
            try:
                for indices, attempt in wave:
                    futures.append(
                        (pool.submit(_run_task_chunk, [pairs[i] for i in indices]), indices, attempt)
                    )
            except BrokenProcessPool:
                # Pool died while submitting: recycle and retry the wave.
                self._respawn("pool broke during submission")
                batch_respawns += 1
                queue.extend(self._requeue(wave, outcomes, pairs))
                continue

            broken = False
            timed_out = False
            for future, indices, attempt in futures:
                if broken:
                    # The pool is gone; every remaining future died with it.
                    queue.extend(self._requeue([(indices, attempt)], outcomes, pairs))
                    continue
                budget = None
                if self.task_timeout is not None:
                    budget = max(
                        0.001,
                        dispatched_at + self.task_timeout * attempt - time.monotonic(),
                    )
                try:
                    chunk_outcomes = future.result(timeout=budget)
                except BrokenProcessPool:
                    broken = True
                    self._respawn("worker process died mid-task")
                    batch_respawns += 1
                    queue.extend(self._requeue([(indices, attempt)], outcomes, pairs))
                    continue
                except FutureTimeoutError:
                    timed_out = True
                    future.cancel()
                    for i in indices:
                        task = tasks[i]
                        outcomes[i] = TaskTimeoutError(
                            f"task exceeded its {self.task_timeout:.3f}s wall-clock budget",
                            fingerprint=task.fingerprint,
                            method=task.method,
                            stage="dispatch",
                        )
                    continue
                self.last_dispatched += len(indices)
                for i, outcome in zip(indices, chunk_outcomes):
                    if isinstance(outcome, TaskFailureMarker):
                        outcomes[i] = fault_from_marker(outcome)
                    else:
                        outcomes[i] = outcome
            if timed_out and not broken:
                # A stuck worker would silently poison the next batch's
                # capacity; recycle the pool without waiting on it.
                self._respawn("stuck worker after task timeout", wait=False)

        # Tasks whose retries were exhausted without an outcome.
        for i, outcome in enumerate(outcomes):
            if outcome is None:
                task = tasks[i]
                outcomes[i] = WorkerCrashError(
                    f"worker died on every attempt "
                    f"({self.retry_policy.max_attempts} allowed)",
                    fingerprint=task.fingerprint,
                    method=task.method,
                    stage="dispatch",
                )
        return self._finish(outcomes, isolate)

    def _respawn(self, reason: str, wait: bool = True) -> None:
        """Drop the broken/stuck pool; the next :meth:`_pool` call respawns."""
        executor = self._executor
        self._executor = None
        if executor is not None:
            try:
                executor.shutdown(wait=wait, cancel_futures=True)
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
        self.pool_respawns += 1
        self.last_respawns += 1
        logger.warning("ParallelSharder respawning process pool: %s", reason)

    def _requeue(self, entries, outcomes, pairs) -> list:
        """Retry schedule for chunks lost to a broken pool.

        Multi-task chunks are split into singletons (isolating a
        crash-inducing task from its healthy neighbours); consumed ``kill``
        directives are stripped (the injected crash already fired).  Tasks
        out of attempts keep their empty slot — :meth:`run` materialises the
        terminal :class:`WorkerCrashError` after the queue drains.  Sleeps
        the policy's deterministic backoff once per requeue round.
        """
        crash_retryable = self.retry_policy.is_retryable(WorkerCrashError("probe"))
        requeued = []
        slept = False
        for indices, attempt in entries:
            alive = [i for i in indices if outcomes[i] is None]
            if not alive:
                continue
            if attempt >= self.retry_policy.max_attempts or not crash_retryable:
                continue
            if not slept:
                self.retry_policy.sleep(attempt, seed=attempt)
                slept = True
            for i in alive:
                task, directive = pairs[i]
                if directive is not None and directive[0] == "kill":
                    pairs[i] = (task, None)
                requeued.append(((i,), attempt + 1))
        return requeued

    def _finish(self, outcomes: list, isolate: bool) -> list:
        if self._metrics is not None:
            # Every run() exit path lands here with last_dispatched /
            # last_respawns / fallback_reason final for the batch; count
            # before the non-isolate raise so aborted batches are visible.
            self._dispatched_counter.inc(self.last_dispatched)
            self._inprocess_counter.inc(len(outcomes) - self.last_dispatched)
            self._respawn_counter.inc(self.last_respawns)
            self._fallback_info.clear()
            if self.fallback_reason is not None:
                self._fallback_info.labels(reason=self.fallback_reason).set(1)
        if not isolate:
            for outcome in outcomes:
                if isinstance(outcome, ExecutionFault):
                    raise outcome
        return outcomes

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "ParallelSharder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
