"""Process-parallel sharding for :class:`~repro.simulators.engine.ExecutionEngine`.

``execute_many`` batches are embarrassingly parallel once the parent has
deduplicated them: each surviving request is an independent simulation of a
compact circuit under a remapped noise model.  This module carries those
requests across a :class:`~concurrent.futures.ProcessPoolExecutor`:

* the **parent** prepares every request (compaction, key derivation),
  deduplicates identical circuits and consults the in-memory + persistent
  caches — only genuinely novel work is dispatched;
* each **worker** runs :func:`run_compact_task`, the same pure compute
  function the engine's serial path uses, so a parallel run is bit-identical
  to a serial one (same derived seeds, same RNG streams, same arithmetic);
* compact-space results are pickled back, cached by the parent, and merged
  into each requester's wire embedding through the engine's existing
  ``_deliver`` translation.

Worker determinism
------------------
A task carries everything that determines its result — the compact circuit,
the remapped noise model, the resolved method, the *derived* per-circuit
seed and the fusion settings.  Workers hold no state between tasks and never
touch a cache, so scheduling order, worker count and chunking cannot change
any result, only the wall-clock. Unseeded (uncacheable) requests draw fresh
OS entropy in the worker exactly as they would in the parent: independent
across occurrences either way.

Fallback
--------
Sandboxes and exotic platforms sometimes cannot spawn worker processes at
all.  :class:`ParallelSharder` degrades to in-process serial execution when
the pool cannot be created (recording :attr:`ParallelSharder.fallback_reason`)
— results are identical, only slower.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Sequence

import numpy as np

from ..circuits import QuantumCircuit
from ..noise import NoiseModel
from .density_matrix import _apply_confusion_bit, noisy_distribution_density_matrix
from .ensemble import simulate_trajectories_ensemble
from .fusion import DEFAULT_FUSION_MAX_QUBITS
from .result import ExecutionResult
from .stabilizer import simulate_stabilizer_trajectories
from .statevector import ideal_distribution

__all__ = [
    "CompactTask",
    "ParallelSharder",
    "run_compact_task",
    "DEFAULT_CHUNKS_PER_WORKER",
    "DEFAULT_TRAJECTORY_SHOTS",
]

# Shot budget used when the trajectory method (which always samples) is
# invoked without an explicit ``shots``.  Lives here — next to the compute
# function that consumes it — and is re-exported by the engine module,
# which keys it into trajectory cache lines; a single definition keeps the
# cache key and the simulated shot count in lockstep.
DEFAULT_TRAJECTORY_SHOTS = 4096

# With no explicit chunk size, a batch of N tasks over W workers is split
# into ~W * DEFAULT_CHUNKS_PER_WORKER chunks: enough slack that an uneven
# task (one slow density-matrix circuit among trajectories) does not leave
# workers idle, without paying per-task IPC for tiny tasks.
DEFAULT_CHUNKS_PER_WORKER = 4


@dataclasses.dataclass
class CompactTask:
    """One deduplicated, compact-space execution request (picklable).

    Fields mirror the engine's ``_Prepared`` after cache lookup: the circuit
    is already compacted, the noise model already remapped, the method
    already resolved and the seed already derived — a worker only computes.
    """

    circuit: QuantumCircuit
    noise: NoiseModel
    method: str  # resolved: "statevector" | "density_matrix" | "trajectory" | "stabilizer"
    shots: int | None
    seed: int | None
    max_trajectories: int
    fusion: bool
    fusion_max_qubits: int = DEFAULT_FUSION_MAX_QUBITS


def run_compact_task(task: CompactTask) -> ExecutionResult:
    """Execute one compact-space task; pure function of the task contents.

    This is the single source of truth for what an engine execution *is* —
    the serial path (``ExecutionEngine._run``) and every pool worker call
    it, which is what makes parallel results bit-identical to serial ones.
    The density-matrix branch reproduces the engine's readout-factored
    arithmetic (gate-noise evolution, then per-bit confusion) without the
    state cache, so cached and uncached runs agree exactly.
    """
    if task.method == "trajectory":
        counts, measured_qubits = simulate_trajectories_ensemble(
            task.circuit,
            task.noise,
            shots=task.shots or DEFAULT_TRAJECTORY_SHOTS,
            seed=task.seed,
            max_trajectories=task.max_trajectories,
            fusion=task.fusion,
            fusion_max_qubits=task.fusion_max_qubits,
        )
        return ExecutionResult(
            distribution=counts.to_distribution(),
            measured_qubits=measured_qubits,
            counts=counts,
            shots=counts.shots,
            method="trajectory",
        )
    if task.method == "density_matrix":
        distribution, measured_qubits = noisy_distribution_density_matrix(
            task.circuit,
            task.noise,
            fusion=task.fusion,
            fusion_max_qubits=task.fusion_max_qubits,
        )
        result = ExecutionResult(
            distribution=distribution,
            measured_qubits=list(measured_qubits),
            method="density_matrix",
        )
        if task.shots is not None:
            rng = np.random.default_rng(task.seed)
            counts = distribution.sample(task.shots, rng)
            result.counts = counts
            result.shots = task.shots
            result.distribution = counts.to_distribution()
        return result
    if task.method == "statevector":
        if not task.noise.is_ideal:
            raise ValueError("the statevector method cannot apply noise")
        distribution = ideal_distribution(task.circuit)
        result = ExecutionResult(
            distribution=distribution,
            measured_qubits=task.circuit.measurement_layout(),
            method="statevector",
        )
        if task.shots is not None:
            rng = np.random.default_rng(task.seed)
            counts = distribution.sample(task.shots, rng)
            result.counts = counts
            result.shots = task.shots
            result.distribution = counts.to_distribution()
        return result
    if task.method == "stabilizer":
        # Tableau simulation works on the raw (named-gate) circuit; fusion
        # would erase gate names into dense matrices, so the fusion flags
        # are deliberately ignored here (and excluded from stabilizer cache
        # keys by the engine for the same reason).
        counts, measured_qubits = simulate_stabilizer_trajectories(
            task.circuit,
            task.noise,
            shots=task.shots or DEFAULT_TRAJECTORY_SHOTS,
            seed=task.seed,
            max_trajectories=task.max_trajectories,
        )
        return ExecutionResult(
            distribution=counts.to_distribution(),
            measured_qubits=measured_qubits,
            counts=counts,
            shots=counts.shots,
            method="stabilizer",
        )
    raise ValueError(f"unresolved method {task.method!r}")


def apply_readout_confusion(
    distribution, measured_qubits: Sequence[int], noise: NoiseModel
):
    """Apply per-bit readout confusion for ``measured_qubits`` in clbit order.

    Shared by the engine's readout-factored density-matrix path and
    :func:`noisy_distribution_density_matrix` — both must apply confusion in
    the same order with the same arithmetic for cached and uncached results
    to agree bit-for-bit.
    """
    for bit, qubit in enumerate(measured_qubits):
        error = noise.readout_error(qubit)
        if error is not None:
            distribution = _apply_confusion_bit(distribution, bit, error.confusion_matrix)
    return distribution


class ParallelSharder:
    """A lazily-created process pool that shards :class:`CompactTask` batches.

    Parameters
    ----------
    workers:
        Worker process count.  ``1`` short-circuits to in-process serial
        execution (no pool is ever created).
    chunk_size:
        Tasks per pickled work unit.  ``None`` auto-sizes to about
        ``len(tasks) / (workers * DEFAULT_CHUNKS_PER_WORKER)``.

    The pool is created on first use and reused across batches (worker
    startup is paid once per engine, not once per ``execute_many`` call).
    Call :meth:`shutdown` (or use the owning engine as a context manager)
    to release the processes early.
    """

    def __init__(self, workers: int, chunk_size: int | None = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.workers = int(workers)
        self.chunk_size = chunk_size
        self.fallback_reason: str | None = None
        # Tasks of the most recent run() that actually executed in pool
        # workers (0 when the run short-circuited in-process or fell back).
        # The engine adds this — not the task count — to
        # ``EngineStats.parallel_executed`` so the stat never overstates
        # parallelism.
        self.last_dispatched = 0
        self._executor: ProcessPoolExecutor | None = None

    def _pool(self) -> ProcessPoolExecutor | None:
        if self.fallback_reason is not None:
            return None
        if self._executor is None:
            try:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            except (OSError, ValueError, RuntimeError) as exc:
                # No /dev/shm, fork blocked, resource limits: degrade to
                # serial in-process execution — identical results.
                self.fallback_reason = f"{type(exc).__name__}: {exc}"
                return None
        return self._executor

    def run(self, tasks: Sequence[CompactTask]) -> list[ExecutionResult]:
        """Execute ``tasks`` and return results in task order."""
        tasks = list(tasks)
        self.last_dispatched = 0
        if not tasks:
            return []
        # A single task gains nothing from IPC; the pool pays off from two.
        if self.workers == 1 or len(tasks) == 1:
            return [run_compact_task(task) for task in tasks]
        pool = self._pool()
        if pool is None:
            return [run_compact_task(task) for task in tasks]
        chunk = self.chunk_size
        if chunk is None:
            chunk = max(1, -(-len(tasks) // (self.workers * DEFAULT_CHUNKS_PER_WORKER)))
        try:
            results = list(pool.map(run_compact_task, tasks, chunksize=chunk))
        except BrokenProcessPool:  # pragma: no cover - worker killed externally
            self.shutdown()
            self.fallback_reason = "process pool broke mid-batch"
            return [run_compact_task(task) for task in tasks]
        self.last_dispatched = len(tasks)
        return results

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "ParallelSharder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
