"""One-shot circuit execution: the uncached single-circuit primitive.

:func:`execute` picks the cheapest simulation method that is exact enough:

* no noise → statevector;
* noisy and narrow (``num_qubits <= density_matrix_threshold``) → exact
  density-matrix simulation (readout errors applied as exact confusion);
* noisy, wide and **Clifford** under Pauli noise → the stabilizer tableau
  backend (:func:`~repro.simulators.stabilizer.simulate_stabilizer_trajectories`),
  which samples the same trajectory statistics at polynomial cost;
* noisy and wide otherwise → Monte-Carlo trajectories with sampled readout
  flips, via the batched ensemble backend
  (:func:`~repro.simulators.ensemble.simulate_trajectories_ensemble`).

Callers that need reproducible statistics pass ``seed``; all stochastic paths
derive their randomness from it.

Most of the codebase should **not** call this directly: the mitigation and
QuTracer layers submit their subset/check-variant circuits through
:class:`repro.simulators.engine.ExecutionEngine`, which batches, deduplicates
and caches executions (and compacts idle wires) on top of this primitive.
See ``docs/architecture.md`` for how the two layers fit together.
"""

from __future__ import annotations

from typing import Any

from ..circuits import QuantumCircuit
from ..noise import NoiseModel
from .parallel import CompactTask, run_compact_task
from .result import ExecutionResult
from .stabilizer import is_clifford_program

__all__ = ["execute", "execute_many", "DEFAULT_DENSITY_MATRIX_THRESHOLD"]

DEFAULT_DENSITY_MATRIX_THRESHOLD = 10


def execute(
    circuit: QuantumCircuit,
    noise_model: NoiseModel | None = None,
    shots: int | None = None,
    seed: int | None = None,
    method: str = "auto",
    density_matrix_threshold: int = DEFAULT_DENSITY_MATRIX_THRESHOLD,
    max_trajectories: int = 600,
    fusion: bool = True,
    fusion_max_qubits: int | None = None,
    kernel_backend: str | None = None,
    metadata: dict[str, Any] | None = None,
) -> ExecutionResult:
    """Run a circuit and return its measured-output distribution.

    Parameters
    ----------
    circuit:
        The circuit to run.  If it has measurement instructions, the result
        distribution is over those clbits; otherwise over all qubits.
    noise_model:
        Gate and readout noise; ``None`` means ideal execution.
    shots:
        If given, the returned distribution is estimated from this many
        samples (and ``counts`` is populated).  Exact methods return the
        exact distribution when ``shots`` is ``None``.
    method:
        ``"auto"`` (default), ``"statevector"``, ``"density_matrix"``,
        ``"trajectory"`` or ``"stabilizer"``.  An explicit ``"stabilizer"``
        request falls back transparently to the auto-selected dense method
        when the circuit (or its noise) is not Clifford/Pauli.
    fusion:
        Merge runs of adjacent gates (combined support ≤
        ``fusion_max_qubits``) into single matrices before simulating; see
        :mod:`repro.simulators.fusion`.  Noise placement is unchanged.
        The trajectory RNG stream depends on this flag (fused programs
        consume draws in different order), so seeded trajectory results are
        reproducible per setting, not across settings.
    """
    noise_model = noise_model or NoiseModel.ideal()
    if method not in ("auto", "statevector", "density_matrix", "trajectory", "stabilizer"):
        raise ValueError(f"unknown method {method!r}")

    if method == "stabilizer" and not is_clifford_program(circuit, noise_model):
        method = "auto"  # transparent fallback to the dense tier
    if method == "auto":
        if noise_model.is_ideal:
            method = "statevector"
        elif circuit.num_qubits <= density_matrix_threshold:
            method = "density_matrix"
        elif is_clifford_program(circuit, noise_model):
            method = "stabilizer"
        else:
            method = "trajectory"

    # The execution arithmetic lives in exactly one place —
    # :func:`repro.simulators.parallel.run_compact_task`, shared with the
    # engine's serial path and every pool worker — which is what keeps the
    # "engine results are bit-identical to sequential execute" contract a
    # structural property rather than a maintenance promise.
    result = run_compact_task(
        CompactTask(
            circuit=circuit,
            noise=noise_model,
            method=method,
            shots=shots,
            seed=seed,
            max_trajectories=max_trajectories,
            fusion=fusion,
            fusion_max_qubits=fusion_max_qubits,
            kernel_backend=kernel_backend,
        )
    )
    if metadata:
        result.metadata = dict(metadata)
    return result


def execute_many(
    circuits,
    noise_model: NoiseModel | None = None,
    shots: int | None = None,
    seed: int | None = None,
    method: str = "auto",
    max_trajectories: int = 600,
    fusion: bool = True,
    workers: int | None = None,
    cache_dir: str | None = None,
    device=None,
    on_error: str = "raise",
    retry_policy=None,
) -> list[ExecutionResult]:
    """Run a batch of circuits through a fresh :class:`ExecutionEngine`.

    Convenience front-end for scripts: deduplicates identical circuits,
    shards the surviving work across ``workers`` processes and (when
    ``cache_dir`` is given) warm-starts from / writes through to the
    persistent on-disk result cache.  Long-lived consumers should construct
    and reuse their own :class:`~repro.simulators.engine.ExecutionEngine`
    instead — the engine's in-memory cache and worker pool amortise across
    calls, this helper's do not.

    ``on_error="isolate"`` returns a
    :class:`~repro.simulators.result.FailedResult` in each failed slot
    instead of aborting the batch; ``retry_policy`` (a
    :class:`~repro.simulators.faults.RetryPolicy`) governs re-attempts
    after transient faults and pool crashes.
    """
    from .engine import ExecutionEngine  # local import: engine imports this module

    with ExecutionEngine(
        max_trajectories=max_trajectories,
        fusion=fusion,
        workers=workers,
        cache_dir=cache_dir,
        retry_policy=retry_policy,
        on_error=on_error,
    ) as engine:
        return engine.execute_many(
            circuits,
            noise_model,
            shots=shots,
            seed=seed,
            method=method,
            max_trajectories=max_trajectories,
            device=device,
        )
