"""One-shot circuit execution: the uncached single-circuit primitive.

:func:`execute` picks the cheapest simulation method that is exact enough:

* no noise → statevector;
* noisy and narrow (``num_qubits <= density_matrix_threshold``) → exact
  density-matrix simulation (readout errors applied as exact confusion);
* noisy and wide → Monte-Carlo trajectories with sampled readout flips,
  via the batched ensemble backend
  (:func:`~repro.simulators.ensemble.simulate_trajectories_ensemble`).

Callers that need reproducible statistics pass ``seed``; all stochastic paths
derive their randomness from it.

Most of the codebase should **not** call this directly: the mitigation and
QuTracer layers submit their subset/check-variant circuits through
:class:`repro.simulators.engine.ExecutionEngine`, which batches, deduplicates
and caches executions (and compacts idle wires) on top of this primitive.
See ``docs/architecture.md`` for how the two layers fit together.
"""

from __future__ import annotations

from typing import Any

from ..circuits import QuantumCircuit
from ..noise import NoiseModel
from .density_matrix import noisy_distribution_density_matrix
from .ensemble import simulate_trajectories_ensemble
from .fusion import DEFAULT_FUSION_MAX_QUBITS
from .result import ExecutionResult
from .statevector import ideal_distribution

__all__ = ["execute", "DEFAULT_DENSITY_MATRIX_THRESHOLD"]

DEFAULT_DENSITY_MATRIX_THRESHOLD = 10


def execute(
    circuit: QuantumCircuit,
    noise_model: NoiseModel | None = None,
    shots: int | None = None,
    seed: int | None = None,
    method: str = "auto",
    density_matrix_threshold: int = DEFAULT_DENSITY_MATRIX_THRESHOLD,
    max_trajectories: int = 600,
    fusion: bool = True,
    fusion_max_qubits: int = DEFAULT_FUSION_MAX_QUBITS,
    metadata: dict[str, Any] | None = None,
) -> ExecutionResult:
    """Run a circuit and return its measured-output distribution.

    Parameters
    ----------
    circuit:
        The circuit to run.  If it has measurement instructions, the result
        distribution is over those clbits; otherwise over all qubits.
    noise_model:
        Gate and readout noise; ``None`` means ideal execution.
    shots:
        If given, the returned distribution is estimated from this many
        samples (and ``counts`` is populated).  Exact methods return the
        exact distribution when ``shots`` is ``None``.
    method:
        ``"auto"`` (default), ``"statevector"``, ``"density_matrix"`` or
        ``"trajectory"``.
    fusion:
        Merge runs of adjacent gates (combined support ≤
        ``fusion_max_qubits``) into single matrices before simulating; see
        :mod:`repro.simulators.fusion`.  Noise placement is unchanged.
        The trajectory RNG stream depends on this flag (fused programs
        consume draws in different order), so seeded trajectory results are
        reproducible per setting, not across settings.
    """
    noise_model = noise_model or NoiseModel.ideal()
    if method not in ("auto", "statevector", "density_matrix", "trajectory"):
        raise ValueError(f"unknown method {method!r}")

    if method == "auto":
        if noise_model.is_ideal:
            method = "statevector"
        elif circuit.num_qubits <= density_matrix_threshold:
            method = "density_matrix"
        else:
            method = "trajectory"

    metadata = dict(metadata or {})
    if method == "statevector":
        if not noise_model.is_ideal:
            raise ValueError("the statevector method cannot apply noise")
        distribution = ideal_distribution(circuit)
        measured_qubits = circuit.measurement_layout()
        result = ExecutionResult(
            distribution=distribution,
            measured_qubits=measured_qubits,
            method="statevector",
            metadata=metadata,
        )
    elif method == "density_matrix":
        distribution, measured_qubits = noisy_distribution_density_matrix(
            circuit, noise_model, fusion=fusion, fusion_max_qubits=fusion_max_qubits
        )
        result = ExecutionResult(
            distribution=distribution,
            measured_qubits=measured_qubits,
            method="density_matrix",
            metadata=metadata,
        )
    else:
        counts, measured_qubits = simulate_trajectories_ensemble(
            circuit,
            noise_model,
            shots=shots or 4096,
            seed=seed,
            max_trajectories=max_trajectories,
            fusion=fusion,
            fusion_max_qubits=fusion_max_qubits,
        )
        return ExecutionResult(
            distribution=counts.to_distribution(),
            measured_qubits=measured_qubits,
            counts=counts,
            shots=counts.shots,
            method="trajectory",
            metadata=metadata,
        )

    if shots is not None:
        import numpy as np

        rng = np.random.default_rng(seed)
        counts = result.distribution.sample(shots, rng)
        result.counts = counts
        result.shots = shots
        result.distribution = counts.to_distribution()
    return result
