"""Fault-tolerant execution substrate: error taxonomy, retry policy, chaos injection.

A long-lived multi-tenant execution service must treat partial failure as the
normal case: a single poison circuit, a killed worker process or a corrupted
cache shard must degrade one result slot, not abort a thousand-circuit batch.
This module is the reliability vocabulary the rest of the engine speaks:

* a **structured exception taxonomy** rooted at :class:`ExecutionFault` —
  every fault on the execute path carries the offending circuit fingerprint,
  the resolved simulation method and the pipeline stage it fired in, so a
  post-mortem never starts from a bare ``RuntimeError`` with no context;
* a :class:`RetryPolicy` — bounded attempts, exponential backoff with
  *seeded deterministic jitter* (two runs with the same seed retry at the
  same instants; a fleet of tenants with distinct seeds does not
  thundering-herd), and a retryable-class filter so poison circuits are
  never retried while transient worker crashes are;
* a :class:`FaultInjector` — the deterministic chaos harness the test-suite
  drives.  Faults are scheduled by *task ordinal* in dispatch order (and by
  cache-operation ordinal for the persistent cache), so an injected schedule
  replays bit-identically regardless of pool scheduling.

Fault classification
--------------------
The engine reacts differently per class:

========================== ============ ============ =======================
class                      retryable?   degradable?  typical cause
========================== ============ ============ =======================
``SimulationError``        no           no           deterministic backend
                                                     failure (poison circuit)
``TransientSimulationError`` yes        no           flaky numerical blowup,
                                                     injected transient fault
``BackendUnavailableError``  no         yes          backend cannot run this
                                                     program; ladder down
``TranspilationError``     no           no           layout/routing/basis
                                                     failure (``device=``)
``WorkerCrashError``       yes          no           killed/OOMed pool worker
``TaskTimeoutError``       no           no           wall-clock budget blown
``CacheCorruptionError``   n/a          n/a          bad on-disk entry
                                                     (quarantined, recomputed)
``EngineInvariantError``   no           no           engine bug: a request
                                                     was dispatched without
                                                     a result
========================== ============ ============ =======================

"Retryable" means the default :class:`RetryPolicy` re-attempts it;
"degradable" means the engine walks its backend ladder
(stabilizer → trajectory ensemble → per-trajectory loop) instead of failing
the slot.  Both sets are caller-configurable.

Each class also inherits the legacy built-in it replaced
(``RuntimeError``/``TimeoutError``), so pre-taxonomy ``except RuntimeError``
call sites keep working.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from typing import Iterable, Mapping

__all__ = [
    "ExecutionFault",
    "SimulationError",
    "TransientSimulationError",
    "BackendUnavailableError",
    "TranspilationError",
    "WorkerCrashError",
    "TaskTimeoutError",
    "CacheCorruptionError",
    "EngineInvariantError",
    "RetryPolicy",
    "FaultInjector",
    "apply_injected_directive",
    "fault_annotation",
    "fault_from_marker",
    "TaskFailureMarker",
]


# ----------------------------------------------------------------------
# Taxonomy
# ----------------------------------------------------------------------


class ExecutionFault(Exception):
    """Base class for structured faults on the execute path.

    Attributes
    ----------
    fingerprint:
        Content fingerprint of the offending (compact) circuit, when known.
    method:
        The resolved simulation method that was executing when the fault
        fired (``"stabilizer"``, ``"trajectory"``, ...).
    stage:
        Pipeline stage: ``"prepare"``, ``"transpile"``, ``"dispatch"``,
        ``"simulate"``, ``"cache"`` or ``"deliver"``.
    """

    def __init__(
        self,
        message: str,
        *,
        fingerprint: str | None = None,
        method: str | None = None,
        stage: str | None = None,
    ) -> None:
        super().__init__(message)
        self.fingerprint = fingerprint
        self.method = method
        self.stage = stage

    def __str__(self) -> str:  # noqa: D105
        base = super().__str__()
        context = ", ".join(
            f"{name}={value}"
            for name, value in (
                ("stage", self.stage),
                ("method", self.method),
                ("fingerprint", (self.fingerprint or "")[:12] or None),
            )
            if value
        )
        return f"{base} [{context}]" if context else base

    # Exceptions pickle through (cls, self.args); keyword-only context would
    # be dropped crossing the process boundary without this.
    def __reduce__(self):  # noqa: D105
        return (_rebuild_fault, (type(self), self.args, self.__dict__.copy()))


def _rebuild_fault(cls, args, state):
    fault = cls(*args)
    fault.__dict__.update(state)
    return fault


class SimulationError(ExecutionFault, RuntimeError):
    """A backend failed deterministically while simulating a circuit."""


class TransientSimulationError(SimulationError):
    """A simulation failure expected to succeed on retry (default-retryable)."""


class BackendUnavailableError(SimulationError):
    """The resolved backend cannot run this program; the engine ladders down."""


class TranspilationError(ExecutionFault, RuntimeError):
    """Hardware-aware compilation (layout / routing / basis) failed."""


class WorkerCrashError(ExecutionFault, RuntimeError):
    """A pool worker died (killed, OOMed, segfaulted) mid-task."""


class TaskTimeoutError(ExecutionFault, TimeoutError):
    """A dispatched task blew its wall-clock budget and was cancelled."""


class CacheCorruptionError(ExecutionFault, RuntimeError):
    """A persistent-cache entry failed integrity checks (quarantined)."""


class EngineInvariantError(ExecutionFault, RuntimeError):
    """An engine-internal invariant broke (a request has no result).

    Carries ``undelivered`` — the request keys (or fingerprints, for
    uncacheable requests) that were dispatched but never received a result —
    so the failure names the lost work instead of just asserting.
    """

    def __init__(self, message: str, *, undelivered: Iterable | None = None, **kwargs) -> None:
        super().__init__(message, **kwargs)
        self.undelivered = list(undelivered or [])


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retry schedule for fault recovery.

    Parameters
    ----------
    max_attempts:
        Total attempts per task including the first (``1`` disables retry).
    base_delay / backoff / max_delay:
        Attempt ``k`` (1-based) sleeps ``base_delay * backoff**(k-1)``
        seconds, capped at ``max_delay``, before the next try.
    jitter:
        Fraction of the delay added as *deterministic* jitter: the jitter
        for ``(seed, attempt)`` is derived from a hash, so a fixed seed
        replays the exact same schedule while distinct seeds decorrelate.
    retryable:
        Exception classes worth re-attempting.  Everything else fails
        immediately (poison circuits must fail once, not ``max_attempts``
        times).
    """

    max_attempts: int = 3
    base_delay: float = 0.02
    backoff: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.25
    retryable: tuple = (TransientSimulationError, WorkerCrashError)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A policy that never retries (single attempt, no sleeping)."""
        return cls(max_attempts=1, base_delay=0.0, jitter=0.0)

    def is_retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, tuple(self.retryable))

    def delay(self, attempt: int, seed: int | None = None) -> float:
        """Backoff before attempt ``attempt + 1`` (after failed attempt ``attempt``).

        Deterministic in ``(attempt, seed)``: chaos tests replay the exact
        sleep schedule, and tenants with distinct seeds spread out instead
        of retrying in lockstep.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(self.base_delay * self.backoff ** (attempt - 1), self.max_delay)
        if self.jitter and delay:
            digest = hashlib.sha256(f"retry:{seed}:{attempt}".encode()).digest()
            unit = int.from_bytes(digest[:8], "big") / 2**64
            delay += delay * self.jitter * unit
        return delay

    def sleep(self, attempt: int, seed: int | None = None) -> float:
        """Sleep the backoff for ``attempt`` and return the slept duration."""
        delay = self.delay(attempt, seed)
        if delay:
            time.sleep(delay)
        return delay


DEFAULT_RETRY_POLICY = RetryPolicy()


# ----------------------------------------------------------------------
# Worker-safe failure marker
# ----------------------------------------------------------------------


@dataclasses.dataclass
class TaskFailureMarker:
    """Picklable record of a fault raised inside a pool worker.

    Workers never pickle live exception objects back (tracebacks and
    exception subclasses pickle fragilely); they return this flat marker and
    the parent rebuilds the taxonomy instance via :func:`fault_from_marker`.
    """

    kind: str  # taxonomy class name
    message: str
    fingerprint: str | None = None
    method: str | None = None
    stage: str | None = None
    cause: str | None = None  # "<ExcType>: <str>" of the original exception


_FAULT_CLASSES: Mapping[str, type] = {
    cls.__name__: cls
    for cls in (
        ExecutionFault,
        SimulationError,
        TransientSimulationError,
        BackendUnavailableError,
        TranspilationError,
        WorkerCrashError,
        TaskTimeoutError,
        CacheCorruptionError,
        EngineInvariantError,
    )
}


def fault_from_marker(marker: TaskFailureMarker) -> ExecutionFault:
    """Rebuild a taxonomy exception from a worker's failure marker."""
    cls = _FAULT_CLASSES.get(marker.kind, SimulationError)
    message = marker.message
    if marker.cause:
        message = f"{message} (caused by {marker.cause})"
    return cls(
        message,
        fingerprint=marker.fingerprint,
        method=marker.method,
        stage=marker.stage or "simulate",
    )


def fault_annotation(exc: BaseException) -> dict:
    """Flat, JSON-safe trace attributes describing a fault.

    The tracing layer stamps these onto execute/request events so a trace
    names the taxonomy class, pipeline stage and attempt count of every
    failure without pickling exception objects into the artifact.  Works
    for bare exceptions too (only ``error`` is populated then).
    """
    annotation: dict = {"error": type(exc).__name__}
    stage = getattr(exc, "stage", None)
    if stage is not None:
        annotation["error_stage"] = stage
    attempts = getattr(exc, "attempts", None)
    if attempts is not None:
        annotation["attempts"] = attempts
    method = getattr(exc, "method", None)
    if method is not None:
        annotation["error_method"] = method
    return annotation


def marker_from_exception(
    exc: BaseException, *, fingerprint: str | None, method: str | None
) -> TaskFailureMarker:
    """Flatten any exception raised in a worker into a picklable marker."""
    if isinstance(exc, ExecutionFault):
        return TaskFailureMarker(
            kind=type(exc).__name__,
            message=exc.args[0] if exc.args else str(exc),
            fingerprint=exc.fingerprint or fingerprint,
            method=exc.method or method,
            stage=exc.stage or "simulate",
        )
    return TaskFailureMarker(
        kind="SimulationError",
        message="backend raised while simulating",
        fingerprint=fingerprint,
        method=method,
        stage="simulate",
        cause=f"{type(exc).__name__}: {exc}",
    )


# ----------------------------------------------------------------------
# Chaos fault injection
# ----------------------------------------------------------------------


class FaultInjector:
    """Deterministic fault-injection harness for chaos testing.

    Installable on an :class:`~repro.simulators.engine.ExecutionEngine`
    (``engine.install_fault_injector(injector)``), which threads directives
    to the sharder's workers and installs the cache hooks on the persistent
    cache.  Faults are scheduled by **ordinal**:

    * *task ordinals* count executions in dispatch order — cache hits and
      batch-dedup duplicates do not consume ordinals, so a schedule names
      the Nth genuinely executed task regardless of dedup;
    * *cache-read / cache-write ordinals* count persistent-cache operations.

    Directives
    ----------
    ``fail_tasks``:
        Ordinals that raise a :class:`TransientSimulationError` **once**
        (a retry succeeds — models flaky numerical blowups).
    ``poison_tasks``:
        Ordinals whose circuit becomes permanently poisoned: the first and
        every subsequent attempt on that circuit *fingerprint* raises
        :class:`SimulationError` (models a circuit that deterministically
        crashes the backend).
    ``degrade_tasks``:
        Ordinals that raise :class:`BackendUnavailableError` once — the
        engine walks its degradation ladder instead of failing the slot.
    ``kill_tasks``:
        Ordinals whose pool worker dies via ``os._exit`` (the parent sees
        ``BrokenProcessPool`` and exercises respawn + chunk retry).  On the
        in-process path the directive raises :class:`WorkerCrashError`
        instead — killing would take the parent down.
    ``latency``:
        ``{ordinal: seconds}`` of injected sleep before the task runs
        (drives the timeout path).
    ``corrupt_reads``:
        Persistent-cache read ordinals whose entry file gets a byte flipped
        *before* the read (drives the quarantine path).
    ``fail_writes``:
        Persistent-cache write ordinals that behave as an I/O error (drives
        the cache degradation ladder).
    """

    def __init__(
        self,
        fail_tasks: Iterable[int] = (),
        poison_tasks: Iterable[int] = (),
        degrade_tasks: Iterable[int] = (),
        kill_tasks: Iterable[int] = (),
        latency: Mapping[int, float] | None = None,
        corrupt_reads: Iterable[int] = (),
        fail_writes: Iterable[int] = (),
    ) -> None:
        self.fail_tasks = frozenset(int(i) for i in fail_tasks)
        self.poison_tasks = frozenset(int(i) for i in poison_tasks)
        self.degrade_tasks = frozenset(int(i) for i in degrade_tasks)
        self.kill_tasks = frozenset(int(i) for i in kill_tasks)
        self.latency = {int(k): float(v) for k, v in (latency or {}).items()}
        self.corrupt_reads = frozenset(int(i) for i in corrupt_reads)
        self.fail_writes = frozenset(int(i) for i in fail_writes)
        # Mutable state lives in the parent process only: directives are
        # resolved before dispatch, so worker-side execution is stateless.
        self.tasks_dispatched = 0
        self.cache_reads = 0
        self.cache_writes = 0
        self.faults_injected = 0
        self.poisoned_fingerprints: set[str] = set()

    # -- task directives ------------------------------------------------

    def take_directive(self, fingerprint: str | None) -> tuple[str, float | None] | None:
        """Directive for the next dispatched task (consumes one ordinal)."""
        ordinal = self.tasks_dispatched
        self.tasks_dispatched += 1
        if fingerprint is not None and fingerprint in self.poisoned_fingerprints:
            self.faults_injected += 1
            return ("poison", None)
        if ordinal in self.poison_tasks:
            if fingerprint is not None:
                self.poisoned_fingerprints.add(fingerprint)
            self.faults_injected += 1
            return ("poison", None)
        if ordinal in self.fail_tasks:
            self.faults_injected += 1
            return ("fail", None)
        if ordinal in self.degrade_tasks:
            self.faults_injected += 1
            return ("degrade", None)
        if ordinal in self.kill_tasks:
            self.faults_injected += 1
            return ("kill", None)
        if ordinal in self.latency:
            self.faults_injected += 1
            return ("latency", self.latency[ordinal])
        return None

    def retry_directive(self, fingerprint: str | None) -> tuple[str, float | None] | None:
        """Directive for a *retry* attempt: only sticky poison re-fires."""
        if fingerprint is not None and fingerprint in self.poisoned_fingerprints:
            self.faults_injected += 1
            return ("poison", None)
        return None

    # -- cache hooks -----------------------------------------------------

    def on_cache_read(self) -> bool:
        """True if the entry behind this read should be corrupted first."""
        ordinal = self.cache_reads
        self.cache_reads += 1
        if ordinal in self.corrupt_reads:
            self.faults_injected += 1
            return True
        return False

    def on_cache_write(self) -> bool:
        """True if this write should fail as an I/O error."""
        ordinal = self.cache_writes
        self.cache_writes += 1
        if ordinal in self.fail_writes:
            self.faults_injected += 1
            return True
        return False

    @staticmethod
    def corrupt_file(path: str, offset: int | None = None) -> None:
        """Flip one byte of ``path`` in place (deterministic at ``offset``)."""
        try:
            with open(path, "r+b") as handle:
                data = handle.read()
                if not data:
                    return
                position = len(data) // 2 if offset is None else min(offset, len(data) - 1)
                handle.seek(position)
                handle.write(bytes([data[position] ^ 0xFF]))
        except OSError:  # pragma: no cover - racing eviction
            pass


def apply_injected_directive(
    directive: tuple[str, float | None] | None,
    *,
    fingerprint: str | None = None,
    method: str | None = None,
    in_worker: bool = False,
) -> None:
    """Execute a fault directive at a task's execution site.

    Called by pool workers (``in_worker=True``) and the engine's in-process
    path just before the simulation runs.  ``latency`` sleeps and returns
    (the task then runs normally); the fault directives raise; ``kill``
    terminates the worker process — or, in-process, raises
    :class:`WorkerCrashError` because killing would take the parent down.
    """
    if directive is None:
        return
    kind, arg = directive
    if kind == "latency":
        time.sleep(float(arg or 0.0))
        return
    if kind == "fail":
        raise TransientSimulationError(
            "injected transient fault", fingerprint=fingerprint, method=method, stage="simulate"
        )
    if kind == "poison":
        raise SimulationError(
            "injected poison circuit", fingerprint=fingerprint, method=method, stage="simulate"
        )
    if kind == "degrade":
        raise BackendUnavailableError(
            "injected backend failure", fingerprint=fingerprint, method=method, stage="simulate"
        )
    if kind == "kill":
        if in_worker:
            os._exit(86)
        raise WorkerCrashError(
            "injected worker crash (in-process)",
            fingerprint=fingerprint,
            method=method,
            stage="dispatch",
        )
    raise ValueError(f"unknown fault directive {kind!r}")
