"""Exact noisy simulation with density matrices.

Suitable for small circuits (the memory cost is ``4**n`` complex numbers);
:func:`repro.simulators.execute.execute` switches to the trajectory
simulator for wider circuits.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..circuits import QuantumCircuit, pauli_matrix
from ..distributions import ProbabilityDistribution
from ..noise import NoiseModel
from .apply import (
    apply_kraus_to_density_matrix,
    apply_matrix_to_density_matrix,
    apply_uniform_depolarizing_to_density_matrix,
    density_matrix_probabilities,
    reduced_density_matrix,
)
from .fusion import choose_fusion_width, fuse_circuit
from .kernels import apply_plan_to_density_matrix, resolve_backend
from .statevector import Statevector

__all__ = ["DensityMatrix", "simulate_density_matrix", "noisy_distribution_density_matrix"]


class DensityMatrix:
    """A (possibly mixed) state on ``num_qubits`` qubits."""

    def __init__(self, data: np.ndarray, num_qubits: int | None = None) -> None:
        array = np.asarray(data, dtype=complex)
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise ValueError("density matrix must be square")
        if num_qubits is None:
            num_qubits = int(round(np.log2(array.shape[0])))
        if 2**num_qubits != array.shape[0]:
            raise ValueError("density matrix dimension is not a power of two")
        self.num_qubits = num_qubits
        self.data = array

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zero_state(cls, num_qubits: int) -> "DensityMatrix":
        data = np.zeros((2**num_qubits, 2**num_qubits), dtype=complex)
        data[0, 0] = 1.0
        return cls(data, num_qubits)

    @classmethod
    def from_statevector(cls, state: Statevector) -> "DensityMatrix":
        return cls(np.outer(state.data, state.data.conj()), state.num_qubits)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def trace(self) -> float:
        return float(np.real(np.trace(self.data)))

    @property
    def purity(self) -> float:
        return float(np.real(np.trace(self.data @ self.data)))

    def probabilities(self, qubits: Sequence[int] | None = None) -> np.ndarray:
        return density_matrix_probabilities(self.data, qubits, self.num_qubits)

    def probability_distribution(self, qubits: Sequence[int] | None = None) -> ProbabilityDistribution:
        probs = self.probabilities(qubits)
        num_bits = self.num_qubits if qubits is None else len(list(qubits))
        total = probs.sum()
        if total > 0:
            probs = probs / total
        return ProbabilityDistribution(probs, num_bits)

    def reduced(self, qubits: Sequence[int]) -> "DensityMatrix":
        return DensityMatrix(reduced_density_matrix(self.data, qubits, self.num_qubits), len(list(qubits)))

    def expectation_pauli(self, pauli: Mapping[int, str] | str) -> float:
        if isinstance(pauli, str):
            if len(pauli) != self.num_qubits:
                raise ValueError("Pauli label length must equal num_qubits")
            support = [q for q, ch in enumerate(pauli) if ch.upper() != "I"]
            sub_label = "".join(pauli[q] for q in support)
        else:
            support = sorted(pauli)
            sub_label = "".join(pauli[q] for q in support)
        if not support:
            return self.trace
        rho = self.reduced(support).data
        return float(np.real(np.trace(rho @ pauli_matrix(sub_label))))

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------

    def evolve_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> "DensityMatrix":
        return DensityMatrix(
            apply_matrix_to_density_matrix(self.data, matrix, qubits, self.num_qubits),
            self.num_qubits,
        )

    def apply_channel(self, operators: Sequence[np.ndarray], qubits: Sequence[int]) -> "DensityMatrix":
        return DensityMatrix(
            apply_kraus_to_density_matrix(self.data, operators, qubits, self.num_qubits),
            self.num_qubits,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DensityMatrix(num_qubits={self.num_qubits}, purity={self.purity:.4f})"


def simulate_density_matrix(
    circuit: QuantumCircuit,
    noise_model: NoiseModel | None = None,
    initial_state: DensityMatrix | None = None,
    fusion: bool = False,
    fusion_max_qubits: int | None = None,
    kernel_backend: str | None = None,
) -> DensityMatrix:
    """Run the circuit, applying the noise model's channels after each gate.

    With ``fusion=True`` runs of adjacent gates are merged into single
    matrices first (noise placement unchanged — see
    :mod:`repro.simulators.fusion`); the result is identical up to floating
    point, with fewer large conjugations on lightly-noised circuits.
    Diagonal and permutation-structured blocks conjugate through the kernel
    tier's specialized fast paths (:mod:`repro.simulators.kernels`); dense
    blocks keep the generic two-sided tensordot conjugation.
    """
    noise_model = noise_model or NoiseModel.ideal()
    state = initial_state or DensityMatrix.zero_state(circuit.num_qubits)
    if state.num_qubits != circuit.num_qubits:
        raise ValueError("initial state width does not match the circuit")
    rho = state.data
    backend = resolve_backend(kernel_backend)
    width = choose_fusion_width(circuit.num_qubits, 1, fusion_max_qubits)
    program = fuse_circuit(circuit, noise_model, max_qubits=width if fusion else 0)
    for op in program.operations:
        fast = apply_plan_to_density_matrix(rho, op.kernel, backend)
        if fast is not None:
            rho = fast
        else:
            rho = apply_matrix_to_density_matrix(
                rho, op.matrix, op.qubits, circuit.num_qubits
            )
        for channel, qubits in op.sites:
            depolarizing = channel.uniform_depolarizing_probability()
            if depolarizing is not None:
                rho = apply_uniform_depolarizing_to_density_matrix(
                    rho, depolarizing, qubits, circuit.num_qubits
                )
            else:
                rho = apply_kraus_to_density_matrix(
                    rho, channel.operators, qubits, circuit.num_qubits
                )
    return DensityMatrix(rho, circuit.num_qubits)


def noisy_distribution_density_matrix(
    circuit: QuantumCircuit,
    noise_model: NoiseModel | None = None,
    initial_state: DensityMatrix | None = None,
    fusion: bool = False,
    fusion_max_qubits: int | None = None,
    kernel_backend: str | None = None,
) -> tuple[ProbabilityDistribution, list[int]]:
    """Exact noisy output distribution over the measured clbits.

    Returns the distribution and the list of measured qubits in clbit order
    (bit ``i`` of an outcome corresponds to ``qubits[i]``).  Readout errors
    from the noise model are applied as classical confusion on the
    distribution.
    """
    noise_model = noise_model or NoiseModel.ideal()
    state = simulate_density_matrix(
        circuit,
        noise_model,
        initial_state,
        fusion=fusion,
        fusion_max_qubits=fusion_max_qubits,
        kernel_backend=kernel_backend,
    )
    qubits = circuit.measurement_layout()
    distribution = state.probability_distribution(qubits)
    for bit, qubit in enumerate(qubits):
        error = noise_model.readout_error(qubit)
        if error is not None:
            # Asymmetric errors need the full confusion treatment; apply the
            # 2x2 confusion exactly per bit.
            distribution = _apply_confusion_bit(distribution, bit, error.confusion_matrix)
    return distribution, qubits


def _apply_confusion_bit(
    distribution: ProbabilityDistribution, bit: int, confusion: np.ndarray
) -> ProbabilityDistribution:
    updated: dict[int, float] = {}
    for outcome, prob in distribution.items():
        actual = (outcome >> bit) & 1
        for measured in (0, 1):
            weight = confusion[measured, actual]
            if weight <= 0:
                continue
            new_outcome = (outcome & ~(1 << bit)) | (measured << bit)
            updated[new_outcome] = updated.get(new_outcome, 0.0) + prob * weight
    return ProbabilityDistribution(updated, distribution.num_bits)
