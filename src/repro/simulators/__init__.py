"""Statevector, density-matrix and trajectory simulators."""

from .density_matrix import (
    DensityMatrix,
    noisy_distribution_density_matrix,
    simulate_density_matrix,
)
from .execute import DEFAULT_DENSITY_MATRIX_THRESHOLD, execute
from .result import ExecutionResult
from .statevector import Statevector, ideal_distribution, simulate_statevector
from .trajectory import simulate_trajectories

__all__ = [
    "Statevector",
    "DensityMatrix",
    "ExecutionResult",
    "simulate_statevector",
    "simulate_density_matrix",
    "simulate_trajectories",
    "noisy_distribution_density_matrix",
    "ideal_distribution",
    "execute",
    "DEFAULT_DENSITY_MATRIX_THRESHOLD",
]
