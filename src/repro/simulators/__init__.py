"""Statevector, density-matrix, trajectory and stabilizer-tableau simulators,
plus the batched cached :class:`ExecutionEngine` front-end with
process-parallel sharding and a persistent on-disk result cache (see
``docs/architecture.md``)."""

from .cache import CACHE_FORMAT_VERSION, PersistentResultCache
from .density_matrix import (
    DensityMatrix,
    noisy_distribution_density_matrix,
    simulate_density_matrix,
)
from .engine import (
    EngineStats,
    ExecutionEngine,
    circuit_fingerprint,
    get_default_engine,
)
from .ensemble import simulate_trajectories_ensemble
from .execute import DEFAULT_DENSITY_MATRIX_THRESHOLD, execute, execute_many
from .faults import (
    BackendUnavailableError,
    CacheCorruptionError,
    EngineInvariantError,
    ExecutionFault,
    FaultInjector,
    RetryPolicy,
    SimulationError,
    TaskTimeoutError,
    TranspilationError,
    TransientSimulationError,
    WorkerCrashError,
)
from .parallel import CompactTask, ParallelSharder, run_compact_task
from .fusion import (
    DEFAULT_FUSION_MAX_QUBITS,
    FusedOperation,
    FusedProgram,
    choose_fusion_width,
    fuse_circuit,
)
from .kernels import (
    KernelPlan,
    kernel_dispatch_counts,
    numba_available,
    reset_kernel_dispatch_counts,
    resolve_backend,
)
from .result import ExecutionResult, FailedResult
from .stabilizer import (
    StabilizerTableau,
    is_clifford_program,
    simulate_stabilizer_trajectories,
)
from .statevector import Statevector, ideal_distribution, simulate_statevector
from .trajectory import simulate_trajectories, simulate_trajectories_batched

__all__ = [
    "Statevector",
    "DensityMatrix",
    "ExecutionResult",
    "FailedResult",
    "ExecutionEngine",
    "EngineStats",
    "ExecutionFault",
    "SimulationError",
    "TransientSimulationError",
    "BackendUnavailableError",
    "TranspilationError",
    "WorkerCrashError",
    "TaskTimeoutError",
    "CacheCorruptionError",
    "EngineInvariantError",
    "RetryPolicy",
    "FaultInjector",
    "PersistentResultCache",
    "CACHE_FORMAT_VERSION",
    "CompactTask",
    "ParallelSharder",
    "run_compact_task",
    "execute_many",
    "FusedOperation",
    "FusedProgram",
    "circuit_fingerprint",
    "fuse_circuit",
    "get_default_engine",
    "simulate_statevector",
    "simulate_density_matrix",
    "simulate_trajectories",
    "simulate_trajectories_batched",
    "simulate_trajectories_ensemble",
    "StabilizerTableau",
    "is_clifford_program",
    "simulate_stabilizer_trajectories",
    "noisy_distribution_density_matrix",
    "ideal_distribution",
    "execute",
    "DEFAULT_DENSITY_MATRIX_THRESHOLD",
    "DEFAULT_FUSION_MAX_QUBITS",
    "choose_fusion_width",
    "KernelPlan",
    "kernel_dispatch_counts",
    "reset_kernel_dispatch_counts",
    "resolve_backend",
    "numba_available",
]
