"""Ensemble trajectory simulation: one gate kernel per batch, not per trajectory.

:func:`~repro.simulators.trajectory.simulate_trajectories_batched` pre-samples
noise insertions but still evolves each trajectory in its own Python loop —
``num_trajectories x num_gates`` small ``tensordot`` calls, dominated by numpy
dispatch overhead for the compacted 2-6 qubit circuits of subset-tracing
workloads.  This module carries all ``T`` trajectories as a single
``(T, 2**n)`` array and applies each (fused) gate **once** to the whole batch:

* **Batched gate kernel** — :func:`~repro.simulators.apply.apply_matrix_to_statevector_batch`
  contracts the gate against the state axes with the trajectory axis
  untouched.
* **Grouped stochastic insertions** — for unitary-mixture channels the
  operator index is pre-sampled per (site, trajectory); the trajectories
  that drew each distinct non-identity operator are fancy-indexed out as a
  sub-batch, the unitary is applied once to the sub-batch, and the rows are
  scattered back.  General (non-unitary-mixture) channels fall back to exact
  per-trajectory Born sampling *for the affected sites only*.
* **Gate fusion** — the circuit is lowered through
  :func:`~repro.simulators.fusion.fuse_circuit`, so runs of adjacent gates
  sharing ≤ ``fusion_max_qubits`` wires cost one batched kernel.
* **Vectorized shot sampling** — measurement outcomes for every trajectory
  are drawn in one inverse-CDF pass over the ``(T, 2**m)`` probability
  block instead of a per-trajectory ``rng.choice`` loop.

Wide ensembles are processed in chunks of at most ``max_batch_elements``
state amplitudes so the batch never exceeds a fixed memory budget.

The RNG stream differs from both samplers in :mod:`repro.simulators.trajectory`
(which remain the reference implementations), so results agree in
distribution but not shot-for-shot; fixed seeds are reproducible.
"""

from __future__ import annotations

import numpy as np

from ..circuits import QuantumCircuit
from ..distributions import Counts
from ..noise import NoiseModel
from .apply import apply_matrix_to_statevector_batch, statevector_probabilities_batch
from .fusion import choose_fusion_width, fuse_circuit
from .kernels import apply_fused_operation, resolve_backend
from .trajectory import (
    _apply_channel_stochastically,
    _counts_from_outcomes,
    _trajectory_plan,
)

__all__ = ["simulate_trajectories_ensemble"]

# Amplitude budget per chunk: chunk_size * 2**n <= this (complex128, ~128 MiB).
DEFAULT_MAX_BATCH_ELEMENTS = 1 << 23


def simulate_trajectories_ensemble(
    circuit: QuantumCircuit,
    noise_model: NoiseModel | None = None,
    shots: int = 4096,
    seed: int | None = None,
    max_trajectories: int = 600,
    fusion: bool = True,
    fusion_max_qubits: int | None = None,
    max_batch_elements: int = DEFAULT_MAX_BATCH_ELEMENTS,
    kernel_backend: str | None = None,
) -> tuple[Counts, list[int]]:
    """Sample ``shots`` noisy measurement outcomes from a trajectory ensemble.

    Same interface and statistics as
    :func:`~repro.simulators.trajectory.simulate_trajectories`; see the
    module docstring for how the inner loops differ.  ``fusion=False`` runs
    the exact gate-by-gate program (one block per gate), which is the
    like-for-like baseline for the fused path.  ``fusion_max_qubits=None``
    lets :func:`~repro.simulators.fusion.choose_fusion_width` size blocks
    from the trajectory batch; ``kernel_backend`` routes classified blocks
    (see :mod:`repro.simulators.kernels`; ``None`` reads
    ``REPRO_KERNEL_BACKEND``).
    """
    noise_model = noise_model or NoiseModel.ideal()
    rng = np.random.default_rng(seed)
    measured_qubits = circuit.measurement_layout()
    num_trajectories, shots_per_trajectory = _trajectory_plan(
        shots, noise_model, max_trajectories
    )
    shots_per_trajectory = np.asarray(shots_per_trajectory)

    num_qubits = circuit.num_qubits
    backend = resolve_backend(kernel_backend)
    width = choose_fusion_width(num_qubits, num_trajectories, fusion_max_qubits)
    program = fuse_circuit(circuit, noise_model, max_qubits=width if fusion else 0)
    dim = 2**num_qubits
    chunk_size = max(1, min(num_trajectories, max_batch_elements // dim))

    all_outcomes: list[np.ndarray] = []
    for start in range(0, num_trajectories, chunk_size):
        chunk_shots = shots_per_trajectory[start : start + chunk_size]
        states = _evolve_ensemble(program, len(chunk_shots), num_qubits, rng, backend)
        probs = statevector_probabilities_batch(states, measured_qubits, num_qubits)
        probs = np.clip(probs, 0.0, None)
        probs /= probs.sum(axis=1, keepdims=True)
        all_outcomes.append(_sample_outcomes_inverse_cdf(probs, chunk_shots, rng))

    return _counts_from_outcomes(all_outcomes, noise_model, measured_qubits, rng), measured_qubits


def _evolve_ensemble(
    program, batch: int, num_qubits: int, rng, backend: str = "numpy"
) -> np.ndarray:
    """Run ``batch`` independent noise realisations through a fused program.

    Fused blocks route through the kernel tier on their fusion-time
    classification; the noise-mixture sub-batch applications below stay on
    the generic path (they are rare, state-dependent, and keeping them off
    the dispatch counters pins ``kernel_dispatch_counts`` to exactly one
    increment per fused block).
    """
    states = np.zeros((batch, 2**num_qubits), dtype=complex)
    states[:, 0] = 1.0
    for op in program.operations:
        states = apply_fused_operation(
            states, op.kernel, op.matrix, op.qubits, num_qubits,
            backend=backend, inplace=True,
        )
        for channel, qubits in op.sites:
            mixture = channel.unitary_mixture()
            if mixture is None:
                # Non-unitary-mixture channel: Born probabilities depend on
                # the state, so only this site pays the per-trajectory cost.
                for t in range(batch):
                    states[t] = _apply_channel_stochastically(
                        states[t], channel.operators, qubits, num_qubits, rng
                    )
                continue
            probabilities, unitaries, identity_flags = mixture
            indices = rng.choice(len(unitaries), size=batch, p=probabilities)
            for index in np.unique(indices):
                if identity_flags[index]:
                    continue
                selected = np.nonzero(indices == index)[0]
                states[selected] = apply_matrix_to_statevector_batch(
                    states[selected], unitaries[index], qubits, num_qubits
                )
    return states


def _sample_outcomes_inverse_cdf(
    probs: np.ndarray, shots_per_row: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``shots_per_row[t]`` outcomes from row ``t`` of a probability
    block in one pass.

    Each row's CDF is offset by its row index, making the flattened array
    globally non-decreasing, so a single :func:`numpy.searchsorted` resolves
    every (trajectory, shot) pair at once.
    """
    total = int(shots_per_row.sum())
    num_rows, num_outcomes = probs.shape
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    cdf = np.cumsum(probs, axis=1)
    cdf[:, -1] = 1.0  # guard against round-off at the top of each row
    rows = np.repeat(np.arange(num_rows), shots_per_row)
    flat = (cdf + np.arange(num_rows)[:, None]).ravel()
    positions = np.searchsorted(flat, rows + rng.random(total), side="right")
    return positions - rows * num_outcomes
