"""Execution results returned by :func:`repro.simulators.execute.execute`.

A batch run in isolated-failure mode (``execute_many(on_error="isolate")``)
returns a :class:`FailedResult` in the slot of each circuit that could not
be executed; healthy slots carry :class:`ExecutionResult` as usual.  Both
expose ``ok`` so callers can filter without ``isinstance`` checks.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..distributions import Counts, ProbabilityDistribution

__all__ = ["ExecutionResult", "FailedResult"]


@dataclasses.dataclass
class ExecutionResult:
    """Output of a (possibly noisy) circuit execution.

    Attributes
    ----------
    distribution:
        Probability distribution over the measured bits.  Bit ``i`` of an
        outcome corresponds to ``measured_qubits[i]``.
    measured_qubits:
        Qubits backing each bit of the distribution, in clbit order.
    counts:
        Raw shot counts when the execution was sampled (``None`` for exact
        methods without sampling).
    shots:
        Number of shots sampled, if any.
    method:
        Simulation method actually used: ``"statevector"``,
        ``"density_matrix"`` or ``"trajectory"``.
    metadata:
        Free-form extras (e.g. the noise model name).
    """

    distribution: ProbabilityDistribution
    measured_qubits: list[int]
    counts: Counts | None = None
    shots: int | None = None
    method: str = "statevector"
    metadata: dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Healthy result — the counterpart of :attr:`FailedResult.ok`."""
        return True

    @property
    def num_bits(self) -> int:
        return self.distribution.num_bits

    def bit_for_qubit(self, qubit: int) -> int:
        """Position of ``qubit`` inside the outcome bitstrings."""
        try:
            return self.measured_qubits.index(qubit)
        except ValueError as exc:
            raise KeyError(f"qubit {qubit} was not measured") from exc

    def marginal_for_qubits(self, qubits: list[int]) -> ProbabilityDistribution:
        """Marginal distribution over the given qubits (in the given order)."""
        bits = [self.bit_for_qubit(q) for q in qubits]
        return self.distribution.marginal(bits)


@dataclasses.dataclass
class FailedResult:
    """Placeholder slot for a circuit that failed in isolated-failure mode.

    Returned by ``execute_many(on_error="isolate")`` in the position of each
    circuit whose execution (or compilation) failed after retry and
    degradation were exhausted.  Carries the structured fault so the caller
    can triage without re-running:

    Attributes
    ----------
    error:
        The terminal :class:`~repro.simulators.faults.ExecutionFault`.
    fingerprint / method / stage:
        Context mirrored off the fault for quick filtering: the offending
        circuit's content fingerprint, the resolved simulation method, and
        the pipeline stage that failed.
    attempts:
        Execution attempts consumed (1 = failed on first try, no retry).
    """

    error: Exception
    fingerprint: str | None = None
    method: str | None = None
    stage: str | None = None
    attempts: int = 1
    metadata: dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return False

    def raise_error(self) -> None:
        """Re-raise the terminal fault (for callers that want raise semantics)."""
        raise self.error
