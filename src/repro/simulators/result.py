"""Execution results returned by :func:`repro.simulators.execute.execute`."""

from __future__ import annotations

import dataclasses
from typing import Any

from ..distributions import Counts, ProbabilityDistribution

__all__ = ["ExecutionResult"]


@dataclasses.dataclass
class ExecutionResult:
    """Output of a (possibly noisy) circuit execution.

    Attributes
    ----------
    distribution:
        Probability distribution over the measured bits.  Bit ``i`` of an
        outcome corresponds to ``measured_qubits[i]``.
    measured_qubits:
        Qubits backing each bit of the distribution, in clbit order.
    counts:
        Raw shot counts when the execution was sampled (``None`` for exact
        methods without sampling).
    shots:
        Number of shots sampled, if any.
    method:
        Simulation method actually used: ``"statevector"``,
        ``"density_matrix"`` or ``"trajectory"``.
    metadata:
        Free-form extras (e.g. the noise model name).
    """

    distribution: ProbabilityDistribution
    measured_qubits: list[int]
    counts: Counts | None = None
    shots: int | None = None
    method: str = "statevector"
    metadata: dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def num_bits(self) -> int:
        return self.distribution.num_bits

    def bit_for_qubit(self, qubit: int) -> int:
        """Position of ``qubit`` inside the outcome bitstrings."""
        try:
            return self.measured_qubits.index(qubit)
        except ValueError as exc:
            raise KeyError(f"qubit {qubit} was not measured") from exc

    def marginal_for_qubits(self, qubits: list[int]) -> ProbabilityDistribution:
        """Marginal distribution over the given qubits (in the given order)."""
        bits = [self.bit_for_qubit(q) for q in qubits]
        return self.distribution.marginal(bits)
