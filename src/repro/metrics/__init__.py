"""Unified metrics & health subsystem.

The aggregate companion to :mod:`repro.tracing`: a thread-safe
:class:`MetricsRegistry` of counters, gauges, and latency histograms
(fixed log-spaced buckets + streaming p50/p95/p99), Prometheus/JSON
exposition, atomic JSONL snapshot persistence, and a
``python -m repro.metrics`` CLI (``summarize`` / ``diff`` / ``watch``).

The package is dependency-free within ``repro`` — the engine imports
metrics, never vice versa — so the CLI works on a bare snapshot
directory.  See ``docs/architecture.md`` for the instrument catalog and
label conventions.
"""

from .export import METRICS_FORMAT, METRICS_FORMAT_VERSION, to_json, to_prometheus
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_global_registry,
)
from .snapshot import MetricsStore, load_snapshot

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "METRICS_FORMAT",
    "METRICS_FORMAT_VERSION",
    "MetricsRegistry",
    "MetricsStore",
    "get_global_registry",
    "load_snapshot",
    "to_json",
    "to_prometheus",
]
