"""Versioned JSONL persistence for metrics snapshots.

One snapshot = one file, ``metrics-<stamp>.jsonl``: a header line naming
the format and schema version, then one JSON object per metric family.
Files are published atomically (temp file + ``os.replace``) so a reader —
including a concurrent ``repro.metrics watch`` — never observes a torn
snapshot, mirroring the trace store's publish discipline.

Writes never raise: a full disk or read-only tree increments
:attr:`MetricsStore.write_errors` and the process continues with the live
in-memory registry.  Loads are strict — a missing or alien header is a
``ValueError``, because a snapshot that cannot be attributed to a schema
version cannot be diffed safely.
"""

from __future__ import annotations

import itertools
import json
import os
import tempfile
import time

from .export import METRICS_FORMAT, METRICS_FORMAT_VERSION
from .registry import MetricsRegistry

__all__ = ["MetricsStore", "load_snapshot"]

_sequence = itertools.count()


class MetricsStore:
    """Directory of JSONL metrics-snapshot artifacts."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.write_errors = 0
        self.last_path: str | None = None

    def path_for(self, snapshot_id: str) -> str:
        return os.path.join(self.root, f"metrics-{snapshot_id}.jsonl")

    def write(self, registry: MetricsRegistry, snapshot_id: str | None = None) -> str | None:
        """Persist one snapshot; returns its path (None on failure)."""
        if snapshot_id is None:
            # Monotonic-enough and collision-free across processes and
            # rapid successive flushes within one process.
            snapshot_id = f"{time.time_ns():017d}-{os.getpid()}-{next(_sequence)}"
        families = registry.collect()
        header = {
            "format": METRICS_FORMAT,
            "version": METRICS_FORMAT_VERSION,
            "snapshot_id": snapshot_id,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "metrics": len(families),
        }
        dumps = json.dumps
        lines = [dumps(header, separators=(",", ":"))]
        lines.extend(dumps(family, separators=(",", ":")) for family in families)
        payload = "\n".join(lines) + "\n"
        path = self.path_for(snapshot_id)
        try:
            fd, temp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(temp_path, path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except OSError:
            self.write_errors += 1
            return None
        self.last_path = path
        return path

    def list(self) -> list[str]:
        """Snapshot file paths, oldest first (by mtime, then name)."""
        entries = []
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        for name in names:
            if not (name.startswith("metrics-") and name.endswith(".jsonl")):
                continue
            path = os.path.join(self.root, name)
            try:
                mtime = os.stat(path).st_mtime
            except OSError:
                continue
            entries.append((mtime, name, path))
        return [path for _, _, path in sorted(entries)]


def load_snapshot(path: str) -> tuple[dict, list[dict]]:
    """Load ``(header, families)`` from a snapshot; strict on format."""
    with open(path, "r") as handle:
        lines = [line for line in handle.read().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty metrics snapshot")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("format") != METRICS_FORMAT:
        raise ValueError(f"{path}: not a {METRICS_FORMAT} file")
    if header.get("version") != METRICS_FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported metrics version {header.get('version')!r} "
            f"(expected {METRICS_FORMAT_VERSION})"
        )
    families = [json.loads(line) for line in lines[1:]]
    return header, families
