"""Process-wide, thread-safe metrics registry.

The aggregate companion to the per-call trace layer (:mod:`repro.tracing`):
traces answer "what happened in *this* batch", the registry answers "what
has this process been doing" — live hit rates, per-stage latency quantiles,
health gauges — the view a long-lived execution service is monitored by.

Three instrument kinds, all **labeled families** of series:

* :class:`Counter` — monotone event counts (``inc``).  Bridged counters
  (values copied from an authoritative source such as ``EngineStats`` or a
  cache's own tallies) use :meth:`CounterSeries.set` so the registry can
  never drift from the source.
* :class:`Gauge` — point-in-time values (``set``/``inc``/``dec``), including
  the ``*_info`` convention: a gauge family labeled by a string state (e.g.
  ``reason=...``) whose single live series has value 1.
* :class:`Histogram` — latency distributions over **fixed log-spaced
  buckets** (compatible with Prometheus histogram semantics) *plus*
  streaming p50/p95/p99 estimates (the P² algorithm: constant memory, no
  sample retention) and min/max.

Label conventions
-----------------
Label names are fixed per family at registration; label values are
stringified.  ``MetricsRegistry(base_labels=...)`` stamps a constant label
set onto every exported series — this is the hook a future multi-tenant
service uses to add ``tenant=`` without touching any instrumentation site.

Concurrency contract
--------------------
Registration and series creation are lock-protected; counter/gauge writes
are single-store updates and histogram observes take a per-series lock, so
**reads (scrapes/exports) are safe at any time, concurrent with
execution**.  Writers of one series are expected to be single-threaded
(the engine is single-threaded per instance); concurrent writers of
*different* series need no coordination.

Collectors
----------
``add_collector(fn)`` registers a zero-argument callable run at the start
of every :meth:`MetricsRegistry.collect` (and therefore every export and
snapshot).  Collectors refresh *bridged* series from their authoritative
sources — cache ``stats()`` dicts, the sharder, the trace store — so
scrape-time values are current without putting a registry write on any hot
path.  A collector that raises is counted (``collector_errors``) and
skipped: a scrape must never take down the scraped process.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from typing import Any, Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_global_registry",
]

# Fixed log-spaced latency buckets: 1-2.5-5 per decade from 1 µs to 50 s
# (24 upper bounds; +Inf is implicit).  Wide enough for a sub-ms cache hit
# and a multi-second wide-circuit simulation in one instrument, coarse
# enough that a scrape stays small.
DEFAULT_LATENCY_BUCKETS = tuple(
    round(mantissa * 10.0**exponent, 12)
    for exponent in range(-6, 2)
    for mantissa in (1.0, 2.5, 5.0)
)


class _P2Quantile:
    """Streaming quantile estimate via the P² algorithm (Jain & Chlamtac).

    Five markers track the running quantile in O(1) memory; below five
    observations the exact small-sample quantile is returned.  Accuracy is
    ~1% of the local density scale — plenty for latency telemetry.
    """

    __slots__ = ("p", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, p: float) -> None:
        self.p = float(p)
        self._heights: list[float] = []
        self._positions: list[int] = []
        self._desired: list[float] = []
        self._rates: tuple[float, ...] = ()

    def observe(self, x: float) -> None:
        heights = self._heights
        if len(heights) < 5 or not self._positions:
            heights.append(x)
            heights.sort()
            if len(heights) == 5:
                p = self.p
                self._positions = [1, 2, 3, 4, 5]
                self._desired = [1.0, 1 + 2 * p, 1 + 4 * p, 3 + 2 * p, 5.0]
                self._rates = (0.0, p / 2, p, (1 + p) / 2, 1.0)
            return
        q, n, desired = heights, self._positions, self._desired
        if x < q[0]:
            q[0] = x
            cell = 0
        elif x >= q[4]:
            q[4] = x
            cell = 3
        else:
            cell = 0
            while x >= q[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            n[i] += 1
        for i in range(5):
            desired[i] += self._rates[i]
        for i in (1, 2, 3):
            drift = desired[i] - n[i]
            if (drift >= 1 and n[i + 1] - n[i] > 1) or (drift <= -1 and n[i - 1] - n[i] < -1):
                step = 1 if drift >= 1 else -1
                candidate = self._parabolic(i, step)
                q[i] = candidate if q[i - 1] < candidate < q[i + 1] else self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        q, n = self._heights, self._positions
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: int) -> float:
        q, n = self._heights, self._positions
        return q[i] + step * (q[i + step] - q[i]) / (n[i + step] - n[i])

    @property
    def value(self) -> float | None:
        heights = self._heights
        if not heights:
            return None
        if not self._positions:  # fewer than 5 observations: exact
            ordered = sorted(heights)
            rank = max(0, min(len(ordered) - 1, math.ceil(self.p * len(ordered)) - 1))
            return ordered[rank]
        return heights[2]


class _Series:
    """One labeled time series of a family."""

    __slots__ = ("labels",)

    def __init__(self, labels: dict[str, str]) -> None:
        self.labels = labels


class CounterSeries(_Series):
    __slots__ = ("value",)

    def __init__(self, labels: dict[str, str]) -> None:
        super().__init__(labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for signed values")
        self.value = self.value + amount

    def set(self, value: float) -> None:
        """Bridge/reset write: copy the authoritative source's tally.

        For series whose truth lives elsewhere (``EngineStats`` fields,
        cache ``stats()`` dicts) — and for explicit resets — the registry
        mirrors rather than accumulates, so the two can never drift.
        """
        self.value = value

    def _snapshot(self) -> dict:
        return {"value": self.value}


class GaugeSeries(_Series):
    __slots__ = ("value",)

    def __init__(self, labels: dict[str, str]) -> None:
        super().__init__(labels)
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value = self.value + amount

    def dec(self, amount: float = 1) -> None:
        self.value = self.value - amount

    def _snapshot(self) -> dict:
        return {"value": self.value}


class HistogramSeries(_Series):
    __slots__ = ("_lock", "bounds", "_bucket_counts", "count", "sum", "min", "max", "_quantiles")

    QUANTILES = (0.5, 0.95, 0.99)

    def __init__(self, labels: dict[str, str], bounds: tuple[float, ...]) -> None:
        super().__init__(labels)
        self._lock = threading.Lock()
        self.bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # trailing +Inf bucket
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._quantiles = tuple(_P2Quantile(p) for p in self.QUANTILES)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            bounds = self.bounds
            lo, hi = 0, len(bounds)
            while lo < hi:  # first bound >= value
                mid = (lo + hi) // 2
                if value <= bounds[mid]:
                    hi = mid
                else:
                    lo = mid + 1
            self._bucket_counts[lo] += 1
            for estimator in self._quantiles:
                estimator.observe(value)

    def quantile(self, p: float) -> float | None:
        for estimator in self._quantiles:
            if estimator.p == p:
                return estimator.value
        raise KeyError(f"no streaming estimator for quantile {p}")

    def _snapshot(self) -> dict:
        with self._lock:
            cumulative = []
            running = 0
            for bound, bucket in zip(self.bounds, self._bucket_counts):
                running += bucket
                cumulative.append([bound, running])
            return {
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "buckets": cumulative,
                "quantiles": {
                    str(estimator.p): estimator.value for estimator in self._quantiles
                },
            }


class _Family:
    """A named instrument: metadata plus its labeled series."""

    kind = "untyped"
    _series_cls: type[_Series] = _Series

    def __init__(self, registry: "MetricsRegistry", name: str, help: str, labelnames: tuple[str, ...]) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._series: "OrderedDict[tuple[str, ...], _Series]" = OrderedDict()

    def labels(self, **labelvalues: Any) -> Any:
        """The series for this label-value set (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        series = self._series.get(key)
        if series is None:
            with self._registry._lock:
                series = self._series.get(key)
                if series is None:
                    series = self._new_series(dict(zip(self.labelnames, key)))
                    self._series[key] = series
        return series

    def _new_series(self, labels: dict[str, str]) -> _Series:
        return self._series_cls(labels)

    def clear(self) -> None:
        """Drop every series (the ``*_info`` state-change idiom)."""
        with self._registry._lock:
            self._series.clear()

    # Label-free convenience: a family with no labelnames acts as its own
    # single series, so ``registry.counter("x").inc()`` just works.
    def _default(self) -> Any:
        return self.labels()

    def series_snapshots(self) -> list[tuple[dict[str, str], dict]]:
        """``(labels, payload)`` per live series — the read-side API."""
        with self._registry._lock:
            series = list(self._series.values())
        base = self._registry.base_labels
        return [({**base, **s.labels}, s._snapshot()) for s in series]

    def _snapshot(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": [
                {"labels": labels, **payload} for labels, payload in self.series_snapshots()
            ],
        }


class Counter(_Family):
    kind = "counter"
    _series_cls = CounterSeries

    def inc(self, amount: float = 1) -> None:
        self._default().inc(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    @property
    def value(self) -> float:
        return self._default().value


class Gauge(_Family):
    kind = "gauge"
    _series_cls = GaugeSeries

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self._default().dec(amount)

    @property
    def value(self) -> float:
        return self._default().value


class Histogram(_Family):
    kind = "histogram"

    def __init__(self, registry, name, help, labelnames, buckets: tuple[float, ...]) -> None:
        super().__init__(registry, name, help, labelnames)
        self.buckets = buckets

    def _new_series(self, labels: dict[str, str]) -> HistogramSeries:
        return HistogramSeries(labels, self.buckets)

    def observe(self, value: float) -> None:
        self._default().observe(value)


class MetricsRegistry:
    """A process-wide (or per-engine) collection of metric families.

    Parameters
    ----------
    base_labels:
        Constant labels stamped onto every exported series.  Empty today;
        the designed slot for a future ``tenant=`` dimension — a
        multi-tenant service builds one registry per tenant with
        ``base_labels={"tenant": ...}`` and merges exports, with zero
        changes at any instrumentation site.
    """

    def __init__(self, base_labels: dict[str, str] | None = None) -> None:
        self._lock = threading.RLock()
        self._metrics: "OrderedDict[str, _Family]" = OrderedDict()
        self._collectors: list[Callable[[], None]] = []
        self.base_labels = {k: str(v) for k, v in (base_labels or {}).items()}
        self.collector_errors = 0

    # ------------------------------------------------------------------
    # Registration (idempotent per name; kind conflicts are errors)
    # ------------------------------------------------------------------

    def _register(self, cls, name: str, help: str, labelnames, **extra) -> Any:
        with self._lock:
            family = self._metrics.get(name)
            if family is not None:
                if not isinstance(family, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind}, "
                        f"not {cls.kind}"
                    )
                return family
            family = cls(self, name, help, tuple(labelnames), **extra)
            self._metrics[name] = family
            return family

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] | None = None,
    ) -> Histogram:
        bounds = tuple(sorted(buckets)) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        return self._register(Histogram, name, help, labelnames, buckets=bounds)

    def get(self, name: str) -> _Family | None:
        """The registered family, or ``None`` — the read-side lookup."""
        with self._lock:
            return self._metrics.get(name)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def add_collector(self, collector: Callable[[], None]) -> None:
        """Run ``collector()`` before every collect/export/snapshot.

        Collectors refresh bridged series from their authoritative sources
        (cache ``stats()``, the trace store, ...) so scrapes are current
        without hot-path writes.
        """
        with self._lock:
            self._collectors.append(collector)

    def remove_collector(self, collector: Callable[[], None]) -> None:
        with self._lock:
            try:
                self._collectors.remove(collector)
            except ValueError:
                pass

    def collect(self) -> list[dict]:
        """Snapshot every family (collectors run first; they never raise out).

        Safe to call from any thread at any time — including concurrently
        with execution — which is the whole point of a scrape endpoint.
        """
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                collector()
            except Exception:  # a broken collector must not break the scrape
                self.collector_errors += 1
        with self._lock:
            families = list(self._metrics.values())
        return [family._snapshot() for family in families]


_global_registry: MetricsRegistry | None = None
_global_lock = threading.Lock()


def get_global_registry() -> MetricsRegistry:
    """The process-wide shared registry.

    Engines default to a private registry (tests and independent consumers
    must not see each other's counters); pass
    ``ExecutionEngine(metrics=get_global_registry())`` to publish into the
    process-wide view instead — :func:`~repro.simulators.get_default_engine`
    does exactly that.
    """
    global _global_registry
    with _global_lock:
        if _global_registry is None:
            _global_registry = MetricsRegistry()
        return _global_registry
