"""Exposition: render a registry for scrapers and snapshots.

Two formats, one source of truth (:meth:`MetricsRegistry.collect`):

* :func:`to_prometheus` — Prometheus text exposition format v0.0.4
  (``# HELP``/``# TYPE`` preamble, one sample line per series; histograms
  expand to cumulative ``_bucket{le=...}`` samples plus ``_sum`` and
  ``_count``).  Streaming quantiles are **not** emitted here — one metric
  name cannot be both a histogram and a summary — Prometheus consumers
  derive quantiles from the buckets; exact streaming estimates live in the
  JSON form and the CLI.
* :func:`to_json` — the full structured snapshot (buckets *and* p50/p95/p99,
  min/max), used by the JSONL snapshot store and the ``repro.metrics`` CLI.

Both run collectors via ``collect()`` and are safe to call from any thread
concurrently with execution.
"""

from __future__ import annotations

import time

from .registry import MetricsRegistry

__all__ = ["to_json", "to_prometheus", "METRICS_FORMAT", "METRICS_FORMAT_VERSION"]

# Snapshot schema identity, mirrored by the JSONL store's header line.
METRICS_FORMAT = "repro-metrics"
METRICS_FORMAT_VERSION = 1


def to_json(registry: MetricsRegistry, snapshot_id: str | None = None) -> dict:
    """The full registry state as one JSON-serializable document."""
    document = {
        "format": METRICS_FORMAT,
        "version": METRICS_FORMAT_VERSION,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "metrics": registry.collect(),
    }
    if snapshot_id is not None:
        document["snapshot_id"] = snapshot_id
    return document


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _labels_text(labels: dict[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*labels.items(), *extra]
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(str(value))}"' for name, value in pairs)
    return "{" + body + "}"


def _number(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format v0.0.4."""
    lines: list[str] = []
    for family in registry.collect():
        name = family["name"]
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {family['type']}")
        for series in family["series"]:
            labels = series.get("labels", {})
            if family["type"] == "histogram":
                for bound, cumulative in series.get("buckets", []):
                    lines.append(
                        f"{name}_bucket{_labels_text(labels, (('le', _number(float(bound))),))} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{name}_bucket{_labels_text(labels, (('le', '+Inf'),))} {series['count']}"
                )
                lines.append(f"{name}_sum{_labels_text(labels)} {_number(series['sum'])}")
                lines.append(f"{name}_count{_labels_text(labels)} {series['count']}")
            else:
                lines.append(f"{name}{_labels_text(labels)} {_number(series['value'])}")
    return "\n".join(lines) + "\n"
