"""Entry point for ``python -m repro.metrics``."""

from .cli import main

raise SystemExit(main())
