"""Command-line tooling for persisted metrics snapshots.

``python -m repro.metrics <command>``:

* ``summarize <snapshot>`` — per-stage latency lines (greppable
  ``stage <name>  n=... p50=... p95=... p99=...``), the engine hit-rate
  line, then every counter and gauge sample.
* ``diff <a> <b>`` — per-counter deltas and histogram count/sum shifts.
  Counters are monotone, so a counter that went *down* between two
  snapshots of one process is a regression (a reset, a double-flush from
  a stale process, or an accounting bug); any such series exits 1,
  otherwise the sentinel ``no counter regressions`` is printed.
* ``watch <dir>`` — poll a snapshot directory and print a one-line health
  summary whenever a new snapshot lands (``--interval``, and
  ``--iterations`` to bound the loop for scripts and tests).
* ``list <dir>`` — snapshot artifact paths, oldest first.

The module imports only the metrics package, never the simulator layer:
the CLI must work on a snapshot directory with nothing else installed
around it.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Sequence

from .snapshot import MetricsStore, load_snapshot

__all__ = ["main"]

# Canonical print order for engine stage rows; labels outside this list
# sort after it (e.g. calibration experiment names).
_STAGE_ORDER = ["prepare", "cache", "deliver", "execute", "calibration"]

_HIT_RATE_METRICS = (
    "repro_engine_requests_total",
    "repro_engine_cache_hits_total",
    "repro_engine_batch_dedup_hits_total",
)


def _families_by_name(families: list[dict]) -> dict[str, dict]:
    return {family["name"]: family for family in families}


def _series_signature(name: str, labels: dict) -> str:
    if not labels:
        return name
    body = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{body}}}"


def _stage_rows(families: list[dict]) -> list[tuple[str, dict]]:
    """``(row_name, series_payload)`` for every histogram series.

    ``repro_engine_stage_seconds{stage=prepare}`` rows surface as plain
    ``prepare``; other histograms read ``<short-name>[<label values>]``.
    """
    rows: list[tuple[str, dict]] = []
    for family in families:
        if family.get("type") != "histogram":
            continue
        name = family["name"]
        short = name
        if short.startswith("repro_"):
            short = short[len("repro_"):]
        if short.endswith("_seconds"):
            short = short[: -len("_seconds")]
        for series in family.get("series", []):
            if not series.get("count"):
                continue
            labels = series.get("labels", {})
            if name == "repro_engine_stage_seconds" and "stage" in labels:
                row = labels["stage"]
            elif name == "repro_engine_execute_seconds" and "method" in labels:
                row = f"execute[{labels['method']}]"
            elif labels:
                row = f"{short}[{','.join(labels[key] for key in sorted(labels))}]"
            else:
                row = short
            rows.append((row, series))
    return rows


def _stage_key(row: str) -> tuple[int, str]:
    head = row.split("[", 1)[0]
    for index, stage in enumerate(_STAGE_ORDER):
        if head == stage or head.startswith(f"{stage}_") or head.startswith(f"engine_{stage}"):
            return (index, row)
    return (len(_STAGE_ORDER), row)


def _ms(seconds: float | None) -> str:
    if seconds is None:
        return "n/a"
    return f"{seconds * 1000.0:.3f}ms"


def _print_stage_rows(families: list[dict]) -> None:
    for row, series in sorted(_stage_rows(families), key=lambda item: _stage_key(item[0])):
        quantiles = series.get("quantiles", {})
        print(
            f"stage {row:<28} n={series['count']:<6d} "
            f"p50={_ms(quantiles.get('0.5'))} "
            f"p95={_ms(quantiles.get('0.95'))} "
            f"p99={_ms(quantiles.get('0.99'))} "
            f"total={_ms(series['sum'])}"
        )


def _counter_value(by_name: dict[str, dict], name: str) -> float | None:
    family = by_name.get(name)
    if family is None:
        return None
    for series in family.get("series", []):
        if not {k: v for k, v in series.get("labels", {}).items() if k != "tenant"}:
            return series.get("value")
    return None


def _print_hit_rate(by_name: dict[str, dict]) -> None:
    requests, hits, dedup = (_counter_value(by_name, name) for name in _HIT_RATE_METRICS)
    if not requests:
        return
    served = (hits or 0) + (dedup or 0)
    print(
        f"hit-rate requests={int(requests)} hits={int(hits or 0)} "
        f"dedup={int(dedup or 0)} rate={served / requests:.1%}"
    )


def _scalar_series(families: list[dict], kind: str) -> list[tuple[str, float]]:
    samples = []
    for family in families:
        if family.get("type") != kind:
            continue
        for series in family.get("series", []):
            samples.append(
                (_series_signature(family["name"], series.get("labels", {})), series["value"])
            )
    return samples


def _cmd_summarize(args: argparse.Namespace) -> int:
    header, families = load_snapshot(args.snapshot)
    print(
        f"snapshot {header.get('snapshot_id')}  created={header.get('created_at')}  "
        f"file={args.snapshot}"
    )
    _print_stage_rows(families)
    by_name = _families_by_name(families)
    _print_hit_rate(by_name)
    for kind in ("counter", "gauge"):
        for signature, value in _scalar_series(families, kind):
            print(f"{kind} {signature} {value:g}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    header_a, families_a = load_snapshot(args.snapshot_a)
    header_b, families_b = load_snapshot(args.snapshot_b)
    print(f"diff a={header_a.get('snapshot_id')} b={header_b.get('snapshot_id')}")

    counters_a = dict(_scalar_series(families_a, "counter"))
    counters_b = dict(_scalar_series(families_b, "counter"))
    regressions = 0
    for signature in sorted(counters_a.keys() | counters_b.keys()):
        value_a = counters_a.get(signature)
        value_b = counters_b.get(signature)
        if value_a is None:
            print(f"counter {signature} a=absent b={value_b:g}")
            continue
        if value_b is None:
            print(f"regression {signature} a={value_a:g} b=absent")
            regressions += 1
            continue
        delta = value_b - value_a
        if delta < 0:
            print(f"regression {signature} a={value_a:g} b={value_b:g} delta={delta:+g}")
            regressions += 1
        elif delta != 0 or args.all:
            print(f"counter {signature} a={value_a:g} b={value_b:g} delta={delta:+g}")

    hist_a = {
        _series_signature(f["name"], s.get("labels", {})): s
        for f in families_a if f.get("type") == "histogram" for s in f.get("series", [])
    }
    hist_b = {
        _series_signature(f["name"], s.get("labels", {})): s
        for f in families_b if f.get("type") == "histogram" for s in f.get("series", [])
    }
    for signature in sorted(hist_a.keys() | hist_b.keys()):
        series_a = hist_a.get(signature, {"count": 0, "sum": 0.0})
        series_b = hist_b.get(signature, {"count": 0, "sum": 0.0})
        delta_n = series_b["count"] - series_a["count"]
        if delta_n == 0 and not args.all:
            continue
        print(
            f"histogram {signature} n={series_a['count']}->{series_b['count']} "
            f"total={_ms(series_a['sum'])}->{_ms(series_b['sum'])}"
        )

    if regressions:
        print(f"regressions: {regressions} counter(s) went backwards")
        return 1
    print("no counter regressions")
    return 0


def _watch_line(path: str) -> str:
    header, families = load_snapshot(path)
    by_name = _families_by_name(families)
    requests = _counter_value(by_name, "repro_engine_requests_total") or 0
    hits = _counter_value(by_name, "repro_engine_cache_hits_total") or 0
    dedup = _counter_value(by_name, "repro_engine_batch_dedup_hits_total") or 0
    rate = f"{(hits + dedup) / requests:.1%}" if requests else "n/a"
    p95 = None
    for row, series in _stage_rows(families):
        if row.startswith("execute"):
            p95 = series.get("quantiles", {}).get("0.95")
            break
    return (
        f"watch {os.path.basename(path)} created={header.get('created_at')} "
        f"requests={int(requests)} hit-rate={rate} p95[execute]={_ms(p95)}"
    )


def _cmd_watch(args: argparse.Namespace) -> int:
    store = MetricsStore(args.snapshot_dir)
    seen: str | None = None
    iterations = 0
    while True:
        snapshots = store.list()
        if not snapshots:
            print(f"watch no snapshots in {args.snapshot_dir}")
        else:
            newest = snapshots[-1]
            if newest != seen:
                seen = newest
                print(_watch_line(newest))
        sys.stdout.flush()
        iterations += 1
        if args.iterations and iterations >= args.iterations:
            return 0
        time.sleep(args.interval)


def _cmd_list(args: argparse.Namespace) -> int:
    for path in MetricsStore(args.snapshot_dir).list():
        print(path)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.metrics",
        description="Summarize, diff and watch persisted metrics snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser("summarize", help="per-stage quantiles, hit rates, counters")
    summarize.add_argument("snapshot", help="path to a metrics-<id>.jsonl artifact")
    summarize.set_defaults(func=_cmd_summarize)

    diff = sub.add_parser("diff", help="compare two snapshots; exit 1 on counter regressions")
    diff.add_argument("snapshot_a")
    diff.add_argument("snapshot_b")
    diff.add_argument("--all", action="store_true", help="also print unchanged series")
    diff.set_defaults(func=_cmd_diff)

    watch = sub.add_parser("watch", help="poll a snapshot dir, print health lines")
    watch.add_argument("snapshot_dir")
    watch.add_argument("--interval", type=float, default=2.0, help="poll period in seconds")
    watch.add_argument(
        "--iterations", type=int, default=0,
        help="stop after N polls (0 = run until interrupted)",
    )
    watch.set_defaults(func=_cmd_watch)

    listing = sub.add_parser("list", help="list snapshot artifacts, oldest first")
    listing.add_argument("snapshot_dir")
    listing.set_defaults(func=_cmd_list)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        return 130
    except BrokenPipeError:
        # Downstream consumer (e.g. ``watch | head -1``) closed the pipe;
        # that is not an error.  Detach stdout so the interpreter's exit
        # flush does not raise the same error again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
