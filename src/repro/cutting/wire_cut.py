"""Wire cutting primitives: preparation bases, measurement bases, reconstruction.

Circuit cutting (Sec. II-B, Eq. (1)) replaces a wire by (i) a measurement of
a complete operator basis on the upstream side and (ii) preparation of the
corresponding eigenstates on the downstream side.  QuTracer repurposes the
machinery: the upstream state at a cut is known (measured or classically
simulated), and the downstream side is executed for a small set of prepared
states whose results are recombined linearly.

This module provides the linear algebra shared by SQEM and QSPC:

* the preparation basis ``{|0>, |1>, |+>, |i>}`` (four states suffice — the
  expectation for ``|->`` / ``|-i>`` follows classically, which is the
  paper's *state preparation reduction*),
* decomposition of an arbitrary (not necessarily Hermitian) operator into
  that preparation basis, per wire,
* Pauli-string algebra and density-matrix reconstruction from Pauli
  expectation values.
"""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "PREPARATION_LABELS",
    "REDUCED_PREPARATION_LABELS",
    "MEASUREMENT_BASES",
    "preparation_state",
    "preparation_density_matrix",
    "pauli_string_matrix",
    "multiply_pauli_strings",
    "decompose_in_pauli_basis",
    "decompose_in_preparation_basis",
    "expectation_from_distribution",
    "reconstruct_density_matrix",
    "project_to_physical_state",
]

# Full single-qubit preparation set used by conventional circuit cutting.
PREPARATION_LABELS = ("0", "1", "+", "-", "i", "-i")
# The reduced set QuTracer actually prepares (state preparation reduction).
REDUCED_PREPARATION_LABELS = ("0", "1", "+", "i")
MEASUREMENT_BASES = ("X", "Y", "Z")

_STATES = {
    "0": np.array([1.0, 0.0], dtype=complex),
    "1": np.array([0.0, 1.0], dtype=complex),
    "+": np.array([1.0, 1.0], dtype=complex) / np.sqrt(2),
    "-": np.array([1.0, -1.0], dtype=complex) / np.sqrt(2),
    "i": np.array([1.0, 1.0j], dtype=complex) / np.sqrt(2),
    "-i": np.array([1.0, -1.0j], dtype=complex) / np.sqrt(2),
}

_PAULIS = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

# Single-qubit Pauli multiplication table: (A, B) -> (phase, C) with A B = phase * C.
_PAULI_PRODUCTS: dict[tuple[str, str], tuple[complex, str]] = {}
for _a in "IXYZ":
    for _b in "IXYZ":
        _product = _PAULIS[_a] @ _PAULIS[_b]
        for _c in "IXYZ":
            for _phase in (1, -1, 1j, -1j):
                if np.allclose(_product, _phase * _PAULIS[_c]):
                    _PAULI_PRODUCTS[(_a, _b)] = (_phase, _c)
                    break
            else:
                continue
            break


def preparation_state(label: str) -> np.ndarray:
    """The ket for a preparation label."""
    if label not in _STATES:
        raise ValueError(f"unknown preparation label {label!r}")
    return _STATES[label].copy()


def preparation_density_matrix(labels: str | Sequence[str]) -> np.ndarray:
    """Density matrix of a product of prepared single-qubit states.

    ``labels[i]`` is the state of subset wire ``i`` (little-endian: wire 0 is
    the least significant bit of the matrix index).
    """
    labels = _normalise_labels(labels)
    rho = None
    for label in labels:
        ket = preparation_state(label)
        single = np.outer(ket, ket.conj())
        rho = single if rho is None else np.kron(single, rho)
    return rho


def _normalise_labels(labels: str | Sequence[str]) -> list[str]:
    if isinstance(labels, str):
        # A plain string is only unambiguous when every label is one char.
        return list(labels)
    return list(labels)


def pauli_string_matrix(label: str) -> np.ndarray:
    """Dense matrix of a Pauli string, little-endian (first char = wire 0)."""
    matrix = _PAULIS[label[0].upper()]
    for ch in label[1:]:
        matrix = np.kron(_PAULIS[ch.upper()], matrix)
    return matrix


def multiply_pauli_strings(a: str, b: str) -> tuple[complex, str]:
    """Product of two Pauli strings: ``a . b = phase * result``."""
    if len(a) != len(b):
        raise ValueError("Pauli strings must have equal length")
    phase: complex = 1.0
    result = []
    for ch_a, ch_b in zip(a.upper(), b.upper()):
        p, c = _PAULI_PRODUCTS[(ch_a, ch_b)]
        phase *= p
        result.append(c)
    return phase, "".join(result)


def decompose_in_pauli_basis(operator: np.ndarray) -> dict[str, complex]:
    """Coefficients ``c_P`` with ``operator = sum_P c_P P`` over Pauli strings."""
    operator = np.asarray(operator, dtype=complex)
    dim = operator.shape[0]
    num_qubits = int(round(np.log2(dim)))
    if 2**num_qubits != dim or operator.shape != (dim, dim):
        raise ValueError("operator must be a square matrix on qubits")
    coefficients: dict[str, complex] = {}
    for letters in itertools.product("IXYZ", repeat=num_qubits):
        label = "".join(letters)
        coefficient = np.trace(pauli_string_matrix(label).conj().T @ operator) / dim
        if abs(coefficient) > 1e-12:
            coefficients[label] = complex(coefficient)
    return coefficients


# Single-qubit Paulis written in the reduced preparation basis:
#   I = |0><0| + |1><1|
#   Z = |0><0| - |1><1|
#   X = 2|+><+| - |0><0| - |1><1|
#   Y = 2|i><i| - |0><0| - |1><1|
_PAULI_IN_PREP: dict[str, dict[str, complex]] = {
    "I": {"0": 1.0, "1": 1.0},
    "Z": {"0": 1.0, "1": -1.0},
    "X": {"+": 2.0, "0": -1.0, "1": -1.0},
    "Y": {"i": 2.0, "0": -1.0, "1": -1.0},
}


def decompose_in_preparation_basis(operator: np.ndarray) -> dict[tuple[str, ...], complex]:
    """Write ``operator`` as a combination of products of preparable states.

    Returns a mapping from a tuple of preparation labels (one per wire,
    little-endian) to a complex coefficient such that::

        operator = sum_labels coeff * (|l_{n-1}><l_{n-1}| ⊗ ... ⊗ |l_0><l_0|)

    Only the reduced preparation set {0, 1, +, i} appears, implementing the
    paper's state-preparation reduction for arbitrary (even non-Hermitian)
    operators such as ``C_L rho`` in Eq. (9).
    """
    pauli_coefficients = decompose_in_pauli_basis(operator)
    result: dict[tuple[str, ...], complex] = {}
    for pauli_label, pauli_coefficient in pauli_coefficients.items():
        # Expand the product over wires.
        expansions = [_PAULI_IN_PREP[ch] for ch in pauli_label]
        for combination in itertools.product(*(exp.items() for exp in expansions)):
            labels = tuple(item[0] for item in combination)
            weight = pauli_coefficient
            for item in combination:
                weight *= item[1]
            if abs(weight) > 1e-15:
                result[labels] = result.get(labels, 0.0) + weight
    return {k: v for k, v in result.items() if abs(v) > 1e-12}


def expectation_from_distribution(distribution, support_bits: Sequence[int]) -> float:
    """Parity expectation ``<Z...Z>`` of ``support_bits`` under a distribution.

    When the distribution was measured after basis-change rotations, this is
    the expectation of the corresponding Pauli string.
    """
    return distribution.expectation_z(support_bits)


def reconstruct_density_matrix(expectations: Mapping[str, float], num_qubits: int) -> np.ndarray:
    """Density matrix from Pauli-string expectation values.

    Missing strings are treated as zero; the identity expectation defaults
    to 1.  The result is not yet projected to the physical set — use
    :func:`project_to_physical_state` when sampling noise can push it
    outside.
    """
    dim = 2**num_qubits
    rho = np.zeros((dim, dim), dtype=complex)
    identity = "I" * num_qubits
    values = dict(expectations)
    values.setdefault(identity, 1.0)
    for letters in itertools.product("IXYZ", repeat=num_qubits):
        label = "".join(letters)
        value = values.get(label)
        if value is None:
            continue
        rho += value * pauli_string_matrix(label)
    return rho / dim


def project_to_physical_state(rho: np.ndarray) -> np.ndarray:
    """Project a Hermitian matrix onto the closest density matrix.

    Clips negative eigenvalues to zero and renormalises the trace to one —
    the standard maximum-likelihood-style projection used after noisy
    tomographic reconstruction.
    """
    rho = np.asarray(rho, dtype=complex)
    rho = 0.5 * (rho + rho.conj().T)
    eigenvalues, eigenvectors = np.linalg.eigh(rho)
    eigenvalues = np.clip(eigenvalues.real, 0.0, None)
    if eigenvalues.sum() <= 0:
        dim = rho.shape[0]
        return np.eye(dim, dtype=complex) / dim
    eigenvalues = eigenvalues / eigenvalues.sum()
    return (eigenvectors * eigenvalues) @ eigenvectors.conj().T
