"""Wire-cutting primitives shared by SQEM and QSPC."""

from .wire_cut import (
    MEASUREMENT_BASES,
    PREPARATION_LABELS,
    REDUCED_PREPARATION_LABELS,
    decompose_in_pauli_basis,
    decompose_in_preparation_basis,
    expectation_from_distribution,
    multiply_pauli_strings,
    pauli_string_matrix,
    preparation_density_matrix,
    preparation_state,
    project_to_physical_state,
    reconstruct_density_matrix,
)

__all__ = [
    "PREPARATION_LABELS",
    "REDUCED_PREPARATION_LABELS",
    "MEASUREMENT_BASES",
    "preparation_state",
    "preparation_density_matrix",
    "pauli_string_matrix",
    "multiply_pauli_strings",
    "decompose_in_pauli_basis",
    "decompose_in_preparation_basis",
    "expectation_from_distribution",
    "reconstruct_density_matrix",
    "project_to_physical_state",
]
