"""Dependency and commutation analysis over circuits.

These utilities are the structural backbone of the QuTracer analysis pass
(Sec. V of the paper): finding the causal cone of a qubit subset, checking
whether a gate commutes with a Pauli operator restricted to the subset
(needed for cut-point placement and gate bypassing), and slicing a circuit
at barrier markers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .circuit import QuantumCircuit, _expand_gate
from .instruction import Instruction
from .operations import Gate

__all__ = [
    "dependency_cone",
    "restrict_to_cone",
    "pauli_matrix",
    "gate_commutes_with_pauli",
    "instructions_commute",
    "split_at_barriers",
    "final_single_qubit_layer",
]

_PAULI_MATRICES = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


def pauli_matrix(label: str) -> np.ndarray:
    """Dense matrix of a Pauli string, little-endian (first char = qubit 0).

    >>> pauli_matrix("ZI").shape
    (4, 4)
    """
    label = label.upper()
    if not label or any(ch not in _PAULI_MATRICES for ch in label):
        raise ValueError(f"invalid Pauli label {label!r}")
    matrix = _PAULI_MATRICES[label[0]]
    for ch in label[1:]:
        # Little-endian: later characters act on higher-significance qubits.
        matrix = np.kron(_PAULI_MATRICES[ch], matrix)
    return matrix


def dependency_cone(circuit: QuantumCircuit, qubits: Sequence[int]) -> list[int]:
    """Indices of instructions that the final state of ``qubits`` depends on.

    Walks the circuit backwards keeping an *active* wire set.  An instruction
    belongs to the cone when it touches an active wire; its wires then become
    active as well.  Barriers and measurements never enlarge the cone.  This
    is the plain causal-cone computation; the commutation-aware refinement
    ("false dependency removal") lives in :mod:`repro.core.optimizations`.
    """
    active = set(int(q) for q in qubits)
    cone: list[int] = []
    for index in range(len(circuit.data) - 1, -1, -1):
        inst = circuit.data[index]
        if inst.is_barrier or inst.is_measurement:
            continue
        if active.intersection(inst.qubits):
            cone.append(index)
            active.update(inst.qubits)
    cone.reverse()
    return cone


def restrict_to_cone(circuit: QuantumCircuit, qubits: Sequence[int]) -> QuantumCircuit:
    """Copy of ``circuit`` keeping only the causal cone of ``qubits``.

    Measurements on qubits outside the subset are dropped; measurements on
    the subset are kept.
    """
    cone = set(dependency_cone(circuit, qubits))
    subset = set(int(q) for q in qubits)
    new = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    new.metadata = dict(circuit.metadata)
    for index, inst in enumerate(circuit.data):
        if inst.is_measurement:
            if inst.qubits[0] in subset:
                new.append_instruction(inst)
        elif inst.is_barrier:
            continue
        elif index in cone:
            new.append_instruction(inst)
    return new


def gate_commutes_with_pauli(
    instruction: Instruction, pauli: dict[int, str], atol: float = 1e-9
) -> bool:
    """True if the gate commutes with the Pauli operator ``pauli``.

    ``pauli`` maps qubit index -> Pauli letter; qubits not in the map carry
    identity.  Only the gate's own wires matter, so the check is a dense
    comparison on at most a few qubits.
    """
    if not instruction.is_gate:
        raise ValueError("commutation is only defined for gates")
    gate: Gate = instruction.operation  # type: ignore[assignment]
    label = "".join(pauli.get(q, "I") for q in instruction.qubits)
    if set(label) == {"I"}:
        return True
    pauli_mat = pauli_matrix(label)
    gate_mat = gate.matrix
    return bool(np.allclose(gate_mat @ pauli_mat, pauli_mat @ gate_mat, atol=atol))


def instructions_commute(a: Instruction, b: Instruction, atol: float = 1e-9) -> bool:
    """True if two gate instructions commute as operators.

    Instructions on disjoint wires always commute.  Otherwise the dense
    matrices are compared on the union of their wires.
    """
    if not (a.is_gate and b.is_gate):
        raise ValueError("commutation is only defined for gates")
    shared = set(a.qubits) & set(b.qubits)
    if not shared:
        return True
    union = sorted(set(a.qubits) | set(b.qubits))
    index_of = {q: i for i, q in enumerate(union)}
    n = len(union)
    mat_a = _expand_gate(a.operation.matrix, [index_of[q] for q in a.qubits], n)
    mat_b = _expand_gate(b.operation.matrix, [index_of[q] for q in b.qubits], n)
    return bool(np.allclose(mat_a @ mat_b, mat_b @ mat_a, atol=atol))


def split_at_barriers(circuit: QuantumCircuit, label_prefix: str | None = None) -> list[QuantumCircuit]:
    """Split a circuit into segments at (labelled) barriers.

    If ``label_prefix`` is given, only barriers whose label starts with the
    prefix act as separators; unlabelled or non-matching barriers are kept
    inside the segments.  QuTracer uses labelled barriers as cut-point
    markers.
    """
    segments: list[QuantumCircuit] = []
    current = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    for inst in circuit.data:
        if inst.is_barrier:
            barrier_label = getattr(inst.operation, "label", None)
            is_separator = (
                label_prefix is None
                or (barrier_label is not None and barrier_label.startswith(label_prefix))
            )
            if is_separator:
                segments.append(current)
                current = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
                continue
        current.append_instruction(inst)
    segments.append(current)
    return segments


def final_single_qubit_layer(circuit: QuantumCircuit, qubit: int) -> list[int]:
    """Indices of the trailing run of single-qubit gates on ``qubit``.

    Used by the *state traceback* optimization: trailing single-qubit gates
    on the traced wire can be simulated classically instead of executed.
    """
    indices: list[int] = []
    for index in range(len(circuit.data) - 1, -1, -1):
        inst = circuit.data[index]
        if inst.is_measurement or inst.is_barrier:
            continue
        if qubit not in inst.qubits:
            continue
        if inst.is_gate and inst.operation.num_qubits == 1:
            indices.append(index)
        else:
            break
    indices.reverse()
    return indices
