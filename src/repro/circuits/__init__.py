"""Quantum circuit intermediate representation.

The public surface mirrors the small subset of Qiskit used by the QuTracer
paper: a :class:`QuantumCircuit` builder, a standard gate library, and
dependency / commutation analysis helpers.
"""

from .circuit import QuantumCircuit
from .fingerprint import circuit_fingerprint
from .dag import (
    dependency_cone,
    final_single_qubit_layer,
    gate_commutes_with_pauli,
    instructions_commute,
    pauli_matrix,
    restrict_to_cone,
    split_at_barriers,
)
from .instruction import Instruction
from .operations import (
    Barrier,
    Gate,
    Measurement,
    Operation,
    Reset,
    StatePreparation,
    UnitaryGate,
    controlled_matrix,
    is_hermitian,
    is_unitary,
    standard_gate,
    STANDARD_GATE_NAMES,
)

__all__ = [
    "QuantumCircuit",
    "circuit_fingerprint",
    "Instruction",
    "Operation",
    "Gate",
    "UnitaryGate",
    "Measurement",
    "Barrier",
    "Reset",
    "StatePreparation",
    "standard_gate",
    "STANDARD_GATE_NAMES",
    "controlled_matrix",
    "is_unitary",
    "is_hermitian",
    "pauli_matrix",
    "dependency_cone",
    "restrict_to_cone",
    "gate_commutes_with_pauli",
    "instructions_commute",
    "split_at_barriers",
    "final_single_qubit_layer",
]
