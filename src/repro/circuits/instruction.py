"""Circuit instructions: an operation bound to concrete qubit / clbit wires."""

from __future__ import annotations

from typing import Sequence

from .operations import Barrier, Gate, Measurement, Operation, Reset

__all__ = ["Instruction"]


class Instruction:
    """An :class:`~repro.circuits.operations.Operation` applied to wires.

    Parameters
    ----------
    operation:
        The operation being applied.
    qubits:
        Qubit indices, in the order expected by the operation.  For the
        standard controlled gates the convention is ``(control, target)``.
    clbits:
        Classical bit indices (only used by measurements).
    """

    __slots__ = ("operation", "qubits", "clbits")

    def __init__(
        self,
        operation: Operation,
        qubits: Sequence[int],
        clbits: Sequence[int] = (),
    ) -> None:
        qubits = tuple(int(q) for q in qubits)
        clbits = tuple(int(c) for c in clbits)
        if len(qubits) != operation.num_qubits:
            raise ValueError(
                f"operation {operation.name!r} acts on {operation.num_qubits} qubit(s), "
                f"got {len(qubits)} wire(s)"
            )
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"duplicate qubit indices in {qubits}")
        if any(q < 0 for q in qubits):
            raise ValueError(f"negative qubit index in {qubits}")
        if isinstance(operation, Measurement) and len(clbits) != 1:
            raise ValueError("a measurement needs exactly one classical bit")
        self.operation = operation
        self.qubits = qubits
        self.clbits = clbits

    # -- convenience predicates used heavily by analysis passes -------------

    @property
    def name(self) -> str:
        return self.operation.name

    @property
    def is_gate(self) -> bool:
        return isinstance(self.operation, Gate)

    @property
    def is_measurement(self) -> bool:
        return isinstance(self.operation, Measurement)

    @property
    def is_barrier(self) -> bool:
        return isinstance(self.operation, Barrier)

    @property
    def is_reset(self) -> bool:
        return isinstance(self.operation, Reset)

    @property
    def is_two_qubit_gate(self) -> bool:
        return self.is_gate and self.operation.num_qubits == 2

    def remap(self, qubit_map: dict[int, int], clbit_map: dict[int, int] | None = None) -> "Instruction":
        """Return a copy of this instruction with wires renamed.

        The source instruction already passed ``__init__`` validation and
        renaming preserves arity, so only injectivity of ``qubit_map`` can
        introduce a new fault — that one check is kept and the rest of the
        constructor is bypassed (remapping is the inner loop of
        ``compact_qubits`` and transpiler layout application).
        """
        new_qubits = tuple(int(qubit_map[q]) for q in self.qubits)
        if len(new_qubits) > 1 and len(set(new_qubits)) != len(new_qubits):
            raise ValueError(f"duplicate qubit indices in {new_qubits}")
        clone = object.__new__(Instruction)
        clone.operation = self.operation
        clone.qubits = new_qubits
        clone.clbits = (
            self.clbits
            if clbit_map is None
            else tuple(clbit_map.get(c, c) for c in self.clbits)
        )
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return (
            self.operation == other.operation
            and self.qubits == other.qubits
            and self.clbits == other.clbits
        )

    def __hash__(self) -> int:
        return hash((self.operation, self.qubits, self.clbits))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        parts = [self.operation.name, f"qubits={self.qubits}"]
        if self.clbits:
            parts.append(f"clbits={self.clbits}")
        if self.operation.params:
            parts.append(f"params={self.operation.params}")
        return f"Instruction({', '.join(parts)})"
