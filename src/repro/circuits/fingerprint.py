"""Content hashing of circuit structure.

The fingerprint is the address of a circuit everywhere content-addressed
caching happens: the :class:`~repro.simulators.engine.ExecutionEngine`'s
result cache, the persistent on-disk cache, and the transpiler's
:class:`~repro.transpiler.CompilationCache`.  It lives in the circuits
layer (rather than next to the engine) because both the simulators and the
transpiler key on it, and the transpiler must not import the simulators.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .circuit import QuantumCircuit
from .operations import _StandardGate

__all__ = ["circuit_fingerprint"]


def circuit_fingerprint(circuit: QuantumCircuit) -> str:
    """Content hash of a circuit's structure.

    Two circuits with the same wire counts and the same instruction stream
    (operation matrices, parameters, wire bindings) share a fingerprint
    regardless of object identity or name.  Gate matrices are hashed, so
    ``UnitaryGate`` and ``StatePreparation`` contents are captured exactly —
    except for standard-library gates, whose matrix is a pure function of
    the (name, params) pair already in the digest; skipping their matrix
    bytes cannot alias two distinct circuits (a custom gate reusing a
    standard name still appends its matrix bytes and lands elsewhere) and
    roughly halves fingerprint cost on calibration workloads.
    """
    digest = hashlib.sha256()
    digest.update(f"{circuit.num_qubits}|{circuit.num_clbits}".encode())
    for inst in circuit.data:
        op = inst.operation
        digest.update(op.name.encode())
        digest.update(repr(inst.qubits).encode())
        if inst.clbits:
            digest.update(repr(inst.clbits).encode())
        if op.params:
            digest.update(np.asarray(op.params, dtype=float).tobytes())
        if inst.is_gate and type(op) is not _StandardGate:
            digest.update(np.ascontiguousarray(op.matrix).tobytes())
    return digest.hexdigest()
