"""Content hashing of circuit structure.

The fingerprint is the address of a circuit everywhere content-addressed
caching happens: the :class:`~repro.simulators.engine.ExecutionEngine`'s
result cache, the persistent on-disk cache, and the transpiler's
:class:`~repro.transpiler.CompilationCache`.  It lives in the circuits
layer (rather than next to the engine) because both the simulators and the
transpiler key on it, and the transpiler must not import the simulators.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .circuit import QuantumCircuit

__all__ = ["circuit_fingerprint"]


def circuit_fingerprint(circuit: QuantumCircuit) -> str:
    """Content hash of a circuit's structure.

    Two circuits with the same wire counts and the same instruction stream
    (operation matrices, parameters, wire bindings) share a fingerprint
    regardless of object identity or name.  Gate matrices are hashed, so
    ``UnitaryGate`` and ``StatePreparation`` contents are captured exactly.
    """
    digest = hashlib.sha256()
    digest.update(f"{circuit.num_qubits}|{circuit.num_clbits}".encode())
    for inst in circuit.data:
        op = inst.operation
        digest.update(op.name.encode())
        digest.update(repr(inst.qubits).encode())
        if inst.clbits:
            digest.update(repr(inst.clbits).encode())
        if op.params:
            digest.update(np.asarray(op.params, dtype=float).tobytes())
        if inst.is_gate:
            digest.update(np.ascontiguousarray(op.matrix).tobytes())
    return digest.hexdigest()
