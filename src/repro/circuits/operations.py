"""Primitive circuit operations: gates, measurements, barriers and resets.

The circuit IR in :mod:`repro.circuits` is deliberately small.  An
:class:`Operation` is anything that can sit on a circuit wire; a
:class:`Gate` is a unitary operation with a concrete matrix; measurements,
barriers and resets are non-unitary bookkeeping operations that the
simulators and the QuTracer analysis passes treat specially.

All matrices follow the little-endian qubit convention used throughout the
package: for a gate acting on qubits ``(q0, q1)``, basis state ``|b1 b0>``
is indexed ``b1 * 2 + b0``, i.e. the *first* qubit in the tuple is the least
significant bit of the matrix index.  This matches the behaviour of Qiskit,
which the original QuTracer artifact was built on, so circuit constructions
can be ported literally.
"""

from __future__ import annotations

import cmath
import math
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Operation",
    "Gate",
    "UnitaryGate",
    "Measurement",
    "Barrier",
    "Reset",
    "StatePreparation",
    "standard_gate",
    "STANDARD_GATE_NAMES",
    "controlled_matrix",
    "is_hermitian",
    "is_unitary",
]


class Operation:
    """Base class for anything that can appear in a circuit.

    Parameters
    ----------
    name:
        Lower-case mnemonic (``"h"``, ``"cx"``, ``"measure"`` ...).
    num_qubits:
        Number of qubit wires the operation touches.
    params:
        Real-valued parameters (rotation angles, phases).
    """

    def __init__(self, name: str, num_qubits: int, params: Sequence[float] = ()) -> None:
        if num_qubits < 0:
            raise ValueError(f"num_qubits must be non-negative, got {num_qubits}")
        self._name = str(name)
        self._num_qubits = int(num_qubits)
        self._params = tuple(float(p) for p in params)

    @property
    def name(self) -> str:
        return self._name

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def params(self) -> tuple[float, ...]:
        return self._params

    @property
    def is_gate(self) -> bool:
        return isinstance(self, Gate)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        if self._params:
            args = ", ".join(f"{p:.6g}" for p in self._params)
            return f"{type(self).__name__}({self._name}({args}), qubits={self._num_qubits})"
        return f"{type(self).__name__}({self._name}, qubits={self._num_qubits})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Operation):
            return NotImplemented
        return (
            type(self) is type(other)
            and self._name == other._name
            and self._num_qubits == other._num_qubits
            and len(self._params) == len(other._params)
            and all(
                math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-12)
                for a, b in zip(self._params, other._params)
            )
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._name, self._num_qubits, self._params))


class Gate(Operation):
    """A unitary operation.

    Subclasses (or :func:`standard_gate`) provide the matrix.  The matrix is
    cached on first access because many passes repeatedly query it.
    """

    def __init__(self, name: str, num_qubits: int, params: Sequence[float] = ()) -> None:
        super().__init__(name, num_qubits, params)
        self._matrix_cache: np.ndarray | None = None

    def _build_matrix(self) -> np.ndarray:
        raise NotImplementedError

    @property
    def matrix(self) -> np.ndarray:
        if self._matrix_cache is None:
            mat = np.asarray(self._build_matrix(), dtype=complex)
            dim = 2**self.num_qubits
            if mat.shape != (dim, dim):
                raise ValueError(
                    f"gate {self.name!r} matrix has shape {mat.shape}, expected {(dim, dim)}"
                )
            self._matrix_cache = mat
        return self._matrix_cache

    def inverse(self) -> "Gate":
        """Return a gate implementing the adjoint of this gate."""
        inverse_name = _INVERSE_NAMES.get(self.name)
        if inverse_name is not None:
            return standard_gate(inverse_name, *self.params)
        if self.name in _PARAMETRIC_SELF_INVERSE_BY_NEGATION:
            return standard_gate(self.name, *(-p for p in self.params))
        return UnitaryGate(self.matrix.conj().T, name=f"{self.name}_dg")

    def is_two_qubit(self) -> bool:
        return self.num_qubits == 2

    def is_diagonal(self) -> bool:
        """True if the matrix is diagonal in the computational basis."""
        mat = self.matrix
        return bool(np.allclose(mat, np.diag(np.diagonal(mat))))


class UnitaryGate(Gate):
    """A gate defined directly by a unitary matrix."""

    def __init__(self, matrix: np.ndarray, name: str = "unitary") -> None:
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("unitary matrix must be square")
        dim = matrix.shape[0]
        num_qubits = int(round(math.log2(dim)))
        if 2**num_qubits != dim:
            raise ValueError(f"matrix dimension {dim} is not a power of two")
        if not is_unitary(matrix):
            raise ValueError("matrix is not unitary")
        super().__init__(name, num_qubits)
        self._matrix_cache = matrix.copy()

    def _build_matrix(self) -> np.ndarray:  # pragma: no cover - cache always set
        return self._matrix_cache


class Measurement(Operation):
    """Computational-basis measurement of a single qubit into a classical bit."""

    def __init__(self) -> None:
        super().__init__("measure", 1)


class Barrier(Operation):
    """A scheduling barrier; also used to mark QuTracer cut points."""

    def __init__(self, num_qubits: int, label: str | None = None) -> None:
        super().__init__("barrier", num_qubits)
        self.label = label


class Reset(Operation):
    """Reset a qubit to |0>."""

    def __init__(self) -> None:
        super().__init__("reset", 1)


class StatePreparation(Gate):
    """Prepare a single qubit in a given pure state (assumes the wire is |0>).

    The gate matrix maps ``|0>`` to the target state; the image of ``|1>`` is
    the orthogonal complement so that the operation stays unitary.  QSPC uses
    these to prepare the wire-cut basis states |0>, |1>, |+>, |->, |i>, |-i>.
    """

    _LABELS = {
        "0": np.array([1.0, 0.0], dtype=complex),
        "1": np.array([0.0, 1.0], dtype=complex),
        "+": np.array([1.0, 1.0], dtype=complex) / math.sqrt(2),
        "-": np.array([1.0, -1.0], dtype=complex) / math.sqrt(2),
        "i": np.array([1.0, 1.0j], dtype=complex) / math.sqrt(2),
        "-i": np.array([1.0, -1.0j], dtype=complex) / math.sqrt(2),
    }

    def __init__(self, state: str | np.ndarray) -> None:
        if isinstance(state, str):
            if state not in self._LABELS:
                raise ValueError(f"unknown state label {state!r}; expected one of {sorted(self._LABELS)}")
            target = self._LABELS[state]
            label = state
        else:
            target = np.asarray(state, dtype=complex).reshape(2)
            norm = np.linalg.norm(target)
            if norm < 1e-12:
                raise ValueError("cannot prepare the zero vector")
            target = target / norm
            label = "custom"
        super().__init__(f"prep_{label}", 1)
        self._target = target

    @property
    def target_state(self) -> np.ndarray:
        return self._target.copy()

    def _build_matrix(self) -> np.ndarray:
        a, b = self._target
        # Column 0 is the target state; column 1 is an orthonormal complement.
        return np.array([[a, -np.conj(b)], [b, np.conj(a)]], dtype=complex)


# ---------------------------------------------------------------------------
# Standard gate matrices
# ---------------------------------------------------------------------------

_SQRT2_INV = 1.0 / math.sqrt(2.0)

_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_H = np.array([[1, 1], [1, -1]], dtype=complex) * _SQRT2_INV
_S = np.array([[1, 0], [0, 1j]], dtype=complex)
_SDG = np.array([[1, 0], [0, -1j]], dtype=complex)
_T = np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)
_TDG = np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)
_SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)
_SXDG = _SX.conj().T


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz(theta: float) -> np.ndarray:
    return np.array(
        [[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]], dtype=complex
    )


def _phase(lam: float) -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(1j * lam)]], dtype=complex)


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def controlled_matrix(base: np.ndarray, num_ctrl_qubits: int = 1) -> np.ndarray:
    """Build the matrix of a controlled gate in little-endian convention.

    The control qubits are the *last* qubits of the composite gate (highest
    significance), matching the qubit ordering ``(target..., control...)``
    used by :func:`standard_gate` for ``cx``/``cz``/``cp`` where the call
    convention is ``circuit.cx(control, target)`` and the instruction stores
    qubits ``(control, target)``.  See :meth:`Gate.matrix` docs.
    """
    base = np.asarray(base, dtype=complex)
    dim = base.shape[0]
    full = np.eye(dim * 2**num_ctrl_qubits, dtype=complex)
    # The controlled block acts on the subspace where all control qubits are 1.
    full[-dim:, -dim:] = base
    return full


def _two_qubit_from_blocks(control_first: bool, base: np.ndarray) -> np.ndarray:
    """Controlled single-qubit gate on qubits ``(control, target)``.

    Little-endian: qubit 0 of the pair is the first wire passed to the
    instruction.  With ``control_first=True`` the control is the first wire
    (least significant bit); the gate applies ``base`` to the target when
    that bit is 1.
    """
    full = np.eye(4, dtype=complex)
    if control_first:
        # control = bit 0, target = bit 1 -> states |t c> with index t*2 + c
        # control==1 means odd indices {1, 3}
        idx = [1, 3]
    else:
        idx = [2, 3]
    for r, i in enumerate(idx):
        for c, j in enumerate(idx):
            full[i, j] = base[r, c]
    # zero out the identity entries we overwrote incorrectly
    for i in idx:
        for j in range(4):
            if j not in idx:
                full[i, j] = 0.0
                full[j, i] = 0.0
    return full


_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)


_FIXED_MATRICES: dict[str, np.ndarray] = {
    "id": _I,
    "x": _X,
    "y": _Y,
    "z": _Z,
    "h": _H,
    "s": _S,
    "sdg": _SDG,
    "t": _T,
    "tdg": _TDG,
    "sx": _SX,
    "sxdg": _SXDG,
    "swap": _SWAP,
}

_PARAMETRIC_BUILDERS: dict[str, tuple[int, int, object]] = {
    # name: (num_qubits, num_params, builder)
    "rx": (1, 1, _rx),
    "ry": (1, 1, _ry),
    "rz": (1, 1, _rz),
    "p": (1, 1, _phase),
    "u": (1, 3, _u3),
}

_CONTROLLED_BASES: dict[str, tuple[str, int]] = {
    # name: (base gate name, num params)
    "cx": ("x", 0),
    "cy": ("y", 0),
    "cz": ("z", 0),
    "ch": ("h", 0),
    "cp": ("p", 1),
    "crx": ("rx", 1),
    "cry": ("ry", 1),
    "crz": ("rz", 1),
}

_INVERSE_NAMES: dict[str, str] = {
    "id": "id",
    "x": "x",
    "y": "y",
    "z": "z",
    "h": "h",
    "s": "sdg",
    "sdg": "s",
    "t": "tdg",
    "tdg": "t",
    "sx": "sxdg",
    "sxdg": "sx",
    "swap": "swap",
    "cx": "cx",
    "cy": "cy",
    "cz": "cz",
    "ch": "ch",
    "ccx": "ccx",
    "cswap": "cswap",
}

_PARAMETRIC_SELF_INVERSE_BY_NEGATION = {"rx", "ry", "rz", "p", "cp", "crx", "cry", "crz", "rzz"}

STANDARD_GATE_NAMES: frozenset[str] = frozenset(
    set(_FIXED_MATRICES)
    | set(_PARAMETRIC_BUILDERS)
    | set(_CONTROLLED_BASES)
    | {"ccx", "cswap", "rzz"}
)


class _StandardGate(Gate):
    """A gate from the built-in library, identified by name + params."""

    def __init__(self, name: str, num_qubits: int, params: Sequence[float]) -> None:
        super().__init__(name, num_qubits, params)

    def _build_matrix(self) -> np.ndarray:
        name = self.name
        if name in _FIXED_MATRICES:
            return _FIXED_MATRICES[name]
        if name in _PARAMETRIC_BUILDERS:
            _, _, builder = _PARAMETRIC_BUILDERS[name]
            return builder(*self.params)
        if name in _CONTROLLED_BASES:
            base_name, _ = _CONTROLLED_BASES[name]
            base = standard_gate(base_name, *self.params).matrix
            return _two_qubit_from_blocks(control_first=True, base=base)
        if name == "rzz":
            (theta,) = self.params
            diag = [
                cmath.exp(-1j * theta / 2),
                cmath.exp(1j * theta / 2),
                cmath.exp(1j * theta / 2),
                cmath.exp(-1j * theta / 2),
            ]
            return np.diag(diag)
        if name == "ccx":
            full = np.eye(8, dtype=complex)
            # controls are qubits 0 and 1 (bits 0,1); target is qubit 2 (bit 2)
            i, j = 0b011, 0b111
            full[i, i] = 0.0
            full[j, j] = 0.0
            full[i, j] = 1.0
            full[j, i] = 1.0
            return full
        if name == "cswap":
            full = np.eye(8, dtype=complex)
            # control is qubit 0 (bit 0); swap qubits 1 and 2 when control==1
            i, j = 0b011, 0b101
            full[i, i] = 0.0
            full[j, j] = 0.0
            full[i, j] = 1.0
            full[j, i] = 1.0
            return full
        raise ValueError(f"unknown standard gate {name!r}")  # pragma: no cover


def standard_gate(name: str, *params: float) -> Gate:
    """Construct a gate from the standard library by name.

    >>> standard_gate("h").matrix.shape
    (2, 2)
    >>> standard_gate("rz", 0.5).params
    (0.5,)
    """
    name = name.lower()
    if name in _FIXED_MATRICES:
        if params:
            raise ValueError(f"gate {name!r} takes no parameters")
        num_qubits = 1 if _FIXED_MATRICES[name].shape[0] == 2 else 2
        return _StandardGate(name, num_qubits, ())
    if name in _PARAMETRIC_BUILDERS:
        num_qubits, num_params, _ = _PARAMETRIC_BUILDERS[name]
        if len(params) != num_params:
            raise ValueError(f"gate {name!r} takes {num_params} parameter(s), got {len(params)}")
        return _StandardGate(name, num_qubits, params)
    if name in _CONTROLLED_BASES:
        _, num_params = _CONTROLLED_BASES[name]
        if len(params) != num_params:
            raise ValueError(f"gate {name!r} takes {num_params} parameter(s), got {len(params)}")
        return _StandardGate(name, 2, params)
    if name == "rzz":
        if len(params) != 1:
            raise ValueError("gate 'rzz' takes 1 parameter")
        return _StandardGate(name, 2, params)
    if name in ("ccx", "cswap"):
        if params:
            raise ValueError(f"gate {name!r} takes no parameters")
        return _StandardGate(name, 3, ())
    raise ValueError(f"unknown gate name {name!r}")


# ---------------------------------------------------------------------------
# Small linear-algebra helpers used across the package
# ---------------------------------------------------------------------------

def is_unitary(matrix: np.ndarray, atol: float = 1e-9) -> bool:
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix.conj().T @ matrix, identity, atol=atol))


def is_hermitian(matrix: np.ndarray, atol: float = 1e-9) -> bool:
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    return bool(np.allclose(matrix, matrix.conj().T, atol=atol))
