"""The :class:`QuantumCircuit` container.

A circuit is an ordered list of :class:`~repro.circuits.instruction.Instruction`
objects over ``num_qubits`` qubit wires and ``num_clbits`` classical bits.
The builder API mirrors the subset of Qiskit that the QuTracer paper uses,
so circuit constructions from the original artifact translate one-to-one.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Iterator, Sequence

import numpy as np

from .instruction import Instruction
from .operations import (
    Barrier,
    Gate,
    Measurement,
    Operation,
    Reset,
    StatePreparation,
    UnitaryGate,
    standard_gate,
)

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """A quantum circuit over a fixed number of qubits and classical bits.

    Examples
    --------
    >>> qc = QuantumCircuit(2)
    >>> _ = qc.h(0).cx(0, 1)
    >>> qc.measure_all()
    >>> qc.num_two_qubit_gates()
    1
    """

    def __init__(self, num_qubits: int, num_clbits: int | None = None, name: str = "circuit") -> None:
        if num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        self.num_qubits = int(num_qubits)
        self.num_clbits = int(num_clbits) if num_clbits is not None else 0
        self.name = name
        self.data: list[Instruction] = []
        self.metadata: dict = {}

    # ------------------------------------------------------------------
    # Low-level append
    # ------------------------------------------------------------------

    def append(
        self,
        operation: Operation,
        qubits: Sequence[int],
        clbits: Sequence[int] = (),
    ) -> "QuantumCircuit":
        """Append an operation; returns ``self`` so calls can be chained."""
        instruction = Instruction(operation, qubits, clbits)
        self._check_wires(instruction)
        self.data.append(instruction)
        return self

    def append_instruction(self, instruction: Instruction) -> "QuantumCircuit":
        self._check_wires(instruction)
        self.data.append(instruction)
        return self

    def _check_wires(self, instruction: Instruction) -> None:
        for q in instruction.qubits:
            if q >= self.num_qubits:
                raise ValueError(
                    f"qubit {q} out of range for circuit with {self.num_qubits} qubits"
                )
        for c in instruction.clbits:
            if c >= self.num_clbits:
                raise ValueError(
                    f"clbit {c} out of range for circuit with {self.num_clbits} clbits"
                )

    # ------------------------------------------------------------------
    # Builder API (single-qubit gates)
    # ------------------------------------------------------------------

    def id(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("id"), (qubit,))

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("x"), (qubit,))

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("y"), (qubit,))

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("z"), (qubit,))

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("h"), (qubit,))

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("s"), (qubit,))

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("sdg"), (qubit,))

    def t(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("t"), (qubit,))

    def tdg(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("tdg"), (qubit,))

    def sx(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("sx"), (qubit,))

    def sxdg(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("sxdg"), (qubit,))

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("rx", theta), (qubit,))

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("ry", theta), (qubit,))

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("rz", theta), (qubit,))

    def p(self, lam: float, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("p", lam), (qubit,))

    def u(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("u", theta, phi, lam), (qubit,))

    def prepare(self, state: str, qubit: int) -> "QuantumCircuit":
        """Prepare ``qubit`` (assumed |0>) in one of |0>,|1>,|+>,|->,|i>,|-i>."""
        return self.append(StatePreparation(state), (qubit,))

    # ------------------------------------------------------------------
    # Builder API (multi-qubit gates)
    # ------------------------------------------------------------------

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(standard_gate("cx"), (control, target))

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(standard_gate("cy"), (control, target))

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(standard_gate("cz"), (control, target))

    def ch(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(standard_gate("ch"), (control, target))

    def cp(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(standard_gate("cp", lam), (control, target))

    def crx(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(standard_gate("crx", theta), (control, target))

    def cry(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(standard_gate("cry", theta), (control, target))

    def crz(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(standard_gate("crz", theta), (control, target))

    def rzz(self, theta: float, qubit1: int, qubit2: int) -> "QuantumCircuit":
        return self.append(standard_gate("rzz", theta), (qubit1, qubit2))

    def swap(self, qubit1: int, qubit2: int) -> "QuantumCircuit":
        return self.append(standard_gate("swap"), (qubit1, qubit2))

    def ccx(self, control1: int, control2: int, target: int) -> "QuantumCircuit":
        return self.append(standard_gate("ccx"), (control1, control2, target))

    def cswap(self, control: int, target1: int, target2: int) -> "QuantumCircuit":
        return self.append(standard_gate("cswap"), (control, target1, target2))

    def unitary(self, matrix: np.ndarray, qubits: Sequence[int], name: str = "unitary") -> "QuantumCircuit":
        return self.append(UnitaryGate(matrix, name=name), tuple(qubits))

    # ------------------------------------------------------------------
    # Non-unitary operations
    # ------------------------------------------------------------------

    def measure(self, qubit: int, clbit: int) -> "QuantumCircuit":
        return self.append(Measurement(), (qubit,), (clbit,))

    def measure_all(self) -> "QuantumCircuit":
        """Measure every qubit into a classical bit of the same index."""
        if self.num_clbits < self.num_qubits:
            self.num_clbits = self.num_qubits
        for q in range(self.num_qubits):
            self.measure(q, q)
        return self

    def measure_subset(self, qubits: Sequence[int]) -> "QuantumCircuit":
        """Measure only ``qubits``, each into a classical bit of the same index."""
        qubits = tuple(qubits)
        if qubits and self.num_clbits < max(qubits) + 1:
            self.num_clbits = max(qubits) + 1
        for q in qubits:
            self.measure(q, q)
        return self

    def reset(self, qubit: int) -> "QuantumCircuit":
        return self.append(Reset(), (qubit,))

    def barrier(self, *qubits: int, label: str | None = None) -> "QuantumCircuit":
        wires = tuple(qubits) if qubits else tuple(range(self.num_qubits))
        return self.append(Barrier(len(wires), label=label), wires)

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.data)

    @property
    def gates(self) -> list[Instruction]:
        """The unitary instructions, in order."""
        return [inst for inst in self.data if inst.is_gate]

    @property
    def measurements(self) -> list[Instruction]:
        return [inst for inst in self.data if inst.is_measurement]

    @property
    def measured_qubits(self) -> list[int]:
        """Qubits with at least one measurement, in first-measurement order."""
        seen: list[int] = []
        for inst in self.data:
            if inst.is_measurement and inst.qubits[0] not in seen:
                seen.append(inst.qubits[0])
        return seen

    @property
    def has_measurements(self) -> bool:
        return any(inst.is_measurement for inst in self.data)

    def measurement_layout(self) -> list[int]:
        """Measured qubits in clbit order; every qubit when none are measured.

        Bit ``i`` of a measured-output outcome corresponds to qubit
        ``layout[i]``.  A qubit measured onto several clbits keeps the qubit
        of its *last* measurement per clbit.  This is the single source of
        truth for output bit ordering — every simulator backend uses it.
        """
        clbit_to_qubit: dict[int, int] = {}
        for inst in self.data:
            if inst.is_measurement:
                clbit_to_qubit[inst.clbits[0]] = inst.qubits[0]
        if clbit_to_qubit:
            return [clbit_to_qubit[c] for c in sorted(clbit_to_qubit)]
        return list(range(self.num_qubits))

    def count_ops(self) -> Counter:
        """Histogram of operation names, like Qiskit's ``count_ops``."""
        return Counter(inst.name for inst in self.data)

    def num_two_qubit_gates(self) -> int:
        """Number of two-qubit unitary gates (the paper's "2-qubit basis gate count"
        is computed on the transpiled circuit; see :mod:`repro.transpiler`)."""
        return sum(1 for inst in self.data if inst.is_two_qubit_gate)

    def depth(self, count_barriers: bool = False) -> int:
        """Circuit depth: longest path through the wire-dependency structure."""
        level: dict[int, int] = {}
        clevel: dict[int, int] = {}
        max_depth = 0
        for inst in self.data:
            if inst.is_barrier and not count_barriers:
                # Barriers synchronise wires but do not add depth.
                sync = max((level.get(q, 0) for q in inst.qubits), default=0)
                for q in inst.qubits:
                    level[q] = sync
                continue
            start = max(
                [level.get(q, 0) for q in inst.qubits]
                + [clevel.get(c, 0) for c in inst.clbits]
                + [0]
            )
            new = start + 1
            for q in inst.qubits:
                level[q] = new
            for c in inst.clbits:
                clevel[c] = new
            max_depth = max(max_depth, new)
        return max_depth

    def qubits_used(self) -> set[int]:
        used: set[int] = set()
        for inst in self.data:
            used.update(inst.qubits)
        return used

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def copy(self, name: str | None = None) -> "QuantumCircuit":
        new = QuantumCircuit(self.num_qubits, self.num_clbits, name or self.name)
        new.data = list(self.data)
        new.metadata = dict(self.metadata)
        return new

    def compose(
        self,
        other: "QuantumCircuit",
        qubits: Sequence[int] | None = None,
        clbits: Sequence[int] | None = None,
    ) -> "QuantumCircuit":
        """Return a new circuit with ``other`` appended onto ``self``.

        ``qubits`` maps ``other``'s wire ``i`` onto ``self``'s wire
        ``qubits[i]``; by default wires are matched by index.
        """
        if qubits is None:
            qubits = list(range(other.num_qubits))
        if len(qubits) != other.num_qubits:
            raise ValueError("qubit mapping length must equal other.num_qubits")
        if clbits is None:
            clbits = list(range(other.num_clbits))
        new = self.copy()
        if other.num_clbits and max(clbits, default=-1) + 1 > new.num_clbits:
            new.num_clbits = max(clbits) + 1
        qubit_map = {i: qubits[i] for i in range(other.num_qubits)}
        clbit_map = {i: clbits[i] for i in range(other.num_clbits)}
        for inst in other.data:
            new.append_instruction(inst.remap(qubit_map, clbit_map))
        return new

    def inverse(self) -> "QuantumCircuit":
        """Return the adjoint circuit (measurements/barriers are not allowed)."""
        if self.has_measurements:
            raise ValueError("cannot invert a circuit containing measurements")
        new = QuantumCircuit(self.num_qubits, self.num_clbits, f"{self.name}_dg")
        for inst in reversed(self.data):
            if inst.is_barrier:
                new.append_instruction(inst)
            elif inst.is_gate:
                new.append(inst.operation.inverse(), inst.qubits)
            else:
                raise ValueError(f"cannot invert instruction {inst.name!r}")
        return new

    def remove_final_measurements(self) -> "QuantumCircuit":
        """Return a copy with all measurements removed."""
        new = QuantumCircuit(self.num_qubits, 0, self.name)
        new.metadata = dict(self.metadata)
        for inst in self.data:
            if not inst.is_measurement:
                new.append_instruction(Instruction(inst.operation, inst.qubits, ()))
        return new

    def remap_qubits(self, mapping: dict[int, int], num_qubits: int | None = None) -> "QuantumCircuit":
        """Return a copy with qubit wires renamed according to ``mapping``.

        Wires not present in ``mapping`` keep their index.  ``num_qubits``
        overrides the size of the resulting circuit (useful when embedding a
        small circuit into a larger device).
        """
        full_map = {q: mapping.get(q, q) for q in range(self.num_qubits)}
        target_size = num_qubits if num_qubits is not None else max(
            [self.num_qubits] + [v + 1 for v in full_map.values()]
        )
        new = QuantumCircuit(target_size, self.num_clbits, self.name)
        new.metadata = dict(self.metadata)
        for inst in self.data:
            new.append_instruction(inst.remap(full_map))
        return new

    def active_qubits(self) -> list[int]:
        """Wires touched by at least one non-barrier instruction (sorted).

        Barriers are pure scheduling markers — a wire that only appears in
        barriers carries no state and can be dropped by :meth:`compact_qubits`.
        """
        used: set[int] = set()
        for inst in self.data:
            if inst.is_barrier:
                continue
            used.update(inst.qubits)
        return sorted(used)

    def compact_qubits(self) -> tuple["QuantumCircuit", list[int]]:
        """Drop idle wires and renumber the rest contiguously.

        Returns ``(compact, active)`` where ``active[i]`` is the original
        index of the compact circuit's qubit ``i``.  Classical bits are left
        untouched, so measured-output distributions are unchanged.  Idle wires
        stay in |0> for the whole circuit, which is what makes this safe: a
        subset circuit embedded on a wide device simulates in ``2**k`` instead
        of ``2**n`` memory.  Barriers are restricted to the surviving wires
        (and dropped entirely when none survive).
        """
        active = self.active_qubits()
        if not active:
            active = [0] if self.num_qubits else []
        mapping = {q: i for i, q in enumerate(active)}
        new = QuantumCircuit(len(active), self.num_clbits, self.name)
        new.metadata = dict(self.metadata)
        for inst in self.data:
            if inst.is_barrier:
                kept = [mapping[q] for q in inst.qubits if q in mapping]
                if kept:
                    new.append(Barrier(len(kept), label=inst.operation.label), kept)
                continue
            new.append_instruction(inst.remap(mapping))
        return new, active

    def without_instructions(self, indices: Iterable[int]) -> "QuantumCircuit":
        """Return a copy with the instructions at ``indices`` removed."""
        drop = set(indices)
        new = QuantumCircuit(self.num_qubits, self.num_clbits, self.name)
        new.metadata = dict(self.metadata)
        for i, inst in enumerate(self.data):
            if i not in drop:
                new.append_instruction(inst)
        return new

    # ------------------------------------------------------------------
    # Dense representations (small circuits only)
    # ------------------------------------------------------------------

    def to_matrix(self) -> np.ndarray:
        """Dense unitary of the circuit (ignores barriers; rejects measurements).

        Little-endian: qubit 0 is the least-significant bit of the index.
        Only sensible for small ``num_qubits`` (the matrix is ``4**n`` complex
        numbers).
        """
        if self.has_measurements:
            raise ValueError("cannot build the unitary of a circuit with measurements")
        dim = 2**self.num_qubits
        unitary = np.eye(dim, dtype=complex)
        for inst in self.data:
            if inst.is_barrier:
                continue
            if not inst.is_gate:
                raise ValueError(f"non-unitary instruction {inst.name!r}")
            unitary = _expand_gate(inst.operation.matrix, inst.qubits, self.num_qubits) @ unitary
        return unitary

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        ops = dict(self.count_ops())
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"clbits={self.num_clbits}, ops={ops})"
        )


def _expand_gate(matrix: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Embed ``matrix`` acting on ``qubits`` into the full ``num_qubits`` space.

    Uses the tensor-reshape technique: the state index is viewed as a tensor
    with one axis per qubit (axis ``k`` corresponds to qubit ``k``), the gate
    is applied by tensordot over the relevant axes, and the axes are moved
    back into place.
    """
    num_gate_qubits = len(qubits)
    dim = 2**num_qubits
    full = np.eye(dim, dtype=complex)
    # Treat the identity's column index as the input state and apply the gate
    # to each column.  Columns are applied in one vectorised call by reshaping
    # into a tensor of shape (2,)*n + (dim,).
    tensor = full.reshape([2] * num_qubits + [dim])
    # numpy's reshape of the index i = sum_k b_k 2^k puts qubit (n-1) on the
    # first axis, so the state axis for qubit q is (num_qubits - 1 - q).
    # The gate matrix is little-endian in the wire tuple, so after reshaping
    # it to [2]*(2k) its first output/input axis corresponds to the *last*
    # wire in the tuple; align by iterating the wires in reverse.
    axes = [num_qubits - 1 - q for q in reversed(qubits)]
    gate_tensor = matrix.reshape([2] * (2 * num_gate_qubits))
    moved = np.tensordot(
        gate_tensor, tensor, axes=(range(num_gate_qubits, 2 * num_gate_qubits), axes)
    )
    # tensordot places the gate's output axes first; move them back to the
    # positions of the wires they act on.
    result = np.moveaxis(moved, range(num_gate_qubits), axes)
    return result.reshape(dim, dim)
