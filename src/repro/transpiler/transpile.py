"""The transpilation entry point: a preset pass pipeline.

``transpile()`` builds the standard hardware-aware pipeline —

    layout (noise-aware / user / trivial)
    -> apply layout
    -> SABRE routing (with bidirectional preconditioning when the layout
       carries no calibration information)
    -> 1q peephole merge
    -> basis translation {rz, sx, x, cx}
    -> gate-count analysis

— as a :class:`~repro.transpiler.passes.PassManager` and runs it.  Use
:func:`build_preset_pipeline` to get the manager itself (the engine's
:class:`~repro.transpiler.CompilationCache` keys compiled artifacts on its
``signature()``), or compose a custom ``PassManager`` from the passes in
:mod:`repro.transpiler.passes`.
"""

from __future__ import annotations

from ..circuits import QuantumCircuit
from ..noise.device import DeviceModel
from .coupling import CouplingMap
from .layout import Layout, trivial_layout
from .passes import (
    ApplyLayout,
    BasisTranslation,
    GateCountAnalysis,
    NoiseAwareLayoutPass,
    PassManager,
    Peephole1QMerge,
    PropertySet,
    SabreRouting,
    SetLayout,
    TrivialLayoutPass,
)

__all__ = ["transpile", "build_preset_pipeline", "TranspileResult"]


class TranspileResult:
    """A transpiled circuit with its layouts, stats and provenance.

    ``layout`` maps logical -> physical qubit at circuit *start* (after any
    routing preconditioning); ``final_layout`` maps logical -> physical at
    circuit *end* — the permutation left behind by routed SWAPs.  Measured
    outputs ride on classical bits and are permutation-free; unmeasured
    outputs must be read through ``final_layout``.  ``property_set`` carries
    the per-pass statistics recorded during the run.
    """

    def __init__(
        self,
        circuit: QuantumCircuit,
        layout: Layout,
        original: QuantumCircuit,
        final_layout: Layout | None = None,
        property_set: PropertySet | None = None,
    ) -> None:
        self.circuit = circuit
        self.layout = layout
        self.final_layout = final_layout if final_layout is not None else layout
        self.original = original
        self.property_set = property_set if property_set is not None else PropertySet()

    @property
    def two_qubit_gate_count(self) -> int:
        """Two-qubit gates in the transpiled circuit, counted by arity.

        Counting by instruction arity (rather than a ``{cx, cz}`` name set)
        keeps non-CX basis sets and un-translated routed SWAPs honest — a
        SWAP that survives to the output is two-qubit work the device must
        execute, whatever its name.
        """
        return sum(1 for inst in self.circuit.data if inst.is_two_qubit_gate)

    @property
    def swaps_inserted(self) -> int:
        return self.property_set.get("routing", {}).get("swaps_inserted", 0)

    @property
    def depth(self) -> int:
        return self.circuit.depth()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"TranspileResult(two_qubit_gates={self.two_qubit_gate_count}, depth={self.depth}, "
            f"layout={self.layout.logical_to_physical}, "
            f"final_layout={self.final_layout.logical_to_physical})"
        )


def build_preset_pipeline(
    noise_aware: bool = True,
    initial_layout: Layout | dict[int, int] | None = None,
    basis: bool = True,
    route: bool = True,
    seed: int = 0,
    bidirectional: bool | None = None,
) -> PassManager:
    """The standard pipeline as a :class:`~repro.transpiler.passes.PassManager`.

    The manager is target-agnostic: the device and coupling map are read
    from the property set at run time (seed them like :func:`transpile`
    does), so one pipeline's ``signature()`` identifies the *configuration*
    across every device it compiles for.  ``bidirectional`` defaults to
    routing-preconditioning only when no calibration guided the layout
    (a noise-aware placement should not be second-guessed by swap count).
    """
    passes: list = []
    if initial_layout is not None:
        passes.append(SetLayout(initial_layout))
        layout_is_informed = True
    elif noise_aware:
        passes.append(NoiseAwareLayoutPass())
        layout_is_informed = True
    else:
        passes.append(TrivialLayoutPass())
        layout_is_informed = False
    passes.append(ApplyLayout())
    if route:
        if bidirectional is None:
            bidirectional = not layout_is_informed
        passes.append(SabreRouting(seed=seed, bidirectional=bidirectional))
    if basis:
        # The 1q peephole rewrites named gates into merged unitaries, so it
        # only runs when the gate stream is being rewritten anyway —
        # ``basis=False`` preserves the input gates (plus routed SWAPs)
        # name-for-name for callers that inspect them.
        passes.append(Peephole1QMerge())
        passes.append(BasisTranslation())
    passes.append(GateCountAnalysis())
    return PassManager(passes, name="preset")


def transpile(
    circuit: QuantumCircuit,
    device: DeviceModel | None = None,
    coupling_map: CouplingMap | None = None,
    initial_layout: Layout | dict[int, int] | None = None,
    basis: bool = True,
    route: bool = True,
    seed: int = 0,
) -> TranspileResult:
    """Map a logical circuit onto a device through the preset pipeline.

    The same pipeline is applied to the original circuits and to QuTracer's
    optimized circuit copies, so the "2-qubit basis gate count" columns of
    the result tables compare like with like.  ``seed`` feeds the routing
    tie-break RNG; compilation is a deterministic function of
    ``(circuit, device/coupling, pipeline config)``.
    """
    if device is not None and coupling_map is None:
        coupling_map = device.coupling_map()
    manager = build_preset_pipeline(
        noise_aware=device is not None,
        initial_layout=initial_layout,
        basis=basis,
        route=route,
        seed=seed,
    )
    properties = PropertySet(device=device, coupling_map=coupling_map)
    compiled, properties = manager.run(circuit, properties)
    layout = properties.get("layout") or trivial_layout(circuit)
    return TranspileResult(
        compiled,
        layout,
        circuit,
        final_layout=properties.get("final_layout", layout),
        property_set=properties,
    )
