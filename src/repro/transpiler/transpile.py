"""The transpilation entry point: layout -> routing -> basis translation."""

from __future__ import annotations

from ..circuits import QuantumCircuit
from ..noise.device import DeviceModel
from .basis import count_two_qubit_basis_gates, decompose_to_basis
from .coupling import CouplingMap
from .layout import Layout, noise_aware_layout, trivial_layout
from .routing import route_circuit

__all__ = ["transpile", "TranspileResult"]


class TranspileResult:
    """A transpiled circuit together with its layout and gate statistics."""

    def __init__(self, circuit: QuantumCircuit, layout: Layout, original: QuantumCircuit) -> None:
        self.circuit = circuit
        self.layout = layout
        self.original = original

    @property
    def two_qubit_gate_count(self) -> int:
        return self.circuit.count_ops().get("cx", 0) + self.circuit.count_ops().get("cz", 0)

    @property
    def depth(self) -> int:
        return self.circuit.depth()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"TranspileResult(two_qubit_gates={self.two_qubit_gate_count}, depth={self.depth}, "
            f"layout={self.layout.logical_to_physical})"
        )


def transpile(
    circuit: QuantumCircuit,
    device: DeviceModel | None = None,
    coupling_map: CouplingMap | None = None,
    initial_layout: Layout | dict[int, int] | None = None,
    basis: bool = True,
    route: bool = True,
) -> TranspileResult:
    """Map a logical circuit onto a device.

    Steps (each optional):

    1. **Layout** — noise-aware placement when a ``device`` is given
       (otherwise trivial / user-provided layout);
    2. **Routing** — SWAP insertion for non-adjacent two-qubit gates when a
       coupling map is available;
    3. **Basis translation** — decomposition into {rz, sx, x, cx} with
       single-qubit merging and CX cancellation.

    The same pipeline is applied to the original circuits and to QuTracer's
    optimized circuit copies, so the "2-qubit basis gate count" columns of
    the result tables compare like with like.
    """
    working = circuit
    if device is not None and coupling_map is None:
        coupling_map = CouplingMap(device.coupling_edges, device.num_qubits)

    if initial_layout is not None:
        layout = initial_layout if isinstance(initial_layout, Layout) else Layout(initial_layout)
    elif device is not None:
        layout = noise_aware_layout(circuit, device)
    else:
        layout = trivial_layout(circuit)

    if coupling_map is not None:
        working = layout.apply(working, coupling_map.num_qubits)
        if route:
            working = route_circuit(working, coupling_map)
    elif layout.logical_to_physical != {q: q for q in range(circuit.num_qubits)}:
        working = layout.apply(working, max(layout.physical_qubits()) + 1)

    if basis:
        working = decompose_to_basis(working)
    return TranspileResult(working, layout, circuit)
