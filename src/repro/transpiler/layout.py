"""Noise-aware qubit layout.

QuTracer's *qubit remapping* optimization (Sec. V-B) places the small,
optimized circuit copies onto the best physical qubits of the device — the
same idea as Qiskit's "mapomatic" noise-aware layout [31].  The heuristic
here scores connected regions of the coupling map by the calibration data of
their qubits and couplers and picks the best region of the required size,
then assigns the busiest logical qubits to the best physical qubits inside
that region.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from ..circuits import QuantumCircuit
from ..noise.device import DeviceModel
from .coupling import CouplingMap

__all__ = ["Layout", "noise_aware_layout", "trivial_layout"]


class Layout:
    """A mapping from logical circuit qubits to physical device qubits."""

    def __init__(self, mapping: dict[int, int]) -> None:
        if len(set(mapping.values())) != len(mapping):
            raise ValueError("two logical qubits map to the same physical qubit")
        self.logical_to_physical = dict(mapping)

    def physical(self, logical: int) -> int:
        return self.logical_to_physical[logical]

    def physical_qubits(self) -> list[int]:
        return [self.logical_to_physical[k] for k in sorted(self.logical_to_physical)]

    def apply(self, circuit: QuantumCircuit, num_physical_qubits: int) -> QuantumCircuit:
        """Re-express ``circuit`` on physical wires."""
        return circuit.remap_qubits(self.logical_to_physical, num_qubits=num_physical_qubits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return self.logical_to_physical == other.logical_to_physical

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Layout({self.logical_to_physical})"


def trivial_layout(circuit: QuantumCircuit) -> Layout:
    return Layout({q: q for q in range(circuit.num_qubits)})


def _embedded_layout(circuit, device, coupling, qubit_cost, edge_cost, max_candidates: int = 30):
    """Try to place the circuit with zero routing via subgraph monomorphism."""
    import networkx as nx

    interaction = nx.Graph()
    interaction.add_nodes_from(range(circuit.num_qubits))
    for inst in circuit.data:
        if inst.is_two_qubit_gate:
            interaction.add_edge(*inst.qubits)
    connected_nodes = [n for n in interaction.nodes if interaction.degree(n) > 0]
    isolated_nodes = [n for n in interaction.nodes if interaction.degree(n) == 0]
    core = interaction.subgraph(connected_nodes)

    best_mapping: dict[int, int] | None = None
    best_cost = float("inf")
    if connected_nodes:
        matcher = nx.algorithms.isomorphism.GraphMatcher(coupling.graph, core)
        for count, monomorphism in enumerate(matcher.subgraph_monomorphisms_iter()):
            if count >= max_candidates:
                break
            mapping = {logical: physical for physical, logical in monomorphism.items()}
            cost = sum(qubit_cost(p) for p in mapping.values())
            cost += sum(
                edge_cost(mapping[a], mapping[b]) * 50.0 for a, b in core.edges()
            )
            if cost < best_cost:
                best_cost = cost
                best_mapping = mapping
        if best_mapping is None:
            return None
    else:
        best_mapping = {}

    used = set(best_mapping.values())
    free = sorted(
        (q for q in range(device.num_qubits) if q not in used), key=qubit_cost
    )
    for logical, physical in zip(isolated_nodes, free):
        best_mapping[logical] = physical
    if len(best_mapping) != circuit.num_qubits:
        return None
    return Layout(best_mapping)


def noise_aware_layout(circuit: QuantumCircuit, device: DeviceModel) -> Layout:
    """Choose physical qubits for ``circuit`` using the device calibration.

    The layout is built in two steps:

    1. grow a connected region of the required size, greedily adding the
       neighbouring qubit with the best (lowest) cost, where cost combines
       readout error, single-qubit error and the error of the coupler used to
       reach the region; each candidate seed among the device's best qubits
       is tried and the cheapest region wins;
    2. inside the region, assign logical qubits with the most two-qubit gates
       to physical qubits with the best connectivity-weighted calibration.
    """
    num_needed = circuit.num_qubits
    if num_needed > device.num_qubits:
        raise ValueError(
            f"circuit needs {num_needed} qubits but device {device.name} has {device.num_qubits}"
        )
    coupling = CouplingMap(device.coupling_edges, device.num_qubits)

    def qubit_cost(qubit: int) -> float:
        calibration = device.qubit_calibrations[qubit]
        return calibration.readout_error + 10.0 * calibration.sq_error + 1e4 / calibration.t1

    def edge_cost(a: int, b: int) -> float:
        calibration = device.edge_calibrations.get(tuple(sorted((a, b))))
        return calibration.cx_error if calibration else 1.0

    # First choice: embed the circuit's interaction graph directly into the
    # coupling graph (a subgraph monomorphism), which makes routing free.
    # A handful of embeddings are scored by calibration cost and the best is
    # kept.  When no embedding exists (e.g. a 3-regular QAOA graph on a
    # heavy-hex device) we fall back to the greedy connected-region heuristic
    # below and let the router insert SWAPs.
    embedded = _embedded_layout(circuit, device, coupling, qubit_cost, edge_cost)
    if embedded is not None:
        return embedded

    best_region: list[int] | None = None
    best_cost = float("inf")
    seeds = device.best_qubits(min(device.num_qubits, max(4, num_needed)))
    for seed in seeds:
        region = [seed]
        cost = qubit_cost(seed)
        frontier = {(q, seed) for q in coupling.neighbors(seed)}
        feasible = True
        while len(region) < num_needed:
            candidates = [(q, via) for q, via in frontier if q not in region]
            if not candidates:
                feasible = False
                break
            q, via = min(candidates, key=lambda item: qubit_cost(item[0]) + 5.0 * edge_cost(*item))
            region.append(q)
            cost += qubit_cost(q) + 5.0 * edge_cost(q, via)
            frontier = {(n, q2) for q2 in region for n in coupling.neighbors(q2) if n not in region}
        if feasible and cost < best_cost:
            best_cost = cost
            best_region = region
    if best_region is None:
        raise ValueError("could not find a connected region of the required size")

    # Interaction-aware assignment inside the region: place the busiest
    # logical qubit first, then repeatedly place the logical qubit with the
    # most already-placed interaction partners next to those partners.  This
    # keeps chain-like circuits (VQE ansatz, routed QAOA) swap-free whenever
    # the region itself is chain-like.
    interactions: Counter = Counter()
    usage: Counter = Counter()
    for inst in circuit.data:
        if inst.is_two_qubit_gate:
            usage.update(inst.qubits)
            interactions[tuple(sorted(inst.qubits))] += 1

    def partners(logical: int) -> list[int]:
        result = []
        for (a, b), count in interactions.items():
            if a == logical:
                result.extend([b] * count)
            elif b == logical:
                result.extend([a] * count)
        return result

    region_set = set(best_region)
    free_physical = set(best_region)
    mapping: dict[int, int] = {}

    def physical_quality(qubit: int) -> float:
        in_region_degree = sum(1 for n in coupling.neighbors(qubit) if n in region_set)
        return qubit_cost(qubit) - 0.002 * in_region_degree

    unplaced = set(range(num_needed))
    while unplaced:
        placed_partner_count = {
            q: sum(1 for p in partners(q) if p in mapping) for q in unplaced
        }
        logical = max(unplaced, key=lambda q: (placed_partner_count[q], usage[q], -q))
        candidate_pool = free_physical
        placed_partner_positions = [mapping[p] for p in set(partners(logical)) if p in mapping]
        if placed_partner_positions:
            adjacent = {
                n
                for p in placed_partner_positions
                for n in coupling.neighbors(p)
                if n in free_physical
            }
            if adjacent:
                candidate_pool = adjacent

        def candidate_cost(physical: int) -> float:
            distance_penalty = sum(
                coupling.distance(physical, p) - 1 for p in placed_partner_positions
            )
            return 2.0 * distance_penalty + physical_quality(physical)

        choice = min(candidate_pool, key=candidate_cost)
        mapping[logical] = choice
        free_physical.discard(choice)
        unplaced.discard(logical)
    return Layout(mapping)
