"""Content-addressed compilation caching.

Hardware-aware compilation (layout + SABRE routing + basis translation) is
pure: its output is a function of the circuit's structure, the device's
coupling/calibration, and the pipeline configuration — nothing else.  The
:class:`CompilationCache` therefore addresses compiled artifacts by

    (circuit fingerprint, device fingerprint, pipeline signature)

exactly as the execution engine addresses results, and layers the same two
storage tiers: an in-memory LRU, and (optionally) the engine's persistent
on-disk result cache — so repeated submissions, calibration sweeps, and
parallel shards never re-route the same circuit, within a process or across
sessions.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict

from ..circuits import QuantumCircuit, circuit_fingerprint
from .transpile import TranspileResult, build_preset_pipeline, transpile

__all__ = ["CompiledCircuit", "CompilationCache"]


@dataclasses.dataclass
class CompiledCircuit:
    """One cached compilation artifact.

    ``circuit`` is the routed, basis-translated physical circuit — always
    carrying measurements (an unmeasured submission is measure-all'd before
    compilation, so the routed permutation is absorbed by the classical
    bits).  ``logical_measurement_layout`` maps each classical bit back to
    the *logical* qubit of the original submission: bit ``i`` of an outcome
    is logical qubit ``logical_measurement_layout[i]``.  ``layout`` /
    ``final_layout`` are the logical -> physical maps at circuit start/end.
    """

    circuit: QuantumCircuit
    layout: dict[int, int]
    final_layout: dict[int, int]
    logical_measurement_layout: list[int]
    two_qubit_gate_count: int
    swaps_inserted: int
    source_fingerprint: str

    @classmethod
    def from_transpile_result(
        cls, result: TranspileResult, logical_measurement_layout: list[int], source_fingerprint: str
    ) -> "CompiledCircuit":
        return cls(
            circuit=result.circuit,
            layout=dict(result.layout.logical_to_physical),
            final_layout=dict(result.final_layout.logical_to_physical),
            logical_measurement_layout=list(logical_measurement_layout),
            two_qubit_gate_count=result.two_qubit_gate_count,
            swaps_inserted=result.swaps_inserted,
            source_fingerprint=source_fingerprint,
        )


class CompilationCache:
    """Two-tier (memory + optional persistent) cache of compiled circuits.

    Parameters
    ----------
    max_entries:
        In-memory LRU capacity (compiled circuits are small; the default
        comfortably holds a full calibration sweep).
    persistent:
        Any object with the :class:`~repro.simulators.cache.PersistentResultCache`
        ``get(key)`` / ``put(key, value)`` interface, or ``None``.  The
        engine passes its own persistent cache, so compiled artifacts share
        the result store's versioning, atomic writes and size cap.
    seed:
        Routing tie-break seed baked into the pipeline signature — part of
        the cache key, never ambient state.
    """

    def __init__(self, max_entries: int = 1024, persistent=None, seed: int = 0) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        self.max_entries = int(max_entries)
        self.persistent = persistent
        self.seed = int(seed)
        self.pipeline_signature = build_preset_pipeline(noise_aware=True, seed=self.seed).signature()
        self.hits = 0
        self.misses = 0
        self.persistent_hits = 0
        # (circuit fingerprint, serving tier) of the most recent
        # get_or_compile: "memory" | "persistent" | "compiled".  Read by
        # the engine's tracing layer for compile-event attribution; kept
        # off CompiledCircuit itself so persisted artifacts keep their
        # layout (a dataclass-shape change would quarantine every cached
        # entry written by earlier versions).
        self.last_lookup: tuple[str, str] | None = None
        self._cache: OrderedDict[tuple, CompiledCircuit] = OrderedDict()

    def key_for(self, circuit: QuantumCircuit, device) -> tuple:
        """The content address of one (circuit, device) compilation."""
        return (
            "compiled",
            circuit_fingerprint(circuit),
            device.fingerprint(),
            self.pipeline_signature,
        )

    def get_or_compile(self, circuit: QuantumCircuit, device) -> CompiledCircuit:
        """Serve the compiled form of ``circuit`` on ``device``, compiling on miss.

        Unmeasured circuits are measure-all'd first (classical bits then
        carry the logical identity through routing), so every cached
        artifact is deliverable without a separate permutation step.
        """
        measured = circuit
        if not circuit.has_measurements:
            measured = circuit.copy()
            measured.measure_all()
        key = self.key_for(measured, device)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.hits += 1
            self.last_lookup = (key[1], "memory")
            return cached
        if self.persistent is not None:
            stored = self.persistent.get(key)
            if stored is not None:
                self.hits += 1
                self.persistent_hits += 1
                self._remember(key, stored)
                self.last_lookup = (key[1], "persistent")
                return stored
        self.misses += 1
        self.last_lookup = (key[1], "compiled")
        result = transpile(measured, device=device, seed=self.seed)
        compiled = CompiledCircuit.from_transpile_result(
            result,
            logical_measurement_layout=measured.measurement_layout(),
            source_fingerprint=key[1],
        )
        if self.persistent is not None:
            self.persistent.put(key, compiled)
        self._remember(key, compiled)
        return compiled

    def _remember(self, key: tuple, compiled: CompiledCircuit) -> None:
        if self.max_entries == 0:
            return
        self._cache[key] = compiled
        self._cache.move_to_end(key)
        while len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        """Drop the in-memory tier (the persistent layer is untouched)."""
        self._cache.clear()

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "persistent_hits": self.persistent_hits,
            "entries": len(self._cache),
        }
