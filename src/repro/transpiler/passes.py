"""The transpiler pass pipeline: ``Pass``, ``PropertySet``, ``PassManager``.

The transpiler is organised like Qiskit's: a **pass** is one unit of work
over a circuit — either an *analysis* pass that records facts into a shared
:class:`PropertySet`, or a *transformation* pass that rewrites the circuit
(and may record stats about what it did).  A :class:`PassManager` runs an
ordered list of passes and hands back the final circuit together with the
property set, which carries the initial/final layouts, per-pass statistics,
and anything else downstream consumers (the engine's
:class:`~repro.transpiler.CompilationCache`, QuTracer's overhead accounting)
want to read.

``PassManager.signature()`` is a content-style identity of the *pipeline
configuration* (pass names + their parameters, never the device or circuit)
— it is one of the three components of the compilation-cache key, so two
engines configured with the same preset share compiled artifacts while a
changed routing seed or disabled basis translation gets its own address.
"""

from __future__ import annotations

import numpy as np

from ..circuits import QuantumCircuit
from .basis import decompose_to_basis
from .coupling import CouplingMap
from .layout import Layout, noise_aware_layout, trivial_layout
from .routing import sabre_route

__all__ = [
    "PropertySet",
    "Pass",
    "AnalysisPass",
    "TransformationPass",
    "PassManager",
    "SetLayout",
    "TrivialLayoutPass",
    "NoiseAwareLayoutPass",
    "ApplyLayout",
    "SabreRouting",
    "Peephole1QMerge",
    "BasisTranslation",
    "GateCountAnalysis",
]


class PropertySet(dict):
    """Shared blackboard the passes read from and write to.

    Well-known keys:

    ``device`` / ``coupling_map``
        The compilation target, seeded by :func:`~repro.transpiler.transpile`.
    ``layout``
        :class:`~repro.transpiler.Layout`, logical qubit -> physical qubit
        *at circuit start* (routing preconditioning may refine it).
    ``final_layout``
        logical qubit -> physical qubit *after the last instruction* — the
        permutation consumers need to translate unmeasured outputs; measured
        outputs ride on clbits and are permutation-free by construction.
    ``routing`` / ``basis`` / ``peephole`` / ``gate_counts`` ...
        Per-pass statistics dictionaries (see each pass).
    """


class Pass:
    """One unit of transpilation work.

    Subclasses set ``name`` and implement :meth:`run`.  Parameters that
    change the output must appear in :meth:`signature` — the pipeline
    signature is a compilation-cache key component.
    """

    name = "pass"

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit | None:
        raise NotImplementedError

    def _config(self) -> dict:
        """Parameters that are part of this pass's identity."""
        return {}

    def signature(self) -> str:
        config = self._config()
        if not config:
            return self.name
        rendered = ",".join(f"{k}={config[k]!r}" for k in sorted(config))
        return f"{self.name}({rendered})"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.signature()}>"


class AnalysisPass(Pass):
    """A pass that inspects the circuit and records facts; never rewrites."""


class TransformationPass(Pass):
    """A pass that returns a rewritten circuit (and may record stats)."""


class PassManager:
    """Runs an ordered list of passes over one circuit."""

    def __init__(self, passes: list[Pass] | tuple[Pass, ...] = (), name: str = "custom") -> None:
        self.passes: list[Pass] = list(passes)
        self.name = name

    def append(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(
        self, circuit: QuantumCircuit, properties: PropertySet | None = None
    ) -> tuple[QuantumCircuit, PropertySet]:
        properties = properties if properties is not None else PropertySet()
        current = circuit
        for pass_ in self.passes:
            result = pass_.run(current, properties)
            if result is not None:
                if isinstance(pass_, AnalysisPass):
                    raise TypeError(f"analysis pass {pass_.name!r} returned a circuit")
                current = result
        return current, properties

    def signature(self) -> str:
        """Content identity of the pipeline configuration (not the target)."""
        return "|".join(p.signature() for p in self.passes)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PassManager({self.name!r}, passes=[{self.signature()}])"


# ---------------------------------------------------------------------------
# Layout passes
# ---------------------------------------------------------------------------

class SetLayout(AnalysisPass):
    """Pin a user-provided initial layout."""

    name = "set_layout"

    def __init__(self, layout: Layout | dict[int, int]) -> None:
        self.layout = layout if isinstance(layout, Layout) else Layout(dict(layout))

    def _config(self) -> dict:
        return {"layout": tuple(sorted(self.layout.logical_to_physical.items()))}

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        properties["layout"] = self.layout


class TrivialLayoutPass(AnalysisPass):
    """logical ``i`` -> physical ``i``."""

    name = "trivial_layout"

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        properties["layout"] = trivial_layout(circuit)


class NoiseAwareLayoutPass(AnalysisPass):
    """Calibration-driven placement (QuTracer's qubit-remapping heuristic).

    Reads the device from ``properties["device"]``; falls back to the
    trivial layout when compiling without one.
    """

    name = "noise_aware_layout"

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        device = properties.get("device")
        if device is None:
            properties["layout"] = trivial_layout(circuit)
        else:
            properties["layout"] = noise_aware_layout(circuit, device)


class ApplyLayout(TransformationPass):
    """Re-express the circuit on physical wires according to ``layout``."""

    name = "apply_layout"

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit | None:
        layout: Layout = properties.get("layout") or trivial_layout(circuit)
        properties["layout"] = layout
        properties.setdefault("final_layout", layout)
        coupling: CouplingMap | None = properties.get("coupling_map")
        if coupling is not None:
            num_physical = coupling.num_qubits
        elif layout.logical_to_physical:
            num_physical = max(
                [circuit.num_qubits] + [p + 1 for p in layout.physical_qubits()]
            )
        else:
            num_physical = circuit.num_qubits
        identity = layout.logical_to_physical == {q: q for q in range(circuit.num_qubits)}
        if identity and num_physical == circuit.num_qubits:
            return None
        return layout.apply(circuit, num_physical)


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------

class SabreRouting(TransformationPass):
    """SABRE-style lookahead SWAP insertion (see :mod:`repro.transpiler.routing`).

    With ``bidirectional=True`` the router first runs a forward and a
    reverse pass to *precondition* the initial permutation (the classic
    SABRE trick): the reverse pass's final permutation becomes the forward
    pass's starting point, which consistently removes SWAPs on circuits
    whose hot pairs only meet late.  The preconditioned permutation is
    composed into ``properties["layout"]`` so layout bookkeeping stays
    truthful; ``properties["final_layout"]`` tracks the end-of-circuit
    permutation.  Statistics land in ``properties["routing"]``.
    """

    name = "sabre_routing"

    def __init__(
        self,
        seed: int | None = 0,
        max_swaps: int | None = None,
        lookahead: int | None = None,
        bidirectional: bool = False,
    ) -> None:
        self.seed = 0 if seed is None else int(seed)
        self.max_swaps = max_swaps
        self.lookahead = lookahead
        self.bidirectional = bool(bidirectional)

    def _config(self) -> dict:
        return {
            "seed": self.seed,
            "max_swaps": self.max_swaps,
            "lookahead": self.lookahead,
            "bidirectional": self.bidirectional,
        }

    def _route(self, circuit, coupling, initial_position=None):
        kwargs = {}
        if self.lookahead is not None:
            kwargs["lookahead"] = self.lookahead
        return sabre_route(
            circuit,
            coupling,
            max_swaps=self.max_swaps,
            seed=self.seed,
            initial_position=initial_position,
            **kwargs,
        )

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit | None:
        coupling: CouplingMap | None = properties.get("coupling_map")
        layout: Layout = properties.get("layout") or trivial_layout(circuit)
        if coupling is None:
            properties["final_layout"] = layout
            return None

        routed = self._route(circuit, coupling)
        if self.bidirectional and routed.swaps_inserted > 0:
            # Reverse preconditioning: route the mirrored gate stream from
            # the forward pass's end state; its final permutation is a good
            # *initial* permutation for the real pass (every wire starts in
            # |0>, so re-seating wires is free — only bookkeeping moves).
            reverse = QuantumCircuit(circuit.num_qubits, 0, f"{circuit.name}_rev")
            for inst in reversed(circuit.remove_final_measurements().data):
                reverse.append_instruction(inst)
            backward = self._route(reverse, coupling, initial_position=routed.final_position)
            candidate = self._route(circuit, coupling, initial_position=backward.final_position)
            if candidate.swaps_inserted < routed.swaps_inserted:
                routed = candidate

        composed = Layout(
            {
                logical: routed.initial_position[physical]
                for logical, physical in layout.logical_to_physical.items()
            }
        )
        final = Layout(
            {
                logical: routed.final_position[physical]
                for logical, physical in layout.logical_to_physical.items()
            }
        )
        properties["layout"] = composed
        properties["final_layout"] = final
        properties["routing"] = {
            "swaps_inserted": routed.swaps_inserted,
            "seed": self.seed,
            "bidirectional": self.bidirectional,
        }
        return routed.circuit


# ---------------------------------------------------------------------------
# Peephole + basis translation
# ---------------------------------------------------------------------------

class Peephole1QMerge(TransformationPass):
    """Merge runs of adjacent single-qubit gates into one unitary each.

    A pre-basis peephole: runs of 1q gates collapse to a single
    ``UnitaryGate`` (dropped entirely when the product is the identity up
    to phase), so later passes see the shortest equivalent gate stream.
    Statistics land in ``properties["peephole"]``.
    """

    name = "peephole_1q"

    _ATOL = 1e-9

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
        out.metadata = dict(circuit.metadata)
        pending: dict[int, np.ndarray] = {}
        merged_away = 0
        pending_counts: dict[int, int] = {}

        def flush(qubit: int) -> None:
            nonlocal merged_away
            matrix = pending.pop(qubit, None)
            count = pending_counts.pop(qubit, 0)
            if matrix is None:
                return
            if np.allclose(matrix, matrix[0, 0] * np.eye(2), atol=self._ATOL):
                merged_away += count  # the whole run was the identity
                return
            out.unitary(matrix, (qubit,), name="u1q")
            merged_away += count - 1

        for inst in circuit.data:
            if inst.is_gate and len(inst.qubits) == 1:
                qubit = inst.qubits[0]
                pending[qubit] = inst.operation.matrix @ pending.get(
                    qubit, np.eye(2, dtype=complex)
                )
                pending_counts[qubit] = pending_counts.get(qubit, 0) + 1
                continue
            for qubit in inst.qubits:
                flush(qubit)
            out.append_instruction(inst)
        for qubit in list(pending):
            flush(qubit)
        properties["peephole"] = {"gates_merged": merged_away}
        return out


class BasisTranslation(TransformationPass):
    """Rewrite into the device basis {rz, sx, x, cx} (see :mod:`.basis`).

    Includes 1q-run merging through Euler angles and adjacent-CX
    cancellation; statistics land in ``properties["basis"]``.
    """

    name = "basis_translation"

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        translated = decompose_to_basis(circuit)
        properties["basis"] = {
            "two_qubit_gates": sum(
                1 for inst in translated.data if inst.is_two_qubit_gate
            ),
        }
        return translated


class GateCountAnalysis(AnalysisPass):
    """Record final gate statistics (the paper's post-transpile metrics)."""

    name = "gate_counts"

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        properties["gate_counts"] = dict(circuit.count_ops())
        properties["two_qubit_gate_count"] = sum(
            1 for inst in circuit.data if inst.is_two_qubit_gate
        )
        properties["depth"] = circuit.depth()
