"""SWAP routing for circuits whose two-qubit gates span non-adjacent qubits."""

from __future__ import annotations

import networkx as nx

from ..circuits import QuantumCircuit
from .coupling import CouplingMap

__all__ = ["route_circuit"]


def route_circuit(
    circuit: QuantumCircuit, coupling: CouplingMap, max_swaps: int | None = None
) -> QuantumCircuit:
    """Insert SWAPs so every two-qubit gate acts on coupled qubits.

    A simple greedy router: when a gate's operands are not adjacent, the
    first operand is swapped along the shortest path until it neighbours the
    second.  The logical-to-physical assignment therefore drifts during the
    circuit; measurements are rewritten so the measured *logical* bits stay
    the same, which is what the fidelity comparison needs.

    ``max_swaps`` bounds the total number of inserted SWAPs; the default
    budget is ``num_qubits`` SWAPs per two-qubit gate, which every shortest
    path fits inside (a path on the coupling graph has at most
    ``num_qubits - 1`` edges).  The router raises :class:`RuntimeError` if
    the budget is ever exceeded, so a routing bug fails loudly instead of
    looping forever.  Gates between disconnected qubits raise
    :class:`ValueError`.
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise ValueError("circuit does not fit on the coupling map")
    if max_swaps is None:
        num_two_qubit_gates = sum(1 for inst in circuit.data if inst.is_two_qubit_gate)
        max_swaps = coupling.num_qubits * max(num_two_qubit_gates, 1)
    # position[logical] = physical wire currently holding that logical qubit
    position = {q: q for q in range(coupling.num_qubits)}
    routed = QuantumCircuit(coupling.num_qubits, circuit.num_clbits, f"{circuit.name}_routed")
    routed.metadata = dict(circuit.metadata)
    swaps_used = 0

    def physical(logical: int) -> int:
        return position[logical]

    def swap(a_physical: int, b_physical: int) -> None:
        nonlocal swaps_used
        swaps_used += 1
        if swaps_used > max_swaps:
            raise RuntimeError(
                f"router exceeded its budget of {max_swaps} SWAPs; the greedy "
                "routing is not converging (this is a bug or an adversarial "
                "coupling map — raise max_swaps only if the budget is genuinely "
                "too small)"
            )
        routed.swap(a_physical, b_physical)
        inverse = {v: k for k, v in position.items()}
        logical_a, logical_b = inverse[a_physical], inverse[b_physical]
        position[logical_a], position[logical_b] = b_physical, a_physical

    for inst in circuit.data:
        if inst.is_barrier:
            continue
        if inst.is_measurement:
            routed.measure(physical(inst.qubits[0]), inst.clbits[0])
            continue
        if len(inst.qubits) == 1:
            routed.append(inst.operation, (physical(inst.qubits[0]),))
            continue
        if len(inst.qubits) == 2:
            a, b = inst.qubits
            while not coupling.are_adjacent(physical(a), physical(b)):
                try:
                    path = coupling.shortest_path(physical(a), physical(b))
                except nx.NetworkXNoPath as exc:
                    raise ValueError(
                        f"qubits {physical(a)} and {physical(b)} are not connected "
                        "on the coupling map; the gate cannot be routed"
                    ) from exc
                swap(path[0], path[1])
            routed.append(inst.operation, (physical(a), physical(b)))
            continue
        raise NotImplementedError("route two-qubit circuits only (decompose first)")
    return routed
