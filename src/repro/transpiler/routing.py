"""SWAP routing for circuits whose two-qubit gates span non-adjacent qubits.

The router is SABRE-style [Li, Ding, Xie — ASPLOS'19]: instead of greedily
walking one operand along a shortest path, it keeps the *front layer* of
ready two-qubit gates plus a bounded lookahead window of their successors,
scores every candidate SWAP on the coupling edges touching the front layer
by the distance it saves across both sets, and applies the best one.  A
decay factor on recently-swapped qubits breaks ping-pong cycles, and ties
are broken by a seeded RNG so routing is deterministic for a given seed.

Used standalone via :func:`route_circuit` / :func:`sabre_route`, or as the
:class:`~repro.transpiler.passes.SabreRouting` pass inside a
:class:`~repro.transpiler.passes.PassManager` (which additionally runs
reverse preconditioning passes to settle the initial permutation).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..circuits import Instruction, QuantumCircuit
from .coupling import CouplingMap

__all__ = ["route_circuit", "sabre_route", "RoutedCircuit", "RoutingBudgetExceeded"]

#: Weight of the lookahead window relative to the front layer in the SWAP score.
LOOKAHEAD_WEIGHT = 0.5

#: Number of upcoming two-qubit gates considered beyond the front layer.
DEFAULT_LOOKAHEAD = 20

#: Per-use decay penalty discouraging the router from moving one qubit forever.
DECAY_RATE = 0.001


class RoutingBudgetExceeded(RuntimeError):
    """The router hit its SWAP budget before every gate became executable.

    Carries the partial progress so callers can report *how far* routing got
    instead of only that it failed: ``swaps_inserted`` is the number of SWAPs
    applied before the budget tripped, ``max_swaps`` the budget itself.
    Subclasses :class:`RuntimeError` for compatibility with callers that
    guarded the previous hard-budget failure mode.
    """

    def __init__(self, swaps_inserted: int, max_swaps: int) -> None:
        self.swaps_inserted = swaps_inserted
        self.max_swaps = max_swaps
        super().__init__(
            f"router exceeded its budget of {max_swaps} SWAPs after inserting "
            f"{swaps_inserted}; the routing is not converging (this is a bug or "
            "an adversarial coupling map — raise max_swaps only if the budget "
            "is genuinely too small)"
        )


@dataclasses.dataclass
class RoutedCircuit:
    """Output of :func:`sabre_route`.

    ``initial_position`` / ``final_position`` map each virtual wire of the
    input circuit to the physical wire holding it before the first and after
    the last instruction.  Measurements are rewritten during routing so a
    virtual wire's classical bit is unchanged — the distribution over clbits
    is invariant; the positions are for *layout bookkeeping* (which physical
    qubit's calibration a logical qubit experienced).
    """

    circuit: QuantumCircuit
    initial_position: dict[int, int]
    final_position: dict[int, int]
    swaps_inserted: int


def sabre_route(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    max_swaps: int | None = None,
    seed: int | None = 0,
    lookahead: int = DEFAULT_LOOKAHEAD,
    initial_position: dict[int, int] | None = None,
) -> RoutedCircuit:
    """Route ``circuit`` onto ``coupling`` with SABRE-style lookahead.

    Parameters
    ----------
    max_swaps:
        Budget on inserted SWAPs; the default is ``num_qubits`` SWAPs per
        two-qubit gate, which any sane routing fits inside (one shortest
        path has at most ``num_qubits - 1`` edges).  Exceeding it raises
        :class:`RoutingBudgetExceeded` (a :class:`RuntimeError`) carrying
        the partial SWAP count.  Gates between disconnected qubits raise
        :class:`ValueError`.
    seed:
        Tie-break seed.  Candidate SWAPs with equal scores are resolved by
        a generator seeded with this value, so routing is a deterministic
        function of ``(circuit, coupling, seed)``; ``None`` falls back to
        seed 0 (never OS entropy — routing feeds content-addressed caches).
    lookahead:
        How many two-qubit gates beyond the front layer contribute to the
        SWAP score (the extended set).
    initial_position:
        Starting virtual-wire -> physical-wire permutation (identity by
        default).  Every wire starts in ``|0>``, so any permutation is
        semantically equivalent; this is how the bidirectional
        preconditioning passes of :class:`~repro.transpiler.passes.SabreRouting`
        feed one pass's final permutation into the next.
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise ValueError("circuit does not fit on the coupling map")
    if max_swaps is None:
        num_two_qubit_gates = sum(1 for inst in circuit.data if inst.is_two_qubit_gate)
        max_swaps = coupling.num_qubits * max(num_two_qubit_gates, 1)
    rng = np.random.default_rng(0 if seed is None else seed)

    # position[virtual wire] = physical wire currently holding it.
    position = {q: q for q in range(coupling.num_qubits)}
    if initial_position is not None:
        position.update({int(v): int(p) for v, p in initial_position.items()})
        if len(set(position.values())) != len(position):
            raise ValueError("initial_position is not a permutation")
    start_position = dict(position)

    # Wire-dependency DAG: an instruction depends on the previous user of
    # each of its qubit and clbit wires.
    instructions = list(circuit.data)
    num_predecessors = [0] * len(instructions)
    successors: list[list[int]] = [[] for _ in instructions]
    last_user: dict[tuple[str, int], int] = {}
    for index, inst in enumerate(instructions):
        wires = [("q", q) for q in inst.qubits] + [("c", c) for c in inst.clbits]
        for wire in wires:
            previous = last_user.get(wire)
            if previous is not None:
                successors[previous].append(index)
                num_predecessors[index] += 1
            last_user[wire] = index

    routed = QuantumCircuit(coupling.num_qubits, circuit.num_clbits, f"{circuit.name}_routed")
    routed.metadata = dict(circuit.metadata)
    swaps_used = 0
    # Decay factors discourage moving the same qubit repeatedly; reset after
    # every executed gate so they only shape one stuck episode at a time.
    decay = np.ones(coupling.num_qubits)

    front = [i for i in range(len(instructions)) if num_predecessors[i] == 0]
    remaining_predecessors = list(num_predecessors)

    # Measurements are deferred and emitted at each logical qubit's *final*
    # position: the simulators read measured bits off the end-of-circuit
    # state, so a measurement must name the wire its qubit ends up on, not
    # the wire it happened to occupy when the measurement became ready
    # (later SWAPs may route other traffic through that wire).
    deferred_measurements: list[int] = []

    def emit(index: int) -> None:
        inst = instructions[index]
        if inst.is_measurement:
            deferred_measurements.append(index)
        else:
            routed.append(inst.operation, tuple(position[q] for q in inst.qubits))

    def executable(index: int) -> bool:
        inst = instructions[index]
        if len(inst.qubits) < 2 or inst.is_barrier:
            return True
        if len(inst.qubits) == 2:
            return coupling.are_adjacent(position[inst.qubits[0]], position[inst.qubits[1]])
        raise NotImplementedError("route two-qubit circuits only (decompose first)")

    def extended_set(front_indices: list[int]) -> list[int]:
        """Up to ``lookahead`` two-qubit successors of the front layer."""
        collected: list[int] = []
        seen = set(front_indices)
        queue = list(front_indices)
        while queue and len(collected) < lookahead:
            node = queue.pop(0)
            for successor in successors[node]:
                if successor in seen:
                    continue
                seen.add(successor)
                queue.append(successor)
                if instructions[successor].is_two_qubit_gate:
                    collected.append(successor)
                    if len(collected) >= lookahead:
                        break
        return collected

    def distance(a_physical: int, b_physical: int) -> int:
        return coupling.distance(a_physical, b_physical)  # raises for disconnected pairs

    while front:
        # Flush everything executable (1q gates, measurements, barriers and
        # adjacent 2q gates), unlocking successors as their predecessors run.
        progressed = True
        while progressed:
            progressed = False
            next_front: list[int] = []
            for index in sorted(front):
                if executable(index):
                    emit(index)
                    progressed = True
                    for successor in successors[index]:
                        remaining_predecessors[successor] -= 1
                        if remaining_predecessors[successor] == 0:
                            next_front.append(successor)
                else:
                    next_front.append(index)
            front = next_front
            if progressed:
                decay[:] = 1.0
        if not front:
            break

        # Every front instruction is a blocked two-qubit gate: pick a SWAP.
        blocked = sorted(front)
        lookahead_gates = extended_set(blocked)
        candidate_edges: list[tuple[int, int]] = []
        involved_physical = {
            position[q] for index in blocked for q in instructions[index].qubits
        }
        for edge in coupling.edges:
            if edge[0] in involved_physical or edge[1] in involved_physical:
                candidate_edges.append(edge)
        if not candidate_edges:
            # A blocked gate whose operands have no incident couplers can
            # never become adjacent (isolated vertices).
            raise ValueError(
                "qubits of a blocked two-qubit gate are not connected on the "
                "coupling map; the gate cannot be routed"
            )

        # position is fixed for the whole selection round; build its
        # inverse once and overlay the two moved wires per candidate
        # instead of copying the dict per edge (the router's hot loop).
        inverse = {p: v for v, p in position.items()}

        def score(edge: tuple[int, int]) -> float:
            a, b = edge
            va, vb = inverse.get(a), inverse.get(b)

            def where(virtual: int) -> int:
                if virtual == va:
                    return b
                if virtual == vb:
                    return a
                return position[virtual]

            front_cost = sum(
                distance(where(instructions[i].qubits[0]), where(instructions[i].qubits[1]))
                for i in blocked
            ) / len(blocked)
            future_cost = 0.0
            if lookahead_gates:
                future_cost = LOOKAHEAD_WEIGHT * sum(
                    distance(where(instructions[i].qubits[0]), where(instructions[i].qubits[1]))
                    for i in lookahead_gates
                ) / len(lookahead_gates)
            return max(decay[a], decay[b]) * (front_cost + future_cost)

        scores = [(score(edge), edge) for edge in candidate_edges]
        best_score = min(s for s, _ in scores)
        best_edges = sorted(edge for s, edge in scores if s <= best_score + 1e-12)
        chosen = best_edges[int(rng.integers(len(best_edges)))]

        swaps_used += 1
        if swaps_used > max_swaps:
            raise RoutingBudgetExceeded(swaps_used - 1, max_swaps)
        a, b = chosen
        routed.swap(a, b)
        decay[a] += DECAY_RATE
        decay[b] += DECAY_RATE
        va, vb = inverse[a], inverse[b]
        position[va], position[vb] = b, a

    for index in sorted(deferred_measurements):
        inst = instructions[index]
        routed.measure(position[inst.qubits[0]], inst.clbits[0])

    return RoutedCircuit(
        circuit=routed,
        initial_position=start_position,
        final_position=dict(position),
        swaps_inserted=swaps_used,
    )


def route_circuit(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    max_swaps: int | None = None,
    seed: int | None = 0,
) -> QuantumCircuit:
    """Insert SWAPs so every two-qubit gate acts on coupled qubits.

    Convenience wrapper over :func:`sabre_route` returning only the routed
    circuit.  Measurements are rewritten so the measured *logical* bits stay
    the same, which is what the fidelity comparison needs; the budget and
    determinism semantics are documented on :func:`sabre_route`.
    """
    return sabre_route(circuit, coupling, max_swaps=max_swaps, seed=seed).circuit
