"""SWAP routing for circuits whose two-qubit gates span non-adjacent qubits."""

from __future__ import annotations

from ..circuits import QuantumCircuit
from .coupling import CouplingMap

__all__ = ["route_circuit"]


def route_circuit(circuit: QuantumCircuit, coupling: CouplingMap) -> QuantumCircuit:
    """Insert SWAPs so every two-qubit gate acts on coupled qubits.

    A simple greedy router: when a gate's operands are not adjacent, the
    first operand is swapped along the shortest path until it neighbours the
    second.  The logical-to-physical assignment therefore drifts during the
    circuit; measurements are rewritten so the measured *logical* bits stay
    the same, which is what the fidelity comparison needs.
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise ValueError("circuit does not fit on the coupling map")
    # position[logical] = physical wire currently holding that logical qubit
    position = {q: q for q in range(coupling.num_qubits)}
    routed = QuantumCircuit(coupling.num_qubits, circuit.num_clbits, f"{circuit.name}_routed")
    routed.metadata = dict(circuit.metadata)

    def physical(logical: int) -> int:
        return position[logical]

    def swap(a_physical: int, b_physical: int) -> None:
        routed.swap(a_physical, b_physical)
        inverse = {v: k for k, v in position.items()}
        logical_a, logical_b = inverse[a_physical], inverse[b_physical]
        position[logical_a], position[logical_b] = b_physical, a_physical

    for inst in circuit.data:
        if inst.is_barrier:
            continue
        if inst.is_measurement:
            routed.measure(physical(inst.qubits[0]), inst.clbits[0])
            continue
        if len(inst.qubits) == 1:
            routed.append(inst.operation, (physical(inst.qubits[0]),))
            continue
        if len(inst.qubits) == 2:
            a, b = inst.qubits
            while not coupling.are_adjacent(physical(a), physical(b)):
                path = coupling.shortest_path(physical(a), physical(b))
                swap(path[0], path[1])
            routed.append(inst.operation, (physical(a), physical(b)))
            continue
        raise NotImplementedError("route two-qubit circuits only (decompose first)")
    return routed
