"""Coupling maps: which physical qubit pairs support two-qubit gates."""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx

__all__ = ["CouplingMap"]


class CouplingMap:
    """An undirected connectivity graph over physical qubits."""

    def __init__(self, edges: Iterable[tuple[int, int]], num_qubits: int | None = None) -> None:
        edge_list = [tuple(sorted((int(a), int(b)))) for a, b in edges]
        if not edge_list and not num_qubits:
            raise ValueError("a coupling map needs at least one edge or an explicit size")
        inferred = max((max(e) for e in edge_list), default=-1) + 1
        self.num_qubits = int(num_qubits) if num_qubits is not None else inferred
        if inferred > self.num_qubits:
            raise ValueError("edge endpoints exceed num_qubits")
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(self.num_qubits))
        self.graph.add_edges_from(edge_list)
        self._distances: dict[int, dict[int, int]] | None = None

    @property
    def edges(self) -> list[tuple[int, int]]:
        return [tuple(sorted(e)) for e in self.graph.edges()]

    def are_adjacent(self, a: int, b: int) -> bool:
        return self.graph.has_edge(a, b)

    def neighbors(self, qubit: int) -> list[int]:
        return sorted(self.graph.neighbors(qubit))

    def degree(self, qubit: int) -> int:
        return self.graph.degree(qubit)

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph)

    def distance(self, a: int, b: int) -> int:
        """Shortest-path distance (number of couplers) between two qubits."""
        if self._distances is None:
            self._distances = dict(nx.all_pairs_shortest_path_length(self.graph))
        try:
            return self._distances[a][b]
        except KeyError as exc:
            raise ValueError(f"qubits {a} and {b} are not connected") from exc

    def shortest_path(self, a: int, b: int) -> list[int]:
        return nx.shortest_path(self.graph, a, b)

    def connected_subgraph_from(self, seed: int, size: int, priority=None) -> list[int]:
        """Grow a connected set of ``size`` qubits starting from ``seed``.

        ``priority`` (lower = better) ranks candidate qubits; defaults to the
        qubit index.  Used by the noise-aware layout to pick a good connected
        region of the device.
        """
        if size < 1 or size > self.num_qubits:
            raise ValueError("requested subgraph size is out of range")
        priority = priority or (lambda q: q)
        chosen = [seed]
        frontier = set(self.neighbors(seed))
        while len(chosen) < size:
            if not frontier:
                raise ValueError("coupling map has no connected region of the requested size")
            best = min(frontier, key=priority)
            chosen.append(best)
            frontier.discard(best)
            frontier.update(q for q in self.neighbors(best) if q not in chosen)
        return chosen

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CouplingMap(num_qubits={self.num_qubits}, edges={len(self.edges)})"
