"""Basis translation: rewrite circuits into the device basis {rz, sx, x, cx}.

The paper reports "average 2-qubit basis gate count" of transpiled circuits
(Tables I-III); this pass provides the equivalent counting on our side.  The
decompositions are the textbook ones; single-qubit chains are merged through
their ZYZ Euler angles, so consecutive single-qubit gates never inflate the
count.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from ..circuits import Instruction, QuantumCircuit, UnitaryGate, standard_gate
from ..circuits.operations import Gate

__all__ = ["decompose_to_basis", "BASIS_GATES", "euler_zyz_angles", "count_two_qubit_basis_gates"]

BASIS_GATES = ("rz", "sx", "x", "cx")

_ATOL = 1e-9


def euler_zyz_angles(matrix: np.ndarray) -> tuple[float, float, float, float]:
    """Return ``(alpha, beta, gamma, delta)`` with ``U = e^{i alpha} Rz(beta) Ry(gamma) Rz(delta)``."""
    matrix = np.asarray(matrix, dtype=complex)
    det = np.linalg.det(matrix)
    alpha = cmath.phase(det) / 2.0
    su2 = matrix * cmath.exp(-1j * alpha)
    # su2 = [[cos(g/2) e^{-i(b+d)/2}, -sin(g/2) e^{-i(b-d)/2}],
    #        [sin(g/2) e^{ i(b-d)/2},  cos(g/2) e^{ i(b+d)/2}]]
    cos_half = min(abs(su2[0, 0]), 1.0)
    gamma = 2.0 * math.acos(cos_half)
    if abs(math.sin(gamma / 2.0)) > _ATOL:
        plus = cmath.phase(su2[1, 1])
        minus = cmath.phase(su2[1, 0])
        beta = plus + minus
        delta = plus - minus
    else:
        beta = cmath.phase(su2[1, 1]) * 2.0
        delta = 0.0
    return alpha, beta, gamma, delta


def _append_single_qubit(qc: QuantumCircuit, matrix: np.ndarray, qubit: int) -> None:
    """Append an arbitrary single-qubit unitary as rz/sx/rz/sx/rz (ZXZXZ)."""
    if np.allclose(matrix, matrix[0, 0] * np.eye(2), atol=_ATOL):
        return  # global phase only
    _, beta, gamma, delta = euler_zyz_angles(matrix)
    # Standard ZXZXZ identity (the one used by IBM's basis translator):
    #   Rz(b) Ry(g) Rz(d) = Rz(b + pi) . SX . Rz(g + pi) . SX . Rz(d)   (up to phase)
    _append_rz(qc, delta, qubit)
    qc.sx(qubit)
    _append_rz(qc, gamma + math.pi, qubit)
    qc.sx(qubit)
    _append_rz(qc, beta + math.pi, qubit)


def _append_rz(qc: QuantumCircuit, angle: float, qubit: int) -> None:
    angle = math.remainder(angle, 4.0 * math.pi)
    if abs(math.remainder(angle, 2.0 * math.pi)) > _ATOL:
        qc.rz(angle, qubit)
    elif abs(angle) > _ATOL:
        # angle is an odd multiple of 2*pi: global phase only, skip.
        pass


def _append_cx(qc: QuantumCircuit, control: int, target: int) -> None:
    qc.cx(control, target)


def _append_controlled_unitary(qc: QuantumCircuit, matrix: np.ndarray, control: int, target: int) -> None:
    """Controlled single-qubit unitary via the ABC decomposition (2 CX)."""
    alpha, beta, gamma, delta = euler_zyz_angles(matrix)
    # A = Rz(beta) Ry(gamma/2); B = Ry(-gamma/2) Rz(-(delta+beta)/2); C = Rz((delta-beta)/2)
    def rz(theta):
        return standard_gate("rz", theta).matrix

    def ry(theta):
        return standard_gate("ry", theta).matrix

    a = rz(beta) @ ry(gamma / 2.0)
    b = ry(-gamma / 2.0) @ rz(-(delta + beta) / 2.0)
    c = rz((delta - beta) / 2.0)
    _append_single_qubit(qc, c, target)
    _append_cx(qc, control, target)
    _append_single_qubit(qc, b, target)
    _append_cx(qc, control, target)
    _append_single_qubit(qc, a, target)
    # The controlled global phase e^{i alpha} becomes a phase gate on the control.
    if abs(math.remainder(alpha, 2.0 * math.pi)) > _ATOL:
        _append_single_qubit(qc, standard_gate("p", alpha).matrix, control)


_H = standard_gate("h").matrix


def decompose_to_basis(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite ``circuit`` using only {rz, sx, x, cx} (plus measurements/barriers).

    Runs of single-qubit gates are merged before emission, and adjacent CX
    cancellation is applied afterwards, giving gate counts comparable to a
    Qiskit `optimization_level=3` transpile for the circuit families used in
    the paper.
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, f"{circuit.name}_basis")
    out.metadata = dict(circuit.metadata)
    # Pending single-qubit unitaries, merged lazily per qubit.
    pending: dict[int, np.ndarray] = {}

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is not None:
            _append_single_qubit(out, matrix, qubit)

    def merge(qubit: int, matrix: np.ndarray) -> None:
        pending[qubit] = matrix @ pending.get(qubit, np.eye(2, dtype=complex))

    for inst in circuit.data:
        if inst.is_barrier:
            for q in inst.qubits:
                flush(q)
            out.append_instruction(inst)
            continue
        if inst.is_measurement or inst.is_reset:
            flush(inst.qubits[0])
            out.append_instruction(inst)
            continue
        gate: Gate = inst.operation  # type: ignore[assignment]
        if gate.num_qubits == 1:
            merge(inst.qubits[0], gate.matrix)
            continue
        # Two-or-more qubit gate: flush operands, then emit its decomposition.
        for q in inst.qubits:
            flush(q)
        _emit_multi_qubit(out, inst)
    for q in list(pending):
        flush(q)
    return _cancel_adjacent_cx(out)


def _emit_multi_qubit(out: QuantumCircuit, inst: Instruction) -> None:
    gate: Gate = inst.operation  # type: ignore[assignment]
    name = gate.name
    qubits = inst.qubits
    if name == "cx":
        _append_cx(out, *qubits)
    elif name == "cz":
        # H on target, CX, H on target
        _append_single_qubit(out, _H, qubits[1])
        _append_cx(out, *qubits)
        _append_single_qubit(out, _H, qubits[1])
    elif name in ("cp", "crz", "crx", "cry", "ch", "cy"):
        base = {
            "cp": lambda: standard_gate("p", gate.params[0]).matrix,
            "crz": lambda: standard_gate("rz", gate.params[0]).matrix,
            "crx": lambda: standard_gate("rx", gate.params[0]).matrix,
            "cry": lambda: standard_gate("ry", gate.params[0]).matrix,
            "ch": lambda: _H,
            "cy": lambda: standard_gate("y").matrix,
        }[name]()
        _append_controlled_unitary(out, base, qubits[0], qubits[1])
    elif name == "rzz":
        (theta,) = gate.params
        _append_cx(out, qubits[0], qubits[1])
        _append_rz(out, theta, qubits[1])
        _append_cx(out, qubits[0], qubits[1])
    elif name == "swap":
        _append_cx(out, qubits[0], qubits[1])
        _append_cx(out, qubits[1], qubits[0])
        _append_cx(out, qubits[0], qubits[1])
    elif name == "ccx":
        _emit_ccx(out, *qubits)
    elif name == "cswap":
        control, t1, t2 = qubits
        _append_cx(out, t2, t1)
        _emit_ccx(out, control, t1, t2)
        _append_cx(out, t2, t1)
    elif gate.num_qubits == 2:
        matrix = gate.matrix
        if np.allclose(matrix, np.diag(np.diagonal(matrix)), atol=_ATOL):
            _emit_two_qubit_diagonal(out, np.diagonal(matrix), qubits)
        elif _is_controlled_by_wire(matrix, control_wire=0):
            _append_controlled_unitary(out, matrix[np.ix_([1, 3], [1, 3])], qubits[0], qubits[1])
        elif _is_controlled_by_wire(matrix, control_wire=1):
            _append_controlled_unitary(out, matrix[np.ix_([2, 3], [2, 3])], qubits[1], qubits[0])
        else:
            raise NotImplementedError(
                f"no basis decomposition for general two-qubit gate {name!r}"
            )
    else:
        raise NotImplementedError(f"no basis decomposition for gate {name!r}")


def _is_controlled_by_wire(matrix: np.ndarray, control_wire: int) -> bool:
    """True if the 4x4 matrix is identity on the subspace where ``control_wire`` is |0>."""
    zero_indices = (0, 2) if control_wire == 0 else (0, 1)
    fixed = np.eye(4, dtype=complex)
    for i in zero_indices:
        for j in range(4):
            if abs(matrix[i, j] - fixed[i, j]) > _ATOL or abs(matrix[j, i] - fixed[j, i]) > _ATOL:
                return False
    return True


def _emit_two_qubit_diagonal(out: QuantumCircuit, diagonal: np.ndarray, qubits: tuple[int, ...]) -> None:
    """Decompose ``diag(e^{i t00}, e^{i t01}, e^{i t10}, e^{i t11})``.

    Writing the phase as ``t(x0, x1) = t0 + a x0 + b x1 + zz x0 x1`` the gate
    is a product of two phase gates and one controlled phase, which costs at
    most two CX in the basis.
    """
    t0, t1, t2, t3 = np.angle(diagonal)
    a = t1 - t0
    b = t2 - t0
    zz = t3 - t1 - t2 + t0
    _append_single_qubit(out, standard_gate("p", a).matrix, qubits[0])
    _append_single_qubit(out, standard_gate("p", b).matrix, qubits[1])
    if abs(math.remainder(zz, 2 * math.pi)) > _ATOL:
        # cp(zz) = p(zz/2) x p(zz/2) . CX . p(-zz/2 on target) . CX
        _append_single_qubit(out, standard_gate("p", zz / 2.0).matrix, qubits[0])
        _append_single_qubit(out, standard_gate("p", zz / 2.0).matrix, qubits[1])
        _append_cx(out, qubits[0], qubits[1])
        _append_single_qubit(out, standard_gate("p", -zz / 2.0).matrix, qubits[1])
        _append_cx(out, qubits[0], qubits[1])


def _emit_ccx(out: QuantumCircuit, c1: int, c2: int, target: int) -> None:
    """Standard 6-CX Toffoli decomposition."""
    t = standard_gate("t").matrix
    tdg = standard_gate("tdg").matrix
    _append_single_qubit(out, _H, target)
    _append_cx(out, c2, target)
    _append_single_qubit(out, tdg, target)
    _append_cx(out, c1, target)
    _append_single_qubit(out, t, target)
    _append_cx(out, c2, target)
    _append_single_qubit(out, tdg, target)
    _append_cx(out, c1, target)
    _append_single_qubit(out, t, c2)
    _append_single_qubit(out, t, target)
    _append_single_qubit(out, _H, target)
    _append_cx(out, c1, c2)
    _append_single_qubit(out, t, c1)
    _append_single_qubit(out, tdg, c2)
    _append_cx(out, c1, c2)


def _cancel_adjacent_cx(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove pairs of identical adjacent CX gates (nothing between them on
    either wire)."""
    data = list(circuit.data)
    removed = True
    while removed:
        removed = False
        last_on_wire: dict[int, int] = {}
        cancel: set[int] = set()
        for index, inst in enumerate(data):
            if index in cancel:
                continue
            if inst.name == "cx":
                partner = None
                a, b = inst.qubits
                prev_a = last_on_wire.get(a)
                prev_b = last_on_wire.get(b)
                if (
                    prev_a is not None
                    and prev_a == prev_b
                    and prev_a not in cancel
                    and data[prev_a].name == "cx"
                    and data[prev_a].qubits == inst.qubits
                ):
                    partner = prev_a
                if partner is not None:
                    cancel.update((partner, index))
                    removed = True
                    # wires become whatever preceded the cancelled pair
                    last_on_wire.pop(a, None)
                    last_on_wire.pop(b, None)
                    continue
            if not inst.is_barrier:
                for q in inst.qubits:
                    last_on_wire[q] = index
        if cancel:
            data = [inst for i, inst in enumerate(data) if i not in cancel]
    result = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    result.metadata = dict(circuit.metadata)
    for inst in data:
        result.append_instruction(inst)
    return result


def count_two_qubit_basis_gates(circuit: QuantumCircuit) -> int:
    """Number of CX gates after basis decomposition (the paper's metric)."""
    return decompose_to_basis(circuit).count_ops().get("cx", 0)
