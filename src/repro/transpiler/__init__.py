"""Lightweight transpiler: basis translation, noise-aware layout, routing."""

from .basis import (
    BASIS_GATES,
    count_two_qubit_basis_gates,
    decompose_to_basis,
    euler_zyz_angles,
)
from .coupling import CouplingMap
from .layout import Layout, noise_aware_layout, trivial_layout
from .routing import route_circuit
from .transpile import TranspileResult, transpile

__all__ = [
    "BASIS_GATES",
    "decompose_to_basis",
    "count_two_qubit_basis_gates",
    "euler_zyz_angles",
    "CouplingMap",
    "Layout",
    "noise_aware_layout",
    "trivial_layout",
    "route_circuit",
    "transpile",
    "TranspileResult",
]
