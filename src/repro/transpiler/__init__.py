"""Hardware-aware transpiler: a pass pipeline over layout, routing and basis.

``transpile()`` runs the preset pipeline; :mod:`repro.transpiler.passes`
exposes the individual passes for custom :class:`PassManager`s; the
:class:`CompilationCache` makes repeated compilation free (the execution
engine owns one per device-aware workload).
"""

from .basis import (
    BASIS_GATES,
    count_two_qubit_basis_gates,
    decompose_to_basis,
    euler_zyz_angles,
)
from .compilation import CompilationCache, CompiledCircuit
from .coupling import CouplingMap
from .layout import Layout, noise_aware_layout, trivial_layout
from .passes import (
    AnalysisPass,
    ApplyLayout,
    BasisTranslation,
    GateCountAnalysis,
    NoiseAwareLayoutPass,
    Pass,
    PassManager,
    Peephole1QMerge,
    PropertySet,
    SabreRouting,
    SetLayout,
    TransformationPass,
    TrivialLayoutPass,
)
from .routing import RoutedCircuit, RoutingBudgetExceeded, route_circuit, sabre_route
from .transpile import TranspileResult, build_preset_pipeline, transpile

__all__ = [
    "BASIS_GATES",
    "decompose_to_basis",
    "count_two_qubit_basis_gates",
    "euler_zyz_angles",
    "CouplingMap",
    "Layout",
    "noise_aware_layout",
    "trivial_layout",
    "route_circuit",
    "sabre_route",
    "RoutedCircuit",
    "RoutingBudgetExceeded",
    "transpile",
    "build_preset_pipeline",
    "TranspileResult",
    "CompilationCache",
    "CompiledCircuit",
    "Pass",
    "AnalysisPass",
    "TransformationPass",
    "PassManager",
    "PropertySet",
    "SetLayout",
    "TrivialLayoutPass",
    "NoiseAwareLayoutPass",
    "ApplyLayout",
    "SabreRouting",
    "Peephole1QMerge",
    "BasisTranslation",
    "GateCountAnalysis",
]
