"""The :class:`NoiseModel`: mapping circuit instructions to noise channels.

A noise model answers two questions for the simulators:

* :meth:`NoiseModel.channels_for` — which Kraus channels to apply (and on
  which wires) after executing a given gate instruction;
* :meth:`NoiseModel.readout_error` — the classical confusion to apply to the
  measurement of a given qubit.

The two parameterisations used by the paper are provided as constructors:
:meth:`NoiseModel.depolarizing` (uniform gate depolarizing + uniform readout,
Sec. VII-A/B) and the device models built by :mod:`repro.noise.device`
(per-qubit calibration, Sec. VII-C/D/E).

"Ideal PCS" support: gates acting on a qubit listed in
:attr:`noise_free_qubits` receive no gate noise and its readout is perfect,
which is exactly the paper's definition of ideal Pauli checks (no errors on
the checking circuit or ancilla measurement).
"""

from __future__ import annotations

import copy as _copy
from typing import Iterable, Mapping, Sequence

from ..circuits.instruction import Instruction
from .channels import KrausChannel, depolarizing_channel
from .readout import ReadoutError

__all__ = ["NoiseModel", "as_noise_model"]


def as_noise_model(source: "NoiseModel | object") -> "NoiseModel":
    """Coerce ``source`` into a :class:`NoiseModel`.

    Accepts a :class:`NoiseModel` (returned unchanged) or any object with a
    ``noise_model()`` method — a :class:`~repro.noise.DeviceModel` or a
    :class:`~repro.calibration.LearnedDeviceModel` — so every entry point
    that takes gate/readout noise (the execution engine, ``run_jigsaw``,
    ``run_pcs``, ``run_sqem``, :class:`~repro.core.QuTracer`) can be handed
    a learned or reference device directly.  Duck-typed rather than
    ``isinstance(DeviceModel)`` to avoid a circular import (``device``
    imports this module).
    """
    if isinstance(source, NoiseModel):
        return source
    builder = getattr(source, "noise_model", None)
    if callable(builder):
        model = builder()
        if isinstance(model, NoiseModel):
            return model
    raise TypeError(
        f"expected a NoiseModel or an object with a noise_model() method, got {type(source).__name__}"
    )


class NoiseModel:
    """Per-gate and per-qubit noise description."""

    def __init__(self) -> None:
        self._default_1q: list[KrausChannel] = []
        self._default_2q: list[KrausChannel] = []
        self._qubit_1q: dict[int, list[KrausChannel]] = {}
        self._pair_2q: dict[tuple[int, int], list[KrausChannel]] = {}
        self._gate_overrides: dict[str, list[KrausChannel]] = {}
        self._readout: dict[int, ReadoutError] = {}
        self._default_readout: ReadoutError | None = None
        self._noise_free_qubits: set[int] = set()
        self._noise_free_gate_names: set[str] = set()
        self._version = 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def ideal(cls) -> "NoiseModel":
        """A noise model with no errors at all."""
        return cls()

    @classmethod
    def depolarizing(
        cls,
        p1: float = 0.0,
        p2: float = 0.0,
        readout: float | Mapping[int, float] = 0.0,
    ) -> "NoiseModel":
        """Uniform depolarizing noise: ``p1`` on 1-qubit gates, ``p2`` on
        2-qubit gates, and symmetric readout error ``readout`` (a single value
        for all qubits or a per-qubit mapping)."""
        model = cls()
        if p1 > 0:
            model.set_default_1q_error(depolarizing_channel(p1, 1))
        if p2 > 0:
            model.set_default_2q_error(depolarizing_channel(p2, 2))
        if isinstance(readout, Mapping):
            for qubit, value in readout.items():
                if value > 0:
                    model.set_readout_error(ReadoutError(value), qubit)
        elif readout > 0:
            model.set_readout_error(ReadoutError(readout))
        return model

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def set_default_1q_error(self, channel: KrausChannel) -> "NoiseModel":
        self._require_width(channel, 1)
        self._default_1q = [channel]
        self._version += 1
        return self

    def set_default_2q_error(self, channel: KrausChannel) -> "NoiseModel":
        self._require_width(channel, 2)
        self._default_2q = [channel]
        self._version += 1
        return self

    def set_qubit_error(self, qubit: int, channel: KrausChannel) -> "NoiseModel":
        """Noise applied after every 1-qubit gate on ``qubit`` (replaces defaults)."""
        self._require_width(channel, 1)
        self._qubit_1q.setdefault(int(qubit), []).append(channel)
        self._version += 1
        return self

    def set_pair_error(self, pair: Sequence[int], channel: KrausChannel) -> "NoiseModel":
        """Noise applied after every 2-qubit gate on ``pair`` (replaces defaults).

        The channel may be 2-qubit (applied to the pair in the instruction's
        wire order) or 1-qubit (applied to each wire independently).
        """
        if channel.num_qubits not in (1, 2):
            raise ValueError("pair errors must be 1- or 2-qubit channels")
        key = tuple(sorted(int(q) for q in pair))
        if len(key) != 2:
            raise ValueError("a pair needs exactly two distinct qubits")
        self._pair_2q.setdefault(key, []).append(channel)
        self._version += 1
        return self

    def set_gate_error(self, gate_name: str, channel: KrausChannel) -> "NoiseModel":
        """Noise applied after every gate with this name (replaces defaults)."""
        self._gate_overrides.setdefault(gate_name.lower(), []).append(channel)
        self._version += 1
        return self

    def set_readout_error(self, error: ReadoutError, qubit: int | None = None) -> "NoiseModel":
        if qubit is None:
            self._default_readout = error
        else:
            self._readout[int(qubit)] = error
        self._version += 1
        return self

    def add_noise_free_gate(self, gate_name: str) -> "NoiseModel":
        self._noise_free_gate_names.add(gate_name.lower())
        self._version += 1
        return self

    def add_noise_free_qubits(self, qubits: Iterable[int] | int) -> "NoiseModel":
        """Mark ``qubits`` as error free (no gate noise, perfect readout)."""
        if isinstance(qubits, int):
            qubits = (qubits,)
        self._noise_free_qubits.update(int(q) for q in qubits)
        self._version += 1
        return self

    @property
    def noise_free_qubits(self) -> frozenset[int]:
        """Qubits whose gates and readout are error free (read-only view).

        Mutate through :meth:`add_noise_free_qubits` so the model's
        :attr:`version` is bumped and engine-side memos are invalidated.
        """
        return frozenset(self._noise_free_qubits)

    @property
    def noise_free_gate_names(self) -> frozenset[str]:
        """Gate names that receive no noise (read-only view).

        Mutate through :meth:`add_noise_free_gate` so the model's
        :attr:`version` is bumped and engine-side memos are invalidated.
        """
        return frozenset(self._noise_free_gate_names)

    @property
    def version(self) -> int:
        """Mutation counter, bumped by every in-place ``set_*``/``add_*`` call.

        Caches that memoise per-object derived data (the execution engine's
        fingerprint and remapped-model memos) pair this with object identity
        so an in-place mutation invalidates stale entries.
        """
        return self._version

    def _require_width(self, channel: KrausChannel, num_qubits: int) -> None:
        if channel.num_qubits != num_qubits:
            raise ValueError(
                f"expected a {num_qubits}-qubit channel, got {channel.num_qubits}-qubit"
            )

    # ------------------------------------------------------------------
    # Derived models
    # ------------------------------------------------------------------

    def copy(self) -> "NoiseModel":
        return _copy.deepcopy(self)

    def with_perfect_qubits(self, qubits: Iterable[int]) -> "NoiseModel":
        """Copy of the model where gates touching ``qubits`` and their readout
        are error free.  Used to build the paper's "ideal PCS" baseline."""
        model = self.copy()
        model.add_noise_free_qubits(qubits)
        return model

    def with_readout_scaled(self, factor: float) -> "NoiseModel":
        """Copy with every readout error probability multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        model = self.copy()
        if model._default_readout is not None:
            model._default_readout = ReadoutError(
                min(model._default_readout.prob_1_given_0 * factor, 1.0),
                min(model._default_readout.prob_0_given_1 * factor, 1.0),
            )
        for qubit, error in list(model._readout.items()):
            model._readout[qubit] = ReadoutError(
                min(error.prob_1_given_0 * factor, 1.0),
                min(error.prob_0_given_1 * factor, 1.0),
            )
        return model

    def without_readout_errors(self) -> "NoiseModel":
        model = self.copy()
        model._readout = {}
        model._default_readout = None
        return model

    def without_gate_errors(self) -> "NoiseModel":
        model = self.copy()
        model._default_1q = []
        model._default_2q = []
        model._qubit_1q = {}
        model._pair_2q = {}
        model._gate_overrides = {}
        return model

    def remap_qubits(self, mapping: Mapping[int, int]) -> "NoiseModel":
        """Copy of the model with qubit-indexed noise renamed through ``mapping``.

        Entries for qubits absent from ``mapping`` are dropped — they refer to
        wires that no longer exist.  Defaults and per-gate overrides are not
        qubit-indexed and carry over unchanged.  Used by the execution engine
        when it compacts idle wires out of a circuit: the compacted circuit
        must see exactly the noise its surviving wires had.
        """
        model = NoiseModel()
        model._default_1q = list(self._default_1q)
        model._default_2q = list(self._default_2q)
        model._gate_overrides = {k: list(v) for k, v in self._gate_overrides.items()}
        model._default_readout = self._default_readout
        model._noise_free_gate_names = set(self._noise_free_gate_names)
        for qubit, channels in self._qubit_1q.items():
            if qubit in mapping:
                model._qubit_1q[mapping[qubit]] = list(channels)
        for (a, b), channels in self._pair_2q.items():
            if a in mapping and b in mapping:
                key = tuple(sorted((mapping[a], mapping[b])))
                model._pair_2q[key] = list(channels)
        for qubit, error in self._readout.items():
            if qubit in mapping:
                model._readout[mapping[qubit]] = error
        model._noise_free_qubits = {
            mapping[q] for q in self._noise_free_qubits if q in mapping
        }
        return model

    def fingerprint(self) -> str:
        """Content hash of the model, stable across equivalent instances.

        Two models built from the same channels and readout errors produce
        the same fingerprint even when they are distinct objects.  The
        execution engine combines this with a circuit fingerprint to build
        its content-addressed cache keys.
        """
        import hashlib

        import numpy as np

        digest = hashlib.sha256()

        def add_channels(tag: str, channels: Sequence[KrausChannel]) -> None:
            digest.update(tag.encode())
            for channel in channels:
                for op in channel.operators:
                    digest.update(np.ascontiguousarray(op).tobytes())

        add_channels("d1", self._default_1q)
        add_channels("d2", self._default_2q)
        for qubit in sorted(self._qubit_1q):
            add_channels(f"q{qubit}", self._qubit_1q[qubit])
        for pair in sorted(self._pair_2q):
            add_channels(f"p{pair}", self._pair_2q[pair])
        for name in sorted(self._gate_overrides):
            add_channels(f"g{name}", self._gate_overrides[name])
        if self._default_readout is not None:
            digest.update(
                f"r*:{self._default_readout.prob_1_given_0}:{self._default_readout.prob_0_given_1}".encode()
            )
        for qubit in sorted(self._readout):
            error = self._readout[qubit]
            digest.update(f"r{qubit}:{error.prob_1_given_0}:{error.prob_0_given_1}".encode())
        digest.update(f"nfq{sorted(self._noise_free_qubits)}".encode())
        digest.update(f"nfg{sorted(self._noise_free_gate_names)}".encode())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Queries used by the simulators
    # ------------------------------------------------------------------

    @property
    def is_ideal(self) -> bool:
        return (
            not self._default_1q
            and not self._default_2q
            and not self._qubit_1q
            and not self._pair_2q
            and not self._gate_overrides
            and not self._readout
            and self._default_readout is None
        )

    @property
    def has_gate_errors(self) -> bool:
        return bool(
            self._default_1q
            or self._default_2q
            or self._qubit_1q
            or self._pair_2q
            or self._gate_overrides
        )

    def channels_for(self, instruction: Instruction) -> list[tuple[KrausChannel, tuple[int, ...]]]:
        """Noise channels (with target wires) to apply after ``instruction``."""
        if not instruction.is_gate:
            return []
        name = instruction.name.lower()
        if name in self._noise_free_gate_names:
            return []
        if self._noise_free_qubits and set(instruction.qubits) & self._noise_free_qubits:
            return []

        channels: list[KrausChannel] = []
        if name in self._gate_overrides:
            channels = self._gate_overrides[name]
        elif instruction.operation.num_qubits == 1:
            qubit = instruction.qubits[0]
            channels = self._qubit_1q.get(qubit, self._default_1q)
        elif instruction.operation.num_qubits == 2:
            key = tuple(sorted(instruction.qubits))
            channels = self._pair_2q.get(key, self._default_2q)
        else:
            # Multi-qubit gates (ccx, cswap): apply the 2-qubit default to
            # each adjacent wire pair as a pragmatic approximation.
            result: list[tuple[KrausChannel, tuple[int, ...]]] = []
            for channel in self._default_2q:
                for a, b in zip(instruction.qubits, instruction.qubits[1:]):
                    result.append((channel, (a, b)))
            for channel in self._default_1q:
                for q in instruction.qubits:
                    result.append((channel, (q,)))
            return result

        result = []
        for channel in channels:
            if channel.num_qubits == instruction.operation.num_qubits:
                result.append((channel, instruction.qubits))
            elif channel.num_qubits == 1:
                for q in instruction.qubits:
                    result.append((channel, (q,)))
            else:  # pragma: no cover - configuration error
                raise ValueError(
                    f"channel width {channel.num_qubits} incompatible with gate {name!r}"
                )
        return result

    def readout_error(self, qubit: int) -> ReadoutError | None:
        if qubit in self._noise_free_qubits:
            return None
        error = self._readout.get(int(qubit), self._default_readout)
        if error is None or error.is_trivial():
            return None
        return error

    def readout_errors_for(self, qubits: Sequence[int]) -> dict[int, ReadoutError]:
        result = {}
        for q in qubits:
            error = self.readout_error(q)
            if error is not None:
                result[int(q)] = error
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"NoiseModel(default_1q={bool(self._default_1q)}, default_2q={bool(self._default_2q)}, "
            f"per_qubit={len(self._qubit_1q)}, per_pair={len(self._pair_2q)}, "
            f"readout={len(self._readout) or (self._default_readout is not None)})"
        )
