"""Classical readout (measurement) errors.

The paper models measurement errors as per-qubit classical bit flips applied
to the measured outcome (no crosstalk in the simulator noise models; the
real devices add crosstalk which Jigsaw targets).  A :class:`ReadoutError`
stores the asymmetric confusion matrix of a single qubit;
:func:`joint_confusion_matrix` tensors several of them into the correlated
assignment matrix that pair-readout calibration estimates and compares
against.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["ReadoutError", "joint_confusion_matrix"]


class ReadoutError:
    """Single-qubit readout confusion.

    Parameters
    ----------
    prob_1_given_0:
        Probability of reading 1 when the qubit is in |0>.
    prob_0_given_1:
        Probability of reading 0 when the qubit is in |1>.  Defaults to the
        same value as ``prob_1_given_0`` (symmetric error).
    """

    def __init__(self, prob_1_given_0: float, prob_0_given_1: float | None = None) -> None:
        if prob_0_given_1 is None:
            prob_0_given_1 = prob_1_given_0
        for value in (prob_1_given_0, prob_0_given_1):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"readout error probability {value} out of [0, 1]")
        self.prob_1_given_0 = float(prob_1_given_0)
        self.prob_0_given_1 = float(prob_0_given_1)

    @property
    def confusion_matrix(self) -> np.ndarray:
        """2x2 matrix ``M[measured, actual]``."""
        return np.array(
            [
                [1.0 - self.prob_1_given_0, self.prob_0_given_1],
                [self.prob_1_given_0, 1.0 - self.prob_0_given_1],
            ]
        )

    @property
    def average_error(self) -> float:
        return 0.5 * (self.prob_1_given_0 + self.prob_0_given_1)

    def is_trivial(self) -> bool:
        return self.prob_1_given_0 == 0.0 and self.prob_0_given_1 == 0.0

    def flip_probability(self, actual_bit: int) -> float:
        return self.prob_1_given_0 if actual_bit == 0 else self.prob_0_given_1

    def sample(self, actual_bit: int, rng: np.random.Generator) -> int:
        """Sample a (possibly flipped) measured bit for a given actual bit."""
        if rng.random() < self.flip_probability(actual_bit):
            return 1 - actual_bit
        return actual_bit

    def tensor(self, other: "ReadoutError") -> np.ndarray:
        """Joint 4x4 confusion matrix with ``self`` on bit 0 and ``other`` on
        bit 1 (see :func:`joint_confusion_matrix`)."""
        return joint_confusion_matrix([self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ReadoutError(p(1|0)={self.prob_1_given_0:.4g}, p(0|1)={self.prob_0_given_1:.4g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReadoutError):
            return NotImplemented
        return (
            abs(self.prob_1_given_0 - other.prob_1_given_0) < 1e-12
            and abs(self.prob_0_given_1 - other.prob_0_given_1) < 1e-12
        )


def joint_confusion_matrix(errors: Sequence[ReadoutError]) -> np.ndarray:
    """Tensored assignment matrix ``M[measured, actual]`` of several qubits.

    Bit ``i`` of the row/column index corresponds to ``errors[i]`` (the same
    little-endian convention :class:`~repro.distributions.ProbabilityDistribution`
    uses for outcome bits), so column ``a`` is the distribution of measured
    outcomes when the true joint state is the basis state ``a``.  This is the
    single source of truth for correlated readout matrices: pair-readout
    calibration estimates a ``4x4`` matrix empirically and compares it to the
    tensor of the learned per-qubit errors, and the uncorrelated-noise
    assumption of the simulators is exactly ``M == joint_confusion_matrix``.
    """
    if not errors:
        raise ValueError("at least one ReadoutError is required")
    matrix = np.array([[1.0]])
    # np.kron's second factor varies fastest, so fold from the highest bit
    # down to keep errors[0] on bit 0.
    for error in reversed(list(errors)):
        matrix = np.kron(matrix, error.confusion_matrix)
    return matrix
