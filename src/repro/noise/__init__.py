"""Noise channels, readout errors, noise models and synthetic devices."""

from .channels import (
    KrausChannel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    identity_channel,
    pauli_channel,
    phase_damping_channel,
    phase_flip_channel,
    thermal_relaxation_channel,
)
from .device import (
    DeviceModel,
    EdgeCalibration,
    QubitCalibration,
    depolarizing_from_average_infidelity,
    fake_cusco,
    fake_device,
    fake_hanoi,
    fake_kyoto,
    fake_mumbai,
    falcon_27_coupling,
    heavy_hex_coupling,
    linear_coupling,
)
from .model import NoiseModel, as_noise_model
from .readout import ReadoutError, joint_confusion_matrix

__all__ = [
    "KrausChannel",
    "identity_channel",
    "depolarizing_channel",
    "pauli_channel",
    "bit_flip_channel",
    "phase_flip_channel",
    "amplitude_damping_channel",
    "phase_damping_channel",
    "thermal_relaxation_channel",
    "ReadoutError",
    "joint_confusion_matrix",
    "NoiseModel",
    "as_noise_model",
    "DeviceModel",
    "QubitCalibration",
    "EdgeCalibration",
    "fake_device",
    "fake_mumbai",
    "fake_hanoi",
    "fake_kyoto",
    "fake_cusco",
    "falcon_27_coupling",
    "heavy_hex_coupling",
    "linear_coupling",
    "depolarizing_from_average_infidelity",
]
