"""Quantum noise channels in Kraus form.

Every channel is a :class:`KrausChannel` — a completely-positive
trace-preserving map given by a list of Kraus operators.  The builders below
cover the noise the QuTracer paper simulates: depolarizing gate noise
(Sec. VII-A/B), and device-calibrated thermal relaxation + readout noise
(Sec. VII-C/D, the ``ibmq_mumbai`` model).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "KrausChannel",
    "identity_channel",
    "depolarizing_channel",
    "pauli_channel",
    "bit_flip_channel",
    "phase_flip_channel",
    "amplitude_damping_channel",
    "phase_damping_channel",
    "thermal_relaxation_channel",
]

_PAULIS_1Q = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


class KrausChannel:
    """A CPTP map described by Kraus operators.

    Parameters
    ----------
    kraus_operators:
        Square matrices of equal dimension ``2**num_qubits``.
    name:
        Human-readable label used in reprs and error messages.
    atol:
        Tolerance for the trace-preservation check.
    """

    def __init__(
        self,
        kraus_operators: Sequence[np.ndarray],
        name: str = "kraus",
        atol: float = 1e-8,
    ) -> None:
        operators = [np.asarray(k, dtype=complex) for k in kraus_operators]
        if not operators:
            raise ValueError("a channel needs at least one Kraus operator")
        dim = operators[0].shape[0]
        for op in operators:
            if op.ndim != 2 or op.shape != (dim, dim):
                raise ValueError("all Kraus operators must be square matrices of equal size")
        num_qubits = int(round(math.log2(dim)))
        if 2**num_qubits != dim:
            raise ValueError(f"Kraus dimension {dim} is not a power of two")
        completeness = sum(op.conj().T @ op for op in operators)
        if not np.allclose(completeness, np.eye(dim), atol=atol):
            raise ValueError(f"channel {name!r} is not trace preserving")
        self.name = name
        self.num_qubits = num_qubits
        # Drop numerically-zero operators; they only slow simulation down.
        self.operators: list[np.ndarray] = [
            op for op in operators if np.linalg.norm(op) > 1e-14
        ]

    @property
    def dim(self) -> int:
        return 2**self.num_qubits

    def is_identity(self, atol: float = 1e-12) -> bool:
        if len(self.operators) != 1:
            return False
        op = self.operators[0]
        phase = op[0, 0]
        if abs(abs(phase) - 1.0) > atol:
            return False
        return bool(np.allclose(op, phase * np.eye(self.dim), atol=atol))

    def apply_to_density_matrix(self, rho: np.ndarray) -> np.ndarray:
        """Apply the channel to a density matrix of matching dimension."""
        rho = np.asarray(rho, dtype=complex)
        if rho.shape != (self.dim, self.dim):
            raise ValueError(f"density matrix shape {rho.shape} does not match channel dim {self.dim}")
        result = np.zeros_like(rho)
        for op in self.operators:
            result += op @ rho @ op.conj().T
        return result

    def compose(self, other: "KrausChannel") -> "KrausChannel":
        """Channel equal to applying ``self`` first, then ``other``."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("cannot compose channels on different qubit counts")
        operators = [b @ a for a in self.operators for b in other.operators]
        return KrausChannel(operators, name=f"{other.name}∘{self.name}")

    def tensor(self, other: "KrausChannel") -> "KrausChannel":
        """Channel acting as ``self`` on the low qubits and ``other`` on the high qubits."""
        operators = [np.kron(b, a) for a in self.operators for b in other.operators]
        return KrausChannel(operators, name=f"{other.name}⊗{self.name}")

    def reduced(self, atol: float = 1e-12) -> "KrausChannel":
        """Return an equivalent channel with at most ``dim**2`` Kraus operators.

        Composing and tensoring channels multiplies operator counts; this
        method rebuilds a minimal Kraus set from the eigendecomposition of
        the Choi matrix, which keeps density-matrix and trajectory simulation
        costs bounded.
        """
        dim = self.dim
        if len(self.operators) <= dim * dim:
            # Still worth pruning numerically tiny operators, but nothing to gain
            # from the eigendecomposition if the count is already minimal-ish.
            pass
        choi = np.zeros((dim * dim, dim * dim), dtype=complex)
        for op in self.operators:
            vec = op.reshape(-1, order="F")  # column-stacking vectorisation
            choi += np.outer(vec, vec.conj())
        eigenvalues, eigenvectors = np.linalg.eigh(choi)
        operators = []
        for value, vector in zip(eigenvalues, eigenvectors.T):
            if value > atol:
                operators.append(math.sqrt(value) * vector.reshape(dim, dim, order="F"))
        reduced = KrausChannel(operators, name=self.name)
        return reduced

    def uniform_depolarizing_probability(self) -> float | None:
        """Probability ``p`` when this channel is exactly ``rho -> (1-p) rho +
        p I/d (x) tr(rho)``, else ``None``.

        A channel has that closed form iff it is a Pauli mixture whose
        ``4**n - 1`` non-identity Paulis all carry equal probability.  The
        simulators use the closed form to replace the per-Kraus conjugation
        loop (``2 * 4**n`` large tensor contractions) with one partial trace
        and one embedding.  The answer is cached on the instance — channels
        live as long as their noise model and are queried once per gate site
        per simulation.
        """
        cached = getattr(self, "_uniform_depolarizing", "unset")
        if cached != "unset":
            return cached
        self._uniform_depolarizing = self._detect_uniform_depolarizing()
        return self._uniform_depolarizing

    def _detect_uniform_depolarizing(self, atol: float = 1e-10) -> float | None:
        dim = self.dim
        labels = _all_pauli_labels(self.num_qubits)
        paulis = {label: _pauli_string_matrix(label) for label in labels}
        identity_label = "I" * self.num_qubits
        weights: dict[str, float] = {}
        for op in self.operators:
            overlaps = {
                label: np.trace(p.conj().T @ op) / dim for label, p in paulis.items()
            }
            significant = {l: c for l, c in overlaps.items() if abs(c) > atol}
            if len(significant) != 1:
                return None
            label, coefficient = next(iter(significant.items()))
            weights[label] = weights.get(label, 0.0) + float(abs(coefficient) ** 2)
        non_identity = [weights.get(l, 0.0) for l in labels if l != identity_label]
        first = non_identity[0]
        if any(abs(w - first) > 1e-9 for w in non_identity):
            return None
        total = weights.get(identity_label, 0.0) + sum(non_identity)
        if abs(total - 1.0) > 1e-8:
            return None
        # Per-Pauli weight p/4**n over all 4**n Paulis (incl. identity's share)
        # corresponds to depolarizing probability p = first * dim**2 ... the
        # mixture (1-p) rho + p I/d tr(rho) has non-identity weights p/d^2.
        return float(first * dim * dim)

    def unitary_mixture(
        self,
    ) -> tuple[np.ndarray, list[np.ndarray], list[bool]] | None:
        """Decompose the channel into ``{p_k, U_k}`` when every Kraus operator
        is a scaled unitary (``K_k = sqrt(p_k) U_k``); return ``None``
        otherwise.

        Returns ``(probabilities, unitaries, identity_flags)`` where the
        identity flags mark operators proportional to the identity, whose
        application is a global phase and can be skipped.  For such channels
        the Born probability ``<psi|K^dagger K|psi> = p_k`` is
        state-independent, which is what lets the trajectory samplers
        pre-draw operator indices for a whole ensemble at once.

        Like :meth:`uniform_depolarizing_probability`, the answer is cached
        on the instance — operators are fixed at construction, channels live
        as long as their noise model, and the Gram-matrix decomposition is
        queried once per error site per simulation.
        """
        cached = getattr(self, "_unitary_mixture", "unset")
        if cached != "unset":
            return cached
        self._unitary_mixture = self._decompose_unitary_mixture()
        return self._unitary_mixture

    def _decompose_unitary_mixture(
        self, atol: float = 1e-10
    ) -> tuple[np.ndarray, list[np.ndarray], list[bool]] | None:
        probabilities = []
        unitaries = []
        identity_flags = []
        for op in self.operators:
            gram = op.conj().T @ op
            p = float(np.real(gram[0, 0]))
            if p <= atol:
                continue
            if not np.allclose(gram, p * np.eye(gram.shape[0]), atol=atol):
                return None
            unitary = op / np.sqrt(p)
            probabilities.append(p)
            unitaries.append(unitary)
            identity_flags.append(
                bool(
                    np.allclose(
                        unitary, unitary[0, 0] * np.eye(unitary.shape[0]), atol=atol
                    )
                )
            )
        total = sum(probabilities)
        if not probabilities or abs(total - 1.0) > 1e-8:
            return None
        return np.array(probabilities) / total, unitaries, identity_flags

    def pauli_mixture(
        self,
    ) -> tuple[np.ndarray, list[str], list[bool]] | None:
        """Decompose the channel into a probabilistic mixture of Pauli strings,
        or return ``None`` when it is not one.

        Returns ``(probabilities, labels, identity_flags)`` where
        ``labels[k]`` is an ``IXYZ`` string whose character ``i`` acts on the
        ``i``-th wire of the instruction the channel decorates (matching
        :func:`_pauli_string_matrix`'s little-endian kron order), and the
        identity flags mark the all-``I`` label.  Pauli mixtures are exactly
        the channels the stabilizer backend can sample: each realisation is a
        Pauli frame update rather than a dense operator.  Cached on the
        instance like :meth:`unitary_mixture` (which this refines — every
        Pauli mixture is a unitary mixture whose unitaries are Pauli strings
        up to a global phase).
        """
        cached = getattr(self, "_pauli_mixture", "unset")
        if cached != "unset":
            return cached
        self._pauli_mixture = self._decompose_pauli_mixture()
        return self._pauli_mixture

    def _decompose_pauli_mixture(
        self, atol: float = 1e-10
    ) -> tuple[np.ndarray, list[str], list[bool]] | None:
        mixture = self.unitary_mixture()
        if mixture is None:
            return None
        probabilities, unitaries, _identity_flags = mixture
        labels = []
        for unitary in unitaries:
            label = _pauli_label_for_unitary(unitary, atol=atol)
            if label is None:
                return None
            labels.append(label)
        identity_label = "I" * self.num_qubits
        return probabilities, labels, [label == identity_label for label in labels]

    def average_gate_fidelity(self) -> float:
        """Average gate fidelity of the channel relative to the identity.

        Uses F_avg = (sum_k |tr K_k|^2 / d + 1) / (d + 1) with d = 2**n.
        Useful in tests to verify channel strengths.
        """
        d = self.dim
        entanglement_fidelity = sum(abs(np.trace(op)) ** 2 for op in self.operators) / d**2
        return float((d * entanglement_fidelity + 1) / (d + 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"KrausChannel({self.name!r}, num_qubits={self.num_qubits}, num_ops={len(self.operators)})"


def identity_channel(num_qubits: int = 1) -> KrausChannel:
    return KrausChannel([np.eye(2**num_qubits, dtype=complex)], name="identity")


def pauli_channel(probabilities: dict[str, float], num_qubits: int = 1) -> KrausChannel:
    """Channel that applies Pauli string ``P`` with probability ``probabilities[P]``.

    The identity probability is inferred so the probabilities sum to one.
    """
    total = sum(probabilities.values())
    if total > 1.0 + 1e-9:
        raise ValueError(f"Pauli error probabilities sum to {total} > 1")
    for label, prob in probabilities.items():
        if prob < 0:
            raise ValueError(f"negative probability for {label!r}")
        if len(label) != num_qubits:
            raise ValueError(f"Pauli label {label!r} has wrong length for {num_qubits} qubit(s)")
    operators = []
    identity_label = "I" * num_qubits
    identity_prob = max(1.0 - total, 0.0) + probabilities.get(identity_label, 0.0)
    if identity_prob > 0:
        operators.append(math.sqrt(identity_prob) * _pauli_string_matrix(identity_label))
    for label, prob in probabilities.items():
        if label == identity_label or prob == 0.0:
            continue
        operators.append(math.sqrt(prob) * _pauli_string_matrix(label))
    return KrausChannel(operators, name="pauli")


def _pauli_label_for_unitary(unitary: np.ndarray, atol: float = 1e-10) -> str | None:
    """The ``IXYZ`` label of ``unitary`` when it is a Pauli string up to a
    global phase, else ``None``.

    Pauli strings are orthogonal under the Hilbert-Schmidt inner product, so
    ``overlap = tr(P^dagger U) / d`` is a unit-modulus phase for the matching
    string and ~0 for every other — one overlap plus an ``allclose`` against
    ``overlap * P`` is a complete test.
    """
    dim = unitary.shape[0]
    num_qubits = int(round(math.log2(dim)))
    for label in _all_pauli_labels(num_qubits):
        pauli = _pauli_string_matrix(label)
        overlap = np.trace(pauli.conj().T @ unitary) / dim
        if abs(abs(overlap) - 1.0) <= atol and np.allclose(
            unitary, overlap * pauli, atol=atol
        ):
            return label
    return None


def _pauli_string_matrix(label: str) -> np.ndarray:
    matrix = _PAULIS_1Q[label[0].upper()]
    for ch in label[1:]:
        matrix = np.kron(_PAULIS_1Q[ch.upper()], matrix)
    return matrix


def depolarizing_channel(probability: float, num_qubits: int = 1) -> KrausChannel:
    """Depolarizing channel: with probability ``p`` replace the state by the
    maximally mixed state; equivalently apply each non-identity Pauli with
    probability ``p / (4**n - 1) * something`` — we use the standard
    parameterisation rho -> (1-p) rho + p I/d."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"depolarizing probability {probability} out of [0, 1]")
    dim = 4**num_qubits
    pauli_labels = _all_pauli_labels(num_qubits)
    per_pauli = probability / dim
    probabilities = {label: per_pauli for label in pauli_labels if label != "I" * num_qubits}
    channel = pauli_channel(probabilities, num_qubits=num_qubits)
    channel.name = f"depolarizing({probability:.4g})"
    return channel


def _all_pauli_labels(num_qubits: int) -> list[str]:
    labels = [""]
    for _ in range(num_qubits):
        labels = [label + pauli for label in labels for pauli in "IXYZ"]
    return labels


def bit_flip_channel(probability: float) -> KrausChannel:
    channel = pauli_channel({"X": probability})
    channel.name = f"bit_flip({probability:.4g})"
    return channel


def phase_flip_channel(probability: float) -> KrausChannel:
    channel = pauli_channel({"Z": probability})
    channel.name = f"phase_flip({probability:.4g})"
    return channel


def amplitude_damping_channel(gamma: float) -> KrausChannel:
    """Energy relaxation towards |0> with damping parameter ``gamma``."""
    if not 0.0 <= gamma <= 1.0:
        raise ValueError(f"gamma {gamma} out of [0, 1]")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return KrausChannel([k0, k1], name=f"amplitude_damping({gamma:.4g})")


def phase_damping_channel(lam: float) -> KrausChannel:
    """Pure dephasing with parameter ``lam``."""
    if not 0.0 <= lam <= 1.0:
        raise ValueError(f"lambda {lam} out of [0, 1]")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - lam)]], dtype=complex)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=complex)
    return KrausChannel([k0, k1], name=f"phase_damping({lam:.4g})")


def thermal_relaxation_channel(t1: float, t2: float, gate_time: float) -> KrausChannel:
    """Thermal relaxation during ``gate_time`` for a qubit with times ``t1``/``t2``.

    Modelled as amplitude damping (rate ``1/t1``) composed with pure
    dephasing chosen so the total off-diagonal decay is ``exp(-gate_time/t2)``.
    Requires ``t2 <= 2 * t1`` (physical constraint).  Times can be in any
    consistent unit (the paper uses ns for gate times and µs for T1/T2; our
    device models convert to a single unit).
    """
    if t1 <= 0 or t2 <= 0:
        raise ValueError("t1 and t2 must be positive")
    if t2 > 2 * t1 + 1e-9:
        raise ValueError(f"t2={t2} exceeds the physical limit 2*t1={2 * t1}")
    if gate_time < 0:
        raise ValueError("gate_time must be non-negative")
    if gate_time == 0:
        return identity_channel(1)
    gamma = 1.0 - math.exp(-gate_time / t1)
    # Amplitude damping alone decays coherences by exp(-t / (2 t1)); the
    # remaining dephasing must supply exp(-t (1/t2 - 1/(2 t1))).
    pure_dephasing_rate = max(1.0 / t2 - 1.0 / (2.0 * t1), 0.0)
    lam = 1.0 - math.exp(-2.0 * gate_time * pure_dephasing_rate)
    channel = amplitude_damping_channel(gamma).compose(phase_damping_channel(lam))
    channel.name = f"thermal_relaxation(t1={t1:.4g}, t2={t2:.4g}, t={gate_time:.4g})"
    return channel
