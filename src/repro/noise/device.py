"""Synthetic quantum-device models.

The paper's experiments run on IBM machines (``ibmq_mumbai`` noise model for
simulation, ``ibm_hanoi`` / ``ibm_kyoto`` / ``ibm_cusco`` for the real-device
tables).  Those devices and their calibration APIs are not available here, so
this module builds *synthetic* devices with the same structure:

* a heavy-hex-like sparse coupling map (27-qubit Falcon layout for
  hanoi/mumbai, a generated 127-qubit heavy-hex lattice for kyoto/cusco);
* per-qubit T1/T2, readout error and single-qubit gate error;
* per-edge two-qubit (CX/CZ) error and gate duration.

Calibration values are drawn from a seeded random generator around the
medians reported in Sec. VII-C of the paper (CNOT error 7.611e-3, readout
error 1.81e-2, T1 125.94 µs, T2 188.75 µs, two-qubit gate time 426.667 ns),
so the noise magnitude matches the paper while still exhibiting the
qubit-to-qubit variability that QuTracer's noise-aware remapping exploits.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, Sequence

import numpy as np

from .channels import (
    KrausChannel,
    depolarizing_channel,
    thermal_relaxation_channel,
)
from .model import NoiseModel
from .readout import ReadoutError

__all__ = [
    "QubitCalibration",
    "EdgeCalibration",
    "DeviceModel",
    "falcon_27_coupling",
    "heavy_hex_coupling",
    "linear_coupling",
    "fake_device",
    "fake_mumbai",
    "fake_hanoi",
    "fake_kyoto",
    "fake_cusco",
    "depolarizing_from_average_infidelity",
]


@dataclasses.dataclass(frozen=True)
class QubitCalibration:
    """Calibration data of one physical qubit (times in nanoseconds)."""

    t1: float
    t2: float
    readout_error: float
    sq_error: float
    sq_gate_time: float

    def quality(self) -> float:
        """A single figure of merit (lower is better) used for layout ranking."""
        return self.readout_error + 10.0 * self.sq_error + 1e5 / self.t1


@dataclasses.dataclass(frozen=True)
class EdgeCalibration:
    """Calibration data of one coupler (times in nanoseconds)."""

    cx_error: float
    gate_time: float


class DeviceModel:
    """A synthetic device: coupling map + calibration + derived noise model."""

    def __init__(
        self,
        name: str,
        num_qubits: int,
        coupling_edges: Sequence[tuple[int, int]],
        qubit_calibrations: dict[int, QubitCalibration],
        edge_calibrations: dict[tuple[int, int], EdgeCalibration],
    ) -> None:
        self.name = name
        self.num_qubits = int(num_qubits)
        self.coupling_edges = [tuple(sorted((int(a), int(b)))) for a, b in coupling_edges]
        self.qubit_calibrations = dict(qubit_calibrations)
        self.edge_calibrations = {tuple(sorted(k)): v for k, v in edge_calibrations.items()}
        if set(self.qubit_calibrations) != set(range(self.num_qubits)):
            raise ValueError("qubit calibrations must cover every qubit")
        for edge in self.coupling_edges:
            if edge not in self.edge_calibrations:
                raise ValueError(f"missing calibration for edge {edge}")
        self._derived_noise_model: NoiseModel | None = None
        self._fingerprint: str | None = None

    # -- content identity / topology ----------------------------------------

    def fingerprint(self) -> str:
        """Content hash of the device: topology + every calibration scalar.

        Two devices with identical coupling maps and calibration data share
        a fingerprint regardless of name or object identity — this is the
        device component of the engine's compilation-cache key, mirroring
        ``circuit_fingerprint`` / ``NoiseModel.fingerprint``.  Readout is
        hashed through :meth:`_readout_error_for`, so a learned model's
        asymmetric confusion matrices change its address.  Memoised:
        calibrations are immutable by construction.
        """
        if self._fingerprint is None:
            import hashlib

            digest = hashlib.sha256()
            digest.update(f"{self.num_qubits}".encode())
            for edge in sorted(self.coupling_edges):
                digest.update(repr(edge).encode())
            for qubit in sorted(self.qubit_calibrations):
                calibration = self.qubit_calibrations[qubit]
                readout = self._readout_error_for(qubit)
                digest.update(
                    (
                        f"q{qubit}:{calibration.t1!r}:{calibration.t2!r}:"
                        f"{calibration.readout_error!r}:{calibration.sq_error!r}:"
                        f"{calibration.sq_gate_time!r}:"
                        f"{readout.prob_1_given_0!r}:{readout.prob_0_given_1!r}"
                    ).encode()
                )
            for edge in sorted(self.edge_calibrations):
                calibration = self.edge_calibrations[edge]
                digest.update(
                    f"e{edge!r}:{calibration.cx_error!r}:{calibration.gate_time!r}".encode()
                )
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def coupling_map(self):
        """The device topology as a :class:`~repro.transpiler.CouplingMap`.

        This is the hook that lets any device — including a
        :class:`~repro.calibration.LearnedDeviceModel` rebuilt from
        measurements — drive hardware-aware compilation.
        """
        from ..transpiler.coupling import CouplingMap

        return CouplingMap(self.coupling_edges, self.num_qubits)

    # -- summary statistics (match the quantities the paper reports) -------

    def median_cx_error(self) -> float:
        return float(np.median([c.cx_error for c in self.edge_calibrations.values()]))

    def median_readout_error(self) -> float:
        return float(np.median([c.readout_error for c in self.qubit_calibrations.values()]))

    def median_t1(self) -> float:
        return float(np.median([c.t1 for c in self.qubit_calibrations.values()]))

    def median_t2(self) -> float:
        return float(np.median([c.t2 for c in self.qubit_calibrations.values()]))

    def summary(
        self,
        qubits: Sequence[int] | None = None,
        pairs: Sequence[tuple[int, int]] | None = None,
    ) -> dict[str, float]:
        """Per-parameter medians, optionally restricted to a qubit/pair subset.

        Besides the raw calibration scalars, the summary reports the **channel
        infidelities** ``median_1q_channel_infidelity`` /
        ``median_2q_channel_infidelity`` — ``1 - F_avg`` of the channels the
        model actually applies (depolarizing composed with thermal
        relaxation).  Those are the quantities noise learning can observe, so
        :meth:`compare` between a learned and a reference model is
        apples-to-apples even though the learned model folds relaxation into
        its depolarizing rates.
        """
        qubit_list = sorted(self.qubit_calibrations) if qubits is None else [int(q) for q in qubits]
        pair_list = (
            list(self.edge_calibrations)
            if pairs is None
            else [tuple(sorted((int(a), int(b)))) for a, b in pairs]
        )
        for q in qubit_list:
            if q not in self.qubit_calibrations:
                raise ValueError(f"qubit {q} has no calibration")
        for pair in pair_list:
            if pair not in self.edge_calibrations:
                raise ValueError(f"pair {pair} has no calibration")
        qcals = [self.qubit_calibrations[q] for q in qubit_list]
        ecals = [self.edge_calibrations[p] for p in pair_list]
        summary: dict[str, float] = {
            "median_sq_error": float(np.median([c.sq_error for c in qcals])),
            "median_readout_error": float(
                np.median([self._readout_error_for(q).average_error for q in qubit_list])
            ),
            "median_t1": float(np.median([c.t1 for c in qcals])),
            "median_t2": float(np.median([c.t2 for c in qcals])),
            "median_1q_channel_infidelity": float(
                np.median(
                    [1.0 - self._single_qubit_channel(c).average_gate_fidelity() for c in qcals]
                )
            ),
        }
        if ecals:
            summary["median_cx_error"] = float(np.median([c.cx_error for c in ecals]))
            summary["median_2q_channel_infidelity"] = float(
                np.median(
                    [
                        1.0
                        - self._two_qubit_channel(
                            self.edge_calibrations[pair],
                            self.qubit_calibrations[pair[0]],
                            self.qubit_calibrations[pair[1]],
                        ).average_gate_fidelity()
                        for pair in pair_list
                    ]
                )
            )
        return summary

    # Parameters whose meaning is shared between a reference model and a
    # learned one (a learned model folds relaxation into its gate errors, so
    # t1/t2 and the raw error scalars are not comparable across the two).
    COMPARABLE_PARAMETERS = (
        "median_1q_channel_infidelity",
        "median_2q_channel_infidelity",
        "median_readout_error",
    )

    def compare(
        self,
        other: "DeviceModel",
        qubits: Sequence[int] | None = None,
        pairs: Sequence[tuple[int, int]] | None = None,
        parameters: Sequence[str] | None = None,
    ) -> dict[str, dict[str, float]]:
        """Per-parameter medians of ``self`` vs ``other`` with relative errors.

        Returns ``{parameter: {"self": ..., "other": ..., "relative_error":
        |self - other| / max(|other|, 1e-12)}}`` over the parameters listed in
        ``parameters`` (default :attr:`COMPARABLE_PARAMETERS`), with both
        summaries restricted to the same ``qubits`` / ``pairs`` subset.
        ``other`` is the reference in the relative error.  This is what
        :class:`~repro.calibration.LearnedDeviceModel` reports after a
        calibration run.
        """
        names = tuple(parameters) if parameters is not None else self.COMPARABLE_PARAMETERS
        mine = self.summary(qubits=qubits, pairs=pairs)
        theirs = other.summary(qubits=qubits, pairs=pairs)
        report: dict[str, dict[str, float]] = {}
        for name in names:
            if name not in mine or name not in theirs:
                raise ValueError(f"parameter {name!r} is not in both summaries")
            reference = theirs[name]
            report[name] = {
                "self": mine[name],
                "other": reference,
                "relative_error": abs(mine[name] - reference) / max(abs(reference), 1e-12),
            }
        return report

    # -- noise model --------------------------------------------------------

    def noise_model(self) -> NoiseModel:
        """The NoiseModel equivalent of this device's calibration.

        Memoised: a device's calibrations are immutable, so the derived
        model is built once and the same object returned thereafter —
        repeated :func:`~repro.noise.as_noise_model` coercions (passing the
        device itself to the engine per call) reuse its memoised
        fingerprint instead of rebuilding every channel.  Treat the
        returned model as read-only; copy it (or use
        :meth:`noise_model_for_assignment`) before mutating.
        """
        if self._derived_noise_model is None:
            self._derived_noise_model = self._build_noise_model()
        return self._derived_noise_model

    def _build_noise_model(self) -> NoiseModel:
        model = NoiseModel()
        median_qubit = QubitCalibration(
            t1=self.median_t1(),
            t2=self.median_t2(),
            readout_error=self.median_readout_error(),
            sq_error=float(np.median([c.sq_error for c in self.qubit_calibrations.values()])),
            sq_gate_time=float(
                np.median([c.sq_gate_time for c in self.qubit_calibrations.values()])
            ),
        )
        median_edge = EdgeCalibration(
            cx_error=self.median_cx_error(),
            gate_time=float(np.median([c.gate_time for c in self.edge_calibrations.values()])),
        )
        model.set_default_1q_error(self._single_qubit_channel(median_qubit))
        model.set_default_2q_error(self._two_qubit_channel(median_edge, median_qubit, median_qubit))

        for qubit, calibration in self.qubit_calibrations.items():
            model.set_qubit_error(qubit, self._single_qubit_channel(calibration))
            readout = self._readout_error_for(qubit)
            if not readout.is_trivial():
                model.set_readout_error(readout, qubit)
        for edge, calibration in self.edge_calibrations.items():
            a, b = edge
            channel = self._two_qubit_channel(
                calibration, self.qubit_calibrations[a], self.qubit_calibrations[b]
            )
            model.set_pair_error(edge, channel)
        return model

    def _readout_error_for(self, qubit: int) -> ReadoutError:
        """Confusion of one qubit; the single hook all noise-model builders use.

        The base class reads the symmetric ``readout_error`` scalar from the
        calibration; :class:`~repro.calibration.LearnedDeviceModel` overrides
        this with the asymmetric confusion matrices it measured.
        """
        return ReadoutError(self.qubit_calibrations[qubit].readout_error)

    @staticmethod
    def _single_qubit_channel(calibration: QubitCalibration) -> KrausChannel:
        channel = depolarizing_channel(
            depolarizing_from_average_infidelity(calibration.sq_error, 1), 1
        )
        relaxation = thermal_relaxation_channel(
            calibration.t1, calibration.t2, calibration.sq_gate_time
        )
        combined = channel.compose(relaxation).reduced()
        combined.name = "device_1q"
        return combined

    @staticmethod
    def _two_qubit_channel(
        edge: EdgeCalibration, qubit_a: QubitCalibration, qubit_b: QubitCalibration
    ) -> KrausChannel:
        channel = depolarizing_channel(
            depolarizing_from_average_infidelity(edge.cx_error, 2), 2
        )
        relax_a = thermal_relaxation_channel(qubit_a.t1, qubit_a.t2, edge.gate_time)
        relax_b = thermal_relaxation_channel(qubit_b.t1, qubit_b.t2, edge.gate_time)
        combined = channel.compose(relax_a.tensor(relax_b)).reduced()
        combined.name = "device_2q"
        return combined

    def noise_model_for_assignment(self, assignment: dict[int, int]) -> NoiseModel:
        """Noise model for a *logical* circuit under a logical->physical assignment.

        Logical qubits keep their indices; their gate and readout noise is
        taken from the calibration of the physical qubit they are assigned
        to.  Two-qubit noise between logical qubits whose physical images are
        adjacent uses that coupler's calibration; non-adjacent pairs get a
        penalty channel whose strength grows with the coupling-map distance,
        standing in for the SWAP overhead that routing would add.  This is
        how the benchmark harness models "running on ibm_hanoi/kyoto/cusco"
        without simulating all 27/127 physical wires.
        """
        import networkx as nx

        graph = nx.Graph(self.coupling_edges)
        median_qubit = QubitCalibration(
            t1=self.median_t1(),
            t2=self.median_t2(),
            readout_error=self.median_readout_error(),
            sq_error=float(np.median([c.sq_error for c in self.qubit_calibrations.values()])),
            sq_gate_time=float(
                np.median([c.sq_gate_time for c in self.qubit_calibrations.values()])
            ),
        )
        median_edge = EdgeCalibration(
            cx_error=self.median_cx_error(),
            gate_time=float(np.median([c.gate_time for c in self.edge_calibrations.values()])),
        )
        model = NoiseModel()
        model.set_default_1q_error(self._single_qubit_channel(median_qubit))
        model.set_default_2q_error(self._two_qubit_channel(median_edge, median_qubit, median_qubit))
        model.set_readout_error(ReadoutError(median_qubit.readout_error))
        for logical, physical in assignment.items():
            calibration = self.qubit_calibrations[physical]
            model.set_qubit_error(logical, self._single_qubit_channel(calibration))
            model.set_readout_error(self._readout_error_for(physical), logical)
        logicals = sorted(assignment)
        for i, a in enumerate(logicals):
            for b in logicals[i + 1 :]:
                pa, pb = assignment[a], assignment[b]
                edge = tuple(sorted((pa, pb)))
                if edge in self.edge_calibrations:
                    channel = self._two_qubit_channel(
                        self.edge_calibrations[edge],
                        self.qubit_calibrations[pa],
                        self.qubit_calibrations[pb],
                    )
                else:
                    try:
                        distance = nx.shortest_path_length(graph, pa, pb)
                    except nx.NetworkXNoPath:  # pragma: no cover - disconnected devices
                        distance = self.num_qubits
                    # Each extra hop costs roughly one SWAP (three CX) on top
                    # of the gate itself.
                    penalty = EdgeCalibration(
                        cx_error=min(median_edge.cx_error * (3 * (distance - 1) + 1), 0.5),
                        gate_time=median_edge.gate_time * (2 * distance - 1),
                    )
                    channel = self._two_qubit_channel(
                        penalty, self.qubit_calibrations[pa], self.qubit_calibrations[pb]
                    )
                model.set_pair_error((a, b), channel)
        return model

    # -- helpers for noise-aware layout -------------------------------------

    def best_qubits(self, count: int) -> list[int]:
        """The ``count`` best qubits by the quality figure of merit."""
        ranked = sorted(
            self.qubit_calibrations, key=lambda q: self.qubit_calibrations[q].quality()
        )
        return ranked[:count]

    def neighbors(self, qubit: int) -> list[int]:
        result = []
        for a, b in self.coupling_edges:
            if a == qubit:
                result.append(b)
            elif b == qubit:
                result.append(a)
        return sorted(result)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DeviceModel({self.name!r}, qubits={self.num_qubits}, "
            f"edges={len(self.coupling_edges)}, median_cx_error={self.median_cx_error():.2e})"
        )


def depolarizing_from_average_infidelity(error: float, num_qubits: int) -> float:
    """Convert an average gate infidelity into a depolarizing parameter.

    For a ``d``-dimensional depolarizing channel with parameter ``p`` the
    average gate infidelity is ``p * (d - 1) / d`` (for the parameterisation
    rho -> (1 - p) rho + p I/d the average fidelity is
    ``1 - p (d - 1)/d``... more precisely ``1 - p (d-1)/(d)`` with the
    uniform-Pauli convention used by :func:`depolarizing_channel`).  We use
    ``p = error * d / (d - 1)`` clipped to [0, 1].
    """
    if error < 0:
        raise ValueError("error must be non-negative")
    d = 2**num_qubits
    return min(error * d / (d - 1), 1.0)


# ---------------------------------------------------------------------------
# Coupling maps
# ---------------------------------------------------------------------------

def linear_coupling(num_qubits: int) -> list[tuple[int, int]]:
    """Nearest-neighbour chain (used for small tests and the VQE ansatz)."""
    return [(i, i + 1) for i in range(num_qubits - 1)]


def falcon_27_coupling() -> list[tuple[int, int]]:
    """Heavy-hex coupling of the 27-qubit IBM Falcon family (hanoi/mumbai)."""
    return [
        (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7),
        (7, 10), (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15),
        (13, 14), (14, 16), (15, 18), (16, 19), (17, 18), (18, 21), (19, 20),
        (19, 22), (21, 23), (22, 25), (23, 24), (24, 25), (25, 26),
    ]


def heavy_hex_coupling(num_rows: int = 7, row_length: int = 13, connectors_per_gap: int = 6) -> list[tuple[int, int]]:
    """Generate a heavy-hex-like lattice.

    Rows of ``row_length`` qubits are connected as chains; between adjacent
    rows, ``connectors_per_gap`` bridge qubits connect matching columns.  The
    defaults give ``7*13 + 6*6 = 127`` qubits, the size of the IBM Eagle
    devices (kyoto/cusco) used in the paper.
    """
    edges: list[tuple[int, int]] = []
    row_start = [r * row_length for r in range(num_rows)]
    next_index = num_rows * row_length
    for r in range(num_rows):
        for c in range(row_length - 1):
            edges.append((row_start[r] + c, row_start[r] + c + 1))
    for r in range(num_rows - 1):
        columns = np.linspace(0, row_length - 1, connectors_per_gap, dtype=int)
        # Alternate the column offsets between gaps like the real lattice.
        if r % 2 == 1:
            columns = np.clip(columns + 1, 0, row_length - 1)
        for c in columns:
            bridge = next_index
            next_index += 1
            edges.append((row_start[r] + int(c), bridge))
            edges.append((bridge, row_start[r + 1] + int(c)))
    return edges


def _num_qubits_of(edges: Iterable[tuple[int, int]]) -> int:
    return max(max(a, b) for a, b in edges) + 1


# ---------------------------------------------------------------------------
# Synthetic devices
# ---------------------------------------------------------------------------

_DEVICE_SPECS: dict[str, dict] = {
    # medians follow Sec. VII-C; eagle devices get slightly worse 2q errors,
    # matching the relative behaviour reported for kyoto / cusco runs.
    "mumbai": {"edges": "falcon", "cx_error": 7.611e-3, "readout": 1.810e-2, "seed": 11},
    "hanoi": {"edges": "falcon", "cx_error": 6.9e-3, "readout": 1.3e-2, "seed": 23},
    "kyoto": {"edges": "eagle", "cx_error": 9.5e-3, "readout": 2.2e-2, "seed": 37},
    "cusco": {"edges": "eagle", "cx_error": 1.25e-2, "readout": 2.6e-2, "seed": 51},
}


def fake_device(name: str) -> DeviceModel:
    """Build one of the named synthetic devices (mumbai/hanoi/kyoto/cusco)."""
    key = name.lower().replace("ibmq_", "").replace("ibm_", "").replace("fake_", "")
    if key not in _DEVICE_SPECS:
        raise ValueError(f"unknown device {name!r}; available: {sorted(_DEVICE_SPECS)}")
    spec = _DEVICE_SPECS[key]
    edges = falcon_27_coupling() if spec["edges"] == "falcon" else heavy_hex_coupling()
    num_qubits = _num_qubits_of(edges)
    rng = np.random.default_rng(spec["seed"])

    median_t1 = 125.94e3  # ns
    median_t2 = 188.75e3  # ns (t2 may exceed t1 but not 2*t1)
    sq_time = 35.56  # ns
    tq_time = 426.667  # ns
    median_sq_error = 2.5e-4

    qubit_calibrations: dict[int, QubitCalibration] = {}
    for q in range(num_qubits):
        t1 = median_t1 * rng.lognormal(mean=0.0, sigma=0.35)
        t2 = min(median_t2 * rng.lognormal(mean=0.0, sigma=0.35), 1.95 * t1)
        readout = float(np.clip(spec["readout"] * rng.lognormal(0.0, 0.5), 1e-3, 0.35))
        sq_error = float(np.clip(median_sq_error * rng.lognormal(0.0, 0.5), 1e-5, 5e-3))
        qubit_calibrations[q] = QubitCalibration(
            t1=t1, t2=t2, readout_error=readout, sq_error=sq_error, sq_gate_time=sq_time
        )

    edge_calibrations: dict[tuple[int, int], EdgeCalibration] = {}
    for edge in edges:
        cx_error = float(np.clip(spec["cx_error"] * rng.lognormal(0.0, 0.4), 1e-3, 0.25))
        gate_time = tq_time * float(rng.uniform(0.75, 1.25))
        edge_calibrations[tuple(sorted(edge))] = EdgeCalibration(cx_error=cx_error, gate_time=gate_time)

    return DeviceModel(
        name=f"fake_{key}",
        num_qubits=num_qubits,
        coupling_edges=edges,
        qubit_calibrations=qubit_calibrations,
        edge_calibrations=edge_calibrations,
    )


def fake_mumbai() -> DeviceModel:
    return fake_device("mumbai")


def fake_hanoi() -> DeviceModel:
    return fake_device("hanoi")


def fake_kyoto() -> DeviceModel:
    return fake_device("kyoto")


def fake_cusco() -> DeviceModel:
    return fake_device("cusco")
