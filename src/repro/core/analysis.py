"""Cut-point analysis: partition a circuit into segments for a qubit subset.

QuTracer inserts "quantum watchpoints" (cut points) on the traced wires so
that every segment between two consecutive cut points can be protected by a
single-qubit (or product) Pauli-Z check (Sec. V-B: *the criteria for choosing
cut points is to divide the gate operations into sets of commuting
operations*).

A circuit is decomposed, for a given subset, into an alternating sequence of

* ``local`` segments — single-qubit gates on the subset wires only, which
  the tracer simulates classically (localized gate simulation), and
* ``entangling`` segments — maximal runs whose subset-touching multi-qubit
  gates all commute with Pauli-Z on the subset wires they touch (and can
  therefore be protected by Z checks), or, as a fallback, runs that do not
  commute (executed without checks).

Gates that never touch the subset are attached to the entangling segment in
which they occur (they are carried along for context; false dependency
removal later prunes the irrelevant ones).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..circuits import Instruction, QuantumCircuit, gate_commutes_with_pauli

__all__ = ["Segment", "SubsetAnalysis", "analyse_subset"]


@dataclasses.dataclass
class Segment:
    """A contiguous slice of the circuit, classified for the tracer."""

    kind: str  # "local" | "checked" | "unchecked"
    instructions: list[Instruction]

    @property
    def is_local(self) -> bool:
        return self.kind == "local"

    @property
    def checkable(self) -> bool:
        return self.kind == "checked"

    def touches_subset(self, subset: Sequence[int]) -> bool:
        subset_set = set(subset)
        return any(subset_set.intersection(inst.qubits) for inst in self.instructions)


@dataclasses.dataclass
class SubsetAnalysis:
    """Result of :func:`analyse_subset`."""

    subset: list[int]
    segments: list[Segment]
    num_cut_points: int

    @property
    def num_checked_layers(self) -> int:
        return sum(1 for s in self.segments if s.kind == "checked" and s.instructions)


def analyse_subset(circuit: QuantumCircuit, subset: Sequence[int]) -> SubsetAnalysis:
    """Partition ``circuit`` (measurements ignored) into tracer segments."""
    subset = [int(q) for q in subset]
    subset_set = set(subset)
    if len(subset_set) != len(subset):
        raise ValueError("duplicate qubits in subset")
    for q in subset:
        if q < 0 or q >= circuit.num_qubits:
            raise ValueError(f"subset qubit {q} out of range")

    segments: list[Segment] = []
    current_kind: str | None = None
    current: list[Instruction] = []

    def flush() -> None:
        nonlocal current, current_kind
        if current:
            segments.append(Segment(kind=current_kind or "checked", instructions=current))
        current = []
        current_kind = None

    for inst in circuit.data:
        if inst.is_measurement or inst.is_barrier:
            continue
        if not inst.is_gate:
            raise ValueError(f"cannot analyse instruction {inst.name!r}")
        touched = subset_set.intersection(inst.qubits)
        if touched and len(inst.qubits) == 1:
            kind = "local"
        elif touched:
            commutes = gate_commutes_with_pauli(inst, {q: "Z" for q in touched})
            kind = "checked" if commutes else "unchecked"
        else:
            # Context gate: attach to whatever entangling segment is open, or
            # open a checked segment by default.
            kind = current_kind if current_kind in ("checked", "unchecked") else "checked"
        if current_kind is None:
            current_kind = kind
        if kind != current_kind:
            # Local gates never merge with entangling segments and vice versa.
            flush()
            current_kind = kind
        current.append(inst)
    flush()

    # Merge consecutive segments of the same kind (can happen around context
    # gates) and drop empty ones.
    merged: list[Segment] = []
    for segment in segments:
        if merged and merged[-1].kind == segment.kind:
            merged[-1].instructions.extend(segment.instructions)
        else:
            merged.append(segment)

    entangling = sum(1 for s in merged if s.kind in ("checked", "unchecked"))
    # One cut before and one after every entangling segment (shared cuts are
    # counted once), matching the paper's "two cuts per layer" accounting.
    num_cut_points = max(2 * entangling, 0)
    return SubsetAnalysis(subset=subset, segments=merged, num_cut_points=num_cut_points)
