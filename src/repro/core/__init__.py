"""QuTracer: the paper's contribution (QSPC + analysis + optimizations + driver)."""

from .analysis import Segment, SubsetAnalysis, analyse_subset
from .optimizations import (
    apply_local_unitary,
    conjugate_observables_through,
    extract_leading_local_gates,
    extract_trailing_local_gates,
    false_dependency_removal,
)
from .qspc import QSPCOptions, VirtualCheckResult, all_pauli_strings, virtual_pauli_check
from .tracer import (
    QuTracer,
    QuTracerOptions,
    QuTracerResult,
    SubsetTraceResult,
    default_subsets,
)

__all__ = [
    "analyse_subset",
    "Segment",
    "SubsetAnalysis",
    "false_dependency_removal",
    "extract_leading_local_gates",
    "extract_trailing_local_gates",
    "apply_local_unitary",
    "conjugate_observables_through",
    "QSPCOptions",
    "VirtualCheckResult",
    "virtual_pauli_check",
    "all_pauli_strings",
    "QuTracer",
    "QuTracerOptions",
    "QuTracerResult",
    "SubsetTraceResult",
    "default_subsets",
]
